// E2 — quality-impact table.
//
// Paper claim: VisualCloud's bandwidth savings come "while delivering the
// same perceived quality" — i.e. the quality *inside the viewport* stays on
// par with full-quality delivery; only out-of-view regions are degraded.
//
// This bench measures in-viewport PSNR (delivered vs pristine source,
// rendered through the HMD viewport at the viewer's actual orientation) for
// each approach, alongside the bytes it took.

#include "bench_util.h"
#include "predict/popularity.h"

using namespace vc;
using namespace vc::bench;

int main() {
  Banner("E2: in-viewport quality per approach",
         "expect: visualcloud within ~1-2 dB of monolithic at far fewer "
         "bytes; uniform low-quality far below");

  constexpr int kSeconds = 10;  // quality evaluation decodes, keep it short
  auto traces = ViewerPopulation(/*seeds_per=*/2, kSeconds);
  BenchDb bench = OpenBenchDb();

  std::printf("\n%-11s %-26s %9s %9s %12s\n", "video", "approach",
              "PSNR(dB)", "min(dB)", "bytes");

  for (const std::string& scene_name : StandardSceneNames()) {
    auto scene = CanonicalScene(scene_name);
    CheckOk(bench.db
                ->IngestScene(scene_name, *scene, kSeconds * kFps,
                              CanonicalIngest())
                .status(),
            "ingest");
    VideoMetadata metadata =
        CheckOk(bench.db->Describe(scene_name), "describe");

    // Crowd model trained on viewers disjoint from the evaluation set.
    PopularityModel popularity(metadata.tile_grid(),
                               metadata.segment_duration_seconds(),
                               metadata.segment_count());
    for (const std::string& archetype : ViewerArchetypes()) {
      for (uint64_t seed = 200; seed < 206; ++seed) {
        auto trace_options = ArchetypeOptions(archetype, seed);
        trace_options->duration_seconds = kSeconds;
        popularity.AddTrace(
            CheckOk(SynthesizeTrace(*trace_options), "train trace"));
      }
    }

    auto evaluate = [&](StreamingApproach approach,
                        const std::string& predictor, int high_quality,
                        const PopularityModel* crowd = nullptr) {
      double psnr = 0, min_psnr = 1e9;
      uint64_t bytes = 0;
      for (const HeadTrace& trace : traces) {
        SessionOptions session = CanonicalSession(approach);
        session.predictor = predictor;
        session.high_quality = high_quality;
        session.evaluate_quality = true;
        session.popularity = crowd;
        auto stats = SimulateSession(bench.db->storage(), metadata, trace,
                                     session, scene.get());
        CheckOk(stats.status(), "session");
        psnr += stats->mean_viewport_psnr;
        min_psnr = std::min(min_psnr, stats->min_viewport_psnr);
        bytes += stats->bytes_sent;
      }
      struct {
        double mean, min;
        uint64_t bytes;
      } r{psnr / traces.size(), min_psnr, bytes / traces.size()};
      return r;
    };

    struct Row {
      std::string label;
      StreamingApproach approach;
      std::string predictor;
      int high_quality;
    };
    std::vector<Row> rows = {
        {"monolithic full quality", StreamingApproach::kMonolithicFull,
         "static", 0},
        {"uniform low quality", StreamingApproach::kMonolithicFull, "static",
         2},
        {"visualcloud (dead reckon)", StreamingApproach::kVisualCloud,
         "dead_reckoning", 0},
        {"visualcloud (oracle)", StreamingApproach::kOracle, "static", 0},
    };
    for (const Row& row : rows) {
      auto r = evaluate(row.approach, row.predictor, row.high_quality);
      std::printf("%-11s %-26s %9.1f %9.1f %12llu\n", scene_name.c_str(),
                  row.label.c_str(), r.mean, r.min,
                  static_cast<unsigned long long>(r.bytes));
    }
    // The cross-user crowd model: spends extra bytes on historically
    // popular tiles to cushion individual prediction misses.
    auto crowd = evaluate(StreamingApproach::kVisualCloud, "dead_reckoning",
                          0, &popularity);
    std::printf("%-11s %-26s %9.1f %9.1f %12llu\n", scene_name.c_str(),
                "visualcloud (DR + crowd)", crowd.mean, crowd.min,
                static_cast<unsigned long long>(crowd.bytes));
    std::printf("\n");
  }

  // Ablation: the viewport-margin knob trades bytes for robustness to
  // prediction error. Larger margins approach monolithic quality (and
  // bytes); smaller margins maximize savings but let misses show.
  std::printf("margin ablation (venice, visualcloud + dead reckoning):\n");
  std::printf("%-9s %9s %9s %12s\n", "margin", "PSNR(dB)", "min(dB)",
              "bytes");
  auto scene = CanonicalScene("venice");
  VideoMetadata metadata = CheckOk(bench.db->Describe("venice"), "describe");
  for (double margin : {0.0, 0.1, 0.2, 0.35, 0.5}) {
    double psnr = 0, min_psnr = 1e9;
    uint64_t bytes = 0;
    for (const HeadTrace& trace : traces) {
      SessionOptions session =
          CanonicalSession(StreamingApproach::kVisualCloud);
      session.predictor = "dead_reckoning";
      session.viewport_margin = margin;
      session.evaluate_quality = true;
      auto stats = SimulateSession(bench.db->storage(), metadata, trace,
                                   session, scene.get());
      CheckOk(stats.status(), "session");
      psnr += stats->mean_viewport_psnr;
      min_psnr = std::min(min_psnr, stats->min_viewport_psnr);
      bytes += stats->bytes_sent;
    }
    std::printf("%7.2f   %9.1f %9.1f %12llu\n", margin,
                psnr / traces.size(), min_psnr,
                static_cast<unsigned long long>(bytes / traces.size()));
  }
  return 0;
}
