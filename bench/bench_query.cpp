// E8 — declarative query layer: tile pruning vs naive full scan.
//
// Paper claim (VisualCloud, SIGMOD'17 demo): declarative VR queries let the
// DBMS prune work the viewer never sees — the optimizer turns viewport and
// time predicates into (segment × tile × quality) cell pruning before any
// byte is decoded, and serves stored ladder rungs without transcoding.
//
// This bench runs a canonical query mix twice through the same physical
// executor: once pruned (the optimizer's plan) and once as a naive
// filter-after-scan baseline that fetches and decodes every catalog cell,
// then discards out-of-plan pixels. The decoded frames must be
// byte-identical — pruning may only remove work, never change the answer —
// and the pruned run must touch at most half the cells the naive run does.
// A transcode-elision leg exports a full-grid selection both ways: stored
// bitstream stitching vs decode + re-encode.
//
// E12 extends the claim to materialized views: a standing degrade-periphery
// query is materialized once (maintenance cost reported per segment), then
// the same query arriving fresh is served two ways — decode + re-encode
// from the source vs the optimizer's view-matching rewrite stitching the
// view's stored cells. The served streams must be byte-identical; the
// view scan only moves host time.
//
// `--smoke` shrinks the video so the whole binary finishes in seconds
// (registered as a ctest); smoke runs skip BENCH_query.json.

#include <cstring>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "query/executor.h"
#include "query/parser.h"
#include "view/maintainer.h"

using namespace vc;
using namespace vc::bench;

namespace {

bool FramesEqual(const std::vector<Frame>& a, const std::vector<Frame>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].SameSize(b[i]) || a[i].y_plane() != b[i].y_plane() ||
        a[i].u_plane() != b[i].u_plane() || a[i].v_plane() != b[i].v_plane()) {
      return false;
    }
  }
  return true;
}

struct NamedQuery {
  const char* label;
  Query query;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  Banner("E8: declarative query layer — pruned vs naive full scan",
         "viewport/time predicates prune >=50% of catalog cells with "
         "byte-identical decoded output");

  BenchDb bench = OpenBenchDb();
  const int seconds = smoke ? 4 : kVideoSeconds;
  IngestOptions ingest = CanonicalIngest();
  auto scene = CanonicalScene("venice");
  CheckOk(bench.db->IngestScene("venice", *scene, seconds * kFps, ingest),
          "ingest");
  VideoMetadata metadata = CheckOk(bench.db->Describe("venice"), "describe");
  StorageManager* storage = bench.db->storage();
  const double duration = seconds;

  // The query mix: viewport selections around the sphere, time windows,
  // quality floors, one degrade (spatial quality falloff instead of spatial
  // pruning), and one query arriving through the text-form parser.
  std::vector<NamedQuery> queries;
  queries.push_back(
      {"front-window",
       Query::Scan("venice")
           .TimeSlice(0.0, duration / 2)
           .Viewport(kPi, kPi / 2, DegToRad(kFovYawDeg),
                     DegToRad(kFovPitchDeg))
           .QualityFloor("high")});
  queries.push_back(
      {"seam-crossing",
       Query::Scan("venice")
           .TimeSlice(duration / 4, 3 * duration / 4)
           .Viewport(0.05, kPi / 2, DegToRad(110), DegToRad(70))
           .QualityFloor("medium")});
  queries.push_back(
      {"degrade-periphery",
       Query::Scan("venice")
           .TimeSlice(0.0, duration / 4)
           .Viewport(kPi / 2, kPi / 2, DegToRad(kFovYawDeg),
                     DegToRad(kFovPitchDeg))
           .QualityFloor("high")
           .Degrade("low")});
  Query parsed = CheckOk(
      ParseQuery(Slice(std::string("scan(venice) | timeslice(0,") +
                       std::to_string(duration / 2) +
                       ") | viewport(270,60,100,80) | quality(low)")),
      "parse");
  queries.push_back({"parsed-text", parsed});

  std::printf("\n%-18s %9s %9s %8s %10s %10s %8s %7s\n", "query", "pruned",
              "naive", "pruned%", "pruned ms", "naive ms", "speedup",
              "equal");

  std::string rows;
  long long scanned_pruned = 0, scanned_naive = 0;
  bool all_equal = true;
  for (const NamedQuery& q : queries) {
    PhysicalPlan plan = CheckOk(Optimize(q.query, storage), "optimize");
    if (plan.Explain().empty()) CheckOk(Status::Internal("empty explain"),
                                        "explain");

    storage->ClearCache();
    Stopwatch pruned_watch;
    QueryResult pruned = CheckOk(ExecutePlan(plan, storage), "pruned run");
    double pruned_ms = pruned_watch.ElapsedMillis();

    storage->ClearCache();
    ExecuteOptions naive_options;
    naive_options.naive_full_scan = true;
    Stopwatch naive_watch;
    QueryResult naive =
        CheckOk(ExecutePlan(plan, storage, naive_options), "naive run");
    double naive_ms = naive_watch.ElapsedMillis();

    bool equal = FramesEqual(pruned.frames, naive.frames);
    all_equal = all_equal && equal;
    scanned_pruned += pruned.cells_scanned;
    scanned_naive += naive.cells_scanned;
    double pruned_pct =
        100.0 * (naive.cells_scanned - pruned.cells_scanned) /
        (naive.cells_scanned > 0 ? naive.cells_scanned : 1);

    std::printf("%-18s %9d %9d %7.1f%% %10.2f %10.2f %7.2fx %7s\n", q.label,
                pruned.cells_scanned, naive.cells_scanned, pruned_pct,
                pruned_ms, naive_ms,
                pruned_ms > 0 ? naive_ms / pruned_ms : 0.0,
                equal ? "yes" : "NO");

    char row[384];
    std::snprintf(row, sizeof(row),
                  "%s  {\"query\": \"%s\", \"cells_pruned_run\": %d, "
                  "\"cells_naive_run\": %d, \"pruned_fraction\": %.4f, "
                  "\"pruned_ms\": %.3f, \"naive_ms\": %.3f, "
                  "\"frames\": %zu, \"identical\": %s}",
                  rows.empty() ? "" : ",\n", q.label, pruned.cells_scanned,
                  naive.cells_scanned, pruned_pct / 100.0, pruned_ms,
                  naive_ms, pruned.frames.size(), equal ? "true" : "false");
    rows += row;
  }

  // Transcode-elision leg: a whole-video single-rung export served as
  // stitched stored bytes vs the same plan forced through decode+re-encode.
  Query export_query = Query::Scan("venice").QualityFloor("medium").Encode();
  PhysicalPlan export_plan =
      CheckOk(Optimize(export_query, storage), "optimize export");
  storage->ClearCache();
  Stopwatch stitch_watch;
  QueryResult stitched =
      CheckOk(ExecutePlan(export_plan, storage), "stitched export");
  double stitch_ms = stitch_watch.ElapsedMillis();
  storage->ClearCache();
  ExecuteOptions transcode_options;
  transcode_options.naive_full_scan = true;
  Stopwatch transcode_watch;
  QueryResult transcoded = CheckOk(
      ExecutePlan(export_plan, storage, transcode_options), "transcoded");
  double transcode_ms = transcode_watch.ElapsedMillis();

  std::printf("\nE8b: transcode elision (full-grid medium export, %d "
              "segments)\n", metadata.segment_count());
  std::printf("  stitched:   %8.2f ms, %d segment merges, 0 transcodes\n",
              stitch_ms, stitched.transcodes_avoided);
  std::printf("  transcoded: %8.2f ms, %d transcodes (%.2fx slower)\n",
              transcode_ms, transcoded.transcodes,
              stitch_ms > 0 ? transcode_ms / stitch_ms : 0.0);

  // E12: materialized-view serving. Materialize the degrade-periphery
  // standing query, then serve a subsuming one-shot query both ways.
  Query view_chain = Query::Scan("venice")
                         .Viewport(kPi / 2, kPi / 2, DegToRad(kFovYawDeg),
                                   DegToRad(kFovPitchDeg))
                         .QualityFloor("high")
                         .Degrade("low");
  ViewMaintainer maintainer(bench.db.get());
  CheckOk(maintainer.CreateView(
              "periph", Slice(view_chain.Encode().Store("periph").ToString())),
          "create view");
  storage->ClearCache();
  Stopwatch maintain_watch;
  CheckOk(maintainer.Maintain("periph"), "maintain view");
  double maintain_ms = maintain_watch.ElapsedMillis();
  std::vector<StandingQueryResult> emissions =
      CheckOk(maintainer.Results("periph"), "view results");
  double maintain_per_segment_ms =
      emissions.empty() ? 0.0 : maintain_ms / emissions.size();

  Query serve_query = view_chain.Encode();
  PhysicalPlan reencode_plan =
      CheckOk(Optimize(serve_query, storage), "optimize re-encode");
  storage->ClearCache();
  Stopwatch reencode_watch;
  QueryResult reencoded =
      CheckOk(ExecutePlan(reencode_plan, storage), "re-encode run");
  double reencode_ms = reencode_watch.ElapsedMillis();

  std::vector<MaterializedViewInfo> views =
      CheckOk(maintainer.catalog()->Candidates(*storage), "view candidates");
  OptimizeOptions view_options;
  view_options.views = &views;
  PhysicalPlan view_plan =
      CheckOk(Optimize(serve_query, storage, view_options), "optimize view");
  if (view_plan.view_served != "periph") {
    std::fprintf(stderr, "bench: optimizer did not serve from the view\n");
    return 1;
  }
  storage->ClearCache();
  Stopwatch view_watch;
  QueryResult served =
      CheckOk(ExecutePlan(view_plan, storage), "view-scan run");
  double view_ms = view_watch.ElapsedMillis();
  bool view_identical =
      served.encoded.Serialize() == reencoded.encoded.Serialize();

  std::printf("\nE12: materialized view serving (degrade periphery, %zu "
              "segments materialized)\n", emissions.size());
  std::printf("  maintain:  %8.2f ms total, %.2f ms/segment\n", maintain_ms,
              maintain_per_segment_ms);
  std::printf("  re-encode: %8.2f ms, %d transcodes\n", reencode_ms,
              reencoded.transcodes);
  std::printf("  view-scan: %8.2f ms, %d transcodes (%.2fx faster), "
              "bytes %s\n", view_ms, served.transcodes,
              view_ms > 0 ? reencode_ms / view_ms : 0.0,
              view_identical ? "identical" : "DIVERGED");
  if (!view_identical) {
    std::fprintf(stderr, "bench: view-served bytes diverged from baseline\n");
    return 1;
  }

  double aggregate_pruned_fraction =
      scanned_naive > 0
          ? 1.0 - static_cast<double>(scanned_pruned) / scanned_naive
          : 0.0;
  std::printf("\naggregate: %lld cells (pruned) vs %lld (naive) — %.1f%% "
              "pruned, outputs %s\n",
              scanned_pruned, scanned_naive,
              100.0 * aggregate_pruned_fraction,
              all_equal ? "byte-identical" : "DIVERGED");

  // These two are the acceptance bar; fail loudly rather than report
  // quietly so the smoke ctest enforces them.
  if (!all_equal) {
    std::fprintf(stderr, "bench: pruned and naive outputs diverged\n");
    return 1;
  }
  if (aggregate_pruned_fraction < 0.5) {
    std::fprintf(stderr, "bench: pruning below 50%% (%.1f%%)\n",
                 100.0 * aggregate_pruned_fraction);
    return 1;
  }

  EmitMetricsSnapshot("E8");
  if (smoke) {
    std::printf("\nsmoke run: BENCH_query.json left untouched\n");
    return 0;
  }

  char tail[512];
  std::snprintf(
      tail, sizeof(tail),
      " \"aggregate\": {\"cells_pruned_run\": %lld, "
      "\"cells_naive_run\": %lld, \"pruned_fraction\": %.4f, "
      "\"identical\": %s},\n"
      " \"transcode_elision\": {\"stitched_ms\": %.3f, "
      "\"transcoded_ms\": %.3f, \"segment_merges\": %d, "
      "\"transcodes\": %d}",
      scanned_pruned, scanned_naive, aggregate_pruned_fraction,
      all_equal ? "true" : "false", stitch_ms, transcode_ms,
      stitched.transcodes_avoided, transcoded.transcodes);

  char e12[384];
  std::snprintf(
      e12, sizeof(e12),
      " \"view_serving\": {\"maintain_ms\": %.3f, "
      "\"maintain_ms_per_segment\": %.3f, \"segments\": %zu, "
      "\"reencode_ms\": %.3f, \"view_scan_ms\": %.3f, "
      "\"speedup\": %.2f, \"identical\": %s}",
      maintain_ms, maintain_per_segment_ms, emissions.size(), reencode_ms,
      view_ms, view_ms > 0 ? reencode_ms / view_ms : 0.0,
      view_identical ? "true" : "false");

  WriteBenchJson("BENCH_query.json",
                 std::string("{\n \"experiment\": \"E8+E12\","
                             "\n \"queries\": [\n") +
                     rows + "\n ],\n" + tail + ",\n" + e12 + "\n}");
  return 0;
}
