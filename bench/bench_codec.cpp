// M1 — codec microbenchmark: rate-distortion table plus encode/decode
// throughput (google-benchmark), including the motion-constrained-tiles
// ablation.
//
// Expected shape: bitrate falls monotonically with QP while PSNR falls;
// high-motion content costs more bits at equal QP; constraining motion to
// tiles costs a few percent of bitrate (the price of independent
// decodability); encode is slower than decode (motion search).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "image/metrics.h"

using namespace vc;
using namespace vc::bench;

namespace {

std::vector<Frame> SceneFrames(const std::string& name, int count) {
  auto scene = CanonicalScene(name);
  return RenderScene(*scene, count);
}

EncoderOptions BaseOptions(int qp) {
  EncoderOptions options;
  options.width = kWidth;
  options.height = kHeight;
  options.gop_length = kSegmentFrames;
  options.fps = kFps;
  options.qp = qp;
  return options;
}

void PrintRdTable() {
  Banner("M1: codec rate-distortion and tiling ablation",
         "expect: bitrate down / PSNR down as QP rises; MCTS costs a few "
         "percent bitrate");
  constexpr int kFrames = 30;

  std::printf("\n%-11s %4s %12s %9s %9s\n", "scene", "qp", "kbit/s",
              "PSNR(dB)", "WS-PSNR");
  for (const std::string& scene_name : StandardSceneNames()) {
    auto frames = SceneFrames(scene_name, kFrames);
    for (int qp : {8, 14, 20, 28, 35, 42, 50}) {
      auto video = CheckOk(EncodeVideo(frames, BaseOptions(qp)), "encode");
      auto decoded = CheckOk(DecodeVideo(video), "decode");
      double psnr = 0, ws = 0;
      for (size_t i = 0; i < frames.size(); ++i) {
        psnr += CheckOk(LumaPsnr(frames[i], decoded[i]), "psnr");
        ws += CheckOk(WsPsnr(frames[i], decoded[i]), "wspsnr");
      }
      double kbps = video.size_bytes() * 8.0 / 1000.0 /
                    (static_cast<double>(kFrames) / kFps);
      std::printf("%-11s %4d %12.1f %9.2f %9.2f\n", scene_name.c_str(), qp,
                  kbps, psnr / kFrames, ws / kFrames);
    }
  }

  std::printf("\nMotion-constrained tile set ablation (venice, qp 28):\n");
  std::printf("%-7s %16s %16s %9s\n", "grid", "bytes (MCTS)",
              "bytes (free mv)", "overhead");
  auto frames = SceneFrames("venice", kFrames);
  for (auto [rows, cols] :
       {std::pair{1, 1}, {2, 2}, {4, 4}, {4, 8}}) {
    EncoderOptions constrained = BaseOptions(28);
    constrained.tile_rows = rows;
    constrained.tile_cols = cols;
    constrained.motion_constrained_tiles = true;
    EncoderOptions free_mv = constrained;
    free_mv.motion_constrained_tiles = false;
    auto video_c = CheckOk(EncodeVideo(frames, constrained), "encode");
    auto video_f = CheckOk(EncodeVideo(frames, free_mv), "encode");
    std::printf("%d x %-3d %16zu %16zu %8.1f%%\n", rows, cols,
                video_c.size_bytes(), video_f.size_bytes(),
                100.0 * (static_cast<double>(video_c.size_bytes()) /
                             video_f.size_bytes() -
                         1.0));
  }
  std::printf("\n");
}

// ------------------------------------------------------- google-benchmark

void BM_EncodeFrame(benchmark::State& state) {
  int qp = static_cast<int>(state.range(0));
  auto frames = SceneFrames("venice", 8);
  auto encoder = CheckOk(Encoder::Create(BaseOptions(qp)), "encoder");
  size_t i = 0;
  for (auto _ : state) {
    auto encoded = encoder->Encode(frames[i++ % frames.size()]);
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EncodeFrame)->Arg(14)->Arg(28)->Arg(42);

void BM_DecodeFrame(benchmark::State& state) {
  int qp = static_cast<int>(state.range(0));
  auto frames = SceneFrames("venice", 8);
  auto video = CheckOk(EncodeVideo(frames, BaseOptions(qp)), "encode");
  auto decoder = CheckOk(Decoder::Create(video.header), "decoder");
  size_t i = 0;
  for (auto _ : state) {
    // Stay within one GOP chain: restart at the keyframe each lap.
    auto decoded = decoder->Decode(Slice(video.frames[i].payload));
    benchmark::DoNotOptimize(decoded);
    i = (i + 1) % video.frames.size();
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeFrame)->Arg(14)->Arg(28)->Arg(42);

void BM_DecodeSingleTile(benchmark::State& state) {
  // Partial decode of 1 tile of a 4x8-tiled stream vs the full frame:
  // the tile-index benefit at decode time.
  auto frames = SceneFrames("venice", 8);
  EncoderOptions options = BaseOptions(28);
  options.tile_rows = 4;
  options.tile_cols = 8;
  auto video = CheckOk(EncodeVideo(frames, options), "encode");
  auto decoder = CheckOk(Decoder::Create(video.header), "decoder");
  std::vector<TileId> one_tile = {TileId{1, 3}};
  size_t i = 0;
  for (auto _ : state) {
    auto decoded =
        decoder->DecodeTiles(Slice(video.frames[i].payload), one_tile);
    benchmark::DoNotOptimize(decoded);
    i = (i + 1) % video.frames.size();
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeSingleTile);

}  // namespace

int main(int argc, char** argv) {
  PrintRdTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
