// M1 — codec microbenchmark: rate-distortion table plus encode/decode
// throughput (google-benchmark), including the motion-constrained-tiles
// ablation.
//
// Expected shape: bitrate falls monotonically with QP while PSNR falls;
// high-motion content costs more bits at equal QP; constraining motion to
// tiles costs a few percent of bitrate (the price of independent
// decodability); encode is slower than decode (motion search).

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/simd.h"
#include "common/stopwatch.h"
#include "image/metrics.h"

using namespace vc;
using namespace vc::bench;

namespace {

std::vector<Frame> SceneFrames(const std::string& name, int count) {
  auto scene = CanonicalScene(name);
  return RenderScene(*scene, count);
}

EncoderOptions BaseOptions(int qp) {
  EncoderOptions options;
  options.width = kWidth;
  options.height = kHeight;
  options.gop_length = kSegmentFrames;
  options.fps = kFps;
  options.qp = qp;
  return options;
}

void PrintRdTable() {
  Banner("M1: codec rate-distortion and tiling ablation",
         "expect: bitrate down / PSNR down as QP rises; MCTS costs a few "
         "percent bitrate");
  constexpr int kFrames = 30;

  std::printf("\n%-11s %4s %12s %9s %9s\n", "scene", "qp", "kbit/s",
              "PSNR(dB)", "WS-PSNR");
  for (const std::string& scene_name : StandardSceneNames()) {
    auto frames = SceneFrames(scene_name, kFrames);
    for (int qp : {8, 14, 20, 28, 35, 42, 50}) {
      auto video = CheckOk(EncodeVideo(frames, BaseOptions(qp)), "encode");
      auto decoded = CheckOk(DecodeVideo(video), "decode");
      double psnr = 0, ws = 0;
      for (size_t i = 0; i < frames.size(); ++i) {
        psnr += CheckOk(LumaPsnr(frames[i], decoded[i]), "psnr");
        ws += CheckOk(WsPsnr(frames[i], decoded[i]), "wspsnr");
      }
      double kbps = video.size_bytes() * 8.0 / 1000.0 /
                    (static_cast<double>(kFrames) / kFps);
      std::printf("%-11s %4d %12.1f %9.2f %9.2f\n", scene_name.c_str(), qp,
                  kbps, psnr / kFrames, ws / kFrames);
    }
  }

  std::printf("\nMotion-constrained tile set ablation (venice, qp 28):\n");
  std::printf("%-7s %16s %16s %9s\n", "grid", "bytes (MCTS)",
              "bytes (free mv)", "overhead");
  auto frames = SceneFrames("venice", kFrames);
  for (auto [rows, cols] :
       {std::pair{1, 1}, {2, 2}, {4, 4}, {4, 8}}) {
    EncoderOptions constrained = BaseOptions(28);
    constrained.tile_rows = rows;
    constrained.tile_cols = cols;
    constrained.motion_constrained_tiles = true;
    EncoderOptions free_mv = constrained;
    free_mv.motion_constrained_tiles = false;
    auto video_c = CheckOk(EncodeVideo(frames, constrained), "encode");
    auto video_f = CheckOk(EncodeVideo(frames, free_mv), "encode");
    std::printf("%d x %-3d %16zu %16zu %8.1f%%\n", rows, cols,
                video_c.size_bytes(), video_f.size_bytes(),
                100.0 * (static_cast<double>(video_c.size_bytes()) /
                             video_f.size_bytes() -
                         1.0));
  }
  std::printf("\n");
}

// ---------------------------------------------- multi-rate analysis reuse

/// One ladder ingest run (all rungs of all tiles of all segments) and the
/// derived quality/analysis figures.
struct IngestRun {
  double seconds = 0.0;
  double encode_seconds = 0.0;  // summed per-cell encode time (all threads)
  double sad_evals_per_search = 0.0;
  double hint_accept_rate = 0.0;
  std::vector<double> psnr_db;  // mean luma PSNR per ladder rung
};

/// Fills the analysis/quality figures of `run` from the metrics of the lap
/// that just finished plus PSNR reads against `bench`'s db.
void CollectIngestStats(BenchDb& bench, const std::vector<Frame>& frames,
                        int rungs, IngestRun* run) {
  MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  auto cell_hist = snapshot.histograms.find("ingest.cell_encode_seconds");
  if (cell_hist != snapshot.histograms.end()) {
    run->encode_seconds = cell_hist->second.sum;
  }
  double searches = SnapshotCounter(snapshot, "codec.search_full") +
                    SnapshotCounter(snapshot, "codec.search_hinted");
  if (searches > 0) {
    run->sad_evals_per_search =
        SnapshotCounter(snapshot, "codec.sad_evals") / searches;
  }
  double hinted = SnapshotCounter(snapshot, "codec.search_hinted");
  if (hinted > 0) {
    run->hint_accept_rate =
        SnapshotCounter(snapshot, "codec.hints_accepted") / hinted;
  }

  for (int quality = 0; quality < rungs; ++quality) {
    auto decoded = CheckOk(
        bench.db->ReadFrames("clip", 0, static_cast<int>(frames.size()) - 1,
                             quality),
        "read");
    double total = 0.0;
    for (size_t i = 0; i < frames.size(); ++i) {
      total += CheckOk(LumaPsnr(frames[i], decoded[i]), "psnr");
    }
    run->psnr_db.push_back(total / frames.size());
  }
}

/// Runs the unhinted and hinted ladder ingests back to back. Encoding is
/// deterministic, so repeats only differ by scheduling noise: laps of the
/// two modes are interleaved (so slow machine-load drift hits both equally
/// instead of biasing the ratio) and each mode keeps its fastest lap.
std::pair<IngestRun, IngestRun> RunLadderIngestPair(
    const std::vector<Frame>& frames, int tile_rows, int tile_cols) {
  IngestOptions modes[2];
  for (int m = 0; m < 2; ++m) {
    modes[m] = CanonicalIngest();
    modes[m].tile_rows = tile_rows;
    modes[m].tile_cols = tile_cols;
    modes[m].reuse_motion_analysis = m == 1;
  }

  constexpr int kReps = 5;
  IngestRun runs[2];
  for (int rep = 0; rep < kReps; ++rep) {
    for (int m = 0; m < 2; ++m) {
      BenchDb bench = OpenBenchDb();
      MetricRegistry::Global().Reset();
      Stopwatch watch;
      CheckOk(bench.db->Ingest("clip", frames, modes[m]).status(), "ingest");
      double seconds = watch.ElapsedSeconds();
      if (rep == 0 || seconds < runs[m].seconds) runs[m].seconds = seconds;
      if (rep == kReps - 1) {
        // Metrics and decoded output are identical across laps; read them
        // off the final one.
        CollectIngestStats(bench, frames,
                           static_cast<int>(modes[m].ladder.size()),
                           &runs[m]);
      }
    }
  }
  return {runs[0], runs[1]};
}

std::string PsnrJsonArray(const std::vector<double>& psnr) {
  std::string out = "[";
  for (size_t i = 0; i < psnr.size(); ++i) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%s%.3f", i == 0 ? "" : ", ",
                  psnr[i]);
    out += buffer;
  }
  return out + "]";
}

void PrintIngestReuseTable() {
  Banner("M1b: multi-rate analysis reuse on the ingest encode path",
         "expect: >=1.5x ladder ingest throughput with hints, PSNR within "
         "0.1 dB per rung");
  constexpr int kSeconds = 4;

  // Sweep scenes × tile grids: reuse pays in proportion to how much work
  // the per-rung analysis repeats. Motion-heavy content (coaster) runs long
  // diamond walks; at the canonical 6x8 grid the 32x21 tiles hold ~4
  // macroblocks and motion-constrained bounds clip most of the search, while
  // coarse grids have full-sized neighborhoods (the paper's 4x4 grid on 4K
  // video leaves 960x540 tiles — the coarse rows are the faithful scale
  // analogue at bench resolution).
  std::printf("\n%-9s %-7s %-10s %9s %11s %13s %8s %8s %8s\n", "scene",
              "grid", "mode", "sec", "seg/s", "SAD/search", "hi dB", "med dB",
              "lo dB");
  std::string rows_json;
  for (const char* scene : {"venice", "coaster"}) {
    auto frames = SceneFrames(scene, kSeconds * kFps);
    for (auto [rows, cols] : {std::pair{6, 8}, {2, 2}, {1, 1}}) {
      auto [unhinted, hinted] = RunLadderIngestPair(frames, rows, cols);

      double speedup = unhinted.seconds / hinted.seconds;
      double max_delta = 0.0;
      for (size_t q = 0; q < unhinted.psnr_db.size(); ++q) {
        max_delta = std::max(
            max_delta, std::abs(unhinted.psnr_db[q] - hinted.psnr_db[q]));
      }

      auto row = [&](const char* mode, const IngestRun& run) {
        std::printf("%-9s %dx%-5d %-10s %9.3f %11.2f %13.1f %8.2f %8.2f "
                    "%8.2f\n",
                    scene, rows, cols, mode, run.seconds,
                    kSeconds / run.seconds, run.sad_evals_per_search,
                    run.psnr_db[0], run.psnr_db[1], run.psnr_db[2]);
      };
      row("unhinted", unhinted);
      row("hinted", hinted);
      std::printf("          speedup %.2fx, max PSNR delta %.4f dB, hint "
                  "accept rate %.1f%%\n",
                  speedup, max_delta, 100.0 * hinted.hint_accept_rate);

      char row_json[1024];
      std::snprintf(
          row_json, sizeof(row_json),
          "%s  {\"scene\": \"%s\", \"grid\": \"%dx%d\",\n"
          "   \"unhinted\": {\"seconds\": %.4f, \"sad_evals_per_search\": "
          "%.2f, \"psnr_db\": %s},\n"
          "   \"hinted\": {\"seconds\": %.4f, \"sad_evals_per_search\": "
          "%.2f, \"hint_accept_rate\": %.4f, \"psnr_db\": %s},\n"
          "   \"speedup\": %.3f, \"max_psnr_delta_db\": %.4f}",
          rows_json.empty() ? "" : ",\n", scene, rows, cols,
          unhinted.seconds, unhinted.sad_evals_per_search,
          PsnrJsonArray(unhinted.psnr_db).c_str(), hinted.seconds,
          hinted.sad_evals_per_search, hinted.hint_accept_rate,
          PsnrJsonArray(hinted.psnr_db).c_str(), speedup, max_delta);
      rows_json += row_json;
    }
  }
  std::printf("\n");

  std::string json = "{\n  \"frames\": " + std::to_string(kSeconds * kFps) +
                     ", \"ladder_rungs\": 3,\n  \"runs\": [\n" + rows_json +
                     "\n ]}";
  // Merged key-by-key so bench_kernels' sections in the same snapshot file
  // survive a bench_codec rerun (and vice versa).
  WriteBenchJsonKey("BENCH_codec.json", "experiment", "\"M1-codec\"");
  WriteBenchJsonKey("BENCH_codec.json", "ingest_reuse", json);
}

// --------------------------------------- SIMD + entropy profile end-to-end

/// One segment-encode configuration: kernels tier x entropy profile.
struct CodecMode {
  const char* name;
  bool simd;
  EntropyProfile profile;
};

struct CodecModeResult {
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  size_t bytes = 0;
  double psnr_db = 0.0;
};

double MeanLumaPsnr(const std::vector<Frame>& reference,
                    const std::vector<Frame>& decoded) {
  double total = 0.0;
  for (size_t i = 0; i < reference.size(); ++i) {
    total += CheckOk(LumaPsnr(reference[i], decoded[i]), "psnr");
  }
  return total / static_cast<double>(reference.size());
}

void PrintSimdHuffmanTable() {
  Banner("M1c: SIMD kernels + entropy profile on the segment codec path",
         "expect: SIMD speeds encode/decode at a byte-identical stream; "
         "Huffman cuts bits at an identical reconstruction");
  constexpr int kReps = 5;
  auto frames = SceneFrames("venice", kSegmentFrames);  // one 1-s segment

  const CodecMode modes[] = {
      {"scalar+eg", false, EntropyProfile::kExpGolomb},
      {"simd+eg", true, EntropyProfile::kExpGolomb},
      {"simd+huffman", true, EntropyProfile::kHuffman},
  };
  constexpr int kModes = 3;

  EncoderOptions base = BaseOptions(28);
  base.tile_rows = kTileRows;
  base.tile_cols = kTileCols;

  const bool simd_prior = simd::Enabled();
  CodecModeResult results[kModes];
  std::vector<uint8_t> streams[kModes];
  // Interleave laps so machine-load drift hits every mode equally; encoding
  // is deterministic, so repeats differ only by scheduling noise and each
  // mode keeps its fastest lap.
  for (int rep = 0; rep < kReps; ++rep) {
    for (int m = 0; m < kModes; ++m) {
      simd::SetEnabled(modes[m].simd);
      EncoderOptions options = base;
      options.entropy_profile = modes[m].profile;
      Stopwatch encode_watch;
      auto video = CheckOk(EncodeVideo(frames, options), "encode");
      double encode_seconds = encode_watch.ElapsedSeconds();
      Stopwatch decode_watch;
      auto decoded = CheckOk(DecodeVideo(video), "decode");
      double decode_seconds = decode_watch.ElapsedSeconds();
      CodecModeResult& result = results[m];
      if (rep == 0 || encode_seconds < result.encode_seconds) {
        result.encode_seconds = encode_seconds;
      }
      if (rep == 0 || decode_seconds < result.decode_seconds) {
        result.decode_seconds = decode_seconds;
      }
      if (rep == 0) {
        result.bytes = video.size_bytes();
        result.psnr_db = MeanLumaPsnr(frames, decoded);
        streams[m] = video.Serialize();
      }
    }
  }
  simd::SetEnabled(simd_prior);

  // The central claims, checked rather than eyeballed: SIMD changes the
  // stream by not one byte, and the entropy profile changes the
  // reconstruction by not one pixel (so its PSNR delta is exactly 0).
  CheckOk(streams[0] == streams[1]
              ? Status::OK()
              : Status::Internal("scalar and SIMD streams differ"),
          "simd bit-exactness");
  CheckOk(results[1].psnr_db == results[2].psnr_db
              ? Status::OK()
              : Status::Internal("entropy profile changed reconstruction"),
          "huffman psnr");

  std::printf("\n%-13s %9s %8s %9s %9s %9s %9s\n", "mode", "enc s", "seg/s",
              "dec s", "bytes", "PSNR dB", "speedup");
  for (int m = 0; m < kModes; ++m) {
    std::printf("%-13s %9.3f %8.2f %9.3f %9zu %9.2f %8.2fx\n", modes[m].name,
                results[m].encode_seconds, 1.0 / results[m].encode_seconds,
                results[m].decode_seconds, results[m].bytes,
                results[m].psnr_db,
                results[0].encode_seconds / results[m].encode_seconds);
  }
  std::printf("decode speedup: simd+eg %.2fx, simd+huffman %.2fx; "
              "huffman bytes: %.1f%% of eg\n",
              results[0].decode_seconds / results[1].decode_seconds,
              results[0].decode_seconds / results[2].decode_seconds,
              100.0 * static_cast<double>(results[2].bytes) /
                  static_cast<double>(results[0].bytes));

  // Bitrate at equal PSNR across the QP range: the entropy profile is
  // lossless relative to Exp-Golomb, so "equal PSNR" is exact, not a tuned
  // operating point. Swept across tile grids because the per-payload
  // code-length table amortizes over payload size: coarse grids (one table
  // per big payload) show the real coding gain, while the canonical 6x8
  // grid's ~30-byte tile payloads often stay on the Exp-Golomb fallback —
  // whose 1-bit-per-payload cost is the worst case by construction.
  std::printf("\nEntropy profile bitrate sweep (venice, %d frames):\n",
              kSegmentFrames);
  std::printf("%-7s %-5s %12s %14s %10s %12s\n", "grid", "qp", "eg bytes",
              "huffman bytes", "saved", "PSNR delta");
  std::string sweep_json;
  for (auto [grid_rows, grid_cols] : {std::pair{1, 1}, {kTileRows,
                                                        kTileCols}}) {
    for (int qp : {14, 28, 42}) {
      EncoderOptions eg_options = BaseOptions(qp);
      eg_options.tile_rows = grid_rows;
      eg_options.tile_cols = grid_cols;
      EncoderOptions hf_options = eg_options;
      hf_options.entropy_profile = EntropyProfile::kHuffman;
      auto eg_video = CheckOk(EncodeVideo(frames, eg_options), "encode");
      auto hf_video = CheckOk(EncodeVideo(frames, hf_options), "encode");
      double eg_psnr =
          MeanLumaPsnr(frames, CheckOk(DecodeVideo(eg_video), "decode"));
      double hf_psnr =
          MeanLumaPsnr(frames, CheckOk(DecodeVideo(hf_video), "decode"));
      double saved = 1.0 - static_cast<double>(hf_video.size_bytes()) /
                               static_cast<double>(eg_video.size_bytes());
      std::printf("%dx%-5d %-5d %12zu %14zu %9.1f%% %12.4f\n", grid_rows,
                  grid_cols, qp, eg_video.size_bytes(), hf_video.size_bytes(),
                  100.0 * saved, hf_psnr - eg_psnr);
      char row[256];
      std::snprintf(
          row, sizeof(row),
          "%s\n   {\"grid\": \"%dx%d\", \"qp\": %d, \"eg_bytes\": %zu, "
          "\"huffman_bytes\": %zu, \"saved\": %.4f, \"psnr_delta_db\": %.6f}",
          sweep_json.empty() ? "" : ",", grid_rows, grid_cols, qp,
          eg_video.size_bytes(), hf_video.size_bytes(), saved,
          hf_psnr - eg_psnr);
      sweep_json += row;
    }
  }
  std::printf("\n");

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n  \"best_tier\": \"%s\",\n  \"segment\": {\n"
      "   \"scalar_eg\": {\"encode_seconds\": %.4f, \"decode_seconds\": "
      "%.4f, \"bytes\": %zu, \"psnr_db\": %.3f},\n"
      "   \"simd_eg\": {\"encode_seconds\": %.4f, \"decode_seconds\": %.4f, "
      "\"bytes\": %zu, \"psnr_db\": %.3f},\n"
      "   \"simd_huffman\": {\"encode_seconds\": %.4f, \"decode_seconds\": "
      "%.4f, \"bytes\": %zu, \"psnr_db\": %.3f},\n"
      "   \"simd_encode_speedup\": %.3f, \"simd_decode_speedup\": %.3f,\n"
      "   \"huffman_encode_speedup\": %.3f, \"huffman_decode_speedup\": "
      "%.3f,\n"
      "   \"psnr_delta_db\": 0.0, \"stream_bit_identical\": true},\n"
      "  \"bitrate_sweep\": [%s]\n }",
      simd::LevelName(simd::ActiveLevel()), results[0].encode_seconds,
      results[0].decode_seconds, results[0].bytes, results[0].psnr_db,
      results[1].encode_seconds, results[1].decode_seconds, results[1].bytes,
      results[1].psnr_db, results[2].encode_seconds,
      results[2].decode_seconds, results[2].bytes, results[2].psnr_db,
      results[0].encode_seconds / results[1].encode_seconds,
      results[0].decode_seconds / results[1].decode_seconds,
      results[0].encode_seconds / results[2].encode_seconds,
      results[0].decode_seconds / results[2].decode_seconds, sweep_json.c_str());
  WriteBenchJsonKey("BENCH_codec.json", "simd_huffman", json);
}

// ------------------------------------------------------- google-benchmark

void BM_EncodeFrame(benchmark::State& state) {
  int qp = static_cast<int>(state.range(0));
  auto frames = SceneFrames("venice", 8);
  auto encoder = CheckOk(Encoder::Create(BaseOptions(qp)), "encoder");
  size_t i = 0;
  for (auto _ : state) {
    auto encoded = encoder->Encode(frames[i++ % frames.size()]);
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EncodeFrame)->Arg(14)->Arg(28)->Arg(42);

void BM_DecodeFrame(benchmark::State& state) {
  int qp = static_cast<int>(state.range(0));
  auto frames = SceneFrames("venice", 8);
  auto video = CheckOk(EncodeVideo(frames, BaseOptions(qp)), "encode");
  auto decoder = CheckOk(Decoder::Create(video.header), "decoder");
  size_t i = 0;
  for (auto _ : state) {
    // Stay within one GOP chain: restart at the keyframe each lap.
    auto decoded = decoder->Decode(Slice(video.frames[i].payload));
    benchmark::DoNotOptimize(decoded);
    i = (i + 1) % video.frames.size();
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeFrame)->Arg(14)->Arg(28)->Arg(42);

void BM_DecodeSingleTile(benchmark::State& state) {
  // Partial decode of 1 tile of a 4x8-tiled stream vs the full frame:
  // the tile-index benefit at decode time.
  auto frames = SceneFrames("venice", 8);
  EncoderOptions options = BaseOptions(28);
  options.tile_rows = 4;
  options.tile_cols = 8;
  auto video = CheckOk(EncodeVideo(frames, options), "encode");
  auto decoder = CheckOk(Decoder::Create(video.header), "decoder");
  std::vector<TileId> one_tile = {TileId{1, 3}};
  size_t i = 0;
  for (auto _ : state) {
    auto decoded =
        decoder->DecodeTiles(Slice(video.frames[i].payload), one_tile);
    benchmark::DoNotOptimize(decoded);
    i = (i + 1) % video.frames.size();
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeSingleTile);

}  // namespace

int main(int argc, char** argv) {
  PrintRdTable();
  PrintIngestReuseTable();
  PrintSimdHuffmanTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  EmitMetricsSnapshot("M1");
  return 0;
}
