#ifndef VC_BENCH_BENCH_UTIL_H_
#define VC_BENCH_BENCH_UTIL_H_

// Shared configuration for the experiment harness. Every bench binary
// regenerates one table/figure of EXPERIMENTS.md; they share this canonical
// workload so numbers are comparable across experiments.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/session.h"
#include "core/visualcloud.h"
#include "image/scene.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "predict/trace_synthesizer.h"

namespace vc {
namespace bench {

/// Canonical workload parameters (kept small enough that the whole harness
/// reruns in minutes on a laptop; shapes, not absolute numbers, are the
/// reproduction target).
inline constexpr int kWidth = 256;
inline constexpr int kHeight = 128;
inline constexpr int kFps = 15;
inline constexpr int kSegmentFrames = 15;  // 1-second segments
inline constexpr int kVideoSeconds = 20;
inline constexpr int kTileRows = 6;
inline constexpr int kTileCols = 8;
inline constexpr double kFovYawDeg = 90.0;
inline constexpr double kFovPitchDeg = 75.0;

/// Canonical ingest options (callers may override fields).
inline IngestOptions CanonicalIngest() {
  IngestOptions options;
  options.tile_rows = kTileRows;
  options.tile_cols = kTileCols;
  options.frames_per_segment = kSegmentFrames;
  options.fps = kFps;
  options.ladder = DefaultQualityLadder();
  return options;
}

/// Canonical session options for an `approach`.
inline SessionOptions CanonicalSession(StreamingApproach approach) {
  SessionOptions options;
  options.approach = approach;
  options.network.bandwidth_bps = 50e6;  // unconstrained unless a bench sweeps
  options.network.latency_seconds = 0.02;
  options.viewport.fov_yaw = DegToRad(kFovYawDeg);
  options.viewport.fov_pitch = DegToRad(kFovPitchDeg);
  options.viewport.width = 64;
  options.viewport.height = 48;
  return options;
}

/// An opened in-memory VisualCloud plus the env keeping it alive.
struct BenchDb {
  std::unique_ptr<Env> env;
  std::unique_ptr<VisualCloud> db;
};

inline BenchDb OpenBenchDb() {
  BenchDb bench;
  bench.env = NewMemEnv();
  VisualCloudOptions options;
  options.storage.env = bench.env.get();
  options.storage.root = "/bench";
  if (const char* threads = std::getenv("VC_BENCH_THREADS")) {
    options.encode_threads = std::atoi(threads);
  }
  auto db = VisualCloud::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "bench: open failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  bench.db = std::move(*db);
  return bench;
}

/// Aborts the bench with a message when `status` is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench: %s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
inline T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Builds the canonical scene by name.
inline std::unique_ptr<SceneGenerator> CanonicalScene(const std::string& name,
                                                      int width = kWidth,
                                                      int height = kHeight) {
  SceneOptions options;
  options.width = width;
  options.height = height;
  options.fps = kFps;
  auto scene = MakeScene(name, options);
  CheckOk(scene.status(), "scene");
  return std::move(*scene);
}

/// The canonical viewer population: every archetype × `seeds_per` seeds,
/// each `seconds` long.
inline std::vector<HeadTrace> ViewerPopulation(int seeds_per, double seconds) {
  std::vector<HeadTrace> traces;
  for (const std::string& archetype : ViewerArchetypes()) {
    for (int seed = 1; seed <= seeds_per; ++seed) {
      auto options = ArchetypeOptions(archetype, seed);
      options->duration_seconds = seconds;
      auto trace = SynthesizeTrace(*options);
      CheckOk(trace.status(), "trace synthesis");
      traces.push_back(std::move(*trace));
    }
  }
  return traces;
}

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("=======================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  %s\n", claim);
  std::printf("=======================================================\n");
}

/// Prints the process-wide metrics snapshot as a single machine-parseable
/// line (`METRICS <experiment> <json>`), so BENCH_*.json harvests subsystem
/// counters — cache hits, stalls, downgrades, predictor misses — alongside
/// the timing tables. Call at the end of a bench's main().
inline void EmitMetricsSnapshot(const char* experiment) {
  std::printf("METRICS %s %s\n", experiment,
              MetricsToJson(MetricRegistry::Global().Snapshot()).c_str());
}

/// Writes a bench's machine-readable result snapshot (`BENCH_<name>.json`)
/// into `$VC_BENCH_JSON_DIR` (default: the working directory), so the perf
/// trajectory of successive runs can be diffed. Prints the path written.
inline void WriteBenchJson(const std::string& filename,
                           const std::string& json) {
  std::string path = filename;
  if (const char* dir = std::getenv("VC_BENCH_JSON_DIR")) {
    path = std::string(dir) + "/" + filename;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(json.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
}

/// Merges `"key": value` into the top level of the JSON document `doc`
/// (replacing the key's old value, or appending the key). A structural scan,
/// not a full parser — sufficient for the documents the bench harness itself
/// writes.
inline std::string MergeJsonKey(const std::string& doc, const std::string& key,
                                const std::string& value) {
  size_t open = doc.find('{');
  size_t close = doc.rfind('}');
  if (open == std::string::npos || close == std::string::npos ||
      close <= open) {
    return "{\"" + key + "\": " + value + "}";
  }
  size_t i = open + 1;
  while (i < close) {
    while (i < close &&
           (std::isspace(static_cast<unsigned char>(doc[i])) ||
            doc[i] == ',')) {
      ++i;
    }
    if (i >= close || doc[i] != '"') break;
    size_t key_start = ++i;
    while (i < close && doc[i] != '"') i += doc[i] == '\\' ? 2 : 1;
    std::string this_key = doc.substr(key_start, i - key_start);
    while (i < close && doc[i] != ':') ++i;
    ++i;
    while (i < close && std::isspace(static_cast<unsigned char>(doc[i]))) ++i;
    size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    while (i < close) {
      char c = doc[i];
      if (in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
      ++i;
    }
    if (this_key == key) {
      return doc.substr(0, value_start) + value + doc.substr(i);
    }
  }
  // Key absent: append before the closing brace (with a separating comma
  // unless the object is empty).
  bool empty = true;
  for (size_t j = open + 1; j < close; ++j) {
    if (!std::isspace(static_cast<unsigned char>(doc[j]))) {
      empty = false;
      break;
    }
  }
  return doc.substr(0, close) + (empty ? "" : ",\n ") + "\"" + key +
         "\": " + value + doc.substr(close);
}

/// Read-modify-writes one top-level key of `BENCH_<name>.json`, so several
/// bench binaries (e.g. bench_codec and bench_kernels) can share one
/// snapshot file without clobbering each other's sections.
inline void WriteBenchJsonKey(const std::string& filename,
                              const std::string& key,
                              const std::string& value) {
  std::string path = filename;
  if (const char* dir = std::getenv("VC_BENCH_JSON_DIR")) {
    path = std::string(dir) + "/" + filename;
  }
  std::string existing;
  if (std::FILE* file = std::fopen(path.c_str(), "r")) {
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      existing.append(buffer, n);
    }
    std::fclose(file);
  }
  std::string merged = MergeJsonKey(existing, key, value);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(merged.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("updated %s (key \"%s\")\n", path.c_str(), key.c_str());
}

/// Reads a counter out of a snapshot (0 when absent).
inline double SnapshotCounter(const MetricsSnapshot& snapshot,
                              const std::string& name) {
  auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0.0
                                       : static_cast<double>(it->second);
}

}  // namespace bench
}  // namespace vc

#endif  // VC_BENCH_BENCH_UTIL_H_
