// E7 — multi-viewer server scaling.
//
// Paper claim (VisualCloud, SIGMOD'17 demo): a VR DBMS serves many
// concurrent viewers from one store; caching and cross-user sharing keep
// per-viewer cost sublinear. This bench scales a simulated StreamingServer
// from 1 to 64 viewers over one video and reports aggregate served rate,
// shared-cache hit rate, and rebuffer ratio per viewer count, plus a
// fault-injection run (network drops/stalls/collapses answered by
// retry-at-lower-rung) and an admission-control run (bounded concurrency
// and byte-rate budget).
//
// E7b — async storage pipeline. The same 64-viewer run against a store
// whose cold reads carry simulated backing-store latency, measured in HOST
// wall time: synchronous loads vs an I/O worker pool with prediction-driven
// prefetch. The simulated outcome (served bytes, QoE, faults) must be
// byte-identical across configurations — only host time and cache traffic
// may move.
//
// E9 — sharded cluster scale-out. The same store served by an N-node
// cluster: cells consistent-hashed across N backends, every node reading
// through a private L1 over a cluster-shared L2, sessions placed by
// popularity locality. Scales to 1024 viewers on 16 nodes and reports the
// L1/L2 hit-rate breakdown and per-node host time (the scale-out claim:
// roughly flat as nodes and viewers grow together). A fixed 256-viewer
// cohort is re-run at {1, 4, 16} nodes and must reproduce byte-identical
// simulated outcomes — placement and tiering never change what is served.
//
// E10 — live ingest → serve. A LiveFeed publishes the canonical scene
// segment-by-segment while viewers join mid-stream at the live edge:
// healthy, faulted (one slow encode, unbounded), and degrading (same fault
// under a glass-to-glass budget) schedules. Reports the ingest-side edge
// lag (the ingest.live_edge_lag_seconds gauge) and live-join QoE. The
// caught-up live catalog must hold byte-identical cells to an offline
// ingest of the same content, and the healthy cohort re-run on a cluster
// must reproduce the single-node outcome exactly.
//
// E11 — 10k-viewer serving fast path. The regime the packed 64-bit cell
// keys, the shared per-video plan cache, and the prefetch churn control
// exist for: cohorts of 1k/4k/10k viewers built from a cycled pool of
// (trace seed, network seed) pairs, served single-node and by a 16-node
// cluster, reported as host seconds per viewer. The hard check is
// sublinearity headroom — at 10k viewers the single-node host cost per
// viewer must stay within 1.5x of the 1k value. A fixed smaller cohort is
// then re-served across {plan cache on/off} x {rerun} x {node count} x
// {prefetch mode} and every variant must reproduce the baseline's
// simulated outcome byte-for-byte.
//
// `--smoke` shrinks every population so the whole binary finishes in
// seconds (registered as a ctest); `--nodes N` sizes the smoke cluster
// (default 2). `--viewers N` runs ONLY the E11 fast-path experiment with
// an N-viewer cohort (the perf-smoke ctest legs use `--smoke --viewers
// 1000`). Smoke runs skip BENCH_server.json.

#include <algorithm>
#include <cstring>

#include "bench_util.h"
#include "server/cluster_server.h"
#include "server/live_feed.h"
#include "server/streaming_server.h"
#include "storage/sharded_store.h"

using namespace vc;
using namespace vc::bench;

namespace {

// `count` viewers cycling the archetype population with distinct trace and
// network seeds, arrivals staggered 250 ms apart.
std::vector<ViewerRequest> MakeViewers(int count) {
  const std::vector<std::string>& archetypes = ViewerArchetypes();
  std::vector<ViewerRequest> viewers;
  for (int i = 0; i < count; ++i) {
    auto trace_options =
        ArchetypeOptions(archetypes[i % archetypes.size()], 1 + i);
    trace_options->duration_seconds = kVideoSeconds;
    ViewerRequest viewer;
    viewer.trace = CheckOk(SynthesizeTrace(*trace_options), "trace");
    viewer.session = CanonicalSession(StreamingApproach::kVisualCloud);
    viewer.session.network.seed = 1000 + i;
    viewer.arrival_seconds = 0.25 * i;
    viewers.push_back(std::move(viewer));
  }
  return viewers;
}

// Asserts that two runs of the same viewer population produced the same
// simulated outcome — the determinism contract of the async pipeline.
void CheckSameSimulation(const ServerStats& a, const ServerStats& b,
                         const char* what) {
  if (a.bytes_sent != b.bytes_sent || a.wall_seconds != b.wall_seconds ||
      a.stall_seconds != b.stall_seconds ||
      a.stall_events != b.stall_events ||
      a.transfer_faults != b.transfer_faults ||
      a.transfer_retries != b.transfer_retries ||
      a.segments_skipped != b.segments_skipped ||
      a.sessions_completed != b.sessions_completed) {
    std::fprintf(stderr,
                 "bench: %s changed the simulated outcome "
                 "(bytes %llu vs %llu, wall %.6f vs %.6f)\n",
                 what, static_cast<unsigned long long>(a.bytes_sent),
                 static_cast<unsigned long long>(b.bytes_sent),
                 a.wall_seconds, b.wall_seconds);
    std::exit(1);
  }
}

// E11 cohort: `count` viewers cycled from a pool of 48 distinct
// (trace seed, network seed) pairs — a real fleet replays a bounded set of
// conditions, and the cycling is what lets the shared plan cache flyweight
// identical planning inputs across replicas. Arrivals wrap a 100-slot,
// 25 ms comb so admission pressure is flat at any cohort size. Traces are
// synthesized once per pool slot, not per viewer, so building a 10k-viewer
// cohort costs 48 syntheses plus copies.
std::vector<ViewerRequest> MakeFastPathViewers(int count) {
  const std::vector<std::string>& archetypes = ViewerArchetypes();
  constexpr int kPool = 48;
  std::vector<HeadTrace> traces;
  traces.reserve(kPool);
  for (int p = 0; p < kPool; ++p) {
    auto options = ArchetypeOptions(archetypes[p % archetypes.size()], 1 + p);
    options->duration_seconds = kVideoSeconds;
    traces.push_back(CheckOk(SynthesizeTrace(*options), "trace"));
  }
  std::vector<ViewerRequest> viewers;
  viewers.reserve(count);
  for (int i = 0; i < count; ++i) {
    ViewerRequest viewer;
    viewer.trace = traces[i % kPool];
    viewer.session = CanonicalSession(StreamingApproach::kVisualCloud);
    viewer.session.network.seed = 1000 + i % kPool;
    viewer.arrival_seconds = 0.025 * (i % 100);
    viewers.push_back(std::move(viewer));
  }
  return viewers;
}

// E11 — the 10k-viewer serving fast path (see the file header). Returns
// the experiment's JSON object, or "" for smoke runs.
std::string RunFastPathExperiment(BenchDb& bench,
                                  const VideoMetadata& metadata, bool smoke,
                                  int viewers_override, int smoke_nodes) {
  std::printf("\nE11: serving fast path (packed cell keys + shared plan "
              "cache + prefetch churn control)\n");

  const std::vector<int> cohorts =
      viewers_override > 0 ? std::vector<int>{viewers_override}
      : smoke              ? std::vector<int>{16, 64}
                           : std::vector<int>{1000, 4000, 10000};
  const int cluster_nodes = smoke ? smoke_nodes : 16;

  auto run_single = [&](const std::vector<ViewerRequest>& viewers,
                        bool share_plans) {
    bench.db->storage()->ClearCache();
    ServerOptions options;
    options.max_concurrent_sessions = static_cast<int>(viewers.size());
    options.share_plans = share_plans;
    StreamingServer server(bench.db->storage(), options);
    return CheckOk(server.Run(metadata, viewers), "E11 single-node run");
  };
  auto run_cluster = [&](const std::vector<ViewerRequest>& viewers, int nodes,
                         bool share_plans, PrefetchMode prefetch) {
    ShardedStoreOptions store_options;
    store_options.backend.env = bench.env.get();
    store_options.backend.root = "/bench";
    store_options.shards = nodes;
    if (prefetch != PrefetchMode::kOff) {
      store_options.backend.io_threads = 2;
      store_options.backend.read_latency_seconds = 0.0005;
    }
    auto store = CheckOk(ShardedStore::Open(store_options), "E11 store");
    ClusterOptions cluster_options;
    cluster_options.nodes = nodes;
    cluster_options.node.max_concurrent_sessions =
        static_cast<int>(viewers.size());
    cluster_options.node.share_plans = share_plans;
    cluster_options.node.prefetch = prefetch;
    ClusterServer cluster(store.get(), cluster_options);
    std::vector<VideoMetadata> videos = {metadata};
    return CheckOk(cluster.Run(videos, viewers), "E11 cluster run");
  };

  std::printf("%8s %10s %12s %10s %10s | %8s %12s %12s %8s %8s\n", "viewers",
              "host s", "host s/view", "plan hit", "cache hit", "nodes",
              "host s/view", "node host s", "plan hit", "L2 hit");

  std::string cohort_json;
  double first_hsv = 0.0, last_hsv = 0.0;
  for (int count : cohorts) {
    std::vector<ViewerRequest> viewers = MakeFastPathViewers(count);

    ServerStats single = run_single(viewers, /*share_plans=*/true);
    double hsv = single.host_seconds / count;
    if (first_hsv == 0.0) first_hsv = hsv;
    last_hsv = hsv;

    ClusterStats cluster =
        run_cluster(viewers, cluster_nodes, /*share_plans=*/true,
                    PrefetchMode::kOff);
    CheckSameSimulation(single, cluster.totals, "E11 single vs cluster");
    double node_host = 0.0;
    for (const ClusterNodeStats& node : cluster.nodes) {
      node_host = std::max(node_host, node.host_seconds);
    }

    std::printf(
        "%8d %10.3f %12.6f %9.1f%% %9.1f%% | %8d %12.6f %12.3f "
        "%7.1f%% %7.1f%%\n",
        count, single.host_seconds, hsv, 100.0 * single.plan.HitRate(),
        100.0 * single.cache.HitRate(), cluster_nodes,
        cluster.totals.host_seconds / count, node_host,
        100.0 * cluster.totals.plan.HitRate(), 100.0 * cluster.l2.HitRate());

    char row[640];
    std::snprintf(
        row, sizeof(row),
        "%s  {\"viewers\": %d,\n"
        "   \"single\": {\"host_seconds\": %.4f, "
        "\"host_seconds_per_viewer\": %.6f, \"plan_hit_rate\": %.4f, "
        "\"cache_hit_rate\": %.4f, \"bytes_sent\": %llu, "
        "\"completed\": %d},\n"
        "   \"cluster\": {\"nodes\": %d, \"host_seconds_per_viewer\": %.6f, "
        "\"max_node_host_seconds\": %.4f, \"plan_hit_rate\": %.4f, "
        "\"l1_hit_rate\": %.4f, \"l2_hit_rate\": %.4f}}",
        cohort_json.empty() ? "" : ",\n", count, single.host_seconds, hsv,
        single.plan.HitRate(), single.cache.HitRate(),
        static_cast<unsigned long long>(single.bytes_sent),
        single.sessions_completed, cluster_nodes,
        cluster.totals.host_seconds / count, node_host,
        cluster.totals.plan.HitRate(), cluster.totals.cache.HitRate(),
        cluster.l2.HitRate());
    cohort_json += row;
  }

  // The sublinearity hard check: per-viewer host cost at the largest
  // cohort within 1.5x of the smallest. Plan sharing and the packed-key
  // cache path are what hold this flat as replicas pile up.
  double hsv_ratio = first_hsv > 0 ? last_hsv / first_hsv : 0.0;
  if (cohorts.size() > 1) {
    std::printf("host s/viewer at %d viewers = %.3fx the %d-viewer value\n",
                cohorts.back(), hsv_ratio, cohorts.front());
    if (hsv_ratio > 1.5) {
      std::fprintf(stderr,
                   "bench: E11 per-viewer host cost grew %.3fx from %d to %d "
                   "viewers (limit 1.5x)\n",
                   hsv_ratio, cohorts.front(), cohorts.back());
      std::exit(1);
    }
  }

  // Determinism matrix: one fixed cohort re-served across every fast-path
  // toggle — plan cache on/off, an exact rerun, prefetch on/off (with cold-
  // read latency so the async path really runs), and growing node counts.
  // The simulated outcome must not move by a byte in any cell; only host
  // time and cache/plan/prefetch statistics may.
  const int matrix_viewers =
      viewers_override > 0 ? std::min(viewers_override, 256)
      : smoke              ? 12
                           : 256;
  std::vector<ViewerRequest> cohort = MakeFastPathViewers(matrix_viewers);
  ServerStats baseline = run_single(cohort, /*share_plans=*/true);
  CheckSameSimulation(baseline, run_single(cohort, /*share_plans=*/false),
                      "E11 plan cache off");
  CheckSameSimulation(baseline, run_single(cohort, /*share_plans=*/true),
                      "E11 rerun");
  {
    // Prefetch leg: an async store over the same cells, predict-mode
    // prefetch feeding the churn-controlled queue.
    StorageOptions storage_options;
    storage_options.env = bench.env.get();
    storage_options.root = "/bench";
    storage_options.io_threads = 2;
    storage_options.read_latency_seconds = 0.0005;
    auto storage =
        CheckOk(StorageManager::Open(storage_options), "E11 async store");
    ServerOptions options;
    options.max_concurrent_sessions = matrix_viewers;
    options.prefetch = PrefetchMode::kPredict;
    StreamingServer server(storage.get(), options);
    ServerStats stats =
        CheckOk(server.Run(metadata, cohort), "E11 prefetch run");
    CheckSameSimulation(baseline, stats, "E11 prefetch");
    std::printf("prefetch leg: enqueued=%llu deduped=%llu stale_skipped=%llu "
                "cancellation_ratio=%.3f\n",
                static_cast<unsigned long long>(stats.prefetch.enqueued),
                static_cast<unsigned long long>(stats.prefetch.deduped),
                static_cast<unsigned long long>(stats.prefetch.stale_skipped),
                stats.prefetch.CancellationRatio());
  }
  const std::vector<int> matrix_nodes =
      smoke ? std::vector<int>{smoke_nodes} : std::vector<int>{4, 16};
  for (int nodes : matrix_nodes) {
    CheckSameSimulation(
        baseline,
        run_cluster(cohort, nodes, /*share_plans=*/true, PrefetchMode::kOff)
            .totals,
        "E11 cluster plans-on");
    CheckSameSimulation(baseline,
                        run_cluster(cohort, nodes, /*share_plans=*/false,
                                    PrefetchMode::kPredict)
                            .totals,
                        "E11 cluster plans-off prefetch");
  }
  std::printf("determinism: %d-viewer cohort byte-identical across plan "
              "cache on/off, rerun, prefetch on/off, and",
              matrix_viewers);
  for (int nodes : matrix_nodes) std::printf(" %d", nodes);
  std::printf(" nodes (%llu bytes)\n",
              static_cast<unsigned long long>(baseline.bytes_sent));

  if (smoke || viewers_override > 0) return "";

  char tail[384];
  std::snprintf(
      tail, sizeof(tail),
      "\n ],\n  \"host_seconds_per_viewer_ratio\": %.4f,\n"
      "  \"determinism\": {\"viewers\": %d, \"variants\": "
      "[\"plans_off\", \"rerun\", \"prefetch\", \"cluster_4\", "
      "\"cluster_16\", \"cluster_16_plans_off_prefetch\"], "
      "\"bytes_sent\": %llu}}",
      hsv_ratio, matrix_viewers,
      static_cast<unsigned long long>(baseline.bytes_sent));
  return "{\"pool\": 48, \"cluster_nodes\": " +
         std::to_string(cluster_nodes) + ", \"cohorts\": [\n" + cohort_json +
         tail;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int smoke_nodes = 2;
  int viewers_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      smoke_nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--viewers") == 0 && i + 1 < argc) {
      viewers_override = std::atoi(argv[++i]);
    }
  }
  if (smoke_nodes < 1) smoke_nodes = 1;

  Banner("E7: multi-viewer server scaling",
         "expect: shared-cache hit rate grows with viewer count; faulted "
         "runs degrade, not crash; async I/O cuts host time, not outcomes");

  BenchDb bench = OpenBenchDb();
  const std::string scene_name = StandardSceneNames().back();  // coaster
  auto scene = CanonicalScene(scene_name);
  CheckOk(bench.db
              ->IngestScene(scene_name, *scene, kVideoSeconds * kFps,
                            CanonicalIngest())
              .status(),
          "ingest");
  VideoMetadata metadata = CheckOk(bench.db->Describe(scene_name), "describe");

  // `--viewers N` isolates the E11 fast-path experiment (the perf-smoke
  // ctest legs run `--smoke --viewers 1000`): one cohort size, single-node
  // and cluster, plus the full determinism matrix. No JSON.
  if (viewers_override > 0) {
    RunFastPathExperiment(bench, metadata, smoke, viewers_override,
                          smoke_nodes);
    return 0;
  }

  std::printf("\n%8s %12s %10s %10s %10s %9s\n", "viewers", "served Mbps",
              "cache hit", "coalesced", "rebuffer", "wall s");

  const std::vector<int> counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16, 32, 64};
  std::string points_json;
  for (int count : counts) {
    bench.db->storage()->ClearCache();  // cold cache for every population
    ServerOptions server_options;
    StreamingServer server(bench.db->storage(), server_options);
    ServerStats stats =
        CheckOk(server.Run(metadata, MakeViewers(count)), "server run");

    std::printf("%8d %12.2f %9.1f%% %10llu %9.2f%% %9.2f\n", count,
                stats.ServedMbps(), 100.0 * stats.cache.HitRate(),
                static_cast<unsigned long long>(stats.cache.coalesced),
                100.0 * stats.RebufferRatio(), stats.wall_seconds);

    char row[320];
    std::snprintf(row, sizeof(row),
                  "%s  {\"viewers\": %d, \"served_mbps\": %.4f, "
                  "\"cache_hit_rate\": %.4f, \"rebuffer_ratio\": %.4f, "
                  "\"bytes_sent\": %llu, \"wall_seconds\": %.4f, "
                  "\"completed\": %d}",
                  points_json.empty() ? "" : ",\n", count, stats.ServedMbps(),
                  stats.cache.HitRate(), stats.RebufferRatio(),
                  static_cast<unsigned long long>(stats.bytes_sent),
                  stats.wall_seconds, stats.sessions_completed);
    points_json += row;
  }

  // Fault-injection run: viewers on a network with seeded drop / stall /
  // bandwidth-collapse episodes. The run must complete (sessions degrade
  // through retries and skips; nothing crashes).
  const int fault_viewers = smoke ? 4 : 16;
  bench.db->storage()->ClearCache();
  std::vector<ViewerRequest> faulted = MakeViewers(fault_viewers);
  for (ViewerRequest& viewer : faulted) {
    viewer.session.network.faults.episodes_per_minute = 12.0;
    viewer.session.network.faults.episode_seconds = 2.0;
    viewer.session.network.faults.timeout_seconds = 1.0;
    viewer.session.network.faults.seed =
        500 + viewer.session.network.seed;
  }
  StreamingServer fault_server(bench.db->storage(), ServerOptions{});
  ServerStats fault_stats =
      CheckOk(fault_server.Run(metadata, faulted), "fault run");
  std::printf("\nfault run (%d viewers): faults=%d retries=%d skips=%d "
              "stalls=%d rebuffer=%.2f%%\n",
              fault_viewers, fault_stats.transfer_faults,
              fault_stats.transfer_retries, fault_stats.segments_skipped,
              fault_stats.stall_events, 100.0 * fault_stats.RebufferRatio());

  // Admission control: more viewers than slots plus a byte-rate budget.
  // "Whale" clients configured beyond the whole budget are rejected;
  // everyone past the slot limit waits in the FIFO queue.
  const int admission_viewers_count = smoke ? 8 : 24;
  bench.db->storage()->ClearCache();
  ServerOptions admission_options;
  admission_options.max_concurrent_sessions = smoke ? 4 : 8;
  admission_options.bandwidth_budget_bps = (smoke ? 6 : 12) * 50e6;
  std::vector<ViewerRequest> admission_viewers =
      MakeViewers(admission_viewers_count);
  admission_viewers[5].session.network.bandwidth_bps = 700e6;
  if (!smoke) admission_viewers[17].session.network.bandwidth_bps = 700e6;
  StreamingServer admission_server(bench.db->storage(), admission_options);
  ServerStats admission_stats =
      CheckOk(admission_server.Run(metadata, admission_viewers), "admission");
  std::printf("admission (%d viewers, %d slots, %.0f Mbps budget): "
              "admitted=%d queued=%d rejected=%d max_queue=%d\n",
              admission_viewers_count,
              admission_options.max_concurrent_sessions,
              admission_options.bandwidth_budget_bps / 1e6,
              admission_stats.sessions_admitted,
              admission_stats.sessions_queued,
              admission_stats.sessions_rejected,
              admission_stats.max_queue_depth);

  // E7b — async storage pipeline, measured in host time. Fresh storage
  // managers over the same ingested MemEnv store, with per-cold-read
  // latency so miss serialization is visible on any machine: synchronous
  // demand loads vs an I/O pool (overlapped batch reads) plus
  // prediction-driven prefetch. Every configuration must reproduce the
  // sync run's simulated outcome exactly.
  const int async_viewers = smoke ? 8 : 64;
  const double read_latency = smoke ? 0.001 : 0.002;
  struct AsyncConfig {
    const char* label;
    int io_threads;
    PrefetchMode prefetch;
  };
  const AsyncConfig async_configs[] = {
      {"sync", 0, PrefetchMode::kOff},
      {"async-1", 1, PrefetchMode::kPredict},
      {"async-4", 4, PrefetchMode::kPredict},
  };

  std::printf("\nE7b: async pipeline, %d viewers, %.1f ms cold-read latency "
              "(host time; simulated outcome pinned)\n",
              async_viewers, read_latency * 1e3);
  std::printf("%9s %11s %9s %9s %8s %8s %8s %10s %9s\n", "config",
              "prefetch", "host s", "speedup", "issued", "pf hits",
              "wasted", "cancelled", "hit rate");

  std::string async_json;
  ServerStats sync_stats;
  for (const AsyncConfig& config : async_configs) {
    StorageOptions storage_options;
    storage_options.env = bench.env.get();
    storage_options.root = "/bench";
    storage_options.io_threads = config.io_threads;
    storage_options.read_latency_seconds = read_latency;
    auto storage = CheckOk(StorageManager::Open(storage_options),
                           "open async store");

    ServerOptions server_options;
    server_options.prefetch = config.prefetch;
    StreamingServer server(storage.get(), server_options);
    ServerStats stats = CheckOk(
        server.Run(metadata, MakeViewers(async_viewers)), "async run");

    if (config.io_threads == 0) {
      sync_stats = stats;
    } else {
      CheckSameSimulation(sync_stats, stats, config.label);
    }
    double speedup = config.io_threads == 0
                         ? 1.0
                         : sync_stats.host_seconds / stats.host_seconds;

    std::printf("%9s %11s %9.3f %8.2fx %8llu %8llu %8llu %10llu %8.1f%%\n",
                config.label, PrefetchModeName(config.prefetch),
                stats.host_seconds, speedup,
                static_cast<unsigned long long>(stats.cache.prefetch_issued),
                static_cast<unsigned long long>(stats.cache.prefetch_hits),
                static_cast<unsigned long long>(stats.cache.prefetch_wasted),
                static_cast<unsigned long long>(stats.prefetch.cancelled),
                100.0 * stats.cache.HitRate());

    char row[512];
    std::snprintf(
        row, sizeof(row),
        "%s  {\"config\": \"%s\", \"io_threads\": %d, \"prefetch\": \"%s\", "
        "\"host_seconds\": %.4f, \"speedup_vs_sync\": %.3f, "
        "\"served_mbps\": %.4f, \"bytes_sent\": %llu, "
        "\"rebuffer_ratio\": %.4f, \"transfer_faults\": %d, "
        "\"cache_hit_rate\": %.4f, \"prefetch_issued\": %llu, "
        "\"prefetch_hits\": %llu, \"prefetch_wasted\": %llu, "
        "\"prefetch_cancelled\": %llu}",
        async_json.empty() ? "" : ",\n", config.label, config.io_threads,
        PrefetchModeName(config.prefetch), stats.host_seconds, speedup,
        stats.ServedMbps(), static_cast<unsigned long long>(stats.bytes_sent),
        stats.RebufferRatio(), stats.transfer_faults, stats.cache.HitRate(),
        static_cast<unsigned long long>(stats.cache.prefetch_issued),
        static_cast<unsigned long long>(stats.cache.prefetch_hits),
        static_cast<unsigned long long>(stats.cache.prefetch_wasted),
        static_cast<unsigned long long>(stats.prefetch.cancelled));
    async_json += row;
  }

  // E9 — sharded cluster scale-out. One ShardedStore per row (cold L2),
  // one backend shard per serving node, ample admission slots so node
  // count never changes queueing (the regime where the outcome is
  // node-count invariant). Viewers and nodes grow together; the scale-out
  // claim is per-node host time staying roughly flat while the L1/L2 tiers
  // absorb the read traffic.
  auto run_cluster = [&](int nodes, int viewer_count) {
    ShardedStoreOptions store_options;
    store_options.backend.env = bench.env.get();
    store_options.backend.root = "/bench";
    store_options.shards = nodes;
    auto store = CheckOk(ShardedStore::Open(store_options), "sharded store");
    ClusterOptions cluster_options;
    cluster_options.nodes = nodes;
    cluster_options.node.max_concurrent_sessions = viewer_count;  // ample
    ClusterServer cluster(store.get(), cluster_options);
    std::vector<VideoMetadata> videos = {metadata};
    return CheckOk(cluster.Run(videos, MakeViewers(viewer_count)),
                   "cluster run");
  };
  auto max_node_host = [](const ClusterStats& stats) {
    double host = 0.0;
    for (const ClusterNodeStats& node : stats.nodes) {
      host = std::max(host, node.host_seconds);
    }
    return host;
  };

  struct ClusterRow {
    int nodes;
    int viewers;
  };
  std::vector<ClusterRow> cluster_rows;
  if (smoke) {
    cluster_rows = {{1, 8}, {smoke_nodes, 8 * smoke_nodes}};
  } else {
    cluster_rows = {{1, 64}, {2, 128}, {4, 256}, {8, 512}, {16, 1024}};
  }

  std::printf("\nE9: sharded cluster scale-out (viewers grow with nodes; "
              "per-node host time should stay roughly flat)\n");
  std::printf("%6s %8s %12s %8s %8s %11s %10s %9s %9s\n", "nodes", "viewers",
              "served Mbps", "L1 hit", "L2 hit", "node host s", "vs 1-node",
              "locality", "spill");

  std::string cluster_json;
  double baseline_node_host = 0.0;
  for (const ClusterRow& row : cluster_rows) {
    ClusterStats stats = run_cluster(row.nodes, row.viewers);
    double node_host = max_node_host(stats);
    if (row.nodes == 1) baseline_node_host = node_host;
    double vs_baseline =
        baseline_node_host > 0 ? node_host / baseline_node_host : 0.0;
    int locality = 0;
    for (const ClusterNodeStats& node : stats.nodes) {
      locality += node.locality_placements;
    }

    std::printf("%6d %8d %12.2f %7.1f%% %7.1f%% %11.3f %9.2fx %9d %9d\n",
                row.nodes, row.viewers, stats.totals.ServedMbps(),
                100.0 * stats.totals.cache.HitRate(),
                100.0 * stats.l2.HitRate(), node_host, vs_baseline, locality,
                stats.spillovers());

    char json_row[448];
    std::snprintf(
        json_row, sizeof(json_row),
        "%s  {\"nodes\": %d, \"viewers\": %d, \"served_mbps\": %.4f, "
        "\"l1_hit_rate\": %.4f, \"l2_hit_rate\": %.4f, "
        "\"max_node_host_seconds\": %.4f, \"node_host_vs_single\": %.3f, "
        "\"locality_placements\": %d, \"spillovers\": %d, "
        "\"bytes_sent\": %llu, \"completed\": %d}",
        cluster_json.empty() ? "" : ",\n", row.nodes, row.viewers,
        stats.totals.ServedMbps(), stats.totals.cache.HitRate(),
        stats.l2.HitRate(), node_host, vs_baseline, locality,
        stats.spillovers(),
        static_cast<unsigned long long>(stats.totals.bytes_sent),
        stats.totals.sessions_completed);
    cluster_json += json_row;
  }

  // Scale-out determinism: one fixed cohort, re-served at growing node
  // counts — the simulated outcome must not move by a byte.
  const int determinism_viewers = smoke ? 12 : 256;
  const std::vector<int> determinism_nodes =
      smoke ? std::vector<int>{1, smoke_nodes} : std::vector<int>{1, 4, 16};
  ServerStats cluster_baseline;
  for (size_t i = 0; i < determinism_nodes.size(); ++i) {
    ClusterStats stats =
        run_cluster(determinism_nodes[i], determinism_viewers);
    if (i == 0) {
      cluster_baseline = stats.totals;
    } else {
      CheckSameSimulation(cluster_baseline, stats.totals, "cluster scale-out");
    }
  }
  std::printf("determinism: %d-viewer cohort byte-identical at",
              determinism_viewers);
  for (int nodes : determinism_nodes) std::printf(" %d", nodes);
  std::printf(" nodes (%llu bytes)\n",
              static_cast<unsigned long long>(cluster_baseline.bytes_sent));

  // E10 — live ingest → serve. The same content as the offline ingest,
  // published segment-by-segment while viewers join at the live edge.
  const int live_viewers = smoke ? 6 : 24;
  const int live_seconds = smoke ? 6 : kVideoSeconds;
  const int live_frames = live_seconds * kFps;
  const double live_duration = static_cast<double>(live_seconds);
  auto live_scene = CanonicalScene(scene_name);

  // Offline reference catalog with the exact same frames: the caught-up
  // live catalog must be byte-identical to it.
  CheckOk(bench.db
              ->IngestScene("live_offline_ref", *live_scene, live_frames,
                            CanonicalIngest())
              .status(),
          "live reference ingest");
  VideoMetadata live_reference =
      CheckOk(bench.db->Describe("live_offline_ref"), "live reference");

  auto make_live_viewers = [&](int count) {
    // Same archetype cohort, but arrivals spread over the first half of
    // the broadcast so most viewers join mid-stream.
    std::vector<ViewerRequest> viewers = MakeViewers(count);
    for (int i = 0; i < count; ++i) {
      viewers[i].arrival_seconds =
          count > 1 ? live_duration * 0.5 * i / (count - 1) : 0.0;
    }
    return viewers;
  };

  struct LiveConfig {
    const char* label;
    double slow_cost;  // encode-latency override for segment 2 (0 = none)
    double budget;     // max_lag_seconds (0 = unbounded)
    double degraded;   // degraded_encode_seconds (0 = never degrade)
  };
  const LiveConfig live_configs[] = {
      {"healthy", 0.0, 0.0, 0.0},
      {"faulted", 2.0, 0.0, 0.0},
      {"degrading", 2.0, 0.5, 0.05},
  };

  std::printf("\nE10: live ingest -> serve, %d viewers joining over %.1fs "
              "of a %ds broadcast\n",
              live_viewers, live_duration * 0.5, live_seconds);
  std::printf("%10s %10s %9s %8s %8s %9s %9s %8s\n", "config", "published",
              "degraded", "max lag", "mean lag", "final lag", "rebuffer",
              "stalls");

  auto run_live = [&](const LiveConfig& config,
                      const std::string& name) {
    LiveFeedOptions feed_options;
    feed_options.encode_seconds = 0.2;
    if (config.slow_cost > 0) feed_options.encode_overrides[2] = config.slow_cost;
    feed_options.max_lag_seconds = config.budget;
    feed_options.degraded_encode_seconds = config.degraded;
    auto feed = CheckOk(
        LiveFeed::Create(bench.db.get(), name, *live_scene, live_frames,
                         CanonicalIngest(), feed_options),
        "live feed");
    bench.db->storage()->ClearCache();
    StreamingServer server(bench.db->storage(), ServerOptions{});
    ServerStats stats = CheckOk(
        server.RunLive(feed.get(), make_live_viewers(live_viewers)),
        "live run");
    return stats;
  };

  std::string live_json;
  ServerStats live_healthy;
  for (const LiveConfig& config : live_configs) {
    ServerStats stats =
        run_live(config, std::string("live_") + config.label);
    if (std::strcmp(config.label, "healthy") == 0) live_healthy = stats;

    std::printf("%10s %7d/%-2d %9d %7.3fs %7.3fs %8.3fs %8.2f%% %8d\n",
                config.label, stats.live.segments_published,
                stats.live.total_segments, stats.live.degraded_segments,
                stats.live.max_lag_seconds, stats.live.mean_lag_seconds,
                stats.live.final_lag_seconds, 100.0 * stats.RebufferRatio(),
                stats.stall_events);

    char row[448];
    std::snprintf(
        row, sizeof(row),
        "%s  {\"config\": \"%s\", \"segments_published\": %d, "
        "\"degraded_segments\": %d, \"max_lag_seconds\": %.4f, "
        "\"mean_lag_seconds\": %.4f, \"live_edge_lag_seconds\": %.4f, "
        "\"rebuffer_ratio\": %.4f, \"stall_events\": %d, "
        "\"bytes_sent\": %llu, \"completed\": %d}",
        live_json.empty() ? "" : ",\n", config.label,
        stats.live.segments_published, stats.live.degraded_segments,
        stats.live.max_lag_seconds, stats.live.mean_lag_seconds,
        stats.live.final_lag_seconds, stats.RebufferRatio(),
        stats.stall_events,
        static_cast<unsigned long long>(stats.bytes_sent),
        stats.sessions_completed);
    live_json += row;
  }

  // The caught-up healthy feed holds byte-identical cells to the offline
  // ingest of the same frames.
  VideoMetadata live_catalog =
      CheckOk(bench.db->Describe("live_healthy"), "live catalog");
  if (live_catalog.cells.size() != live_reference.cells.size()) {
    std::fprintf(stderr, "bench: live catalog shape differs from offline\n");
    return 1;
  }
  for (size_t i = 0; i < live_catalog.cells.size(); ++i) {
    if (live_catalog.cells[i].byte_size != live_reference.cells[i].byte_size ||
        live_catalog.cells[i].crc32 != live_reference.cells[i].crc32) {
      std::fprintf(stderr, "bench: live cell %zu differs from offline\n", i);
      return 1;
    }
  }

  // Live determinism: the healthy cohort re-run on a fresh feed, then on a
  // cluster — the simulated outcome must not move by a byte.
  ServerStats live_rerun = run_live(live_configs[0], "live_rerun");
  CheckSameSimulation(live_healthy, live_rerun, "live rerun");
  const int live_nodes = smoke ? smoke_nodes : 4;
  {
    LiveFeedOptions feed_options;
    feed_options.encode_seconds = 0.2;
    auto feed = CheckOk(
        LiveFeed::Create(bench.db.get(), "live_cluster", *live_scene,
                         live_frames, CanonicalIngest(), feed_options),
        "live cluster feed");
    ShardedStoreOptions store_options;
    store_options.backend.env = bench.env.get();
    store_options.backend.root = "/bench";
    store_options.shards = live_nodes;
    auto store = CheckOk(ShardedStore::Open(store_options), "live store");
    ClusterOptions cluster_options;
    cluster_options.nodes = live_nodes;
    ClusterServer cluster(store.get(), cluster_options);
    ClusterStats stats = CheckOk(
        cluster.RunLive(feed.get(), make_live_viewers(live_viewers)),
        "live cluster run");
    CheckSameSimulation(live_healthy, stats.totals, "live cluster");
  }
  std::printf("live catalog byte-identical to offline ingest; outcome "
              "pinned across rerun and %d-node cluster\n",
              live_nodes);

  // E11 — the 10k-viewer serving fast path (hs/viewer sublinearity check
  // plus the plan-cache/prefetch/node-count determinism matrix).
  std::string e11_json =
      RunFastPathExperiment(bench, metadata, smoke, 0, smoke_nodes);

  if (smoke) {
    std::printf("\nsmoke run: BENCH_server.json left untouched\n");
    return 0;
  }

  char tail[640];
  std::snprintf(tail, sizeof(tail),
                " \"fault_run\": {\"viewers\": 16, \"transfer_faults\": %d, "
                "\"transfer_retries\": %d, \"segments_skipped\": %d, "
                "\"stall_events\": %d, \"rebuffer_ratio\": %.4f},\n"
                " \"admission\": {\"viewers\": 24, \"admitted\": %d, "
                "\"queued\": %d, \"rejected\": %d, \"max_queue_depth\": %d},\n"
                " \"async\": {\"viewers\": %d, "
                "\"read_latency_seconds\": %.4f, \"configs\": [\n",
                fault_stats.transfer_faults, fault_stats.transfer_retries,
                fault_stats.segments_skipped, fault_stats.stall_events,
                fault_stats.RebufferRatio(),
                admission_stats.sessions_admitted,
                admission_stats.sessions_queued,
                admission_stats.sessions_rejected,
                admission_stats.max_queue_depth, async_viewers, read_latency);

  char cluster_tail[320];
  std::snprintf(cluster_tail, sizeof(cluster_tail),
                ",\n \"cluster\": {\"baseline_node_host_seconds\": %.4f,\n"
                "  \"determinism\": {\"viewers\": %d, \"nodes\": [1, 4, 16], "
                "\"bytes_sent\": %llu},\n  \"scaling\": [\n",
                baseline_node_host, determinism_viewers,
                static_cast<unsigned long long>(cluster_baseline.bytes_sent));

  char live_head[384];
  std::snprintf(live_head, sizeof(live_head),
                ",\n \"live\": {\"viewers\": %d, \"seconds\": %d, "
                "\"encode_seconds\": 0.2, "
                "\"edge_lag_gauge\": \"ingest.live_edge_lag_seconds\", "
                "\"offline_byte_identical\": true, "
                "\"determinism_nodes\": %d, \"configs\": [\n",
                live_viewers, live_seconds, live_nodes);

  std::string json = "{\"experiment\": \"E7-server\",\n \"scene\": \"" +
                     scene_name + "\",\n \"scaling\": [\n" + points_json +
                     "\n ],\n" + tail + async_json + "\n ]}" + cluster_tail +
                     cluster_json + "\n ]}" + live_head + live_json +
                     "\n ]},\n \"e11\": " + e11_json + "}";
  WriteBenchJson("BENCH_server.json", json);
  EmitMetricsSnapshot("E7");
  return 0;
}
