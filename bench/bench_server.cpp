// E7 — multi-viewer server scaling.
//
// Paper claim (VisualCloud, SIGMOD'17 demo): a VR DBMS serves many
// concurrent viewers from one store; caching and cross-user sharing keep
// per-viewer cost sublinear. This bench scales a simulated StreamingServer
// from 1 to 64 viewers over one video and reports aggregate served rate,
// shared-cache hit rate, and rebuffer ratio per viewer count, plus a
// fault-injection run (network drops/stalls/collapses answered by
// retry-at-lower-rung) and an admission-control run (bounded concurrency
// and byte-rate budget).

#include "bench_util.h"
#include "server/streaming_server.h"

using namespace vc;
using namespace vc::bench;

namespace {

// `count` viewers cycling the archetype population with distinct trace and
// network seeds, arrivals staggered 250 ms apart.
std::vector<ViewerRequest> MakeViewers(int count) {
  const std::vector<std::string>& archetypes = ViewerArchetypes();
  std::vector<ViewerRequest> viewers;
  for (int i = 0; i < count; ++i) {
    auto trace_options =
        ArchetypeOptions(archetypes[i % archetypes.size()], 1 + i);
    trace_options->duration_seconds = kVideoSeconds;
    ViewerRequest viewer;
    viewer.trace = CheckOk(SynthesizeTrace(*trace_options), "trace");
    viewer.session = CanonicalSession(StreamingApproach::kVisualCloud);
    viewer.session.network.seed = 1000 + i;
    viewer.arrival_seconds = 0.25 * i;
    viewers.push_back(std::move(viewer));
  }
  return viewers;
}

}  // namespace

int main() {
  Banner("E7: multi-viewer server scaling",
         "expect: shared-cache hit rate grows with viewer count; faulted "
         "runs degrade, not crash");

  BenchDb bench = OpenBenchDb();
  const std::string scene_name = StandardSceneNames().back();  // coaster
  auto scene = CanonicalScene(scene_name);
  CheckOk(bench.db
              ->IngestScene(scene_name, *scene, kVideoSeconds * kFps,
                            CanonicalIngest())
              .status(),
          "ingest");
  VideoMetadata metadata = CheckOk(bench.db->Describe(scene_name), "describe");

  std::printf("\n%8s %12s %10s %10s %10s %9s\n", "viewers", "served Mbps",
              "cache hit", "coalesced", "rebuffer", "wall s");

  std::string points_json;
  for (int count : {1, 2, 4, 8, 16, 32, 64}) {
    bench.db->storage()->ClearCache();  // cold cache for every population
    ServerOptions server_options;
    StreamingServer server(bench.db->storage(), server_options);
    ServerStats stats =
        CheckOk(server.Run(metadata, MakeViewers(count)), "server run");

    std::printf("%8d %12.2f %9.1f%% %10llu %9.2f%% %9.2f\n", count,
                stats.ServedMbps(), 100.0 * stats.cache.HitRate(),
                static_cast<unsigned long long>(stats.cache.coalesced),
                100.0 * stats.RebufferRatio(), stats.wall_seconds);

    char row[320];
    std::snprintf(row, sizeof(row),
                  "%s  {\"viewers\": %d, \"served_mbps\": %.4f, "
                  "\"cache_hit_rate\": %.4f, \"rebuffer_ratio\": %.4f, "
                  "\"bytes_sent\": %llu, \"wall_seconds\": %.4f, "
                  "\"completed\": %d}",
                  points_json.empty() ? "" : ",\n", count, stats.ServedMbps(),
                  stats.cache.HitRate(), stats.RebufferRatio(),
                  static_cast<unsigned long long>(stats.bytes_sent),
                  stats.wall_seconds, stats.sessions_completed);
    points_json += row;
  }

  // Fault-injection run: 16 viewers on a network with seeded drop / stall /
  // bandwidth-collapse episodes. The run must complete (sessions degrade
  // through retries and skips; nothing crashes).
  bench.db->storage()->ClearCache();
  std::vector<ViewerRequest> faulted = MakeViewers(16);
  for (ViewerRequest& viewer : faulted) {
    viewer.session.network.faults.episodes_per_minute = 12.0;
    viewer.session.network.faults.episode_seconds = 2.0;
    viewer.session.network.faults.timeout_seconds = 1.0;
    viewer.session.network.faults.seed =
        500 + viewer.session.network.seed;
  }
  StreamingServer fault_server(bench.db->storage(), ServerOptions{});
  ServerStats fault_stats =
      CheckOk(fault_server.Run(metadata, faulted), "fault run");
  std::printf("\nfault run (16 viewers): faults=%d retries=%d skips=%d "
              "stalls=%d rebuffer=%.2f%%\n",
              fault_stats.transfer_faults, fault_stats.transfer_retries,
              fault_stats.segments_skipped, fault_stats.stall_events,
              100.0 * fault_stats.RebufferRatio());

  // Admission control: 24 viewers against 8 slots and a 600 Mbps budget.
  // Two "whale" clients configured beyond the whole budget are rejected;
  // everyone past the slot limit waits in the FIFO queue.
  bench.db->storage()->ClearCache();
  ServerOptions admission_options;
  admission_options.max_concurrent_sessions = 8;
  admission_options.bandwidth_budget_bps = 12 * 50e6;
  std::vector<ViewerRequest> admission_viewers = MakeViewers(24);
  admission_viewers[5].session.network.bandwidth_bps = 700e6;
  admission_viewers[17].session.network.bandwidth_bps = 700e6;
  StreamingServer admission_server(bench.db->storage(), admission_options);
  ServerStats admission_stats =
      CheckOk(admission_server.Run(metadata, admission_viewers), "admission");
  std::printf("admission (24 viewers, 8 slots, 600 Mbps budget): "
              "admitted=%d queued=%d rejected=%d max_queue=%d\n",
              admission_stats.sessions_admitted,
              admission_stats.sessions_queued,
              admission_stats.sessions_rejected,
              admission_stats.max_queue_depth);

  char tail[640];
  std::snprintf(tail, sizeof(tail),
                " \"fault_run\": {\"viewers\": 16, \"transfer_faults\": %d, "
                "\"transfer_retries\": %d, \"segments_skipped\": %d, "
                "\"stall_events\": %d, \"rebuffer_ratio\": %.4f},\n"
                " \"admission\": {\"viewers\": 24, \"admitted\": %d, "
                "\"queued\": %d, \"rejected\": %d, \"max_queue_depth\": %d}}",
                fault_stats.transfer_faults, fault_stats.transfer_retries,
                fault_stats.segments_skipped, fault_stats.stall_events,
                fault_stats.RebufferRatio(),
                admission_stats.sessions_admitted,
                admission_stats.sessions_queued,
                admission_stats.sessions_rejected,
                admission_stats.max_queue_depth);

  std::string json = "{\"experiment\": \"E7-server\",\n \"scene\": \"" +
                     scene_name + "\",\n \"scaling\": [\n" + points_json +
                     "\n ],\n" + tail;
  WriteBenchJson("BENCH_server.json", json);
  EmitMetricsSnapshot("E7");
  return 0;
}
