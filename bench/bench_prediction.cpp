// E3 — prediction accuracy vs lookahead.
//
// The savings/quality trade hinges on predicting the viewer's orientation
// one segment-duration ahead. This bench sweeps the prediction horizon for
// every predictor over the canonical viewer population and reports mean
// great-circle error and tile hit rate (would the streamed viewport have
// covered the tile the viewer actually looked at?).
//
// Expected shape: error grows with lookahead for every model; motion
// extrapolators win at short horizons; persistence/Markov degrade most
// gracefully on saccade-heavy (frantic) viewers.

#include "bench_util.h"
#include "predict/accuracy.h"
#include "predict/predictor.h"

using namespace vc;
using namespace vc::bench;

int main() {
  Banner("E3: prediction accuracy vs lookahead",
         "expect: error grows with horizon; predictors beat nothing "
         "only at short horizons on erratic viewers");

  const TileGrid grid(kTileRows, kTileCols);
  const std::vector<double> lookaheads = {0.25, 0.5, 1.0, 2.0, 4.0};
  constexpr int kSeedsPerArchetype = 10;
  constexpr double kTraceSeconds = 90;

  for (const std::string& archetype : ViewerArchetypes()) {
    std::vector<HeadTrace> traces;
    for (int seed = 1; seed <= kSeedsPerArchetype; ++seed) {
      auto options = ArchetypeOptions(archetype, seed);
      options->duration_seconds = kTraceSeconds;
      traces.push_back(CheckOk(SynthesizeTrace(*options), "trace"));
    }

    std::printf("\narchetype '%s' (%d traces x %.0fs)\n", archetype.c_str(),
                kSeedsPerArchetype, kTraceSeconds);
    std::printf("%-18s", "predictor");
    for (double lookahead : lookaheads) {
      std::printf("  err@%-4.2gs hit@%-4.2gs", lookahead, lookahead);
    }
    std::printf("\n");

    for (auto& predictor : AllPredictors(grid)) {
      std::printf("%-18s", predictor->name().c_str());
      for (double lookahead : lookaheads) {
        double err = 0, hit = 0;
        for (const HeadTrace& trace : traces) {
          AccuracyOptions options;
          options.lookahead_seconds = lookahead;
          options.fov_yaw = DegToRad(kFovYawDeg);
          options.fov_pitch = DegToRad(kFovPitchDeg);
          PredictionAccuracy accuracy =
              EvaluatePredictor(predictor.get(), trace, grid, options);
          err += accuracy.mean_error_radians;
          hit += accuracy.tile_hit_rate;
        }
        std::printf("  %7.1f°  %6.0f%%", RadToDeg(err / traces.size()),
                    100.0 * hit / traces.size());
      }
      std::printf("\n");
    }
  }
  return 0;
}
