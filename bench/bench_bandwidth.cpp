// E1 — headline bandwidth table.
//
// Paper claim (VisualCloud, SIGMOD'17 demo): spatiotemporal partitioning
// plus orientation prediction reduces streaming bandwidth by up to ~60%
// versus serving the full-quality sphere, at equal in-view quality.
//
// This bench regenerates the table: per video, bytes per session for each
// approach, averaged over the canonical viewer population, plus savings vs
// the monolithic full-quality baseline. An additional "untiled" row ingests
// the same content with no spatial partitioning to expose the tiling
// overhead the savings have to pay for.

#include "bench_util.h"
#include "predict/popularity.h"

using namespace vc;
using namespace vc::bench;

int main() {
  Banner("E1: bandwidth per approach per video",
         "expect: visualcloud well below monolithic; oracle below that");

  auto traces = ViewerPopulation(/*seeds_per=*/5, kVideoSeconds);
  BenchDb bench = OpenBenchDb();

  std::printf("\n%-11s %-28s %14s %9s\n", "video", "approach", "bytes/session",
              "saved");

  for (const std::string& scene_name : StandardSceneNames()) {
    auto scene = CanonicalScene(scene_name);
    // Tiled store (the VisualCloud layout) and an untiled reference store.
    IngestOptions tiled = CanonicalIngest();
    CheckOk(bench.db
                ->IngestScene(scene_name, *scene, kVideoSeconds * kFps, tiled)
                .status(),
            "ingest tiled");
    IngestOptions untiled = CanonicalIngest();
    untiled.tile_rows = 1;
    untiled.tile_cols = 1;
    CheckOk(bench.db
                ->IngestScene(scene_name + "-untiled", *scene,
                              kVideoSeconds * kFps, untiled)
                .status(),
            "ingest untiled");

    VideoMetadata tiled_md =
        CheckOk(bench.db->Describe(scene_name), "describe");
    VideoMetadata untiled_md =
        CheckOk(bench.db->Describe(scene_name + "-untiled"), "describe");

    // Cross-user popularity model trained on a disjoint viewer population
    // (different seeds than the evaluation traces).
    PopularityModel popularity(tiled_md.tile_grid(),
                               tiled_md.segment_duration_seconds(),
                               tiled_md.segment_count());
    for (const std::string& archetype : ViewerArchetypes()) {
      for (uint64_t seed = 100; seed < 110; ++seed) {
        auto trace_options = ArchetypeOptions(archetype, seed);
        trace_options->duration_seconds = kVideoSeconds;
        popularity.AddTrace(
            CheckOk(SynthesizeTrace(*trace_options), "train trace"));
      }
    }

    auto mean_bytes = [&](const VideoMetadata& metadata,
                          StreamingApproach approach,
                          const std::string& predictor,
                          const PopularityModel* crowd = nullptr) {
      uint64_t total = 0;
      for (const HeadTrace& trace : traces) {
        SessionOptions session = CanonicalSession(approach);
        session.predictor = predictor;
        session.popularity = crowd;
        auto client = CheckOk(ClientSession::Create(bench.db->storage(),
                                                    metadata, trace, session),
                              "session");
        while (!client->done()) {
          CheckOk(client->Step(client->NextDeadline()), "step");
        }
        total += client->stats().bytes_sent;
      }
      return total / traces.size();
    };

    uint64_t untiled_full = mean_bytes(
        untiled_md, StreamingApproach::kMonolithicFull, "static");
    uint64_t mono =
        mean_bytes(tiled_md, StreamingApproach::kMonolithicFull, "static");
    struct Row {
      std::string label;
      uint64_t bytes;
    };
    std::vector<Row> rows = {
        {"untiled full quality", untiled_full},
        {"monolithic (all tiles hi)", mono},
        {"uniform DASH", mean_bytes(tiled_md, StreamingApproach::kUniformDash,
                                    "static")},
        {"visualcloud (static)",
         mean_bytes(tiled_md, StreamingApproach::kVisualCloud, "static")},
        {"visualcloud (dead reckon)",
         mean_bytes(tiled_md, StreamingApproach::kVisualCloud,
                    "dead_reckoning")},
        {"visualcloud (markov)",
         mean_bytes(tiled_md, StreamingApproach::kVisualCloud, "markov")},
        {"visualcloud (DR + crowd)",
         mean_bytes(tiled_md, StreamingApproach::kVisualCloud,
                    "dead_reckoning", &popularity)},
        {"visualcloud (oracle)",
         mean_bytes(tiled_md, StreamingApproach::kOracle, "static")},
    };
    for (const Row& row : rows) {
      double saved = 100.0 * (1.0 - static_cast<double>(row.bytes) / mono);
      std::printf("%-11s %-28s %14llu %8.0f%%\n", scene_name.c_str(),
                  row.label.c_str(),
                  static_cast<unsigned long long>(row.bytes), saved);
    }
    std::printf("\n");
  }

  std::printf("('saved' is relative to the tiled monolithic baseline; the\n"
              " untiled row shows what spatial partitioning itself costs)\n");
  EmitMetricsSnapshot("E1");
  return 0;
}
