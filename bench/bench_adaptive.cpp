// E6 — behaviour under constrained bandwidth.
//
// Sweeps the network bandwidth and compares view-agnostic uniform DASH
// against VisualCloud's predictive tiling. Both adapt to the link; the
// question is what quality reaches the *viewport* for the bytes available,
// and who stalls.
//
// Expected shape: at every constrained rate VisualCloud sustains a lower
// (better) in-view ladder rung than uniform DASH; both avoid stalls by
// adapting; the gap narrows as bandwidth becomes unconstrained.

#include "bench_util.h"

using namespace vc;
using namespace vc::bench;

int main() {
  Banner("E6: delivered in-view quality vs available bandwidth",
         "expect: where full quality does not fit (low rates), visualcloud "
         "sustains better in-view rungs than uniform DASH; once bandwidth "
         "is unconstrained DASH matches quality at ~2x the bytes");

  constexpr int kSeconds = 15;
  auto traces = ViewerPopulation(/*seeds_per=*/3, kSeconds);
  BenchDb bench = OpenBenchDb();
  auto scene = CanonicalScene("coaster");
  CheckOk(bench.db
              ->IngestScene("coaster", *scene, kSeconds * kFps,
                            CanonicalIngest())
              .status(),
          "ingest");
  VideoMetadata metadata = CheckOk(bench.db->Describe("coaster"), "describe");

  const std::vector<double> bandwidths_mbps = {0.5, 1, 2, 4, 8, 16};

  std::printf("\n%-10s  %-13s %12s %14s %9s %9s\n", "bandwidth", "approach",
              "bytes", "inview rung", "stalls", "startup");

  for (double mbps : bandwidths_mbps) {
    for (StreamingApproach approach : {StreamingApproach::kUniformDash,
                                       StreamingApproach::kVisualCloud}) {
      uint64_t bytes = 0;
      double rung = 0, stalls = 0, startup = 0;
      for (const HeadTrace& trace : traces) {
        SessionOptions session = CanonicalSession(approach);
        session.network.bandwidth_bps = mbps * 1e6;
        auto client = CheckOk(ClientSession::Create(bench.db->storage(),
                                                    metadata, trace, session),
                              "session");
        while (!client->done()) {
          CheckOk(client->Step(client->NextDeadline()), "step");
        }
        const SessionStats& stats = client->stats();
        bytes += stats.bytes_sent;
        rung += stats.mean_inview_quality;
        stalls += stats.stall_seconds;
        startup += stats.startup_delay;
      }
      size_t n = traces.size();
      std::printf("%7.1f Mb  %-13s %12llu %14.2f %8.2fs %8.2fs\n", mbps,
                  ApproachName(approach).c_str(),
                  static_cast<unsigned long long>(bytes / n), rung / n,
                  stalls / n, startup / n);
    }
  }
  std::printf("\n(inview rung: mean ladder index delivered inside the actual "
              "viewport; 0 = best of %d)\n",
              metadata.quality_count() - 1);
  EmitMetricsSnapshot("E6");
  return 0;
}
