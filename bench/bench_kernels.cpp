// M1k — codec kernel microbenchmark: scalar vs SIMD throughput for each hot
// kernel (SAD, forward/inverse DCT, quantization), plus entropy-coder
// throughput and density (Exp-Golomb vs canonical Huffman).
//
// Expected shape: the SIMD columns are several-fold faster than scalar for
// every vectorized kernel (the issue targets >=3x aggregate); Huffman emits
// fewer bits per block than Exp-Golomb at identical reconstruction, at a
// comparable encode rate and a faster table-driven decode than bit-serial
// Exp-Golomb on dense blocks.
//
// Every lap re-verifies that the SIMD and scalar kernels produce identical
// outputs (and that both entropy coders round-trip) before timing — a
// throughput number for a wrong kernel is worse than none. `--smoke` runs
// the verification on shrunk workloads and skips the JSON snapshot; CI
// registers it so the agreement checks run on every build.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "codec/entropy.h"
#include "codec/motion.h"
#include "codec/simd.h"
#include "codec/transform.h"
#include "common/bitio.h"
#include "common/random.h"
#include "common/stopwatch.h"

using namespace vc;
using namespace vc::bench;

namespace {

bool g_smoke = false;

/// Fastest of `reps` laps of `fn` (deterministic kernels; the minimum is the
/// least noisy estimator of the true cost).
template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    fn();
    double seconds = watch.ElapsedSeconds();
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_kernels: %s MISMATCH\n", what);
    std::exit(1);
  }
}

/// One kernel's per-tier result, in MB/s of 8-bit pixels processed (64 bytes
/// per 8x8 block, 256 per 16x16 SAD) so rates are comparable across kernels.
/// `sse2_mbs` is only populated on hosts whose best tier is above the x86
/// baseline (i.e. when AVX2 dispatch kicks in), so the table shows what each
/// tier buys.
struct KernelRow {
  std::string name;
  double scalar_mbs = 0.0;
  double sse2_mbs = 0.0;
  double simd_mbs = 0.0;  // strongest dispatchable tier
  double speedup() const { return simd_mbs / scalar_mbs; }
};

/// Times `fn` at every dispatchable tier. `bytes` is the pixel volume one
/// call of `fn` processes.
template <typename Fn>
KernelRow TimeKernel(const std::string& name, double bytes, int reps,
                     Fn&& fn) {
  KernelRow row;
  row.name = name;
  simd::SetEnabled(false);
  row.scalar_mbs = bytes / BestSeconds(reps, fn) / 1e6;
  simd::SetEnabled(true);
  if (simd::ActiveLevel() == simd::Level::kAvx2) {
    const simd::Level cap = simd::LevelCap();
    simd::SetLevelCap(simd::Level::kSse2);
    row.sse2_mbs = bytes / BestSeconds(reps, fn) / 1e6;
    simd::SetLevelCap(cap);
  }
  row.simd_mbs = bytes / BestSeconds(reps, fn) / 1e6;
  return row;
}

// ------------------------------------------------------------ SAD kernels

KernelRow BenchSad(int size, bool bounded, int blocks, int reps) {
  constexpr int kDim = 512;
  Random rng(7001);
  std::vector<uint8_t> a(kDim * kDim), b(kDim * kDim);
  for (auto& v : a) v = static_cast<uint8_t>(rng.Uniform(256));
  for (auto& v : b) v = static_cast<uint8_t>(rng.Uniform(256));
  PlaneView pa{a.data(), kDim}, pb{b.data(), kDim};
  std::vector<int> xs(blocks), ys(blocks);
  std::vector<uint32_t> limits(blocks);
  for (int i = 0; i < blocks; ++i) {
    xs[i] = static_cast<int>(rng.Uniform(kDim - size));
    ys[i] = static_cast<int>(rng.Uniform(kDim - size));
    // Realistic bounded-SAD limits: most candidates lose mid-block.
    limits[i] = 1 + static_cast<uint32_t>(
                        rng.Uniform(size * size * 30u));
  }

  // Agreement check (both paths, all probes).
  std::vector<uint32_t> expect(blocks);
  simd::SetEnabled(false);
  for (int i = 0; i < blocks; ++i) {
    expect[i] = bounded ? BlockSadBounded(pa, xs[i], ys[i], pb, ys[i], xs[i],
                                          size, limits[i])
                        : BlockSad(pa, xs[i], ys[i], pb, ys[i], xs[i], size);
  }
  simd::SetEnabled(true);
  for (int i = 0; i < blocks; ++i) {
    uint32_t got = bounded ? BlockSadBounded(pa, xs[i], ys[i], pb, ys[i],
                                             xs[i], size, limits[i])
                           : BlockSad(pa, xs[i], ys[i], pb, ys[i], xs[i],
                                      size);
    Check(got == expect[i], "SAD scalar/SIMD");
  }

  uint64_t sink = 0;
  auto run = [&] {
    uint64_t acc = 0;
    for (int i = 0; i < blocks; ++i) {
      acc += bounded ? BlockSadBounded(pa, xs[i], ys[i], pb, ys[i], xs[i],
                                       size, limits[i])
                     : BlockSad(pa, xs[i], ys[i], pb, ys[i], xs[i], size);
    }
    sink += acc;
  };
  std::string name = "sad" + std::to_string(size) +
                     (bounded ? "_bounded" : "");
  KernelRow row = TimeKernel(
      name, static_cast<double>(blocks) * size * size, reps, run);
  if (sink == 0) std::printf("(impossible)\n");
  return row;
}

// ------------------------------------------------- transform/quant kernels

struct TransformData {
  std::vector<ResidualBlock> residuals;
  std::vector<CoeffBlock> coeffs;        // ForwardDct output
  std::vector<LevelBlock> levels;        // Quantize output
  std::vector<CoeffBlock> dequantized;   // Dequantize output
  std::vector<int> nonzero;
  double qstep = 0.0;
};

TransformData MakeTransformData(int blocks) {
  TransformData data;
  data.qstep = QStepForQp(28);
  Random rng(7002);
  data.residuals.resize(blocks);
  data.coeffs.resize(blocks);
  data.levels.resize(blocks);
  data.dequantized.resize(blocks);
  data.nonzero.resize(blocks);
  for (int i = 0; i < blocks; ++i) {
    // Smooth-ish residuals so quantized blocks have codec-like sparsity.
    int16_t base = static_cast<int16_t>(rng.Uniform(61)) - 30;
    for (int p = 0; p < kBlockPixels; ++p) {
      data.residuals[i][p] =
          static_cast<int16_t>(base + static_cast<int>(rng.Uniform(25)) - 12);
    }
    ForwardDct(data.residuals[i], &data.coeffs[i]);
    Quantize(data.coeffs[i], data.qstep, &data.levels[i]);
    int nonzero = 0;
    for (int32_t v : data.levels[i]) nonzero += v != 0;
    data.nonzero[i] = nonzero;
    Dequantize(data.levels[i], data.qstep, &data.dequantized[i]);
  }
  return data;
}

template <typename Block, typename Fn>
void CheckBlockwiseAgreement(int blocks, std::vector<Block>* out, Fn&& fn,
                             const char* what) {
  std::vector<Block> expect(blocks);
  simd::SetEnabled(false);
  for (int i = 0; i < blocks; ++i) fn(i, &expect[i]);
  simd::SetEnabled(true);
  for (int i = 0; i < blocks; ++i) {
    fn(i, &(*out)[i]);
    Check((*out)[i] == expect[i], what);
  }
}

std::vector<KernelRow> BenchTransforms(const TransformData& data, int reps) {
  const int blocks = static_cast<int>(data.residuals.size());
  const double bytes = static_cast<double>(blocks) * kBlockPixels;
  std::vector<KernelRow> rows;

  std::vector<CoeffBlock> coeff_out(blocks);
  CheckBlockwiseAgreement(
      blocks, &coeff_out,
      [&](int i, CoeffBlock* out) { ForwardDct(data.residuals[i], out); },
      "ForwardDct scalar/SIMD");
  rows.push_back(TimeKernel("fdct", bytes, reps, [&] {
    for (int i = 0; i < blocks; ++i) {
      ForwardDct(data.residuals[i], &coeff_out[i]);
    }
  }));

  std::vector<ResidualBlock> res_out(blocks);
  CheckBlockwiseAgreement(
      blocks, &res_out,
      [&](int i, ResidualBlock* out) { InverseDct(data.dequantized[i], out); },
      "InverseDct scalar/SIMD");
  rows.push_back(TimeKernel("idct", bytes, reps, [&] {
    for (int i = 0; i < blocks; ++i) {
      InverseDct(data.dequantized[i], &res_out[i]);
    }
  }));

  // Sparse IDCT on the blocks that actually take that path in the decoder.
  std::vector<int> sparse;
  for (int i = 0; i < blocks; ++i) {
    if (data.nonzero[i] > 0 && data.nonzero[i] <= kInverseDctSparseThreshold) {
      sparse.push_back(i);
    }
  }
  if (!sparse.empty()) {
    std::vector<ResidualBlock> sparse_out(sparse.size());
    CheckBlockwiseAgreement(
        static_cast<int>(sparse.size()), &sparse_out,
        [&](int i, ResidualBlock* out) {
          InverseDctSparse(data.dequantized[sparse[i]],
                           data.nonzero[sparse[i]], out);
        },
        "InverseDctSparse scalar/SIMD");
    rows.push_back(TimeKernel(
        "idct_sparse", static_cast<double>(sparse.size()) * kBlockPixels,
        reps, [&] {
          for (size_t i = 0; i < sparse.size(); ++i) {
            InverseDctSparse(data.dequantized[sparse[i]],
                             data.nonzero[sparse[i]], &sparse_out[i]);
          }
        }));
  }

  std::vector<LevelBlock> level_out(blocks);
  CheckBlockwiseAgreement(
      blocks, &level_out,
      [&](int i, LevelBlock* out) {
        Quantize(data.coeffs[i], data.qstep, out);
      },
      "Quantize scalar/SIMD");
  rows.push_back(TimeKernel("quant", bytes, reps, [&] {
    for (int i = 0; i < blocks; ++i) {
      Quantize(data.coeffs[i], data.qstep, &level_out[i]);
    }
  }));

  std::vector<CoeffBlock> deq_out(blocks);
  CheckBlockwiseAgreement(
      blocks, &deq_out,
      [&](int i, CoeffBlock* out) {
        Dequantize(data.levels[i], data.qstep, out);
      },
      "Dequantize scalar/SIMD");
  rows.push_back(TimeKernel("dequant", bytes, reps, [&] {
    for (int i = 0; i < blocks; ++i) {
      Dequantize(data.levels[i], data.qstep, &deq_out[i]);
    }
  }));

  return rows;
}

// --------------------------------------------------------- entropy coders

struct EntropyRow {
  std::string name;
  double encode_mbs = 0.0;
  double decode_mbs = 0.0;
  double bits_per_block = 0.0;
};

std::vector<EntropyRow> BenchEntropy(const TransformData& data, int reps) {
  const int blocks = static_cast<int>(data.levels.size());
  const double bytes = static_cast<double>(blocks) * kBlockPixels;
  std::vector<CodedBlock> coded(blocks);
  for (int i = 0; i < blocks; ++i) {
    coded[i].nonzero = data.nonzero[i];
    if (data.nonzero[i] > 0) coded[i].levels = data.levels[i];
  }

  std::vector<EntropyRow> rows;

  // Exp-Golomb.
  EntropyRow eg;
  eg.name = "expgolomb";
  std::vector<uint8_t> eg_bytes;
  eg.encode_mbs = bytes / BestSeconds(reps, [&] {
    BitWriter writer;
    for (int i = 0; i < blocks; ++i) {
      if (coded[i].nonzero == 0) {
        writer.WriteUE(0);
      } else {
        EncodeLevelBlock(coded[i].levels, &writer);
      }
    }
    eg_bytes = writer.Finish();
  }) / 1e6;
  eg.bits_per_block = static_cast<double>(eg_bytes.size()) * 8 / blocks;
  LevelBlock scratch;
  eg.decode_mbs = bytes / BestSeconds(reps, [&] {
    BitReader reader{Slice(eg_bytes)};
    for (int i = 0; i < blocks; ++i) {
      CheckOk(DecodeLevelBlock(&reader, &scratch), "eg decode");
    }
  }) / 1e6;
  // Round-trip check on the last lap's state.
  {
    BitReader reader{Slice(eg_bytes)};
    for (int i = 0; i < blocks; ++i) {
      CheckOk(DecodeLevelBlock(&reader, &scratch), "eg decode");
      Check(coded[i].nonzero == 0 || scratch == coded[i].levels,
            "Exp-Golomb round-trip");
    }
  }
  rows.push_back(eg);

  // Canonical Huffman (per-payload table, as the tile encoder uses it).
  EntropyRow hf;
  hf.name = "huffman";
  HuffmanBlockEncoder encoder;
  for (const CodedBlock& block : coded) encoder.CountBlock(block);
  encoder.Finalize();
  std::vector<uint8_t> hf_bytes;
  hf.encode_mbs = bytes / BestSeconds(reps, [&] {
    BitWriter writer;
    encoder.WriteTable(&writer);
    for (const CodedBlock& block : coded) encoder.WriteBlock(block, &writer);
    hf_bytes = writer.Finish();
  }) / 1e6;
  hf.bits_per_block = static_cast<double>(hf_bytes.size()) * 8 / blocks;
  HuffmanBlockDecoder decoder;
  hf.decode_mbs = bytes / BestSeconds(reps, [&] {
    BitReader reader{Slice(hf_bytes)};
    CheckOk(decoder.Init(&reader), "huffman table");
    for (int i = 0; i < blocks; ++i) {
      CheckOk(decoder.DecodeBlock(&reader, &scratch), "huffman decode");
    }
  }) / 1e6;
  {
    BitReader reader{Slice(hf_bytes)};
    CheckOk(decoder.Init(&reader), "huffman table");
    for (int i = 0; i < blocks; ++i) {
      CheckOk(decoder.DecodeBlock(&reader, &scratch), "huffman decode");
      Check(coded[i].nonzero == 0 || scratch == coded[i].levels,
            "Huffman round-trip");
      Check(coded[i].nonzero != 0 ||
                std::all_of(scratch.begin(), scratch.end(),
                            [](int32_t v) { return v == 0; }),
            "Huffman zero block");
    }
  }
  rows.push_back(hf);
  return rows;
}

std::string Escape(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", v);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  const int blocks = g_smoke ? 512 : 16384;
  const int sad_blocks = g_smoke ? 512 : 32768;
  const int reps = g_smoke ? 2 : 7;

  Banner("M1k: codec kernel throughput (scalar vs SIMD) and entropy coders",
         "expect: multi-x SIMD speedups at bit-identical outputs; Huffman "
         "denser than Exp-Golomb");
  std::printf("compiled SIMD level: %s, active: %s\n",
              simd::LevelName(simd::CompiledLevel()),
              simd::LevelName(simd::ActiveLevel()));

  const bool simd_was_enabled = simd::Enabled();
  std::vector<KernelRow> rows;
  rows.push_back(BenchSad(16, false, sad_blocks, reps));
  rows.push_back(BenchSad(16, true, sad_blocks, reps));
  rows.push_back(BenchSad(8, false, sad_blocks, reps));
  TransformData data = MakeTransformData(blocks);
  for (KernelRow& row : BenchTransforms(data, reps)) {
    rows.push_back(std::move(row));
  }

  bool has_mid_tier = false;
  for (const KernelRow& row : rows) has_mid_tier |= row.sse2_mbs > 0;
  double geomean = 1.0;
  if (has_mid_tier) {
    std::printf("\n%-13s %13s %13s %13s %9s\n", "kernel", "scalar MB/s",
                "sse2 MB/s", "best MB/s", "speedup");
    for (const KernelRow& row : rows) {
      std::printf("%-13s %13.1f %13.1f %13.1f %8.2fx\n", row.name.c_str(),
                  row.scalar_mbs, row.sse2_mbs, row.simd_mbs, row.speedup());
      geomean *= row.speedup();
    }
    geomean = std::pow(geomean, 1.0 / static_cast<double>(rows.size()));
    std::printf("%-13s %51.2fx (geomean)\n", "", geomean);
  } else {
    std::printf("\n%-13s %13s %13s %9s\n", "kernel", "scalar MB/s",
                "SIMD MB/s", "speedup");
    for (const KernelRow& row : rows) {
      std::printf("%-13s %13.1f %13.1f %8.2fx\n", row.name.c_str(),
                  row.scalar_mbs, row.simd_mbs, row.speedup());
      geomean *= row.speedup();
    }
    geomean = std::pow(geomean, 1.0 / static_cast<double>(rows.size()));
    std::printf("%-13s %37.2fx (geomean)\n", "", geomean);
  }

  simd::SetEnabled(true);
  std::vector<EntropyRow> entropy = BenchEntropy(data, reps);
  std::printf("\n%-13s %13s %13s %11s\n", "entropy", "enc MB/s", "dec MB/s",
              "bits/block");
  for (const EntropyRow& row : entropy) {
    std::printf("%-13s %13.1f %13.1f %11.1f\n", row.name.c_str(),
                row.encode_mbs, row.decode_mbs, row.bits_per_block);
  }
  std::printf("Huffman density vs Exp-Golomb: %.1f%% of the bits\n\n",
              100.0 * entropy[1].bits_per_block / entropy[0].bits_per_block);

  simd::SetEnabled(simd_was_enabled);
  if (g_smoke) {
    std::printf("smoke: all scalar/SIMD agreement and round-trip checks "
                "passed\n");
    return 0;
  }

  std::string kernels_json = "{\n  \"best_tier\": \"";
  kernels_json += simd::LevelName(simd::ActiveLevel());
  kernels_json += "\",\n  \"pixel_mb_per_s\": {";
  for (size_t i = 0; i < rows.size(); ++i) {
    char buffer[320];
    if (rows[i].sse2_mbs > 0) {
      std::snprintf(buffer, sizeof(buffer),
                    "%s\n   \"%s\": {\"scalar\": %s, \"sse2\": %s, "
                    "\"best\": %s, \"speedup\": %.2f}",
                    i == 0 ? "" : ",", rows[i].name.c_str(),
                    Escape(rows[i].scalar_mbs).c_str(),
                    Escape(rows[i].sse2_mbs).c_str(),
                    Escape(rows[i].simd_mbs).c_str(), rows[i].speedup());
    } else {
      std::snprintf(buffer, sizeof(buffer),
                    "%s\n   \"%s\": {\"scalar\": %s, \"best\": %s, "
                    "\"speedup\": %.2f}",
                    i == 0 ? "" : ",", rows[i].name.c_str(),
                    Escape(rows[i].scalar_mbs).c_str(),
                    Escape(rows[i].simd_mbs).c_str(), rows[i].speedup());
    }
    kernels_json += buffer;
  }
  char tail[512];
  std::snprintf(
      tail, sizeof(tail),
      "},\n  \"speedup_geomean\": %.2f,\n  \"entropy\": {\n"
      "   \"expgolomb\": {\"encode_mb_per_s\": %s, \"decode_mb_per_s\": %s, "
      "\"bits_per_block\": %.1f},\n"
      "   \"huffman\": {\"encode_mb_per_s\": %s, \"decode_mb_per_s\": %s, "
      "\"bits_per_block\": %.1f}}\n }",
      geomean, Escape(entropy[0].encode_mbs).c_str(),
      Escape(entropy[0].decode_mbs).c_str(), entropy[0].bits_per_block,
      Escape(entropy[1].encode_mbs).c_str(),
      Escape(entropy[1].decode_mbs).c_str(), entropy[1].bits_per_block);
  kernels_json += tail;
  WriteBenchJsonKey("BENCH_codec.json", "kernels", kernels_json);
  return 0;
}
