// E5 — storage overhead and ingest throughput vs quality-ladder size.
//
// Multi-quality storage is the price VisualCloud pays for its bandwidth
// savings. This bench sweeps the number of ladder rungs and reports stored
// bytes (absolute and relative to single-quality) and ingest throughput in
// frames per second.
//
// Expected shape: stored bytes grow sub-linearly in rung count (lower rungs
// are much smaller than the top rung); ingest time grows roughly linearly
// with rungs encoded.

#include "bench_util.h"
#include "codec/quality.h"
#include "common/stopwatch.h"

using namespace vc;
using namespace vc::bench;

int main() {
  Banner("E5: storage & ingest cost vs quality ladder size",
         "expect: stored bytes grow sub-linearly with rungs; ingest time "
         "roughly linearly");

  constexpr int kSeconds = 10;
  BenchDb bench = OpenBenchDb();
  auto scene = CanonicalScene("timelapse");

  std::printf("\n%-7s %12s %10s %12s %12s\n", "rungs", "stored(KB)",
              "x1-rung", "ingest(s)", "ingest fps");

  double single_rung_kb = 0;
  for (int rungs = 1; rungs <= 5; ++rungs) {
    IngestOptions ingest = CanonicalIngest();
    ingest.ladder = CheckOk(MakeQualityLadder(rungs, 14, 42), "ladder");
    std::string name = "timelapse-l" + std::to_string(rungs);

    Stopwatch stopwatch;
    CheckOk(bench.db->IngestScene(name, *scene, kSeconds * kFps, ingest)
                .status(),
            "ingest");
    double seconds = stopwatch.ElapsedSeconds();

    VideoMetadata metadata = CheckOk(bench.db->Describe(name), "describe");
    double kb = metadata.TotalBytes() / 1024.0;
    if (rungs == 1) single_rung_kb = kb;
    std::printf("%-7d %12.1f %9.2fx %12.2f %12.1f\n", rungs, kb,
                kb / single_rung_kb, seconds, kSeconds * kFps / seconds);
  }

  // Cache behaviour while serving: repeated sessions against one video are
  // mostly cache hits — the GOP-granularity buffer pool at work.
  VideoMetadata metadata =
      CheckOk(bench.db->Describe("timelapse-l3"), "describe");
  auto traces = ViewerPopulation(/*seeds_per=*/2, kSeconds);
  for (const HeadTrace& trace : traces) {
    SessionOptions session =
        CanonicalSession(StreamingApproach::kVisualCloud);
    session.evaluate_quality = true;  // forces decode → cell reads
    CheckOk(SimulateSession(bench.db->storage(), metadata, trace, session,
                            scene.get())
                .status(),
            "session");
  }
  CacheStats stats = bench.db->storage()->cache_stats();
  std::printf("\nbuffer pool during %zu serving sessions: %.0f%% hit rate "
              "(%llu hits, %llu misses, %.1f KB resident)\n",
              traces.size(), 100.0 * stats.HitRate(),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              stats.bytes_cached / 1024.0);
  return 0;
}
