// E4 — tiling-configuration sweep.
//
// Finer spatial partitioning lets the server trim out-of-view bytes more
// precisely, but every tile boundary costs compression efficiency (motion
// constrained to the tile, prediction reset at edges, per-tile headers).
// This bench sweeps the grid and reports stored size, full-quality session
// bytes, predicted-session bytes, and savings — exposing where the
// overhead starts eroding the benefit. A second sweep times ladder ingest
// per grid with motion-analysis reuse off and on: the encode cost of finer
// grids and how much of it the hints claw back.

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "image/metrics.h"

using namespace vc;
using namespace vc::bench;

namespace {

struct GridCase {
  int rows, cols;
};

const std::vector<GridCase> kGrids = {{1, 1}, {2, 2}, {2, 4},
                                      {4, 4}, {4, 8}, {8, 8}};

/// Times one ladder ingest of `frames` at `grid` (fresh db per lap, best of
/// `reps`); returns the fastest wall seconds and the SAD evals per search of
/// the final lap.
struct IngestTiming {
  double seconds = 0.0;
  double sad_evals_per_search = 0.0;
};

IngestTiming TimeIngest(const std::vector<Frame>& frames,
                        const GridCase& grid, bool reuse, int reps) {
  IngestOptions ingest = CanonicalIngest();
  ingest.tile_rows = grid.rows;
  ingest.tile_cols = grid.cols;
  ingest.reuse_motion_analysis = reuse;

  IngestTiming timing;
  for (int rep = 0; rep < reps; ++rep) {
    BenchDb bench = OpenBenchDb();
    MetricRegistry::Global().Reset();
    Stopwatch watch;
    CheckOk(bench.db->Ingest("clip", frames, ingest).status(), "ingest");
    double seconds = watch.ElapsedSeconds();
    if (rep == 0 || seconds < timing.seconds) timing.seconds = seconds;
  }
  MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  double searches = SnapshotCounter(snapshot, "codec.search_full") +
                    SnapshotCounter(snapshot, "codec.search_hinted");
  if (searches > 0) {
    timing.sad_evals_per_search =
        SnapshotCounter(snapshot, "codec.sad_evals") / searches;
  }
  return timing;
}

}  // namespace

int main() {
  Banner("E4: savings vs tile grid",
         "expect: savings grow then plateau with tile count while the "
         "stored-size overhead keeps growing");

  auto traces = ViewerPopulation(/*seeds_per=*/3, kVideoSeconds);
  BenchDb bench = OpenBenchDb();
  auto scene = CanonicalScene("venice");

  std::printf("\n%-7s %8s %12s %14s %14s %8s\n", "grid", "tiles",
              "stored(KB)", "mono bytes", "vcloud bytes", "saved");

  std::string savings_json;
  for (const GridCase& grid_case : kGrids) {
    IngestOptions ingest = CanonicalIngest();
    ingest.tile_rows = grid_case.rows;
    ingest.tile_cols = grid_case.cols;
    std::string name = "venice-" + std::to_string(grid_case.rows) + "x" +
                       std::to_string(grid_case.cols);
    CheckOk(
        bench.db->IngestScene(name, *scene, kVideoSeconds * kFps, ingest)
            .status(),
        "ingest");
    VideoMetadata metadata = CheckOk(bench.db->Describe(name), "describe");

    auto mean_bytes = [&](StreamingApproach approach) {
      uint64_t total = 0;
      for (const HeadTrace& trace : traces) {
        SessionOptions session = CanonicalSession(approach);
        auto stats =
            SimulateSession(bench.db->storage(), metadata, trace, session);
        CheckOk(stats.status(), "session");
        total += stats->bytes_sent;
      }
      return total / traces.size();
    };

    uint64_t mono = mean_bytes(StreamingApproach::kMonolithicFull);
    uint64_t vcloud = mean_bytes(StreamingApproach::kVisualCloud);
    double saved = 1.0 - static_cast<double>(vcloud) / mono;
    std::printf("%d x %-3d %8d %12.1f %14llu %14llu %7.0f%%\n",
                grid_case.rows, grid_case.cols,
                grid_case.rows * grid_case.cols,
                metadata.TotalBytes() / 1024.0,
                static_cast<unsigned long long>(mono),
                static_cast<unsigned long long>(vcloud), 100.0 * saved);

    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s  {\"grid\": \"%dx%d\", \"stored_bytes\": %llu, "
                  "\"mono_bytes\": %llu, \"vcloud_bytes\": %llu, "
                  "\"saved\": %.4f}",
                  savings_json.empty() ? "" : ",\n", grid_case.rows,
                  grid_case.cols,
                  static_cast<unsigned long long>(metadata.TotalBytes()),
                  static_cast<unsigned long long>(mono),
                  static_cast<unsigned long long>(vcloud), saved);
    savings_json += row;
  }

  std::printf("\n(1x1 cannot trim anything: 0%% saved by construction)\n");

  // ---- ladder ingest cost per grid, analysis reuse off vs on -------------
  Banner("E4b: ladder ingest cost vs tile grid",
         "expect: finer grids encode faster per search (clipped walks) but "
         "pay per-tile overhead; hints recover most per-rung analysis");

  constexpr int kIngestSeconds = 4;
  constexpr int kReps = 3;
  auto frames = RenderScene(*CanonicalScene("coaster"), kIngestSeconds * kFps);

  std::printf("\n%-7s %14s %14s %9s %16s %16s\n", "grid", "unhinted(s)",
              "hinted(s)", "speedup", "SAD/srch unh.", "SAD/srch hint");
  std::string ingest_json;
  for (const GridCase& grid_case : kGrids) {
    // Interleave modes so machine-load drift hits both equally.
    IngestTiming unhinted, hinted;
    for (int rep = 0; rep < kReps; ++rep) {
      IngestTiming u = TimeIngest(frames, grid_case, /*reuse=*/false, 1);
      IngestTiming h = TimeIngest(frames, grid_case, /*reuse=*/true, 1);
      if (rep == 0 || u.seconds < unhinted.seconds) unhinted.seconds = u.seconds;
      if (rep == 0 || h.seconds < hinted.seconds) hinted.seconds = h.seconds;
      unhinted.sad_evals_per_search = u.sad_evals_per_search;
      hinted.sad_evals_per_search = h.sad_evals_per_search;
    }
    double speedup = unhinted.seconds / hinted.seconds;
    std::printf("%d x %-3d %14.3f %14.3f %8.2fx %16.1f %16.1f\n",
                grid_case.rows, grid_case.cols, unhinted.seconds,
                hinted.seconds, speedup, unhinted.sad_evals_per_search,
                hinted.sad_evals_per_search);

    char row[320];
    std::snprintf(row, sizeof(row),
                  "%s  {\"grid\": \"%dx%d\", \"unhinted_seconds\": %.4f, "
                  "\"hinted_seconds\": %.4f, \"speedup\": %.3f, "
                  "\"unhinted_sad_per_search\": %.2f, "
                  "\"hinted_sad_per_search\": %.2f}",
                  ingest_json.empty() ? "" : ",\n", grid_case.rows,
                  grid_case.cols, unhinted.seconds, hinted.seconds, speedup,
                  unhinted.sad_evals_per_search, hinted.sad_evals_per_search);
    ingest_json += row;
  }
  std::printf("\n");

  std::string json = "{\"experiment\": \"E4-tiling\",\n"
                     " \"savings_by_grid\": [\n" +
                     savings_json +
                     "\n ],\n"
                     " \"ingest_by_grid\": {\"scene\": \"coaster\", "
                     "\"frames\": " +
                     std::to_string(kIngestSeconds * kFps) +
                     ", \"ladder_rungs\": 3,\n  \"runs\": [\n" + ingest_json +
                     "\n ]}}";
  WriteBenchJson("BENCH_tiling.json", json);
  EmitMetricsSnapshot("E4");
  return 0;
}
