// E4 — tiling-configuration sweep.
//
// Finer spatial partitioning lets the server trim out-of-view bytes more
// precisely, but every tile boundary costs compression efficiency (motion
// constrained to the tile, prediction reset at edges, per-tile headers).
// This bench sweeps the grid and reports stored size, full-quality session
// bytes, predicted-session bytes, and savings — exposing where the
// overhead starts eroding the benefit.

#include "bench_util.h"

using namespace vc;
using namespace vc::bench;

int main() {
  Banner("E4: savings vs tile grid",
         "expect: savings grow then plateau with tile count while the "
         "stored-size overhead keeps growing");

  auto traces = ViewerPopulation(/*seeds_per=*/3, kVideoSeconds);
  BenchDb bench = OpenBenchDb();
  auto scene = CanonicalScene("venice");

  struct GridCase {
    int rows, cols;
  };
  const std::vector<GridCase> grids = {{1, 1}, {2, 2}, {2, 4},
                                       {4, 4}, {4, 8}, {8, 8}};

  std::printf("\n%-7s %8s %12s %14s %14s %8s\n", "grid", "tiles",
              "stored(KB)", "mono bytes", "vcloud bytes", "saved");

  for (const GridCase& grid_case : grids) {
    IngestOptions ingest = CanonicalIngest();
    ingest.tile_rows = grid_case.rows;
    ingest.tile_cols = grid_case.cols;
    std::string name = "venice-" + std::to_string(grid_case.rows) + "x" +
                       std::to_string(grid_case.cols);
    CheckOk(
        bench.db->IngestScene(name, *scene, kVideoSeconds * kFps, ingest)
            .status(),
        "ingest");
    VideoMetadata metadata = CheckOk(bench.db->Describe(name), "describe");

    auto mean_bytes = [&](StreamingApproach approach) {
      uint64_t total = 0;
      for (const HeadTrace& trace : traces) {
        SessionOptions session = CanonicalSession(approach);
        auto stats =
            SimulateSession(bench.db->storage(), metadata, trace, session);
        CheckOk(stats.status(), "session");
        total += stats->bytes_sent;
      }
      return total / traces.size();
    };

    uint64_t mono = mean_bytes(StreamingApproach::kMonolithicFull);
    uint64_t vcloud = mean_bytes(StreamingApproach::kVisualCloud);
    std::printf("%d x %-3d %8d %12.1f %14llu %14llu %7.0f%%\n",
                grid_case.rows, grid_case.cols,
                grid_case.rows * grid_case.cols,
                metadata.TotalBytes() / 1024.0,
                static_cast<unsigned long long>(mono),
                static_cast<unsigned long long>(vcloud),
                100.0 * (1.0 - static_cast<double>(vcloud) / mono));
  }

  std::printf("\n(1x1 cannot trim anything: 0%% saved by construction)\n");
  return 0;
}
