// M2 — index microbenchmark: GOP-index random access and buffer-pool
// behaviour.
//
// Expected shape: for small temporal ranges the GOP index reads a tiny
// fraction of the stream's bytes (and is proportionally faster); for a
// whole-stream range it degenerates to the linear read. Cache hit rate
// rises with repeated access.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codec/encoder.h"
#include "storage/monolithic.h"

using namespace vc;
using namespace vc::bench;

namespace {

struct IndexFixtureData {
  std::unique_ptr<Env> env;
  GopIndex index;
  uint32_t frame_count = 0;
  uint64_t file_bytes = 0;
};

IndexFixtureData* BuildFixture() {
  static IndexFixtureData* data = [] {
    auto* fixture = new IndexFixtureData();
    fixture->env = NewMemEnv();
    constexpr int kSeconds = 60;
    auto scene = CanonicalScene("venice");
    auto frames = RenderScene(*scene, kSeconds * kFps);
    EncoderOptions options;
    options.width = kWidth;
    options.height = kHeight;
    options.gop_length = kSegmentFrames;
    options.fps = kFps;
    options.qp = 28;
    auto video = CheckOk(EncodeVideo(frames, options), "encode");
    fixture->frame_count = static_cast<uint32_t>(video.frames.size());
    fixture->file_bytes = video.size_bytes();
    fixture->index = CheckOk(
        WriteMonolithicStream(fixture->env.get(), "/mono.vcc", video),
        "write stream");
    return fixture;
  }();
  return data;
}

void PrintIndexTable() {
  Banner("M2: GOP index random access",
         "expect: indexed reads touch ~range/duration of the bytes; "
         "whole-range reads converge with linear scan");
  IndexFixtureData* fixture = BuildFixture();
  std::printf("\nstream: %u frames, %.1f KB, %zu GOPs\n",
              fixture->frame_count, fixture->file_bytes / 1024.0,
              fixture->index.entries.size());

  struct RangeCase {
    const char* label;
    uint32_t first, last;
  };
  const RangeCase cases[] = {
      {"1 frame   ", 433, 433},
      {"1 second  ", 450, 464},
      {"5 seconds ", 300, 374},
      {"30 seconds", 150, 599},
      {"everything", 0, 899},
  };

  std::printf("%-12s %14s %14s %9s\n", "range", "indexed bytes",
              "linear bytes", "ratio");
  for (const RangeCase& c : cases) {
    auto indexed = CheckOk(
        ReadFrameRangeIndexed(fixture->env.get(), "/mono.vcc",
                              fixture->index, c.first, c.last),
        "indexed read");
    auto linear = CheckOk(ReadFrameRangeLinear(fixture->env.get(),
                                               "/mono.vcc", c.first, c.last),
                          "linear read");
    std::printf("%-12s %14llu %14llu %8.1f%%\n", c.label,
                static_cast<unsigned long long>(indexed.bytes_read),
                static_cast<unsigned long long>(linear.bytes_read),
                100.0 * indexed.bytes_read / linear.bytes_read);
  }
  std::printf("\n");
}

void BM_IndexedRangeRead(benchmark::State& state) {
  IndexFixtureData* fixture = BuildFixture();
  uint32_t span = static_cast<uint32_t>(state.range(0));
  uint32_t first = 150;
  for (auto _ : state) {
    auto result =
        ReadFrameRangeIndexed(fixture->env.get(), "/mono.vcc",
                              fixture->index, first, first + span - 1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_IndexedRangeRead)->Arg(1)->Arg(15)->Arg(150);

void BM_LinearRangeRead(benchmark::State& state) {
  IndexFixtureData* fixture = BuildFixture();
  uint32_t span = static_cast<uint32_t>(state.range(0));
  uint32_t first = 150;
  for (auto _ : state) {
    auto result = ReadFrameRangeLinear(fixture->env.get(), "/mono.vcc",
                                       first, first + span - 1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LinearRangeRead)->Arg(1)->Arg(15)->Arg(150);

void BM_GopIndexLookup(benchmark::State& state) {
  IndexFixtureData* fixture = BuildFixture();
  uint32_t frame = 0;
  for (auto _ : state) {
    auto entry = fixture->index.Lookup(frame);
    benchmark::DoNotOptimize(entry);
    frame = (frame + 37) % fixture->frame_count;
  }
}
BENCHMARK(BM_GopIndexLookup);

}  // namespace

int main(int argc, char** argv) {
  PrintIndexTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
