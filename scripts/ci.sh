#!/usr/bin/env bash
# CI entry point. Runs the repo's verification legs; each leg uses its own
# build tree so they can run independently or all in sequence.
#
#   scripts/ci.sh             # all legs, tier-1 first
#   scripts/ci.sh tier1       # configure + build + full ctest (the gate)
#   scripts/ci.sh release     # Release build + smoke-labeled benches + ctest
#   scripts/ci.sh tsan        # ThreadSanitizer leg: concurrency-prone suites
#   scripts/ci.sh simd        # SIMD matrix: -msse4.1, scalar-only, ASan/UBSan
#
# ctest labels (tests/CMakeLists.txt, bench/CMakeLists.txt) slice the suite:
# unit, query, server, smoke.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

tier1() {
  echo "== tier1: RelWithDebInfo build + full test suite =="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  ctest --test-dir build --output-on-failure -j"$JOBS" --timeout 120
}

release() {
  echo "== release: -O2 build, full ctest, bench smoke legs =="
  cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-rel -j"$JOBS"
  # Optimizer-dependent bugs (UB, uninitialized reads) only surface at -O2.
  ctest --test-dir build-rel --output-on-failure -j"$JOBS" --timeout 120
  # End-to-end bench smokes: server pipeline (single-node, the 4-node
  # sharded-cluster variant with its scale-out determinism check, and the
  # E10 live ingest->serve leg with its live-vs-offline catalog byte-
  # identity check) and query pruned-vs-naive byte-identity (also part of
  # ctest, but run serially here for timing).
  ctest --test-dir build-rel --output-on-failure -L smoke --timeout 600
}

tsan() {
  echo "== tsan: ThreadSanitizer on the concurrency-prone suites =="
  cmake -B build-tsan -S . -DVC_SANITIZE=thread
  cmake --build build-tsan -j"$JOBS" \
    --target server_test storage_test query_test obs_test common_test
  # Where races would live: the single-flight/async cache loader (including
  # oversize rejection and prefetch attribution under concurrency), the
  # tiered L1/L2 path through the sharded store, the prefetcher, the
  # multi-session server scheduler, the query executor's batched async cell
  # fetches, and the sharded metrics registry.
  for t in server_test storage_test query_test obs_test common_test; do
    echo "-- tsan: $t"
    ./build-tsan/tests/"$t"
  done
}

simd() {
  echo "== simd: cross-ISA bit-exactness + memory-safety matrix =="
  # Leg 1: widened baseline ISA (-msse4.1). The codec suite proves every
  # runtime-dispatchable tier (scalar, sse2, avx2 where the host has it)
  # produces bit-identical streams, and the kernel micro-bench smoke
  # re-verifies kernel-level agreement plus both entropy-coder round-trips.
  cmake -B build-sse41 -S . -DCMAKE_CXX_FLAGS=-msse4.1
  cmake --build build-sse41 -j"$JOBS" --target codec_test codec_fuzz_test \
    common_test bench_kernels
  ./build-sse41/tests/codec_test
  ./build-sse41/tests/codec_fuzz_test
  ./build-sse41/tests/common_test
  ./build-sse41/bench/bench_kernels --smoke

  # Leg 2: scalar-only build (-DVC_DISABLE_SIMD=ON removes every intrinsics
  # path at compile time). The same codec suite passing here pins the scalar
  # fallbacks as the reference the vector tiers are measured against.
  cmake -B build-scalar -S . -DVC_DISABLE_SIMD=ON
  cmake --build build-scalar -j"$JOBS" --target codec_test codec_fuzz_test
  ./build-scalar/tests/codec_test
  ./build-scalar/tests/codec_fuzz_test

  # Leg 3: ASan + UBSan over the deterministic fuzz corpora — the codec
  # bitstream (truncated and bit-flipped streams), the VCMPD manifest
  # parser (plan + live overlays), the VCMF container box walker, the
  # query text parser (truncations, token surgery, integer-overflow
  # arguments), and the VCVIEW materialized-view definition parser — plus
  # the kernel/bit-IO suites. Out-of-bounds reads in any decoder or
  # misaligned vector loads fail loudly here.
  cmake -B build-asan -S . -DVC_SANITIZE=address+undefined
  cmake --build build-asan -j"$JOBS" --target codec_fuzz_test codec_test \
    common_test manifest_fuzz_test container_fuzz_test query_fuzz_test \
    view_fuzz_test
  ./build-asan/tests/codec_fuzz_test
  ./build-asan/tests/codec_test
  ./build-asan/tests/common_test
  ./build-asan/tests/manifest_fuzz_test
  ./build-asan/tests/container_fuzz_test
  ./build-asan/tests/query_fuzz_test
  ./build-asan/tests/view_fuzz_test
}

case "${1:-all}" in
  tier1)   tier1 ;;
  release) release ;;
  tsan)    tsan ;;
  simd)    simd ;;
  all)     tier1; release; tsan; simd ;;
  *)
    echo "usage: scripts/ci.sh [tier1|release|tsan|simd|all]" >&2
    exit 2
    ;;
esac
