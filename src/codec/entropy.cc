#include "codec/entropy.h"

namespace vc {

int EncodeLevelBlock(const LevelBlock& levels, BitWriter* writer) {
  // The count is order-independent, so scan in raster order — no zigzag
  // indirection, and the loop vectorizes.
  int nonzero = 0;
  for (int i = 0; i < kBlockPixels; ++i) {
    if (levels[i] != 0) ++nonzero;
  }
  writer->WriteUE(static_cast<uint64_t>(nonzero));
  const auto& zigzag = ZigzagOrder();
  int run = 0;
  int remaining = nonzero;
  for (int i = 0; i < kBlockPixels && remaining > 0; ++i) {
    int32_t level = levels[zigzag[i]];
    if (level == 0) {
      ++run;
      continue;
    }
    writer->WriteUE(static_cast<uint64_t>(run));
    writer->WriteSE(level);
    run = 0;
    --remaining;
  }
  return nonzero;
}

Status DecodeLevelBlock(BitReader* reader, LevelBlock* levels,
                        int* nonzero_count) {
  levels->fill(0);
  const auto& zigzag = ZigzagOrder();
  uint64_t nonzero;
  VC_RETURN_IF_ERROR(reader->ReadUE(&nonzero));
  if (nonzero > kBlockPixels) {
    return Status::Corruption("level block claims too many coefficients");
  }
  int position = 0;
  for (uint64_t i = 0; i < nonzero; ++i) {
    uint64_t run;
    VC_RETURN_IF_ERROR(reader->ReadUE(&run));
    int64_t level;
    VC_RETURN_IF_ERROR(reader->ReadSE(&level));
    position += static_cast<int>(run);
    if (position >= kBlockPixels || level == 0) {
      return Status::Corruption("level block run past end");
    }
    if (level < INT32_MIN || level > INT32_MAX) {
      return Status::Corruption("level magnitude out of range");
    }
    (*levels)[zigzag[position]] = static_cast<int32_t>(level);
    ++position;
  }
  if (nonzero_count != nullptr) *nonzero_count = static_cast<int>(nonzero);
  return Status::OK();
}

}  // namespace vc
