#include "codec/entropy.h"

#include <algorithm>
#include <bit>
#include <queue>
#include <utility>

namespace vc {

namespace {

/// Bit cost of WriteUE(value).
inline uint64_t UeLength(uint64_t value) {
  int bits = 64 - std::countl_zero(value + 1);
  return 2 * static_cast<uint64_t>(bits) - 1;
}

/// Bit cost of WriteSE(value).
inline uint64_t SeLength(int64_t value) {
  uint64_t mapped = value > 0 ? static_cast<uint64_t>(value) * 2 - 1
                              : static_cast<uint64_t>(-value) * 2;
  return UeLength(mapped);
}

inline uint32_t LevelMagnitude(int32_t level) {
  return level < 0 ? 0u - static_cast<uint32_t>(level)
                   : static_cast<uint32_t>(level);
}

/// Streams one buffered block as (symbol, level, run) tokens — the single
/// definition of the token syntax, shared by the histogram pass and the emit
/// pass so they can never disagree.
template <typename Fn>
void TokenizeBlock(const CodedBlock& block, Fn&& fn) {
  if (block.nonzero == 0) {
    fn(kHuffmanEob, int32_t{0}, 0);
    return;
  }
  const auto& zigzag = ZigzagOrder();
  int run = 0;
  int remaining = block.nonzero;
  int after_last = 0;
  for (int i = 0; i < kBlockPixels && remaining > 0; ++i) {
    int32_t level = block.levels[zigzag[i]];
    if (level == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      fn(kHuffmanZrl, int32_t{0}, 0);
      run -= 16;
    }
    uint32_t magnitude = LevelMagnitude(level);
    int size = 32 - std::countl_zero(magnitude);
    if (size <= kHuffmanMaxCodeLength) {
      fn(2 + run * kHuffmanMaxCodeLength + (size - 1), level, run);
    } else {
      fn(kHuffmanEscape, level, run);
    }
    run = 0;
    --remaining;
    after_last = i + 1;
  }
  if (after_last < kBlockPixels) fn(kHuffmanEob, int32_t{0}, 0);
}

/// Computes Huffman code lengths for the `present` symbols under weights `w`
/// (all > 0). Deterministic: ties in the merge heap break on node creation
/// order, so identical histograms always yield identical lengths.
void BuildLengths(const std::array<uint64_t, kHuffmanAlphabetSize>& w,
                  const std::vector<int>& present,
                  std::array<uint8_t, kHuffmanAlphabetSize>* length) {
  const int n = static_cast<int>(present.size());
  if (n == 1) {
    (*length)[present[0]] = 1;
    return;
  }
  using Node = std::pair<uint64_t, int>;  // (weight, node id), min-heap
  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> heap;
  std::vector<int> parent(2 * n - 1, -1);
  for (int i = 0; i < n; ++i) heap.emplace(w[present[i]], i);
  int next = n;
  while (heap.size() > 1) {
    Node a = heap.top();
    heap.pop();
    Node b = heap.top();
    heap.pop();
    parent[a.second] = next;
    parent[b.second] = next;
    heap.emplace(a.first + b.first, next);
    ++next;
  }
  for (int i = 0; i < n; ++i) {
    int depth = 0;
    for (int p = parent[i]; p != -1; p = parent[p]) ++depth;
    (*length)[present[i]] = static_cast<uint8_t>(depth);
  }
}

}  // namespace

int EncodeLevelBlock(const LevelBlock& levels, BitWriter* writer) {
  // The count is order-independent, so scan in raster order — no zigzag
  // indirection, and the loop vectorizes.
  int nonzero = 0;
#pragma omp simd reduction(+ : nonzero)
  for (int i = 0; i < kBlockPixels; ++i) {
    if (levels[i] != 0) ++nonzero;
  }
  writer->WriteUE(static_cast<uint64_t>(nonzero));
  const auto& zigzag = ZigzagOrder();
  int run = 0;
  int remaining = nonzero;
  for (int i = 0; i < kBlockPixels && remaining > 0; ++i) {
    int32_t level = levels[zigzag[i]];
    if (level == 0) {
      ++run;
      continue;
    }
    writer->WriteUE(static_cast<uint64_t>(run));
    writer->WriteSE(level);
    run = 0;
    --remaining;
  }
  return nonzero;
}

Status DecodeLevelBlock(BitReader* reader, LevelBlock* levels,
                        int* nonzero_count) {
  levels->fill(0);
  const auto& zigzag = ZigzagOrder();
  uint64_t nonzero;
  VC_RETURN_IF_ERROR(reader->ReadUE(&nonzero));
  if (nonzero > kBlockPixels) {
    return Status::Corruption("level block claims too many coefficients");
  }
  int position = 0;
  for (uint64_t i = 0; i < nonzero; ++i) {
    uint64_t run;
    VC_RETURN_IF_ERROR(reader->ReadUE(&run));
    int64_t level;
    VC_RETURN_IF_ERROR(reader->ReadSE(&level));
    position += static_cast<int>(run);
    if (run >= kBlockPixels || position >= kBlockPixels || level == 0) {
      return Status::Corruption("level block run past end");
    }
    if (level < INT32_MIN || level > INT32_MAX) {
      return Status::Corruption("level magnitude out of range");
    }
    (*levels)[zigzag[position]] = static_cast<int32_t>(level);
    ++position;
  }
  if (nonzero_count != nullptr) *nonzero_count = static_cast<int>(nonzero);
  return Status::OK();
}

void HuffmanBlockEncoder::CountBlock(const CodedBlock& block) {
  TokenizeBlock(block, [this](int symbol, int32_t level, int run) {
    ++freq_[symbol];
    if (symbol >= 2 && symbol < kHuffmanEscape) {
      amplitude_bits_ += static_cast<uint64_t>((symbol - 2) % 16 + 1);
    } else if (symbol == kHuffmanEscape) {
      amplitude_bits_ += UeLength(static_cast<uint64_t>(run)) + SeLength(level);
    }
  });
  // Exact Exp-Golomb cost of this block, mirroring EncodeLevelBlock.
  eg_bits_ += UeLength(static_cast<uint64_t>(block.nonzero));
  if (block.nonzero > 0) {
    const auto& zigzag = ZigzagOrder();
    int run = 0;
    int remaining = block.nonzero;
    for (int i = 0; i < kBlockPixels && remaining > 0; ++i) {
      int32_t level = block.levels[zigzag[i]];
      if (level == 0) {
        ++run;
        continue;
      }
      eg_bits_ += UeLength(static_cast<uint64_t>(run)) + SeLength(level);
      run = 0;
      --remaining;
    }
  }
}

bool HuffmanBlockEncoder::Finalize() {
  std::vector<int> present;
  present.reserve(64);
  for (int s = 0; s < kHuffmanAlphabetSize; ++s) {
    if (freq_[s] > 0) present.push_back(s);
  }
  if (present.empty()) return false;

  // Build lengths; if any exceeds the 16-bit ceiling, flatten the histogram
  // (halving preserves relative order, keeps every weight ≥ 1) and rebuild.
  // Each round shrinks the weight spread, so depth ≤ 16 is reached quickly.
  std::array<uint64_t, kHuffmanAlphabetSize> weights = freq_;
  while (true) {
    BuildLengths(weights, present, &length_);
    int max_length = 0;
    for (int s : present) max_length = std::max(max_length, int{length_[s]});
    if (max_length <= kHuffmanMaxCodeLength) break;
    for (int s : present) weights[s] = (weights[s] + 1) >> 1;
  }

  // Canonical code assignment: codes ordered by (length, symbol).
  std::array<int32_t, kHuffmanMaxCodeLength + 1> count{};
  for (int s : present) ++count[length_[s]];
  std::array<uint32_t, kHuffmanMaxCodeLength + 2> next{};
  uint32_t code = 0;
  for (int len = 1; len <= kHuffmanMaxCodeLength; ++len) {
    next[len] = code;
    code = (code + static_cast<uint32_t>(count[len])) << 1;
  }
  for (int len = 1; len <= kHuffmanMaxCodeLength; ++len) {
    for (int s : present) {
      if (length_[s] == len) code_[s] = next[len]++;
    }
  }

  table_bits_ = UeLength(present.size() - 1);
  int prev = -1;
  for (int s : present) {
    table_bits_ += UeLength(static_cast<uint64_t>(s - prev - 1)) + 4;
    prev = s;
  }
  token_bits_ = amplitude_bits_;
  for (int s : present) token_bits_ += freq_[s] * length_[s];
  return huffman_bits() < eg_bits_;
}

void HuffmanBlockEncoder::WriteTable(BitWriter* writer) const {
  int present = 0;
  for (int s = 0; s < kHuffmanAlphabetSize; ++s) present += freq_[s] > 0;
  writer->WriteUE(static_cast<uint64_t>(present - 1));
  int prev = -1;
  for (int s = 0; s < kHuffmanAlphabetSize; ++s) {
    if (freq_[s] == 0) continue;
    writer->WriteUE(static_cast<uint64_t>(s - prev - 1));
    writer->WriteBits(static_cast<uint64_t>(length_[s] - 1), 4);
    prev = s;
  }
}

void HuffmanBlockEncoder::WriteBlock(const CodedBlock& block,
                                     BitWriter* writer) const {
  TokenizeBlock(block, [this, writer](int symbol, int32_t level, int run) {
    writer->WriteBits(code_[symbol], length_[symbol]);
    if (symbol >= 2 && symbol < kHuffmanEscape) {
      int size = (symbol - 2) % 16 + 1;
      uint32_t magnitude = LevelMagnitude(level);
      uint64_t extra = magnitude - (uint64_t{1} << (size - 1));
      uint64_t sign = level < 0 ? 1 : 0;
      writer->WriteBits((sign << (size - 1)) | extra, size);
    } else if (symbol == kHuffmanEscape) {
      writer->WriteUE(static_cast<uint64_t>(run));
      writer->WriteSE(level);
    }
  });
}

Status HuffmanBlockDecoder::Init(BitReader* reader) {
  uint64_t present_minus_one;
  VC_RETURN_IF_ERROR(reader->ReadUE(&present_minus_one));
  if (present_minus_one >= kHuffmanAlphabetSize) {
    return Status::Corruption("huffman table symbol count out of range");
  }
  const int present = static_cast<int>(present_minus_one) + 1;

  first_code_.fill(0);
  count_.fill(0);
  offset_.fill(0);
  lut_.fill(LutEntry{});
  sorted_.clear();

  std::vector<std::pair<int, int>> symbols;  // (symbol, length), ascending
  symbols.reserve(present);
  int prev = -1;
  uint64_t kraft = 0;
  for (int i = 0; i < present; ++i) {
    uint64_t delta;
    VC_RETURN_IF_ERROR(reader->ReadUE(&delta));
    // Bound the delta before any signed cast: ReadUE can return values up to
    // 2^64-2, which would wrap negative and slip past the range check below.
    if (delta >= kHuffmanAlphabetSize) {
      return Status::Corruption("huffman table symbol delta out of range");
    }
    const int64_t symbol = int64_t{prev} + 1 + static_cast<int64_t>(delta);
    if (symbol >= kHuffmanAlphabetSize) {
      return Status::Corruption("huffman table symbol out of range");
    }
    uint64_t length_minus_one;
    VC_RETURN_IF_ERROR(reader->ReadBits(4, &length_minus_one));
    int length = static_cast<int>(length_minus_one) + 1;
    symbols.emplace_back(static_cast<int>(symbol), length);
    ++count_[length];
    kraft += uint64_t{1} << (kHuffmanMaxCodeLength - length);
    prev = static_cast<int>(symbol);
  }
  if (kraft > (uint64_t{1} << kHuffmanMaxCodeLength)) {
    return Status::Corruption("huffman table violates kraft inequality");
  }

  // Canonical reconstruction, same (length, symbol) order as the encoder.
  uint32_t code = 0;
  int index = 0;
  sorted_.reserve(present);
  for (int len = 1; len <= kHuffmanMaxCodeLength; ++len) {
    first_code_[len] = static_cast<int32_t>(code);
    offset_[len] = index;
    for (const auto& [symbol, length] : symbols) {
      if (length != len) continue;
      sorted_.push_back(static_cast<uint16_t>(symbol));
      if (len <= kLutBits) {
        uint32_t base = code << (kLutBits - len);
        uint32_t span = uint32_t{1} << (kLutBits - len);
        for (uint32_t j = 0; j < span; ++j) {
          lut_[base + j] =
              LutEntry{static_cast<int16_t>(symbol), static_cast<uint8_t>(len)};
        }
      }
      ++code;
      ++index;
    }
    code <<= 1;
  }
  return Status::OK();
}

Status HuffmanBlockDecoder::DecodeSymbol(BitReader* reader,
                                         int* symbol) const {
  const uint64_t peek = reader->PeekBits(kLutBits);
  const LutEntry& entry = lut_[peek];
  if (entry.length != 0) {
    VC_RETURN_IF_ERROR(reader->SkipBits(entry.length));
    *symbol = entry.symbol;
    return Status::OK();
  }
  const uint64_t window = reader->PeekBits(kHuffmanMaxCodeLength);
  for (int len = kLutBits + 1; len <= kHuffmanMaxCodeLength; ++len) {
    auto candidate =
        static_cast<int32_t>(window >> (kHuffmanMaxCodeLength - len));
    int32_t rank = candidate - first_code_[len];
    if (rank >= 0 && rank < count_[len]) {
      VC_RETURN_IF_ERROR(reader->SkipBits(len));
      *symbol = sorted_[offset_[len] + rank];
      return Status::OK();
    }
  }
  return Status::Corruption("invalid huffman code");
}

Status HuffmanBlockDecoder::DecodeBlock(BitReader* reader, LevelBlock* levels,
                                        int* nonzero_count) const {
  levels->fill(0);
  const auto& zigzag = ZigzagOrder();
  int position = 0;
  int nonzero = 0;
  while (position < kBlockPixels) {
    int symbol;
    VC_RETURN_IF_ERROR(DecodeSymbol(reader, &symbol));
    if (symbol < 0 || symbol >= kHuffmanAlphabetSize) {
      return Status::Corruption("huffman symbol out of range");
    }
    if (symbol == kHuffmanEob) break;
    if (symbol == kHuffmanZrl) {
      position += 16;
      if (position > kBlockPixels) {
        return Status::Corruption("huffman zero run past block end");
      }
      continue;
    }
    int run;
    int64_t level;
    if (symbol == kHuffmanEscape) {
      uint64_t raw_run;
      VC_RETURN_IF_ERROR(reader->ReadUE(&raw_run));
      VC_RETURN_IF_ERROR(reader->ReadSE(&level));
      if (raw_run >= kBlockPixels || level == 0 || level < INT32_MIN ||
          level > INT32_MAX) {
        return Status::Corruption("huffman escape token invalid");
      }
      run = static_cast<int>(raw_run);
    } else {
      run = (symbol - 2) / 16;
      const int size = (symbol - 2) % 16 + 1;
      uint64_t amplitude;
      VC_RETURN_IF_ERROR(reader->ReadBits(size, &amplitude));
      const uint64_t sign = amplitude >> (size - 1);
      const uint64_t extra = amplitude & ((uint64_t{1} << (size - 1)) - 1);
      const auto magnitude =
          static_cast<int64_t>((uint64_t{1} << (size - 1)) | extra);
      level = sign != 0 ? -magnitude : magnitude;
    }
    position += run;
    if (position >= kBlockPixels) {
      return Status::Corruption("huffman run past block end");
    }
    (*levels)[zigzag[position]] = static_cast<int32_t>(level);
    ++position;
    ++nonzero;
  }
  if (nonzero_count != nullptr) *nonzero_count = nonzero;
  return Status::OK();
}

}  // namespace vc
