#include "codec/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vc {
namespace simd {
namespace {

Level DetectCompiledLevel() {
#if defined(VC_SIMD_NEON)
  return Level::kNeon;
#elif defined(VC_SIMD_X86_AVX2_DISPATCH)
  // AVX2 kernel variants are compiled in via per-function `target`
  // attributes even when the baseline ISA is SSE2; the capability probe
  // below decides whether they may actually run.
  return Level::kAvx2;
#elif defined(VC_SIMD_X86_SSE41)
  return Level::kSse41;
#elif defined(VC_SIMD_X86)
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

// Runtime capability guard: a binary carrying code for a wider ISA than the
// host supports must fall back to a narrower tier instead of faulting on an
// illegal instruction. SSE2 is architectural on x86-64 and NEON on aarch64,
// so only the optional extensions need a probe.
bool HostSupports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
#if defined(VC_SIMD_X86)
    case Level::kSse2:
      return true;
    case Level::kSse41:
#if defined(__GNUC__) || defined(__clang__)
      return __builtin_cpu_supports("sse4.1") != 0;
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(__GNUC__) || defined(__clang__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
#elif defined(VC_SIMD_NEON)
    case Level::kNeon:
      return true;
#endif
    default:
      return false;
  }
}

/// The strongest compiled-in tier this host can execute. The baseline tier
/// (SSE2/NEON) is architectural, so on x86 this is at least kSse2 whenever
/// any vector path is compiled in.
Level DetectHostLevel() {
  Level best = Level::kScalar;
  for (Level level : {Level::kSse2, Level::kSse41, Level::kAvx2,
                      Level::kNeon}) {
    if (level <= DetectCompiledLevel() && HostSupports(level)) best = level;
  }
  return best;
}

Level ParseLevelName(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(name, "sse2") == 0) return Level::kSse2;
  if (std::strcmp(name, "sse4.1") == 0) return Level::kSse41;
  if (std::strcmp(name, "avx2") == 0) return Level::kAvx2;
  if (std::strcmp(name, "neon") == 0) return Level::kNeon;
  // Unrecognized values fail safe: a user setting VC_SIMD is trying to cap or
  // disable SIMD, so a typo must not silently run the full vector paths.
  // Warn once — the cap is evaluated from several startup initializers.
  static const bool warned = [name] {
    std::fprintf(stderr,
                 "vc: unrecognized VC_SIMD value '%s' (expected off, scalar, "
                 "sse2, sse4.1, avx2, or neon); forcing scalar\n",
                 name);
    return true;
  }();
  (void)warned;
  return Level::kScalar;
}

Level InitialLevelCap() {
  const char* env = std::getenv("VC_SIMD");
  if (env == nullptr) return Level::kNeon;  // strongest tier == no cap
  if (std::strcmp(env, "off") == 0) return Level::kScalar;
  return ParseLevelName(env);
}

bool SimdUsable() {
#if defined(VC_SIMD_ANY)
  // VC_SIMD=off|scalar is a hard kill: SetEnabled(true) cannot override it.
  if (InitialLevelCap() == Level::kScalar) return false;
  return DetectHostLevel() > Level::kScalar;
#else
  return false;
#endif
}

// Evaluated once; SetEnabled(true) may not exceed this, and SetLevelCap
// cannot raise ActiveLevel above what the host supports.
const bool g_usable = SimdUsable();
const Level g_host_level = DetectHostLevel();

std::atomic<Level> g_level_cap{InitialLevelCap()};

}  // namespace

namespace internal {
std::atomic<bool> g_enabled{SimdUsable() &&
                            InitialLevelCap() > Level::kScalar};
}  // namespace internal

Level CompiledLevel() { return DetectCompiledLevel(); }

Level ActiveLevel() {
  if (!Enabled()) return Level::kScalar;
  const Level cap = g_level_cap.load(std::memory_order_relaxed);
  return g_host_level < cap ? g_host_level : cap;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kSse41:
      return "sse4.1";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

Level SetLevelCap(Level level) {
  g_level_cap.store(level, std::memory_order_relaxed);
  return ActiveLevel();
}

Level LevelCap() { return g_level_cap.load(std::memory_order_relaxed); }

bool SetEnabled(bool enabled) {
  const bool value = enabled && g_usable;
  internal::g_enabled.store(value, std::memory_order_relaxed);
  return value;
}

}  // namespace simd
}  // namespace vc
