#include "codec/encoder.h"

#include <cmath>
#include <cstdlib>

#include "codec/mb_common.h"
#include "common/math_util.h"

namespace vc {

using codec_internal::kMbSize;

Status EncoderOptions::Validate() const {
  if (width <= 0 || height <= 0 || width % kMbSize != 0 ||
      height % kMbSize != 0 || width > 65535 || height > 65535) {
    return Status::InvalidArgument(
        "frame dimensions must be positive multiples of 16 and < 64Ki");
  }
  if (fps <= 0 || fps > 600) {
    return Status::InvalidArgument("fps must be in (0, 600]");
  }
  if (gop_length <= 0 || gop_length > 65535) {
    return Status::InvalidArgument("gop_length must be in [1, 65535]");
  }
  if (qp < 0 || qp > kMaxQp) {
    return Status::InvalidArgument("qp must be in [0, 51]");
  }
  if (tile_rows <= 0 || tile_cols <= 0 || tile_rows > 255 || tile_cols > 255) {
    return Status::InvalidArgument("tile grid must be in [1, 255] per axis");
  }
  if (motion_range < 0 || motion_range > 127) {
    return Status::InvalidArgument("motion_range must be in [0, 127]");
  }
  if (target_bitrate_bps < 0 || target_bitrate_bps > 1e12) {
    return Status::InvalidArgument("target bitrate out of range");
  }
  return Status::OK();
}

SequenceHeader EncoderOptions::ToHeader() const {
  SequenceHeader header;
  header.width = static_cast<uint16_t>(width);
  header.height = static_cast<uint16_t>(height);
  header.fps_times_100 = static_cast<uint16_t>(std::lround(fps * 100.0));
  header.gop_length = static_cast<uint16_t>(gop_length);
  header.qp = static_cast<uint8_t>(qp);
  header.tile_rows = static_cast<uint8_t>(tile_rows);
  header.tile_cols = static_cast<uint8_t>(tile_cols);
  header.flags = motion_constrained_tiles
                     ? SequenceHeader::kFlagMotionConstrainedTiles
                     : 0;
  return header;
}

Result<std::unique_ptr<Encoder>> Encoder::Create(
    const EncoderOptions& options) {
  VC_RETURN_IF_ERROR(options.Validate());
  std::vector<TileGrid::PixelRect> rects;
  VC_ASSIGN_OR_RETURN(rects,
                      codec_internal::ComputeTileRects(options.ToHeader()));
  return std::unique_ptr<Encoder>(new Encoder(options, std::move(rects)));
}

Encoder::Encoder(const EncoderOptions& options,
                 std::vector<TileGrid::PixelRect> tile_rects)
    : options_(options),
      tile_rects_(std::move(tile_rects)),
      control_qp_(options.qp),
      recon_(options.width, options.height),
      reference_(options.width, options.height) {}

Result<EncodedFrame> Encoder::Encode(const Frame& frame) {
  if (frame.width() != options_.width || frame.height() != options_.height) {
    return Status::InvalidArgument("frame size does not match encoder");
  }
  FrameType type = FrameType::kInter;
  if (frame_index_ % options_.gop_length == 0 || force_keyframe_) {
    type = FrameType::kIntra;
    force_keyframe_ = false;
  }
  const int frame_qp = NextFrameQp();
  const double qstep = QStepForQp(frame_qp);

  // Encode each tile into its own bit buffer, then assemble the payload:
  // [type:u8][qp:u8][tile offsets:u32 × T][tile payloads].
  std::vector<std::vector<uint8_t>> tile_payloads(tile_rects_.size());
  for (size_t i = 0; i < tile_rects_.size(); ++i) {
    BitWriter writer;
    EncodeTile(frame, tile_rects_[i], type, qstep, &writer);
    tile_payloads[i] = writer.Finish();
  }

  EncodedFrame encoded;
  encoded.type = type;
  auto& out = encoded.payload;
  out.push_back(static_cast<uint8_t>(type));
  out.push_back(static_cast<uint8_t>(frame_qp));
  uint32_t offset =
      2 + static_cast<uint32_t>(tile_payloads.size()) * 4;
  for (const auto& payload : tile_payloads) {
    out.push_back(static_cast<uint8_t>(offset >> 24));
    out.push_back(static_cast<uint8_t>((offset >> 16) & 0xff));
    out.push_back(static_cast<uint8_t>((offset >> 8) & 0xff));
    out.push_back(static_cast<uint8_t>(offset & 0xff));
    offset += static_cast<uint32_t>(payload.size());
  }
  for (const auto& payload : tile_payloads) {
    out.insert(out.end(), payload.begin(), payload.end());
  }

  if (options_.target_bitrate_bps > 0) {
    double budget = options_.target_bitrate_bps / 8.0 / options_.fps;
    double bytes = static_cast<double>(encoded.payload.size());
    backlog_bytes_ += bytes - budget;
    // Walk the control QP toward the rate target: our quantizer roughly
    // halves the rate every +6 QP, so the log2 rate ratio is a QP error.
    // The 1.5 gain (of 6) converges in a few frames without oscillating on
    // the intra/inter frame-size alternation.
    double step = Clamp(1.5 * std::log2(bytes / budget), -3.0, 3.0);
    control_qp_ = Clamp(control_qp_ + step, 0.0,
                        static_cast<double>(kMaxQp));
  }
  reference_ = recon_;
  ++frame_index_;
  return encoded;
}

int Encoder::NextFrameQp() const {
  if (options_.target_bitrate_bps <= 0) return options_.qp;
  // A leaky-bucket term on top of the adaptive control QP repays any
  // accumulated surplus or backlog.
  double budget = options_.target_bitrate_bps / 8.0 / options_.fps;
  double buffer_delta = Clamp(0.2 * backlog_bytes_ / budget, -6.0, 6.0);
  return Clamp(static_cast<int>(std::lround(control_qp_ + buffer_delta)), 0,
               kMaxQp);
}

void Encoder::EncodeTile(const Frame& frame, const TileGrid::PixelRect& rect,
                         FrameType type, double qstep, BitWriter* writer) {
  using namespace codec_internal;  // NOLINT

  const MotionBounds luma_bounds =
      options_.motion_constrained_tiles
          ? BoundsOf(rect)
          : MotionBounds{0, 0, options_.width, options_.height};
  const MotionBounds tile_bounds = BoundsOf(rect);
  const MotionBounds chroma_tile_bounds = ChromaBounds(tile_bounds);

  PlaneView cur_y{frame.y_plane().data(), frame.width()};
  PlaneView cur_u{frame.u_plane().data(), frame.chroma_width()};
  PlaneView cur_v{frame.v_plane().data(), frame.chroma_width()};
  PlaneView ref_y{reference_.y_plane().data(), reference_.width()};
  PlaneView ref_u{reference_.u_plane().data(), reference_.chroma_width()};
  PlaneView ref_v{reference_.v_plane().data(), reference_.chroma_width()};
  PlaneView rec_y{recon_.y_plane().data(), recon_.width()};
  PlaneView rec_u{recon_.u_plane().data(), recon_.chroma_width()};
  PlaneView rec_v{recon_.v_plane().data(), recon_.chroma_width()};

  // Lagrangian weight for motion-vector rate in the mode decision.
  const double lambda = qstep;

  uint8_t pred_y[kMbSize * kMbSize];
  uint8_t pred_c[kBlockSize * kBlockSize];
  uint8_t recon_y[kMbSize * kMbSize];
  uint8_t recon_c[kBlockSize * kBlockSize];

  for (int ly = rect.y; ly < rect.y + rect.height; ly += kMbSize) {
    for (int lx = rect.x; lx < rect.x + rect.width; lx += kMbSize) {
      // --- Mode decision ------------------------------------------------
      bool use_inter = false;
      MotionVector mv{0, 0};
      if (type == FrameType::kInter) {
        uint32_t inter_sad = 0;
        mv = SearchMotion(cur_y, ref_y, lx, ly, kMbSize, options_.motion_range,
                          luma_bounds, &inter_sad);
        double inter_cost =
            inter_sad +
            lambda * (2.0 * (std::abs(mv.dx) + std::abs(mv.dy)) + 2.0);

        // Cheap intra estimate: DC prediction SAD plus a fixed mode cost.
        IntraPredict(rec_y, lx, ly, kMbSize, IntraMode::kDc, tile_bounds,
                     pred_y);
        uint32_t intra_sad = 0;
        for (int row = 0; row < kMbSize; ++row) {
          for (int col = 0; col < kMbSize; ++col) {
            intra_sad += static_cast<uint32_t>(std::abs(
                int{frame.y(lx + col, ly + row)} -
                int{pred_y[row * kMbSize + col]}));
          }
        }
        double intra_cost = intra_sad + lambda * 3.0;
        use_inter = inter_cost <= intra_cost;
      }

      IntraMode intra_mode = IntraMode::kDc;
      if (!use_inter) {
        // Pick the best available intra mode by prediction SAD.
        IntraNeighbors neighbors = IntraAvailability(lx, ly, tile_bounds);
        double best_cost = -1.0;
        for (IntraMode mode :
             {IntraMode::kDc, IntraMode::kHorizontal, IntraMode::kVertical}) {
          if (mode == IntraMode::kHorizontal && !neighbors.left) continue;
          if (mode == IntraMode::kVertical && !neighbors.top) continue;
          IntraPredict(rec_y, lx, ly, kMbSize, mode, tile_bounds, pred_y);
          uint32_t sad = 0;
          for (int row = 0; row < kMbSize; ++row) {
            for (int col = 0; col < kMbSize; ++col) {
              sad += static_cast<uint32_t>(
                  std::abs(int{frame.y(lx + col, ly + row)} -
                           int{pred_y[row * kMbSize + col]}));
            }
          }
          if (best_cost < 0 || sad < best_cost) {
            best_cost = sad;
            intra_mode = mode;
          }
        }
      }

      // --- Syntax -------------------------------------------------------
      if (type == FrameType::kInter) {
        writer->WriteBit(use_inter);
      }
      if (use_inter) {
        writer->WriteSE(mv.dx);
        writer->WriteSE(mv.dy);
      } else {
        writer->WriteBits(static_cast<uint64_t>(intra_mode), 2);
      }

      // --- Luma ----------------------------------------------------------
      if (use_inter) {
        CompensateBlock(ref_y, lx, ly, mv, kMbSize, pred_y);
      } else {
        IntraPredict(rec_y, lx, ly, kMbSize, intra_mode, tile_bounds, pred_y);
      }
      EncodeResidual(cur_y.data + static_cast<size_t>(ly) * cur_y.stride + lx,
                     cur_y.stride, pred_y, kMbSize, qstep, writer, recon_y);
      StoreBlock(recon_y, kMbSize, recon_.y_plane().data(), recon_.width(), lx,
                 ly);

      // --- Chroma ---------------------------------------------------------
      const int cx = lx / 2, cy = ly / 2;
      MotionVector cmv = ChromaVector(mv);
      for (int plane = 0; plane < 2; ++plane) {
        PlaneView cur_c = plane == 0 ? cur_u : cur_v;
        PlaneView ref_c = plane == 0 ? ref_u : ref_v;
        PlaneView rec_c = plane == 0 ? rec_u : rec_v;
        if (use_inter) {
          CompensateBlock(ref_c, cx, cy, cmv, kBlockSize, pred_c);
        } else {
          // Chroma always uses DC intra: cheap and close to optimal for
          // 4:2:0 chroma statistics.
          IntraPredict(rec_c, cx, cy, kBlockSize, IntraMode::kDc,
                       chroma_tile_bounds, pred_c);
        }
        EncodeResidual(
            cur_c.data + static_cast<size_t>(cy) * cur_c.stride + cx,
            cur_c.stride, pred_c, kBlockSize, qstep, writer, recon_c);
        uint8_t* plane_data = plane == 0 ? recon_.u_plane().data()
                                         : recon_.v_plane().data();
        StoreBlock(recon_c, kBlockSize, plane_data, recon_.chroma_width(), cx,
                   cy);
      }
    }
  }
}

Result<EncodedVideo> EncodeVideo(const std::vector<Frame>& frames,
                                 const EncoderOptions& options) {
  std::unique_ptr<Encoder> encoder;
  VC_ASSIGN_OR_RETURN(encoder, Encoder::Create(options));
  EncodedVideo video;
  video.header = encoder->header();
  video.frames.reserve(frames.size());
  for (const Frame& frame : frames) {
    EncodedFrame encoded;
    VC_ASSIGN_OR_RETURN(encoded, encoder->Encode(frame));
    video.frames.push_back(std::move(encoded));
  }
  return video;
}

}  // namespace vc
