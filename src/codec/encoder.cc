#include "codec/encoder.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "codec/entropy.h"
#include "codec/mb_common.h"
#include "common/math_util.h"
#include "obs/metrics.h"

namespace vc {

using codec_internal::kMbSize;

namespace {

/// A hinted inter block whose seeded SAD is at most this is accepted without
/// refining further or re-running the intra estimate: the prediction is
/// already near-perfect, so neither the vector nor the mode decision can
/// plausibly improve. Deliberately tight (mean absolute difference ≤ 2 per
/// luma pixel): a laxer, quantizer-scaled threshold was measured to skip
/// refines that still improve the coarse rungs by several tenths of a dB.
constexpr uint32_t kHintAcceptSad = 2u * kMbSize * kMbSize;

bool HintsCompatible(const MotionHints* hints, const EncoderOptions& options) {
  return hints != nullptr && hints->width == options.width &&
         hints->height == options.height &&
         hints->gop_length == options.gop_length &&
         hints->motion_range == options.motion_range;
}

}  // namespace

Status EncoderOptions::Validate() const {
  if (width <= 0 || height <= 0 || width % kMbSize != 0 ||
      height % kMbSize != 0 || width > 65535 || height > 65535) {
    return Status::InvalidArgument(
        "frame dimensions must be positive multiples of 16 and < 64Ki");
  }
  if (fps <= 0 || fps > 600) {
    return Status::InvalidArgument("fps must be in (0, 600]");
  }
  if (gop_length <= 0 || gop_length > 65535) {
    return Status::InvalidArgument("gop_length must be in [1, 65535]");
  }
  if (qp < 0 || qp > kMaxQp) {
    return Status::InvalidArgument("qp must be in [0, 51]");
  }
  if (tile_rows <= 0 || tile_cols <= 0 || tile_rows > 255 || tile_cols > 255) {
    return Status::InvalidArgument("tile grid must be in [1, 255] per axis");
  }
  if (motion_range < 0 || motion_range > 127) {
    return Status::InvalidArgument("motion_range must be in [0, 127]");
  }
  if (target_bitrate_bps < 0 || target_bitrate_bps > 1e12) {
    return Status::InvalidArgument("target bitrate out of range");
  }
  return Status::OK();
}

SequenceHeader EncoderOptions::ToHeader() const {
  SequenceHeader header;
  header.width = static_cast<uint16_t>(width);
  header.height = static_cast<uint16_t>(height);
  header.fps_times_100 = static_cast<uint16_t>(std::lround(fps * 100.0));
  header.gop_length = static_cast<uint16_t>(gop_length);
  header.qp = static_cast<uint8_t>(qp);
  header.tile_rows = static_cast<uint8_t>(tile_rows);
  header.tile_cols = static_cast<uint8_t>(tile_cols);
  header.flags = motion_constrained_tiles
                     ? SequenceHeader::kFlagMotionConstrainedTiles
                     : 0;
  if (entropy_profile == EntropyProfile::kHuffman) {
    header.flags |= SequenceHeader::kFlagHuffmanEntropy;
  }
  return header;
}

Result<std::unique_ptr<Encoder>> Encoder::Create(
    const EncoderOptions& options) {
  VC_RETURN_IF_ERROR(options.Validate());
  std::vector<TileGrid::PixelRect> rects;
  VC_ASSIGN_OR_RETURN(rects,
                      codec_internal::ComputeTileRects(options.ToHeader()));
  if (options.reuse_hints != nullptr &&
      !HintsCompatible(options.reuse_hints, options)) {
    static Counter* rejects =
        MetricRegistry::Global().GetCounter("codec.hint_geometry_rejects");
    rejects->Add(1);
  }
  return std::unique_ptr<Encoder>(new Encoder(options, std::move(rects)));
}

Encoder::Encoder(const EncoderOptions& options,
                 std::vector<TileGrid::PixelRect> tile_rects)
    : options_(options),
      tile_rects_(std::move(tile_rects)),
      reuse_ok_(HintsCompatible(options.reuse_hints, options)),
      control_qp_(options.qp),
      recon_(options.width, options.height),
      reference_(options.width, options.height) {}

Result<EncodedFrame> Encoder::Encode(const Frame& frame) {
  if (frame.width() != options_.width || frame.height() != options_.height) {
    return Status::InvalidArgument("frame size does not match encoder");
  }
  FrameType type = FrameType::kInter;
  if (frame_index_ % options_.gop_length == 0 || force_keyframe_) {
    type = FrameType::kIntra;
    force_keyframe_ = false;
  }
  const int frame_qp = NextFrameQp();
  const double qstep = QStepForQp(frame_qp);

  // The previous frame's reconstruction becomes the reference by swapping
  // buffers: every tile rect is fully re-encoded below, so recon_ is
  // completely overwritten and a deep copy per frame would be pure waste.
  std::swap(reference_, recon_);

  const int mb_count =
      (options_.width / kMbSize) * (options_.height / kMbSize);
  BlockHint* capture_row = nullptr;
  if (options_.capture_hints != nullptr) {
    MotionHints* hints = options_.capture_hints;
    if (frame_index_ == 0) {
      hints->Clear();
      hints->width = options_.width;
      hints->height = options_.height;
      hints->gop_length = options_.gop_length;
      hints->motion_range = options_.motion_range;
    }
    hints->frames.emplace_back(mb_count);
    capture_row = hints->frames.back().data();
  }
  const BlockHint* reuse_row = nullptr;
  if (reuse_ok_) {
    const auto& hint_frames = options_.reuse_hints->frames;
    if (static_cast<size_t>(frame_index_) < hint_frames.size() &&
        hint_frames[frame_index_].size() == static_cast<size_t>(mb_count)) {
      reuse_row = hint_frames[frame_index_].data();
    }
  }
  frame_stats_ = AnalysisStats{};
  const uint64_t sad_evals_before = scratch_.sad_evals;

  // Encode each tile into its own bit buffer, then assemble the payload:
  // [type:u8][qp:u8][tile offsets:u32 × T][tile payloads].
  std::vector<std::vector<uint8_t>> tile_payloads(tile_rects_.size());
  for (size_t i = 0; i < tile_rects_.size(); ++i) {
    BitWriter writer;
    EncodeTile(frame, tile_rects_[i], type, qstep, reuse_row, capture_row,
               &writer);
    tile_payloads[i] = writer.Finish();
  }

  {
    static Counter* sad_evals =
        MetricRegistry::Global().GetCounter("codec.sad_evals");
    static Counter* full_searches =
        MetricRegistry::Global().GetCounter("codec.search_full");
    static Counter* hinted_searches =
        MetricRegistry::Global().GetCounter("codec.search_hinted");
    static Counter* hints_accepted =
        MetricRegistry::Global().GetCounter("codec.hints_accepted");
    sad_evals->Add(scratch_.sad_evals - sad_evals_before);
    if (frame_stats_.full_searches > 0) {
      full_searches->Add(frame_stats_.full_searches);
    }
    if (frame_stats_.hinted_searches > 0) {
      hinted_searches->Add(frame_stats_.hinted_searches);
    }
    if (frame_stats_.hints_accepted > 0) {
      hints_accepted->Add(frame_stats_.hints_accepted);
    }
  }

  EncodedFrame encoded;
  encoded.type = type;
  auto& out = encoded.payload;
  out.push_back(static_cast<uint8_t>(type));
  out.push_back(static_cast<uint8_t>(frame_qp));
  uint32_t offset =
      2 + static_cast<uint32_t>(tile_payloads.size()) * 4;
  for (const auto& payload : tile_payloads) {
    out.push_back(static_cast<uint8_t>(offset >> 24));
    out.push_back(static_cast<uint8_t>((offset >> 16) & 0xff));
    out.push_back(static_cast<uint8_t>((offset >> 8) & 0xff));
    out.push_back(static_cast<uint8_t>(offset & 0xff));
    offset += static_cast<uint32_t>(payload.size());
  }
  for (const auto& payload : tile_payloads) {
    out.insert(out.end(), payload.begin(), payload.end());
  }

  if (options_.target_bitrate_bps > 0) {
    double budget = options_.target_bitrate_bps / 8.0 / options_.fps;
    double bytes = static_cast<double>(encoded.payload.size());
    backlog_bytes_ += bytes - budget;
    // Walk the control QP toward the rate target: our quantizer roughly
    // halves the rate every +6 QP, so the log2 rate ratio is a QP error.
    // The 1.5 gain (of 6) converges in a few frames without oscillating on
    // the intra/inter frame-size alternation.
    double step = Clamp(1.5 * std::log2(bytes / budget), -3.0, 3.0);
    control_qp_ = Clamp(control_qp_ + step, 0.0,
                        static_cast<double>(kMaxQp));
  }
  ++frame_index_;
  return encoded;
}

int Encoder::NextFrameQp() const {
  if (options_.target_bitrate_bps <= 0) return options_.qp;
  // A leaky-bucket term on top of the adaptive control QP repays any
  // accumulated surplus or backlog.
  double budget = options_.target_bitrate_bps / 8.0 / options_.fps;
  double buffer_delta = Clamp(0.2 * backlog_bytes_ / budget, -6.0, 6.0);
  return Clamp(static_cast<int>(std::lround(control_qp_ + buffer_delta)), 0,
               kMaxQp);
}

namespace {

/// Writes one macroblock's mode/motion syntax (shared by the streaming sink
/// and the Huffman re-emit pass so the two can never drift).
void WriteMbSyntax(FrameType type, bool use_inter, MotionVector mv,
                   IntraMode intra_mode, BitWriter* writer) {
  if (type == FrameType::kInter) {
    writer->WriteBit(use_inter);
  }
  if (use_inter) {
    writer->WriteSE(mv.dx);
    writer->WriteSE(mv.dy);
  } else {
    writer->WriteBits(static_cast<uint64_t>(intra_mode), 2);
  }
}

/// Streaming sink: Exp-Golomb levels written as they are produced. This is
/// the pre-Huffman encode path, byte for byte.
struct DirectSink {
  FrameType type;
  BitWriter* writer;

  void Syntax(bool use_inter, MotionVector mv, IntraMode intra_mode) {
    WriteMbSyntax(type, use_inter, mv, intra_mode, writer);
  }
  void Residual(const uint8_t* cur, int cur_stride, const uint8_t* pred,
                int size, double qstep, uint8_t* recon) {
    codec_internal::EncodeResidual(cur, cur_stride, pred, size, qstep, writer,
                                   recon);
  }
};

/// Buffering sink for the two-pass Huffman profile: syntax decisions and
/// quantized blocks are captured in bitstream order and emitted after the
/// tile-wide histogram has chosen a code.
struct BufferSink {
  struct MbSyntax {
    bool use_inter;
    MotionVector mv;
    IntraMode intra_mode;
  };
  std::vector<MbSyntax> mbs;
  std::vector<CodedBlock> blocks;

  void Syntax(bool use_inter, MotionVector mv, IntraMode intra_mode) {
    mbs.push_back(MbSyntax{use_inter, mv, intra_mode});
  }
  void Residual(const uint8_t* cur, int cur_stride, const uint8_t* pred,
                int size, double qstep, uint8_t* recon) {
    codec_internal::AnalyzeResidual(cur, cur_stride, pred, size, qstep,
                                    &blocks, recon);
  }
};

}  // namespace

void Encoder::EncodeTile(const Frame& frame, const TileGrid::PixelRect& rect,
                         FrameType type, double qstep,
                         const BlockHint* reuse_row, BlockHint* capture_row,
                         BitWriter* writer) {
  if (options_.entropy_profile == EntropyProfile::kExpGolomb) {
    DirectSink sink{type, writer};
    AnalyzeTile(frame, rect, type, qstep, reuse_row, capture_row, &sink);
    return;
  }

  // Huffman profile, pass 1: analyze the whole tile, buffering syntax and
  // quantized blocks in bitstream order. The reconstruction is built here —
  // intra prediction feeds on it — and is entropy-independent, so pass 2 is
  // pure bit emission.
  BufferSink sink;
  AnalyzeTile(frame, rect, type, qstep, reuse_row, capture_row, &sink);

  HuffmanBlockEncoder entropy;
  for (const CodedBlock& block : sink.blocks) entropy.CountBlock(block);
  const bool use_huffman = entropy.Finalize();

  // Pass 2: a leading profile bit records the per-payload choice, then the
  // table (Huffman only) and the macroblock data in the usual order.
  writer->WriteBit(use_huffman);
  if (use_huffman) entropy.WriteTable(writer);
  const size_t blocks_per_mb =
      sink.mbs.empty() ? 0 : sink.blocks.size() / sink.mbs.size();
  // Every macroblock must contribute the same block count (currently 6): the
  // division above truncates otherwise and pass 2 would emit blocks
  // misaligned with the macroblock syntax, an undecodable stream.
  assert(sink.blocks.size() == sink.mbs.size() * blocks_per_mb);
  size_t block_index = 0;
  for (const BufferSink::MbSyntax& mb : sink.mbs) {
    WriteMbSyntax(type, mb.use_inter, mb.mv, mb.intra_mode, writer);
    for (size_t i = 0; i < blocks_per_mb; ++i, ++block_index) {
      const CodedBlock& block = sink.blocks[block_index];
      if (use_huffman) {
        entropy.WriteBlock(block, writer);
      } else if (block.nonzero == 0) {
        // All-zero blocks never fill `levels`; the Exp-Golomb encoding of
        // such a block is exactly UE(0).
        writer->WriteUE(0);
      } else {
        EncodeLevelBlock(block.levels, writer);
      }
    }
  }
}

template <typename Sink>
void Encoder::AnalyzeTile(const Frame& frame, const TileGrid::PixelRect& rect,
                          FrameType type, double qstep,
                          const BlockHint* reuse_row, BlockHint* capture_row,
                          Sink* sink) {
  using namespace codec_internal;  // NOLINT

  const MotionBounds luma_bounds =
      options_.motion_constrained_tiles
          ? BoundsOf(rect)
          : MotionBounds{0, 0, options_.width, options_.height};
  const MotionBounds tile_bounds = BoundsOf(rect);
  const MotionBounds chroma_tile_bounds = ChromaBounds(tile_bounds);

  PlaneView cur_y{frame.y_plane().data(), frame.width()};
  PlaneView cur_u{frame.u_plane().data(), frame.chroma_width()};
  PlaneView cur_v{frame.v_plane().data(), frame.chroma_width()};
  PlaneView ref_y{reference_.y_plane().data(), reference_.width()};
  PlaneView ref_u{reference_.u_plane().data(), reference_.chroma_width()};
  PlaneView ref_v{reference_.v_plane().data(), reference_.chroma_width()};
  PlaneView rec_y{recon_.y_plane().data(), recon_.width()};
  PlaneView rec_u{recon_.u_plane().data(), recon_.chroma_width()};
  PlaneView rec_v{recon_.v_plane().data(), recon_.chroma_width()};

  // Lagrangian weight for motion-vector rate in the mode decision.
  const double lambda = qstep;

  const int mb_cols = options_.width / kMbSize;

  uint8_t pred_y[kMbSize * kMbSize];
  uint8_t pred_c[kBlockSize * kBlockSize];
  uint8_t recon_y[kMbSize * kMbSize];
  uint8_t recon_c[kBlockSize * kBlockSize];
  const PlaneView pred_view{pred_y, kMbSize};

  // SAD of the current source block against the prediction scratch buffer.
  auto pred_sad = [&](int lx, int ly) {
    ++scratch_.sad_evals;
    return BlockSad(cur_y, lx, ly, pred_view, 0, 0, kMbSize);
  };

  for (int ly = rect.y; ly < rect.y + rect.height; ly += kMbSize) {
    for (int lx = rect.x; lx < rect.x + rect.width; lx += kMbSize) {
      const int mb_index = (ly / kMbSize) * mb_cols + (lx / kMbSize);
      const BlockHint* hint =
          reuse_row != nullptr ? &reuse_row[mb_index] : nullptr;

      // --- Mode decision ------------------------------------------------
      bool use_inter = false;
      MotionVector mv{0, 0};
      IntraMode intra_mode = IntraMode::kDc;
      bool intra_mode_known = false;
      uint32_t best_inter_sad = 0;
      if (type == FrameType::kInter) {
        if (hint != nullptr && !hint->use_inter) {
          // The reference rung chose intra here. The mode decision is
          // driven by content, not quantization, so reuse it outright.
          intra_mode = hint->intra_mode;
          intra_mode_known = true;
          ++frame_stats_.hinted_searches;
          ++frame_stats_.hints_accepted;
        } else {
          uint32_t inter_sad = 0;
          if (hint != nullptr) {
            // The reference rung's full search achieved `hint->sad`; once the
            // seeded SAD is within a quantization-noise margin of that, more
            // refinement only chases reference-reconstruction noise. The
            // strict accept below still uses the tight absolute threshold, so
            // a merely-as-good-as-reference vector still faces the intra
            // cross-check.
            uint32_t good_enough = std::max(
                kHintAcceptSad,
                hint->sad + hint->sad / 16 + kMbSize * kMbSize / 4u);
            mv = RefineMotion(cur_y, ref_y, lx, ly, kMbSize,
                              options_.motion_range, luma_bounds, hint->mv,
                              good_enough, &inter_sad, &scratch_);
            ++frame_stats_.hinted_searches;
          } else {
            mv = SearchMotion(cur_y, ref_y, lx, ly, kMbSize,
                              options_.motion_range, luma_bounds, &inter_sad,
                              &scratch_);
            ++frame_stats_.full_searches;
          }
          best_inter_sad = inter_sad;
          if (hint != nullptr && inter_sad <= kHintAcceptSad) {
            // The hinted prediction is already near-perfect; skip the
            // intra cross-check.
            use_inter = true;
          } else {
            double inter_cost =
                inter_sad +
                lambda * (2.0 * (std::abs(mv.dx) + std::abs(mv.dy)) + 2.0);
            // Cheap intra estimate: DC prediction SAD plus a fixed cost.
            IntraPredict(rec_y, lx, ly, kMbSize, IntraMode::kDc, tile_bounds,
                         pred_y);
            double intra_cost = pred_sad(lx, ly) + lambda * 3.0;
            use_inter = inter_cost <= intra_cost;
          }
          if (hint != nullptr && use_inter) ++frame_stats_.hints_accepted;
        }
      }
      // Keyframes deliberately ignore hints: the best intra mode depends on
      // the reconstructed neighbors, which are sharper at the reference
      // rung's finer quantizer, and a mode mismatch on a keyframe propagates
      // through the whole GOP (measured ~0.1 dB at qp 28). The analysis is a
      // handful of prediction SADs — noise next to a motion search — so
      // there is nothing worth reusing here.

      if (!use_inter && !intra_mode_known) {
        // Pick the best available intra mode by prediction SAD.
        IntraNeighbors neighbors = IntraAvailability(lx, ly, tile_bounds);
        double best_cost = -1.0;
        for (IntraMode mode :
             {IntraMode::kDc, IntraMode::kHorizontal, IntraMode::kVertical}) {
          if (mode == IntraMode::kHorizontal && !neighbors.left) continue;
          if (mode == IntraMode::kVertical && !neighbors.top) continue;
          IntraPredict(rec_y, lx, ly, kMbSize, mode, tile_bounds, pred_y);
          uint32_t sad = pred_sad(lx, ly);
          if (best_cost < 0 || sad < best_cost) {
            best_cost = sad;
            intra_mode = mode;
          }
        }
      }

      if (capture_row != nullptr) {
        capture_row[mb_index] =
            BlockHint{use_inter, intra_mode, mv, best_inter_sad};
      }

      // --- Syntax -------------------------------------------------------
      sink->Syntax(use_inter, mv, intra_mode);

      // --- Luma ----------------------------------------------------------
      if (use_inter) {
        CompensateBlock(ref_y, lx, ly, mv, kMbSize, pred_y);
      } else {
        IntraPredict(rec_y, lx, ly, kMbSize, intra_mode, tile_bounds, pred_y);
      }
      sink->Residual(cur_y.data + static_cast<size_t>(ly) * cur_y.stride + lx,
                     cur_y.stride, pred_y, kMbSize, qstep, recon_y);
      StoreBlock(recon_y, kMbSize, recon_.y_plane().data(), recon_.width(), lx,
                 ly);

      // --- Chroma ---------------------------------------------------------
      const int cx = lx / 2, cy = ly / 2;
      MotionVector cmv = ChromaVector(mv);
      for (int plane = 0; plane < 2; ++plane) {
        PlaneView cur_c = plane == 0 ? cur_u : cur_v;
        PlaneView ref_c = plane == 0 ? ref_u : ref_v;
        PlaneView rec_c = plane == 0 ? rec_u : rec_v;
        if (use_inter) {
          CompensateBlock(ref_c, cx, cy, cmv, kBlockSize, pred_c);
        } else {
          // Chroma always uses DC intra: cheap and close to optimal for
          // 4:2:0 chroma statistics.
          IntraPredict(rec_c, cx, cy, kBlockSize, IntraMode::kDc,
                       chroma_tile_bounds, pred_c);
        }
        sink->Residual(
            cur_c.data + static_cast<size_t>(cy) * cur_c.stride + cx,
            cur_c.stride, pred_c, kBlockSize, qstep, recon_c);
        uint8_t* plane_data = plane == 0 ? recon_.u_plane().data()
                                         : recon_.v_plane().data();
        StoreBlock(recon_c, kBlockSize, plane_data, recon_.chroma_width(), cx,
                   cy);
      }
    }
  }
}

Result<EncodedVideo> EncodeVideo(const std::vector<Frame>& frames,
                                 const EncoderOptions& options) {
  std::unique_ptr<Encoder> encoder;
  VC_ASSIGN_OR_RETURN(encoder, Encoder::Create(options));
  EncodedVideo video;
  video.header = encoder->header();
  video.frames.reserve(frames.size());
  for (const Frame& frame : frames) {
    EncodedFrame encoded;
    VC_ASSIGN_OR_RETURN(encoded, encoder->Encode(frame));
    video.frames.push_back(std::move(encoded));
  }
  return video;
}

}  // namespace vc
