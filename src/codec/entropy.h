#ifndef VC_CODEC_ENTROPY_H_
#define VC_CODEC_ENTROPY_H_

#include "codec/transform.h"
#include "common/bitio.h"
#include "common/status.h"

namespace vc {

/// Entropy-codes one quantized 8×8 block: the number of nonzero levels
/// followed by (zero-run, level) pairs in zigzag order, all Exp-Golomb coded.
/// All-zero blocks cost a single UE(0) — typical for well-predicted inter
/// content, which is where the bitrate savings come from. Returns the number
/// of nonzero levels so callers can pick an inverse-transform path without
/// re-scanning the block.
int EncodeLevelBlock(const LevelBlock& levels, BitWriter* writer);

/// Decodes one block written by EncodeLevelBlock. If `nonzero_count` is
/// non-null it receives the number of nonzero levels (from the stream, so the
/// caller avoids a rescan).
Status DecodeLevelBlock(BitReader* reader, LevelBlock* levels,
                        int* nonzero_count = nullptr);

}  // namespace vc

#endif  // VC_CODEC_ENTROPY_H_
