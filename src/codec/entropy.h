#ifndef VC_CODEC_ENTROPY_H_
#define VC_CODEC_ENTROPY_H_

#include <array>
#include <cstdint>
#include <vector>

#include "codec/transform.h"
#include "common/bitio.h"
#include "common/status.h"

namespace vc {

/// Entropy-codes one quantized 8×8 block: the number of nonzero levels
/// followed by (zero-run, level) pairs in zigzag order, all Exp-Golomb coded.
/// All-zero blocks cost a single UE(0) — typical for well-predicted inter
/// content, which is where the bitrate savings come from. Returns the number
/// of nonzero levels so callers can pick an inverse-transform path without
/// re-scanning the block.
int EncodeLevelBlock(const LevelBlock& levels, BitWriter* writer);

/// Decodes one block written by EncodeLevelBlock. If `nonzero_count` is
/// non-null it receives the number of nonzero levels (from the stream, so the
/// caller avoids a rescan).
Status DecodeLevelBlock(BitReader* reader, LevelBlock* levels,
                        int* nonzero_count = nullptr);

/// A quantized block buffered between the encoder's analysis and emit passes
/// (the Huffman profile is two-pass: histogram first, then tokens).
/// `nonzero == 0` means the block is all zero and `levels` was never filled.
struct CodedBlock {
  LevelBlock levels;
  int nonzero = 0;
};

// ---------------------------------------------------------------------------
// Canonical-Huffman profile (EntropyProfile::kHuffman).
//
// Blocks become token sequences over a 259-symbol alphabet:
//   0            EOB — no more nonzeros in this block (omitted when the last
//                nonzero sits at the final zigzag position)
//   1            ZRL — 16 consecutive zeros (repeatable; keeps run ≤ 15)
//   2..257       (run, size): `run` ∈ [0,15] zeros then a level whose
//                magnitude has `size` ∈ [1,16] significant bits; followed by
//                `size` raw amplitude bits (sign, then magnitude minus the
//                leading power of two)
//   258          escape: UE(run) + SE(level) in plain Exp-Golomb, for levels
//                too large for a (run, size) token
//
// Per tile payload the encoder histograms all tokens, builds a canonical code
// (lengths ≤ 16, deterministic tie-breaking), and emits a compact code-length
// table followed by the token stream — or falls back to Exp-Golomb for that
// payload when the table would cost more than it saves (a leading profile bit
// records the choice, so the fallback is transparent to the decoder).
// ---------------------------------------------------------------------------

inline constexpr int kHuffmanAlphabetSize = 259;
inline constexpr int kHuffmanEob = 0;
inline constexpr int kHuffmanZrl = 1;
inline constexpr int kHuffmanEscape = 258;
inline constexpr int kHuffmanMaxCodeLength = 16;

/// \brief Two-pass Huffman encoder for the quantized blocks of one tile
/// payload: CountBlock every block, Finalize once, then WriteTable +
/// WriteBlock in the same block order.
class HuffmanBlockEncoder {
 public:
  /// Accumulates the token histogram (and the exact Exp-Golomb cost of the
  /// same block, for the fallback decision).
  void CountBlock(const CodedBlock& block);

  /// Builds the canonical code from the histogram. Returns true when the
  /// Huffman payload (table + tokens + amplitudes) beats the Exp-Golomb
  /// encoding of the same blocks; callers should fall back when false.
  bool Finalize();

  /// Serializes the code-length table. Requires Finalize().
  void WriteTable(BitWriter* writer) const;

  /// Emits one block's tokens. Requires Finalize(); the block must have been
  /// counted (its symbols must all have codes).
  void WriteBlock(const CodedBlock& block, BitWriter* writer) const;

  /// Total Huffman cost in bits (table + tokens), valid after Finalize().
  uint64_t huffman_bits() const { return table_bits_ + token_bits_; }
  /// Exp-Golomb cost of the same blocks in bits.
  uint64_t expgolomb_bits() const { return eg_bits_; }

 private:
  std::array<uint64_t, kHuffmanAlphabetSize> freq_{};
  std::array<uint8_t, kHuffmanAlphabetSize> length_{};
  std::array<uint32_t, kHuffmanAlphabetSize> code_{};
  uint64_t amplitude_bits_ = 0;
  uint64_t eg_bits_ = 0;
  uint64_t table_bits_ = 0;
  uint64_t token_bits_ = 0;
};

/// \brief Table-driven decoder for blocks written by HuffmanBlockEncoder.
///
/// Init parses the code-length table and builds a primary lookup table
/// (kLutBits bits resolve short codes — the common case — in one peek) plus
/// canonical first-code/offset arrays for longer codes.
class HuffmanBlockDecoder {
 public:
  /// Parses the code-length table at the reader's position and builds decode
  /// tables. Fails on malformed or Kraft-violating tables.
  Status Init(BitReader* reader);

  /// Decodes one block (mirror of HuffmanBlockEncoder::WriteBlock). Writes
  /// the number of nonzero levels to `*nonzero_count` when non-null.
  Status DecodeBlock(BitReader* reader, LevelBlock* levels,
                     int* nonzero_count = nullptr) const;

 private:
  static constexpr int kLutBits = 10;

  Status DecodeSymbol(BitReader* reader, int* symbol) const;

  struct LutEntry {
    int16_t symbol = 0;
    uint8_t length = 0;  // 0 ⇒ not resolvable in kLutBits, take the slow path
  };
  std::array<LutEntry, size_t{1} << kLutBits> lut_{};
  // Canonical decode state per code length: the first code value, the number
  // of codes, and the index of the first symbol in `sorted_`.
  std::array<int32_t, kHuffmanMaxCodeLength + 1> first_code_{};
  std::array<int32_t, kHuffmanMaxCodeLength + 1> count_{};
  std::array<int32_t, kHuffmanMaxCodeLength + 1> offset_{};
  std::vector<uint16_t> sorted_;
};

}  // namespace vc

#endif  // VC_CODEC_ENTROPY_H_
