#ifndef VC_CODEC_ENTROPY_H_
#define VC_CODEC_ENTROPY_H_

#include "codec/transform.h"
#include "common/bitio.h"
#include "common/status.h"

namespace vc {

/// Entropy-codes one quantized 8×8 block: the number of nonzero levels
/// followed by (zero-run, level) pairs in zigzag order, all Exp-Golomb coded.
/// All-zero blocks cost a single UE(0) — typical for well-predicted inter
/// content, which is where the bitrate savings come from.
void EncodeLevelBlock(const LevelBlock& levels, BitWriter* writer);

/// Decodes one block written by EncodeLevelBlock.
Status DecodeLevelBlock(BitReader* reader, LevelBlock* levels);

}  // namespace vc

#endif  // VC_CODEC_ENTROPY_H_
