#include "codec/homomorphic.h"

#include "codec/mb_common.h"

namespace vc {

Result<EncodedVideo> ExtractTileStream(const EncodedVideo& tiled,
                                       TileId tile) {
  if (!tiled.header.motion_constrained_tiles()) {
    return Status::NotSupported(
        "tile extraction requires motion-constrained tiles");
  }
  TileGrid grid = tiled.header.tile_grid();
  if (tile.row < 0 || tile.row >= grid.rows() || tile.col < 0 ||
      tile.col >= grid.cols()) {
    return Status::InvalidArgument("tile id outside stream grid");
  }
  TileGrid::PixelRect rect;
  VC_ASSIGN_OR_RETURN(rect, grid.PixelRectOf(tile, tiled.header.width,
                                             tiled.header.height, 16));
  const int index = grid.IndexOf(tile);

  EncodedVideo out;
  out.header = tiled.header;
  out.header.width = static_cast<uint16_t>(rect.width);
  out.header.height = static_cast<uint16_t>(rect.height);
  out.header.tile_rows = 1;
  out.header.tile_cols = 1;
  out.frames.reserve(tiled.frames.size());

  for (const EncodedFrame& frame : tiled.frames) {
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
    VC_ASSIGN_OR_RETURN(
        ranges, ParseTileOffsets(Slice(frame.payload), grid.tile_count()));
    Slice tile_bytes =
        Slice(frame.payload).Subslice(ranges[index].first,
                                      ranges[index].second);
    EncodedFrame extracted;
    extracted.type = frame.type;
    auto& payload = extracted.payload;
    payload.push_back(frame.payload[0]);  // type
    payload.push_back(frame.payload[1]);  // qp
    uint32_t offset = 2 + 4;              // header + one-entry offset table
    payload.push_back(static_cast<uint8_t>(offset >> 24));
    payload.push_back(static_cast<uint8_t>((offset >> 16) & 0xff));
    payload.push_back(static_cast<uint8_t>((offset >> 8) & 0xff));
    payload.push_back(static_cast<uint8_t>(offset & 0xff));
    payload.insert(payload.end(), tile_bytes.data(),
                   tile_bytes.data() + tile_bytes.size());
    out.frames.push_back(std::move(extracted));
  }
  return out;
}

Result<EncodedVideo> MergeTileStreams(const std::vector<EncodedVideo>& parts,
                                      int rows, int cols, int width,
                                      int height) {
  TileGrid grid(rows, cols);
  if (parts.size() != static_cast<size_t>(grid.tile_count())) {
    return Status::InvalidArgument("need exactly one part per grid tile");
  }
  const EncodedVideo& first = parts[0];
  for (size_t i = 0; i < parts.size(); ++i) {
    const SequenceHeader& h = parts[i].header;
    if (h.tile_rows != 1 || h.tile_cols != 1) {
      return Status::InvalidArgument("parts must be single-tile streams");
    }
    if (!h.motion_constrained_tiles()) {
      return Status::NotSupported("merging requires motion-constrained parts");
    }
    // Flags must match exactly: the merged header carries one flags byte, and
    // e.g. a Huffman-profile tile payload (leading profile bit + table) is
    // not decodable under a header without the flag, or vice versa.
    if (h.gop_length != first.header.gop_length ||
        h.fps_times_100 != first.header.fps_times_100 ||
        h.flags != first.header.flags ||
        parts[i].frames.size() != first.frames.size()) {
      return Status::InvalidArgument("parts disagree on coding parameters");
    }
    TileGrid::PixelRect rect;
    VC_ASSIGN_OR_RETURN(
        rect, grid.PixelRectOf(grid.TileAt(static_cast<int>(i)), width,
                               height, 16));
    if (rect.width != h.width || rect.height != h.height) {
      return Status::InvalidArgument(
          "part dimensions do not match the grid partition");
    }
  }

  EncodedVideo out;
  out.header = first.header;
  out.header.width = static_cast<uint16_t>(width);
  out.header.height = static_cast<uint16_t>(height);
  out.header.tile_rows = static_cast<uint8_t>(rows);
  out.header.tile_cols = static_cast<uint8_t>(cols);
  out.frames.reserve(first.frames.size());

  for (size_t f = 0; f < first.frames.size(); ++f) {
    // Every part must agree on the frame's type and QP bytes.
    uint8_t type = first.frames[f].payload[0];
    uint8_t qp = first.frames[f].payload[1];
    std::vector<Slice> tile_bytes(parts.size());
    for (size_t i = 0; i < parts.size(); ++i) {
      const auto& payload = parts[i].frames[f].payload;
      if (payload.size() < 6 || payload[0] != type || payload[1] != qp) {
        return Status::InvalidArgument(
            "parts disagree on frame type/QP at frame " + std::to_string(f));
      }
      std::vector<std::pair<uint32_t, uint32_t>> ranges;
      VC_ASSIGN_OR_RETURN(ranges, ParseTileOffsets(Slice(payload), 1));
      tile_bytes[i] = Slice(payload).Subslice(ranges[0].first,
                                              ranges[0].second);
    }
    EncodedFrame merged;
    merged.type = static_cast<FrameType>(type);
    auto& payload = merged.payload;
    payload.push_back(type);
    payload.push_back(qp);
    uint32_t offset = 2 + 4 * static_cast<uint32_t>(parts.size());
    for (const Slice& bytes : tile_bytes) {
      payload.push_back(static_cast<uint8_t>(offset >> 24));
      payload.push_back(static_cast<uint8_t>((offset >> 16) & 0xff));
      payload.push_back(static_cast<uint8_t>((offset >> 8) & 0xff));
      payload.push_back(static_cast<uint8_t>(offset & 0xff));
      offset += static_cast<uint32_t>(bytes.size());
    }
    for (const Slice& bytes : tile_bytes) {
      payload.insert(payload.end(), bytes.data(), bytes.data() + bytes.size());
    }
    out.frames.push_back(std::move(merged));
  }
  return out;
}

Result<EncodedVideo> ConcatenateStreams(
    const std::vector<EncodedVideo>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("nothing to concatenate");
  }
  const SequenceHeader& first = parts[0].header;
  EncodedVideo out;
  out.header = first;
  for (const EncodedVideo& part : parts) {
    const SequenceHeader& h = part.header;
    if (h.width != first.width || h.height != first.height ||
        h.tile_rows != first.tile_rows || h.tile_cols != first.tile_cols ||
        h.flags != first.flags || h.fps_times_100 != first.fps_times_100) {
      return Status::InvalidArgument("streams disagree on coding parameters");
    }
    if (part.frames.empty() || part.frames[0].type != FrameType::kIntra) {
      return Status::InvalidArgument(
          "each part must start with a keyframe to concatenate");
    }
    out.frames.insert(out.frames.end(), part.frames.begin(),
                      part.frames.end());
  }
  return out;
}

}  // namespace vc
