#include "codec/quality.h"

#include "codec/transform.h"

namespace vc {

Result<QualityLadder> MakeQualityLadder(int count, int hi_qp, int lo_qp) {
  if (count <= 0 || count > 16) {
    return Status::InvalidArgument("ladder size must be in [1, 16]");
  }
  if (hi_qp < 0 || lo_qp > kMaxQp || hi_qp > lo_qp) {
    return Status::InvalidArgument("ladder QP range invalid");
  }
  QualityLadder ladder;
  for (int i = 0; i < count; ++i) {
    int qp = count == 1
                 ? hi_qp
                 : hi_qp + (lo_qp - hi_qp) * i / (count - 1);
    ladder.push_back({"q" + std::to_string(i), qp});
  }
  return ladder;
}

}  // namespace vc
