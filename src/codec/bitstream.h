#ifndef VC_CODEC_BITSTREAM_H_
#define VC_CODEC_BITSTREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "geometry/tile_grid.h"

namespace vc {

/// Frame coding types.
enum class FrameType : uint8_t {
  kIntra = 0,  ///< Keyframe: decodable in isolation.
  kInter = 1,  ///< Predicted from the previous reconstructed frame.
};

/// Intra prediction modes (per macroblock).
enum class IntraMode : uint8_t { kDc = 0, kHorizontal = 1, kVertical = 2 };

/// \brief How quantized coefficient levels are entropy-coded.
///
/// `kExpGolomb` is the original profile: per-block nonzero count plus
/// (run, level) pairs, all Exp-Golomb. `kHuffman` is the canonical-Huffman
/// profile: each tile payload carries a compact code-length table built from
/// that payload's own (zero-run, level-size) token histogram, followed by the
/// tokens — with a per-payload escape back to Exp-Golomb when the table
/// overhead would not pay for itself, so the profile never loses bitrate.
/// Both profiles code identical quantized levels, so reconstructions (and
/// therefore PSNR) are bit-identical between them.
enum class EntropyProfile : uint8_t { kExpGolomb = 0, kHuffman = 1 };

/// \brief Stream-level parameters, written once at the head of every encoded
/// video stream ("VCC1" bitstream). Everything a decoder needs to begin.
struct SequenceHeader {
  uint16_t width = 0;          ///< Luma width (multiple of 16).
  uint16_t height = 0;         ///< Luma height (multiple of 16).
  uint16_t fps_times_100 = 3000;  ///< Frame rate × 100.
  uint16_t gop_length = 30;    ///< Frames per GOP (first is intra).
  uint8_t qp = 28;             ///< Base quantization parameter.
  uint8_t tile_rows = 1;       ///< Spatial tiling inside the stream.
  uint8_t tile_cols = 1;
  uint8_t flags = 0;  ///< Bit 0: motion constrained to tiles. Bit 1: Huffman
                      ///< entropy profile.

  static constexpr uint8_t kFlagMotionConstrainedTiles = 0x1;
  static constexpr uint8_t kFlagHuffmanEntropy = 0x2;

  bool motion_constrained_tiles() const {
    return (flags & kFlagMotionConstrainedTiles) != 0;
  }
  bool huffman_entropy() const { return (flags & kFlagHuffmanEntropy) != 0; }
  EntropyProfile entropy_profile() const {
    return huffman_entropy() ? EntropyProfile::kHuffman
                             : EntropyProfile::kExpGolomb;
  }
  double fps() const { return fps_times_100 / 100.0; }
  TileGrid tile_grid() const { return TileGrid(tile_rows, tile_cols); }

  /// Serialized size in bytes (fixed).
  static constexpr size_t kSerializedSize = 4 + 2 * 4 + 4;

  /// Writes the 16-byte header (magic "VCC1" + fields).
  std::vector<uint8_t> Serialize() const;

  /// Parses and validates a header; `data` must start with the magic.
  static Result<SequenceHeader> Parse(Slice data);
};

/// \brief One encoded frame: its type plus the payload bytes.
///
/// Payload layout: `[type:u8][qp:u8][tile offsets: u32 × T][tile data]`.
/// The per-frame QP enables rate control; the embedded tile-offset table
/// lets individual tiles be located (and decoded, or byte-copied
/// homomorphically) without parsing the rest.
struct EncodedFrame {
  FrameType type = FrameType::kIntra;
  std::vector<uint8_t> payload;

  size_t size_bytes() const { return payload.size(); }
};

/// Locates the per-tile payload ranges inside an encoded frame.
/// Returns `tile_count` (offset, length) pairs relative to the payload start.
Result<std::vector<std::pair<uint32_t, uint32_t>>> ParseTileOffsets(
    Slice frame_payload, int tile_count);

/// Reads the frame type from an encoded frame payload.
Result<FrameType> ParseFrameType(Slice frame_payload);

/// Reads the per-frame quantization parameter.
Result<int> ParseFrameQp(Slice frame_payload);

/// \brief A fully encoded stream: header plus frames, with helpers to write
/// to / read from a flat byte vector (frames are length-prefixed).
struct EncodedVideo {
  SequenceHeader header;
  std::vector<EncodedFrame> frames;

  /// Total compressed size in bytes (header + length prefixes + payloads).
  size_t size_bytes() const;

  /// Flattens to a self-contained byte stream.
  std::vector<uint8_t> Serialize() const;

  /// Parses a stream produced by Serialize.
  static Result<EncodedVideo> Parse(Slice data);
};

}  // namespace vc

#endif  // VC_CODEC_BITSTREAM_H_
