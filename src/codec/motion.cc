#include "codec/motion.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "codec/simd.h"

namespace vc {

namespace {

/// Fixed-width row SAD. The constant trip count lets the compiler unroll and
/// auto-vectorize (16 lanes map directly onto psadbw-style reductions).
template <int N>
inline uint32_t RowSad(const uint8_t* pa, const uint8_t* pb) {
  uint32_t sad = 0;
  for (int col = 0; col < N; ++col) {
    int diff = int{pa[col]} - int{pb[col]};
    sad += static_cast<uint32_t>(diff < 0 ? -diff : diff);
  }
  return sad;
}

#if defined(VC_SIMD_X86)
/// One 16-pixel row in a single psadbw: |a-b| over 16 unsigned lanes, summed
/// into two 16-bit-safe accumulators, then folded. Exact — SAD is pure
/// integer arithmetic, so this equals RowSad<16> bit for bit.
inline uint32_t RowSad16Simd(const uint8_t* pa, const uint8_t* pb) {
  __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa));
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb));
  return simd::HorizontalSadSum(_mm_sad_epu8(a, b));
}

inline uint32_t RowSad8Simd(const uint8_t* pa, const uint8_t* pb) {
  __m128i a = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(pa));
  __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(pb));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(_mm_sad_epu8(a, b)));
}
#elif defined(VC_SIMD_NEON)
inline uint32_t RowSad16Simd(const uint8_t* pa, const uint8_t* pb) {
  uint8x16_t a = vld1q_u8(pa);
  uint8x16_t b = vld1q_u8(pb);
  return vaddvq_u16(vpaddlq_u8(vabdq_u8(a, b)));
}

inline uint32_t RowSad8Simd(const uint8_t* pa, const uint8_t* pb) {
  uint8x8_t a = vld1_u8(pa);
  uint8x8_t b = vld1_u8(pb);
  return vaddv_u16(vpaddl_u8(vabd_u8(a, b)));
}
#endif

inline uint32_t RowSadGeneric(const uint8_t* pa, const uint8_t* pb, int n) {
  uint32_t sad = 0;
  for (int col = 0; col < n; ++col) {
    int diff = int{pa[col]} - int{pb[col]};
    sad += static_cast<uint32_t>(diff < 0 ? -diff : diff);
  }
  return sad;
}

bool InBounds(int x, int y, int size, const MotionBounds& bounds) {
  return x >= bounds.x0 && y >= bounds.y0 && x + size <= bounds.x1 &&
         y + size <= bounds.y1;
}

/// Shared mechanics of the diamond walk and the seeded refine: candidate
/// bounds/range checks, visited-candidate memoization, early-exit SAD, and
/// eval accounting. Results are identical to evaluating every candidate with
/// a plain BlockSad: a revisited candidate was measured against an equal or
/// larger best cost, and the walk only accepts strict improvements, so
/// skipping the re-evaluation can never change the outcome.
class CandidateWalker {
 public:
  CandidateWalker(PlaneView current, PlaneView reference, int x, int y,
                  int size, int range, const MotionBounds& bounds,
                  MotionSearchScratch* scratch)
      : current_(current),
        reference_(reference),
        x_(x),
        y_(y),
        size_(size),
        range_(range),
        side_(2 * range + 1),
        bounds_(bounds),
        scratch_(scratch) {
    if (scratch_ != nullptr) {
      size_t cells = static_cast<size_t>(side_) * side_;
      if (scratch_->stamps.size() < cells) {
        scratch_->stamps.assign(cells, 0);
        scratch_->generation = 0;
      }
      if (++scratch_->generation == 0) {
        // Generation counter wrapped: stale stamps could alias, so clear.
        std::fill(scratch_->stamps.begin(), scratch_->stamps.end(), 0u);
        scratch_->generation = 1;
      }
    }
  }

  /// Evaluates one candidate displacement (if legal and not yet visited).
  void Try(MotionVector candidate) {
    if (std::abs(candidate.dx) > range_ || std::abs(candidate.dy) > range_) {
      return;
    }
    int rx = x_ + candidate.dx, ry = y_ + candidate.dy;
    if (!InBounds(rx, ry, size_, bounds_)) return;
    if (scratch_ != nullptr) {
      size_t cell = static_cast<size_t>(candidate.dy + range_) * side_ +
                    (candidate.dx + range_);
      if (scratch_->stamps[cell] == scratch_->generation) return;
      scratch_->stamps[cell] = scratch_->generation;
      ++scratch_->sad_evals;
    }
    uint32_t cost = BlockSadBounded(current_, x_, y_, reference_, rx, ry,
                                    size_, best_cost_);
    if (cost < best_cost_) {
      best_cost_ = cost;
      best_ = candidate;
    }
  }

  MotionVector best() const { return best_; }
  uint32_t best_cost() const { return best_cost_; }

 private:
  const PlaneView current_;
  const PlaneView reference_;
  const int x_, y_, size_, range_, side_;
  const MotionBounds bounds_;
  MotionSearchScratch* const scratch_;
  MotionVector best_{0, 0};
  uint32_t best_cost_ = std::numeric_limits<uint32_t>::max();
};

constexpr int kLargeDiamond[8][2] = {{0, -2}, {1, -1}, {2, 0},  {1, 1},
                                     {0, 2},  {-1, 1}, {-2, 0}, {-1, -1}};
constexpr int kSmallDiamond[4][2] = {{0, -1}, {1, 0}, {0, 1}, {-1, 0}};

MotionVector Finish(const CandidateWalker& walker, uint32_t* best_sad) {
  *best_sad = walker.best_cost();
  if (walker.best_cost() == std::numeric_limits<uint32_t>::max()) {
    // No candidate fit in bounds (can't happen for sane tile sizes, but stay
    // safe): fall back to zero motion with a huge SAD so intra wins.
    return MotionVector{0, 0};
  }
  return walker.best();
}

}  // namespace

uint32_t BlockSad(PlaneView a, int ax, int ay, PlaneView b, int bx, int by,
                  int size) {
  uint32_t sad = 0;
  const uint8_t* pa = a.data + static_cast<size_t>(ay) * a.stride + ax;
  const uint8_t* pb = b.data + static_cast<size_t>(by) * b.stride + bx;
#if defined(VC_SIMD_ANY)
  if (simd::Enabled()) {
    if (size == 16) {
      for (int row = 0; row < 16; ++row) {
        sad += RowSad16Simd(pa, pb);
        pa += a.stride;
        pb += b.stride;
      }
      return sad;
    }
    if (size == 8) {
      for (int row = 0; row < 8; ++row) {
        sad += RowSad8Simd(pa, pb);
        pa += a.stride;
        pb += b.stride;
      }
      return sad;
    }
  }
#endif
  for (int row = 0; row < size; ++row) {
    if (size == 16) {
      sad += RowSad<16>(pa, pb);
    } else if (size == 8) {
      sad += RowSad<8>(pa, pb);
    } else {
      sad += RowSadGeneric(pa, pb, size);
    }
    pa += a.stride;
    pb += b.stride;
  }
  return sad;
}

uint32_t BlockSadBounded(PlaneView a, int ax, int ay, PlaneView b, int bx,
                         int by, int size, uint32_t limit) {
  uint32_t sad = 0;
  const uint8_t* pa = a.data + static_cast<size_t>(ay) * a.stride + ax;
  const uint8_t* pb = b.data + static_cast<size_t>(by) * b.stride + bx;
  // The row-granularity early exit survives vectorization: each psadbw folds
  // one whole row, so the running sum (and therefore the partial value
  // returned on abandonment) is identical to the scalar path's.
#if defined(VC_SIMD_ANY)
  if (simd::Enabled()) {
    if (size == 16) {
      for (int row = 0; row < 16; ++row) {
        sad += RowSad16Simd(pa, pb);
        if (sad >= limit) return sad;
        pa += a.stride;
        pb += b.stride;
      }
      return sad;
    }
    if (size == 8) {
      for (int row = 0; row < 8; ++row) {
        sad += RowSad8Simd(pa, pb);
        if (sad >= limit) return sad;
        pa += a.stride;
        pb += b.stride;
      }
      return sad;
    }
  }
#endif
  for (int row = 0; row < size; ++row) {
    if (size == 16) {
      sad += RowSad<16>(pa, pb);
    } else if (size == 8) {
      sad += RowSad<8>(pa, pb);
    } else {
      sad += RowSadGeneric(pa, pb, size);
    }
    if (sad >= limit) return sad;
    pa += a.stride;
    pb += b.stride;
  }
  return sad;
}

MotionVector SearchMotion(PlaneView current, PlaneView reference, int x, int y,
                          int size, int range, const MotionBounds& bounds,
                          uint32_t* best_sad, MotionSearchScratch* scratch) {
  CandidateWalker walker(current, reference, x, y, size, range, bounds,
                         scratch);
  walker.Try(MotionVector{0, 0});

  // Large diamond pattern until the center wins, then a small-diamond refine.
  MotionVector center{0, 0};
  bool improved = true;
  int iterations = 0;
  while (improved && iterations++ < 4 * range) {
    improved = false;
    for (const auto& step : kLargeDiamond) {
      MotionVector before = walker.best();
      walker.Try(MotionVector{center.dx + step[0], center.dy + step[1]});
      if (!(walker.best() == before)) improved = true;
    }
    center = walker.best();
  }
  for (const auto& step : kSmallDiamond) {
    walker.Try(MotionVector{center.dx + step[0], center.dy + step[1]});
  }
  return Finish(walker, best_sad);
}

MotionVector RefineMotion(PlaneView current, PlaneView reference, int x, int y,
                          int size, int range, const MotionBounds& bounds,
                          MotionVector seed, uint32_t good_enough_sad,
                          uint32_t* best_sad, MotionSearchScratch* scratch) {
  CandidateWalker walker(current, reference, x, y, size, range, bounds,
                         scratch);
  // Seed first: a hint from a sibling rung of the same content is usually
  // already at (or one step from) the optimum, so most refines stop after
  // this single evaluation.
  walker.Try(seed);
  if (walker.best_cost() <= good_enough_sad) return Finish(walker, best_sad);
  walker.Try(MotionVector{0, 0});

  // Small-diamond descent from the better of {seed, zero}.
  bool improved = true;
  int iterations = 0;
  while (improved && iterations++ < range) {
    if (walker.best_cost() <= good_enough_sad) break;
    improved = false;
    MotionVector center = walker.best();
    for (const auto& step : kSmallDiamond) {
      MotionVector before = walker.best();
      walker.Try(MotionVector{center.dx + step[0], center.dy + step[1]});
      if (!(walker.best() == before)) improved = true;
    }
  }
  return Finish(walker, best_sad);
}

void CompensateBlock(PlaneView reference, int x, int y, MotionVector mv,
                     int size, uint8_t* out) {
  for (int row = 0; row < size; ++row) {
    const uint8_t* src = reference.data +
                         static_cast<size_t>(y + mv.dy + row) * reference.stride +
                         (x + mv.dx);
    uint8_t* dst = out + static_cast<size_t>(row) * size;
    std::memcpy(dst, src, static_cast<size_t>(size));
  }
}

}  // namespace vc
