#include "codec/motion.h"

#include <cstdlib>
#include <limits>

namespace vc {

uint32_t BlockSad(PlaneView a, int ax, int ay, PlaneView b, int bx, int by,
                  int size) {
  uint32_t sad = 0;
  for (int row = 0; row < size; ++row) {
    const uint8_t* pa = a.data + static_cast<size_t>(ay + row) * a.stride + ax;
    const uint8_t* pb = b.data + static_cast<size_t>(by + row) * b.stride + bx;
    for (int col = 0; col < size; ++col) {
      sad += static_cast<uint32_t>(std::abs(int{pa[col]} - int{pb[col]}));
    }
  }
  return sad;
}

namespace {

bool InBounds(int x, int y, int size, const MotionBounds& bounds) {
  return x >= bounds.x0 && y >= bounds.y0 && x + size <= bounds.x1 &&
         y + size <= bounds.y1;
}

}  // namespace

MotionVector SearchMotion(PlaneView current, PlaneView reference, int x, int y,
                          int size, int range, const MotionBounds& bounds,
                          uint32_t* best_sad) {
  MotionVector best{0, 0};
  uint32_t best_cost = std::numeric_limits<uint32_t>::max();
  if (InBounds(x, y, size, bounds)) {
    best_cost = BlockSad(current, x, y, reference, x, y, size);
  }

  // Large diamond pattern until the center wins, then a small-diamond refine.
  static constexpr int kLarge[8][2] = {{0, -2}, {1, -1}, {2, 0},  {1, 1},
                                       {0, 2},  {-1, 1}, {-2, 0}, {-1, -1}};
  static constexpr int kSmall[4][2] = {{0, -1}, {1, 0}, {0, 1}, {-1, 0}};

  MotionVector center{0, 0};
  // The diamond walk can revisit candidates; the SAD evaluation dominates
  // cost, so a little re-evaluation is cheaper than tracking visited sets.
  bool improved = true;
  int iterations = 0;
  while (improved && iterations++ < 4 * range) {
    improved = false;
    for (const auto& step : kLarge) {
      MotionVector candidate{center.dx + step[0], center.dy + step[1]};
      if (std::abs(candidate.dx) > range || std::abs(candidate.dy) > range) {
        continue;
      }
      int rx = x + candidate.dx, ry = y + candidate.dy;
      if (!InBounds(rx, ry, size, bounds)) continue;
      uint32_t cost = BlockSad(current, x, y, reference, rx, ry, size);
      if (cost < best_cost) {
        best_cost = cost;
        best = candidate;
        improved = true;
      }
    }
    center = best;
  }
  for (const auto& step : kSmall) {
    MotionVector candidate{center.dx + step[0], center.dy + step[1]};
    if (std::abs(candidate.dx) > range || std::abs(candidate.dy) > range) {
      continue;
    }
    int rx = x + candidate.dx, ry = y + candidate.dy;
    if (!InBounds(rx, ry, size, bounds)) continue;
    uint32_t cost = BlockSad(current, x, y, reference, rx, ry, size);
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
    }
  }

  if (best_cost == std::numeric_limits<uint32_t>::max()) {
    // No candidate fit in bounds (can't happen for sane tile sizes, but stay
    // safe): fall back to zero motion with a huge SAD so intra wins.
    *best_sad = best_cost;
    return MotionVector{0, 0};
  }
  *best_sad = best_cost;
  return best;
}

void CompensateBlock(PlaneView reference, int x, int y, MotionVector mv,
                     int size, uint8_t* out) {
  for (int row = 0; row < size; ++row) {
    const uint8_t* src = reference.data +
                         static_cast<size_t>(y + mv.dy + row) * reference.stride +
                         (x + mv.dx);
    uint8_t* dst = out + static_cast<size_t>(row) * size;
    for (int col = 0; col < size; ++col) dst[col] = src[col];
  }
}

}  // namespace vc
