#ifndef VC_CODEC_DECODER_H_
#define VC_CODEC_DECODER_H_

#include <memory>
#include <vector>

#include "codec/bitstream.h"
#include "common/result.h"
#include "geometry/tile_grid.h"
#include "image/frame.h"

namespace vc {

/// \brief Single-stream video decoder.
///
/// Stateful: frames of a stream must be supplied in coding order. With
/// motion-constrained tiles, `DecodeTiles` decodes only a subset of tiles —
/// the mechanism VisualCloud's client uses to reconstruct just the visible
/// region of a monolithic tiled stream (and what the tile index makes cheap:
/// untouched tiles are never even entropy-parsed).
class Decoder {
 public:
  /// Validates the header and creates a decoder.
  static Result<std::unique_ptr<Decoder>> Create(const SequenceHeader& header);

  /// Decodes the next frame in full and returns it.
  Result<Frame> Decode(Slice frame_payload);

  /// Decodes only `tiles` of the next frame into the internal reconstruction
  /// (other tiles keep their previous content). Returns a copy of the
  /// reconstruction.
  Result<Frame> DecodeTiles(Slice frame_payload,
                            const std::vector<TileId>& tiles);

  /// Last reconstructed frame.
  const Frame& reconstructed() const { return recon_; }

  const SequenceHeader& header() const { return header_; }

 private:
  Decoder(const SequenceHeader& header,
          std::vector<TileGrid::PixelRect> tile_rects);

  Status DecodeTilePayload(Slice payload, const TileGrid::PixelRect& rect,
                           FrameType type, double qstep);

  const SequenceHeader header_;
  const std::vector<TileGrid::PixelRect> tile_rects_;
  Frame recon_;
  Frame reference_;
};

/// Convenience: decodes an entire stream to frames.
Result<std::vector<Frame>> DecodeVideo(const EncodedVideo& video);

}  // namespace vc

#endif  // VC_CODEC_DECODER_H_
