#include "codec/mb_common.h"

#include "codec/entropy.h"
#include "common/math_util.h"

namespace vc {
namespace codec_internal {

Result<std::vector<TileGrid::PixelRect>> ComputeTileRects(
    const SequenceHeader& header) {
  TileGrid grid = header.tile_grid();
  std::vector<TileGrid::PixelRect> rects;
  rects.reserve(grid.tile_count());
  for (int i = 0; i < grid.tile_count(); ++i) {
    TileGrid::PixelRect rect;
    VC_ASSIGN_OR_RETURN(
        rect, grid.PixelRectOf(grid.TileAt(i), header.width, header.height,
                               kMbSize));
    if (rect.width < kMbSize || rect.height < kMbSize) {
      return Status::InvalidArgument("tile smaller than one macroblock");
    }
    rects.push_back(rect);
  }
  return rects;
}

IntraNeighbors IntraAvailability(int x, int y, const MotionBounds& bounds) {
  IntraNeighbors n;
  n.top = y > bounds.y0;
  n.left = x > bounds.x0;
  return n;
}

void IntraPredict(PlaneView plane, int x, int y, int size, IntraMode mode,
                  const MotionBounds& bounds, uint8_t* out) {
  IntraNeighbors n = IntraAvailability(x, y, bounds);
  const uint8_t* top_row =
      n.top ? plane.data + static_cast<size_t>(y - 1) * plane.stride + x
            : nullptr;
  switch (mode) {
    case IntraMode::kVertical: {
      for (int row = 0; row < size; ++row) {
        for (int col = 0; col < size; ++col) {
          out[row * size + col] = top_row[col];
        }
      }
      return;
    }
    case IntraMode::kHorizontal: {
      for (int row = 0; row < size; ++row) {
        uint8_t left =
            plane.data[static_cast<size_t>(y + row) * plane.stride + (x - 1)];
        for (int col = 0; col < size; ++col) {
          out[row * size + col] = left;
        }
      }
      return;
    }
    case IntraMode::kDc: {
      int sum = 0;
      int count = 0;
      if (n.top) {
        for (int col = 0; col < size; ++col) sum += top_row[col];
        count += size;
      }
      if (n.left) {
        for (int row = 0; row < size; ++row) {
          sum += plane.data[static_cast<size_t>(y + row) * plane.stride +
                            (x - 1)];
        }
        count += size;
      }
      uint8_t dc =
          count > 0 ? static_cast<uint8_t>((sum + count / 2) / count) : 128;
      for (int i = 0; i < size * size; ++i) out[i] = dc;
      return;
    }
  }
}

void EncodeResidual(const uint8_t* cur, int cur_stride, const uint8_t* pred,
                    int size, double qstep, BitWriter* writer,
                    uint8_t* recon) {
  ResidualBlock residual;
  CoeffBlock coeffs;
  LevelBlock levels;
  for (int by = 0; by < size; by += kBlockSize) {
    for (int bx = 0; bx < size; bx += kBlockSize) {
      for (int row = 0; row < kBlockSize; ++row) {
        for (int col = 0; col < kBlockSize; ++col) {
          int c = cur[static_cast<size_t>(by + row) * cur_stride + bx + col];
          int p = pred[(by + row) * size + bx + col];
          residual[row * kBlockSize + col] = static_cast<int16_t>(c - p);
        }
      }
      ForwardDct(residual, &coeffs);
      Quantize(coeffs, qstep, &levels);
      EncodeLevelBlock(levels, writer);
      // Reconstruct exactly as the decoder will.
      Dequantize(levels, qstep, &coeffs);
      InverseDct(coeffs, &residual);
      for (int row = 0; row < kBlockSize; ++row) {
        for (int col = 0; col < kBlockSize; ++col) {
          int p = pred[(by + row) * size + bx + col];
          recon[(by + row) * size + bx + col] =
              ClampPixel(p + residual[row * kBlockSize + col]);
        }
      }
    }
  }
}

Status DecodeResidual(BitReader* reader, const uint8_t* pred, int size,
                      double qstep, uint8_t* recon) {
  ResidualBlock residual;
  CoeffBlock coeffs;
  LevelBlock levels;
  for (int by = 0; by < size; by += kBlockSize) {
    for (int bx = 0; bx < size; bx += kBlockSize) {
      VC_RETURN_IF_ERROR(DecodeLevelBlock(reader, &levels));
      Dequantize(levels, qstep, &coeffs);
      InverseDct(coeffs, &residual);
      for (int row = 0; row < kBlockSize; ++row) {
        for (int col = 0; col < kBlockSize; ++col) {
          int p = pred[(by + row) * size + bx + col];
          recon[(by + row) * size + bx + col] =
              ClampPixel(p + residual[row * kBlockSize + col]);
        }
      }
    }
  }
  return Status::OK();
}

void StoreBlock(const uint8_t* block, int size, uint8_t* plane, int stride,
                int x, int y) {
  for (int row = 0; row < size; ++row) {
    uint8_t* dst = plane + static_cast<size_t>(y + row) * stride + x;
    const uint8_t* src = block + static_cast<size_t>(row) * size;
    for (int col = 0; col < size; ++col) dst[col] = src[col];
  }
}

}  // namespace codec_internal
}  // namespace vc
