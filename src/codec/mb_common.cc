#include "codec/mb_common.h"

#include <cstring>

#include "codec/entropy.h"
#include "codec/simd.h"
#include "common/math_util.h"

namespace vc {
namespace codec_internal {

Result<std::vector<TileGrid::PixelRect>> ComputeTileRects(
    const SequenceHeader& header) {
  TileGrid grid = header.tile_grid();
  std::vector<TileGrid::PixelRect> rects;
  rects.reserve(grid.tile_count());
  for (int i = 0; i < grid.tile_count(); ++i) {
    TileGrid::PixelRect rect;
    VC_ASSIGN_OR_RETURN(
        rect, grid.PixelRectOf(grid.TileAt(i), header.width, header.height,
                               kMbSize));
    if (rect.width < kMbSize || rect.height < kMbSize) {
      return Status::InvalidArgument("tile smaller than one macroblock");
    }
    rects.push_back(rect);
  }
  return rects;
}

IntraNeighbors IntraAvailability(int x, int y, const MotionBounds& bounds) {
  IntraNeighbors n;
  n.top = y > bounds.y0;
  n.left = x > bounds.x0;
  return n;
}

void IntraPredict(PlaneView plane, int x, int y, int size, IntraMode mode,
                  const MotionBounds& bounds, uint8_t* out) {
  IntraNeighbors n = IntraAvailability(x, y, bounds);
  const uint8_t* top_row =
      n.top ? plane.data + static_cast<size_t>(y - 1) * plane.stride + x
            : nullptr;
  switch (mode) {
    case IntraMode::kVertical: {
      for (int row = 0; row < size; ++row) {
        for (int col = 0; col < size; ++col) {
          out[row * size + col] = top_row[col];
        }
      }
      return;
    }
    case IntraMode::kHorizontal: {
      for (int row = 0; row < size; ++row) {
        uint8_t left =
            plane.data[static_cast<size_t>(y + row) * plane.stride + (x - 1)];
        for (int col = 0; col < size; ++col) {
          out[row * size + col] = left;
        }
      }
      return;
    }
    case IntraMode::kDc: {
      int sum = 0;
      int count = 0;
      if (n.top) {
        for (int col = 0; col < size; ++col) sum += top_row[col];
        count += size;
      }
      if (n.left) {
        for (int row = 0; row < size; ++row) {
          sum += plane.data[static_cast<size_t>(y + row) * plane.stride +
                            (x - 1)];
        }
        count += size;
      }
      uint8_t dc =
          count > 0 ? static_cast<uint8_t>((sum + count / 2) / count) : 128;
      for (int i = 0; i < size * size; ++i) out[i] = dc;
      return;
    }
  }
}

namespace {

/// Copies the prediction into the reconstruction for one transform block —
/// what an all-zero level block reconstructs to.
inline void CopyPredBlock(const uint8_t* pred, int size, int bx, int by,
                          uint8_t* recon) {
  for (int row = 0; row < kBlockSize; ++row) {
    const uint8_t* src = pred + (by + row) * size + bx;
    uint8_t* dst = recon + (by + row) * size + bx;
    std::memcpy(dst, src, kBlockSize);
  }
}

/// Computes one 8×8 residual block (cur − pred) and returns max|residual|.
inline int ComputeResidualBlock(const uint8_t* cur, int cur_stride,
                                const uint8_t* pred, int size, int bx, int by,
                                ResidualBlock* residual) {
#if defined(VC_SIMD_X86)
  if (simd::Enabled()) {
    const __m128i zero = _mm_setzero_si128();
    __m128i max_abs16 = zero;
    for (int row = 0; row < kBlockSize; ++row) {
      __m128i c = _mm_unpacklo_epi8(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
              cur + static_cast<size_t>(by + row) * cur_stride + bx)),
          zero);
      __m128i p = _mm_unpacklo_epi8(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
              pred + (by + row) * size + bx)),
          zero);
      __m128i d = _mm_sub_epi16(c, p);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(&(*residual)[row * kBlockSize]), d);
      // |d| ≤ 255, so max(d, −d) cannot hit the int16 negation edge.
      max_abs16 =
          _mm_max_epi16(max_abs16, _mm_max_epi16(d, _mm_sub_epi16(zero, d)));
    }
    max_abs16 = _mm_max_epi16(max_abs16, _mm_srli_si128(max_abs16, 8));
    max_abs16 = _mm_max_epi16(max_abs16, _mm_srli_si128(max_abs16, 4));
    max_abs16 = _mm_max_epi16(max_abs16, _mm_srli_si128(max_abs16, 2));
    return static_cast<int16_t>(_mm_cvtsi128_si32(max_abs16));
  }
#endif
  int max_abs = 0;
  for (int row = 0; row < kBlockSize; ++row) {
    for (int col = 0; col < kBlockSize; ++col) {
      int c = cur[static_cast<size_t>(by + row) * cur_stride + bx + col];
      int p = pred[(by + row) * size + bx + col];
      int diff = c - p;
      (*residual)[row * kBlockSize + col] = static_cast<int16_t>(diff);
      int abs_diff = diff < 0 ? -diff : diff;
      if (abs_diff > max_abs) max_abs = abs_diff;
    }
  }
  return max_abs;
}

/// Sum of squared residuals. Exact in both paths: pmaddwd products fit in
/// int32 lanes (≤ 16·255² per lane) and the total in int64.
inline int64_t ResidualSsd(const ResidualBlock& residual) {
#if defined(VC_SIMD_X86)
  if (simd::Enabled()) {
    __m128i acc = _mm_setzero_si128();
    for (int i = 0; i < kBlockPixels; i += 8) {
      __m128i d = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(&residual[i]));
      acc = _mm_add_epi32(acc, _mm_madd_epi16(d, d));
    }
    acc = _mm_add_epi32(acc, _mm_srli_si128(acc, 8));
    acc = _mm_add_epi32(acc, _mm_srli_si128(acc, 4));
    return _mm_cvtsi128_si32(acc);
  }
#endif
  int64_t ssd = 0;
#pragma omp simd reduction(+ : ssd)
  for (int i = 0; i < kBlockPixels; ++i) {
    ssd += int{residual[i]} * int{residual[i]};
  }
  return ssd;
}

/// recon = ClampPixel(pred + residual) for one 8×8 block. The saturating
/// 16-bit add followed by the unsigned-saturating pack equals the scalar
/// int-domain clamp for every reachable input (pred ∈ [0,255] and residual ∈
/// [−32768,32767] can overshoot 32767 by at most 255, where both paths pin
/// to 255).
inline void ReconstructBlock(const uint8_t* pred, int size, int bx, int by,
                             const ResidualBlock& residual, uint8_t* recon) {
#if defined(VC_SIMD_X86)
  if (simd::Enabled()) {
    const __m128i zero = _mm_setzero_si128();
    for (int row = 0; row < kBlockSize; ++row) {
      __m128i p = _mm_unpacklo_epi8(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
              pred + (by + row) * size + bx)),
          zero);
      __m128i r = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(&residual[row * kBlockSize]));
      __m128i sum = _mm_adds_epi16(p, r);
      _mm_storel_epi64(
          reinterpret_cast<__m128i*>(recon + (by + row) * size + bx),
          _mm_packus_epi16(sum, sum));
    }
    return;
  }
#endif
  for (int row = 0; row < kBlockSize; ++row) {
    for (int col = 0; col < kBlockSize; ++col) {
      int p = pred[(by + row) * size + bx + col];
      recon[(by + row) * size + bx + col] =
          ClampPixel(p + residual[row * kBlockSize + col]);
    }
  }
}

/// Shared core of EncodeResidual and AnalyzeResidual: transform, quantize,
/// and reconstruct each 8×8 block, handing the quantized result to `sink` as
/// `sink(const LevelBlock* levels, int nonzero)` — `levels == nullptr` for a
/// provably-zero block. The sink is the only difference between writing the
/// stream directly (Exp-Golomb) and buffering for a two-pass profile, so the
/// analysis/reconstruction can never drift between them.
template <typename Sink>
void ForEachResidualBlock(const uint8_t* cur, int cur_stride,
                          const uint8_t* pred, int size, double qstep,
                          uint8_t* recon, Sink&& sink) {
  ResidualBlock residual;
  CoeffBlock coeffs;
  LevelBlock levels;
  // Every DCT coefficient's magnitude is bounded by the residual's L2 norm
  // (Parseval; the basis is orthonormal), itself at most 8·max|residual|.
  // When the bound stays strictly inside the quantizer dead zone
  // (level = 0 iff |X| < 0.6·qstep), every level is provably zero: the
  // block costs one codeword and reconstructs to the prediction, so the
  // transform is skipped outright. A borderline disagreement with the
  // quantizer's own rounding is harmless — both sides of the codec see the
  // same all-zero block either way.
  const double zero_bound = 0.6 * qstep;
  for (int by = 0; by < size; by += kBlockSize) {
    for (int bx = 0; bx < size; bx += kBlockSize) {
      int max_abs =
          ComputeResidualBlock(cur, cur_stride, pred, size, bx, by, &residual);
      bool provably_zero = 8.0 * max_abs < zero_bound;
      if (!provably_zero && max_abs < zero_bound) {
        // Cheap bound failed but the exact L2 bound might not: 64 integer
        // multiplies against a 1024-flop transform.
        provably_zero =
            static_cast<double>(ResidualSsd(residual)) < zero_bound * zero_bound;
      }
      if (provably_zero) {
        sink(static_cast<const LevelBlock*>(nullptr), 0);
        CopyPredBlock(pred, size, bx, by, recon);
        continue;
      }

      ForwardDct(residual, &coeffs);
      Quantize(coeffs, qstep, &levels);
      int nonzero = 0;
      for (int i = 0; i < kBlockPixels; ++i) nonzero += levels[i] != 0;
      sink(&levels, nonzero);
      // Reconstruct exactly as the decoder will, with the same all-zero /
      // sparse / dense inverse-transform dispatch so both reconstructions
      // stay bit-identical.
      if (nonzero == 0) {
        CopyPredBlock(pred, size, bx, by, recon);
        continue;
      }
      Dequantize(levels, qstep, &coeffs);
      if (nonzero <= kInverseDctSparseThreshold) {
        InverseDctSparse(coeffs, nonzero, &residual);
      } else {
        InverseDct(coeffs, &residual);
      }
      ReconstructBlock(pred, size, bx, by, residual, recon);
    }
  }
}

}  // namespace

void EncodeResidual(const uint8_t* cur, int cur_stride, const uint8_t* pred,
                    int size, double qstep, BitWriter* writer,
                    uint8_t* recon) {
  ForEachResidualBlock(cur, cur_stride, pred, size, qstep, recon,
                       [writer](const LevelBlock* levels, int /*nonzero*/) {
                         if (levels == nullptr) {
                           // As EncodeLevelBlock writes an all-zero block.
                           writer->WriteUE(0);
                           return;
                         }
                         EncodeLevelBlock(*levels, writer);
                       });
}

void AnalyzeResidual(const uint8_t* cur, int cur_stride, const uint8_t* pred,
                     int size, double qstep, std::vector<CodedBlock>* blocks,
                     uint8_t* recon) {
  ForEachResidualBlock(cur, cur_stride, pred, size, qstep, recon,
                       [blocks](const LevelBlock* levels, int nonzero) {
                         CodedBlock& block = blocks->emplace_back();
                         block.nonzero = levels == nullptr ? 0 : nonzero;
                         if (block.nonzero > 0) block.levels = *levels;
                       });
}

Status DecodeResidual(BitReader* reader, const uint8_t* pred, int size,
                      double qstep, uint8_t* recon,
                      const HuffmanBlockDecoder* huffman) {
  ResidualBlock residual;
  CoeffBlock coeffs;
  LevelBlock levels;
  for (int by = 0; by < size; by += kBlockSize) {
    for (int bx = 0; bx < size; bx += kBlockSize) {
      // Mirror the encoder's all-zero / sparse / dense dispatch exactly so
      // both reconstructions stay bit-identical.
      int nonzero = 0;
      if (huffman != nullptr) {
        VC_RETURN_IF_ERROR(huffman->DecodeBlock(reader, &levels, &nonzero));
      } else {
        VC_RETURN_IF_ERROR(DecodeLevelBlock(reader, &levels, &nonzero));
      }
      if (nonzero == 0) {
        CopyPredBlock(pred, size, bx, by, recon);
        continue;
      }
      Dequantize(levels, qstep, &coeffs);
      if (nonzero <= kInverseDctSparseThreshold) {
        InverseDctSparse(coeffs, nonzero, &residual);
      } else {
        InverseDct(coeffs, &residual);
      }
      ReconstructBlock(pred, size, bx, by, residual, recon);
    }
  }
  return Status::OK();
}

void StoreBlock(const uint8_t* block, int size, uint8_t* plane, int stride,
                int x, int y) {
  for (int row = 0; row < size; ++row) {
    uint8_t* dst = plane + static_cast<size_t>(y + row) * stride + x;
    const uint8_t* src = block + static_cast<size_t>(row) * size;
    std::memcpy(dst, src, static_cast<size_t>(size));
  }
}

}  // namespace codec_internal
}  // namespace vc
