#include "codec/mb_common.h"

#include "codec/entropy.h"
#include "common/math_util.h"

namespace vc {
namespace codec_internal {

Result<std::vector<TileGrid::PixelRect>> ComputeTileRects(
    const SequenceHeader& header) {
  TileGrid grid = header.tile_grid();
  std::vector<TileGrid::PixelRect> rects;
  rects.reserve(grid.tile_count());
  for (int i = 0; i < grid.tile_count(); ++i) {
    TileGrid::PixelRect rect;
    VC_ASSIGN_OR_RETURN(
        rect, grid.PixelRectOf(grid.TileAt(i), header.width, header.height,
                               kMbSize));
    if (rect.width < kMbSize || rect.height < kMbSize) {
      return Status::InvalidArgument("tile smaller than one macroblock");
    }
    rects.push_back(rect);
  }
  return rects;
}

IntraNeighbors IntraAvailability(int x, int y, const MotionBounds& bounds) {
  IntraNeighbors n;
  n.top = y > bounds.y0;
  n.left = x > bounds.x0;
  return n;
}

void IntraPredict(PlaneView plane, int x, int y, int size, IntraMode mode,
                  const MotionBounds& bounds, uint8_t* out) {
  IntraNeighbors n = IntraAvailability(x, y, bounds);
  const uint8_t* top_row =
      n.top ? plane.data + static_cast<size_t>(y - 1) * plane.stride + x
            : nullptr;
  switch (mode) {
    case IntraMode::kVertical: {
      for (int row = 0; row < size; ++row) {
        for (int col = 0; col < size; ++col) {
          out[row * size + col] = top_row[col];
        }
      }
      return;
    }
    case IntraMode::kHorizontal: {
      for (int row = 0; row < size; ++row) {
        uint8_t left =
            plane.data[static_cast<size_t>(y + row) * plane.stride + (x - 1)];
        for (int col = 0; col < size; ++col) {
          out[row * size + col] = left;
        }
      }
      return;
    }
    case IntraMode::kDc: {
      int sum = 0;
      int count = 0;
      if (n.top) {
        for (int col = 0; col < size; ++col) sum += top_row[col];
        count += size;
      }
      if (n.left) {
        for (int row = 0; row < size; ++row) {
          sum += plane.data[static_cast<size_t>(y + row) * plane.stride +
                            (x - 1)];
        }
        count += size;
      }
      uint8_t dc =
          count > 0 ? static_cast<uint8_t>((sum + count / 2) / count) : 128;
      for (int i = 0; i < size * size; ++i) out[i] = dc;
      return;
    }
  }
}

namespace {

/// Copies the prediction into the reconstruction for one transform block —
/// what an all-zero level block reconstructs to.
inline void CopyPredBlock(const uint8_t* pred, int size, int bx, int by,
                          uint8_t* recon) {
  for (int row = 0; row < kBlockSize; ++row) {
    const uint8_t* src = pred + (by + row) * size + bx;
    uint8_t* dst = recon + (by + row) * size + bx;
    for (int col = 0; col < kBlockSize; ++col) dst[col] = src[col];
  }
}

}  // namespace

void EncodeResidual(const uint8_t* cur, int cur_stride, const uint8_t* pred,
                    int size, double qstep, BitWriter* writer,
                    uint8_t* recon) {
  ResidualBlock residual;
  CoeffBlock coeffs;
  LevelBlock levels;
  // Every DCT coefficient's magnitude is bounded by the residual's L2 norm
  // (Parseval; the basis is orthonormal), itself at most 8·max|residual|.
  // When the bound stays strictly inside the quantizer dead zone
  // (level = 0 iff |X| < 0.6·qstep), every level is provably zero: the
  // block costs one codeword and reconstructs to the prediction, so the
  // transform is skipped outright. A borderline disagreement with the
  // quantizer's own rounding is harmless — both sides of the codec see the
  // same all-zero block either way.
  const double zero_bound = 0.6 * qstep;
  for (int by = 0; by < size; by += kBlockSize) {
    for (int bx = 0; bx < size; bx += kBlockSize) {
      int max_abs = 0;
      for (int row = 0; row < kBlockSize; ++row) {
        for (int col = 0; col < kBlockSize; ++col) {
          int c = cur[static_cast<size_t>(by + row) * cur_stride + bx + col];
          int p = pred[(by + row) * size + bx + col];
          int diff = c - p;
          residual[row * kBlockSize + col] = static_cast<int16_t>(diff);
          int abs_diff = diff < 0 ? -diff : diff;
          if (abs_diff > max_abs) max_abs = abs_diff;
        }
      }
      bool provably_zero = 8.0 * max_abs < zero_bound;
      if (!provably_zero && max_abs < zero_bound) {
        // Cheap bound failed but the exact L2 bound might not: 64 integer
        // multiplies against a 1024-flop transform.
        int64_t ssd = 0;
        for (int i = 0; i < kBlockPixels; ++i) {
          ssd += int{residual[i]} * int{residual[i]};
        }
        provably_zero = static_cast<double>(ssd) < zero_bound * zero_bound;
      }
      if (provably_zero) {
        writer->WriteUE(0);  // as EncodeLevelBlock writes an all-zero block
        CopyPredBlock(pred, size, bx, by, recon);
        continue;
      }

      ForwardDct(residual, &coeffs);
      Quantize(coeffs, qstep, &levels);
      // Reconstruct exactly as the decoder will, with the same all-zero /
      // sparse / dense inverse-transform dispatch so both reconstructions
      // stay bit-identical.
      int nonzero = EncodeLevelBlock(levels, writer);
      if (nonzero == 0) {
        CopyPredBlock(pred, size, bx, by, recon);
        continue;
      }
      Dequantize(levels, qstep, &coeffs);
      if (nonzero <= kInverseDctSparseThreshold) {
        InverseDctSparse(coeffs, nonzero, &residual);
      } else {
        InverseDct(coeffs, &residual);
      }
      for (int row = 0; row < kBlockSize; ++row) {
        for (int col = 0; col < kBlockSize; ++col) {
          int p = pred[(by + row) * size + bx + col];
          recon[(by + row) * size + bx + col] =
              ClampPixel(p + residual[row * kBlockSize + col]);
        }
      }
    }
  }
}

Status DecodeResidual(BitReader* reader, const uint8_t* pred, int size,
                      double qstep, uint8_t* recon) {
  ResidualBlock residual;
  CoeffBlock coeffs;
  LevelBlock levels;
  for (int by = 0; by < size; by += kBlockSize) {
    for (int bx = 0; bx < size; bx += kBlockSize) {
      // Mirror the encoder's all-zero / sparse / dense dispatch exactly so
      // both reconstructions stay bit-identical.
      int nonzero = 0;
      VC_RETURN_IF_ERROR(DecodeLevelBlock(reader, &levels, &nonzero));
      if (nonzero == 0) {
        CopyPredBlock(pred, size, bx, by, recon);
        continue;
      }
      Dequantize(levels, qstep, &coeffs);
      if (nonzero <= kInverseDctSparseThreshold) {
        InverseDctSparse(coeffs, nonzero, &residual);
      } else {
        InverseDct(coeffs, &residual);
      }
      for (int row = 0; row < kBlockSize; ++row) {
        for (int col = 0; col < kBlockSize; ++col) {
          int p = pred[(by + row) * size + bx + col];
          recon[(by + row) * size + bx + col] =
              ClampPixel(p + residual[row * kBlockSize + col]);
        }
      }
    }
  }
  return Status::OK();
}

void StoreBlock(const uint8_t* block, int size, uint8_t* plane, int stride,
                int x, int y) {
  for (int row = 0; row < size; ++row) {
    uint8_t* dst = plane + static_cast<size_t>(y + row) * stride + x;
    const uint8_t* src = block + static_cast<size_t>(row) * size;
    for (int col = 0; col < size; ++col) dst[col] = src[col];
  }
}

}  // namespace codec_internal
}  // namespace vc
