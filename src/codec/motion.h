#ifndef VC_CODEC_MOTION_H_
#define VC_CODEC_MOTION_H_

#include <cstdint>
#include <vector>

namespace vc {

/// An integer-pel motion vector (luma pixels).
struct MotionVector {
  int dx = 0;
  int dy = 0;
  bool operator==(const MotionVector& o) const {
    return dx == o.dx && dy == o.dy;
  }
};

/// \brief A rectangular region a motion-compensated reference block must stay
/// inside. With motion-constrained tile sets this is the tile rectangle, so
/// each tile of a predicted frame depends only on the same tile of the
/// reference frame and remains independently decodable.
struct MotionBounds {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;  ///< exclusive
  int y1 = 0;  ///< exclusive
};

/// \brief View over one image plane for motion search/compensation.
struct PlaneView {
  const uint8_t* data = nullptr;
  int stride = 0;
};

/// Sum of absolute differences between a `size`×`size` block of `a` at
/// (ax, ay) and of `b` at (bx, by). Caller guarantees bounds.
uint32_t BlockSad(PlaneView a, int ax, int ay, PlaneView b, int bx, int by,
                  int size);

/// SAD with a row-granularity early exit: once the running sum reaches
/// `limit` the remaining rows are skipped and the partial sum (≥ `limit`)
/// is returned. A candidate whose SAD cannot beat the current best is
/// abandoned after the first few rows, which is where most of the search
/// cost goes. Exact (equal to BlockSad) whenever the result is < `limit`.
uint32_t BlockSadBounded(PlaneView a, int ax, int ay, PlaneView b, int bx,
                         int by, int size, uint32_t limit);

/// \brief Reusable per-search scratch state, owned by the caller (one per
/// encoder, not per block).
///
/// Memoizes candidate displacements already evaluated during one search so
/// the diamond walk never re-runs a SAD for a revisited position, using
/// generation-stamped cells so the scratch is reset in O(1) between blocks.
/// Also accumulates the number of SAD kernel invocations, which the encoder
/// flushes to the `codec.sad_evals` metric.
struct MotionSearchScratch {
  std::vector<uint32_t> stamps;  ///< (2·range+1)² cells, generation-tagged.
  uint32_t generation = 0;
  uint64_t sad_evals = 0;  ///< Cumulative SAD evaluations (never reset here).
};

/// Diamond-pattern motion search for the `size`×`size` block of `current` at
/// (x, y) against `reference`, starting from (0, 0), with displacement at
/// most `range` in each axis and the referenced block constrained to
/// `bounds`. Returns the best vector and writes its SAD to `*best_sad`.
/// `scratch` (optional) memoizes visited candidates and counts SAD
/// evaluations; results are identical with or without it.
MotionVector SearchMotion(PlaneView current, PlaneView reference, int x, int y,
                          int size, int range, const MotionBounds& bounds,
                          uint32_t* best_sad,
                          MotionSearchScratch* scratch = nullptr);

/// Short motion refinement seeded from a prior analysis (e.g. the same block
/// of a sibling quality rung): evaluates `seed` — returning immediately if
/// its SAD is at most `good_enough_sad` — then (0, 0), then walks a small
/// diamond from the best of the two until no step improves or the threshold
/// is met. Costs one SAD for a good hint instead of a full diamond walk.
/// Pass `good_enough_sad = 0` to always refine to a local optimum. Falls
/// back to the zero vector with SAD = UINT32_MAX when no candidate fits
/// `bounds`, exactly like SearchMotion.
MotionVector RefineMotion(PlaneView current, PlaneView reference, int x, int y,
                          int size, int range, const MotionBounds& bounds,
                          MotionVector seed, uint32_t good_enough_sad,
                          uint32_t* best_sad,
                          MotionSearchScratch* scratch = nullptr);

/// Copies the motion-compensated `size`×`size` reference block at
/// (x + mv.dx, y + mv.dy) into `out` (row-major, `size` stride). The source
/// block must lie within `bounds` (guaranteed by SearchMotion / decoder
/// validation).
void CompensateBlock(PlaneView reference, int x, int y, MotionVector mv,
                     int size, uint8_t* out);

}  // namespace vc

#endif  // VC_CODEC_MOTION_H_
