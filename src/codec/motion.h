#ifndef VC_CODEC_MOTION_H_
#define VC_CODEC_MOTION_H_

#include <cstdint>
#include <vector>

namespace vc {

/// An integer-pel motion vector (luma pixels).
struct MotionVector {
  int dx = 0;
  int dy = 0;
  bool operator==(const MotionVector& o) const {
    return dx == o.dx && dy == o.dy;
  }
};

/// \brief A rectangular region a motion-compensated reference block must stay
/// inside. With motion-constrained tile sets this is the tile rectangle, so
/// each tile of a predicted frame depends only on the same tile of the
/// reference frame and remains independently decodable.
struct MotionBounds {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;  ///< exclusive
  int y1 = 0;  ///< exclusive
};

/// \brief View over one image plane for motion search/compensation.
struct PlaneView {
  const uint8_t* data = nullptr;
  int stride = 0;
};

/// Sum of absolute differences between a `size`×`size` block of `a` at
/// (ax, ay) and of `b` at (bx, by). Caller guarantees bounds.
uint32_t BlockSad(PlaneView a, int ax, int ay, PlaneView b, int bx, int by,
                  int size);

/// Diamond-pattern motion search for the `size`×`size` block of `current` at
/// (x, y) against `reference`, starting from (0, 0), with displacement at
/// most `range` in each axis and the referenced block constrained to
/// `bounds`. Returns the best vector and writes its SAD to `*best_sad`.
MotionVector SearchMotion(PlaneView current, PlaneView reference, int x, int y,
                          int size, int range, const MotionBounds& bounds,
                          uint32_t* best_sad);

/// Copies the motion-compensated `size`×`size` reference block at
/// (x + mv.dx, y + mv.dy) into `out` (row-major, `size` stride). The source
/// block must lie within `bounds` (guaranteed by SearchMotion / decoder
/// validation).
void CompensateBlock(PlaneView reference, int x, int y, MotionVector mv,
                     int size, uint8_t* out);

}  // namespace vc

#endif  // VC_CODEC_MOTION_H_
