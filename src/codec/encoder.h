#ifndef VC_CODEC_ENCODER_H_
#define VC_CODEC_ENCODER_H_

#include <memory>
#include <vector>

#include "codec/bitstream.h"
#include "common/bitio.h"
#include "common/result.h"
#include "geometry/tile_grid.h"
#include "image/frame.h"

namespace vc {

/// \brief Configuration of an encoding session.
///
/// VisualCloud's quality ladder is expressed purely through `qp`: every
/// (segment, tile) cell is encoded once per ladder rung with a different QP.
struct EncoderOptions {
  int width = 0;        ///< Luma width; multiple of 16, ≤ 65535.
  int height = 0;       ///< Luma height; multiple of 16.
  double fps = 30.0;    ///< Nominal frame rate (metadata only).
  int gop_length = 30;  ///< Keyframe interval; the temporal partition unit.
  int qp = 28;          ///< Base quantization parameter, 0 (best) … 51.
  /// When positive, enables rate control: the encoder adapts the per-frame
  /// QP around `qp` (carried in each frame header) so the output rate
  /// tracks this target. Zero means constant-QP encoding.
  double target_bitrate_bps = 0.0;
  int tile_rows = 1;    ///< In-stream spatial tiling.
  int tile_cols = 1;
  int motion_range = 16;  ///< Max |mv| component, luma pixels.
  /// Motion-constrained tile sets: when true (the default, and what the
  /// tiled-streaming design requires), inter prediction never references
  /// pixels outside the current tile, so each tile is independently
  /// decodable across the whole GOP.
  bool motion_constrained_tiles = true;

  /// Validates all fields; returns InvalidArgument with a reason otherwise.
  Status Validate() const;

  /// The corresponding stream header.
  SequenceHeader ToHeader() const;
};

/// \brief Single-stream video encoder (I/P GOP structure, tiled).
///
/// Stateful: frames must be supplied in presentation order. The first frame
/// of every GOP (and any frame after ForceKeyframe) is coded intra.
class Encoder {
 public:
  /// Validates `options` and creates an encoder.
  static Result<std::unique_ptr<Encoder>> Create(const EncoderOptions& options);

  /// Encodes the next frame. `frame` dimensions must match the options.
  Result<EncodedFrame> Encode(const Frame& frame);

  /// Forces the next frame to be a keyframe (used at segment boundaries of
  /// live ingest).
  void ForceKeyframe() { force_keyframe_ = true; }

  /// The encoder-side reconstruction of the last encoded frame — exactly
  /// what a decoder will produce, useful for quality instrumentation
  /// without a decode pass.
  const Frame& reconstructed() const { return recon_; }

  const EncoderOptions& options() const { return options_; }
  SequenceHeader header() const { return options_.ToHeader(); }

  /// Number of frames encoded so far.
  int frame_count() const { return frame_index_; }

 private:
  Encoder(const EncoderOptions& options,
          std::vector<TileGrid::PixelRect> tile_rects);

  /// Picks the QP for the next frame (rate control when enabled).
  int NextFrameQp() const;

  void EncodeTile(const Frame& frame, const TileGrid::PixelRect& rect,
                  FrameType type, double qstep, BitWriter* writer);

  const EncoderOptions options_;
  const std::vector<TileGrid::PixelRect> tile_rects_;
  double backlog_bytes_ = 0.0;  ///< rate-control virtual buffer fullness
  double control_qp_ = 0.0;     ///< adaptive rate-control QP state
  Frame recon_;      ///< reconstruction of the current frame (in progress)
  Frame reference_;  ///< reconstruction of the previous frame
  int frame_index_ = 0;
  bool force_keyframe_ = false;
};

/// Convenience: encodes `frames` as one stream with `options`.
Result<EncodedVideo> EncodeVideo(const std::vector<Frame>& frames,
                                 const EncoderOptions& options);

}  // namespace vc

#endif  // VC_CODEC_ENCODER_H_
