#ifndef VC_CODEC_ENCODER_H_
#define VC_CODEC_ENCODER_H_

#include <memory>
#include <vector>

#include "codec/bitstream.h"
#include "codec/motion.h"
#include "common/bitio.h"
#include "common/result.h"
#include "geometry/tile_grid.h"
#include "image/frame.h"

namespace vc {

/// \brief One macroblock's analysis decision, captured from a reference-rung
/// encode (see MotionHints).
struct BlockHint {
  bool use_inter = false;          ///< Mode decision (inter frames only).
  IntraMode intra_mode = IntraMode::kDc;  ///< Chosen mode when intra.
  MotionVector mv;                 ///< Chosen vector when inter.
  uint32_t sad = 0;  ///< Best inter SAD the reference rung's search achieved.
};

/// \brief Reusable motion-analysis product of one encode.
///
/// Motion and mode decisions are driven by the content, not the quantizer,
/// so the quality ladder's rungs of the same (segment, tile) cell make
/// near-identical decisions. The storage manager encodes a designated
/// reference rung first with `EncoderOptions::capture_hints` set, then hands
/// the captured hints to the sibling rungs via `reuse_hints`: hinted blocks
/// reuse the intra mode outright and seed the motion search with the
/// reference rung's vector, replacing the full diamond walk with a short
/// refine. Hints are advisory — the hinted encoder still writes every
/// decision into the bitstream, so hinted streams are ordinary valid streams
/// for the unmodified decoder.
///
/// The geometry fields identify the stream shape the hints were captured
/// from; an encoder handed hints with mismatched geometry ignores them and
/// falls back to the full search (per block, frames beyond
/// `frames.size()` likewise fall back).
struct MotionHints {
  int width = 0;         ///< Luma width of the captured stream.
  int height = 0;        ///< Luma height.
  int gop_length = 0;    ///< Keyframe cadence (frame types must align).
  int motion_range = 0;  ///< Search range the vectors were found under.
  /// Per frame, one hint per macroblock in raster order
  /// ((height/16) × (width/16) entries).
  std::vector<std::vector<BlockHint>> frames;

  void Clear() {
    width = height = gop_length = motion_range = 0;
    frames.clear();
  }
};

/// \brief Configuration of an encoding session.
///
/// VisualCloud's quality ladder is expressed purely through `qp`: every
/// (segment, tile) cell is encoded once per ladder rung with a different QP.
struct EncoderOptions {
  int width = 0;        ///< Luma width; multiple of 16, ≤ 65535.
  int height = 0;       ///< Luma height; multiple of 16.
  double fps = 30.0;    ///< Nominal frame rate (metadata only).
  int gop_length = 30;  ///< Keyframe interval; the temporal partition unit.
  int qp = 28;          ///< Base quantization parameter, 0 (best) … 51.
  /// When positive, enables rate control: the encoder adapts the per-frame
  /// QP around `qp` (carried in each frame header) so the output rate
  /// tracks this target. Zero means constant-QP encoding.
  double target_bitrate_bps = 0.0;
  int tile_rows = 1;    ///< In-stream spatial tiling.
  int tile_cols = 1;
  int motion_range = 16;  ///< Max |mv| component, luma pixels.
  /// Motion-constrained tile sets: when true (the default, and what the
  /// tiled-streaming design requires), inter prediction never references
  /// pixels outside the current tile, so each tile is independently
  /// decodable across the whole GOP.
  bool motion_constrained_tiles = true;
  /// When set, the encoder records its per-block analysis decisions here
  /// (cleared and geometry-stamped on the first frame). Not owned; must
  /// outlive the encoder.
  MotionHints* capture_hints = nullptr;
  /// When set and geometry-compatible, per-block analysis is seeded from
  /// these hints instead of running the full diamond search. Incompatible
  /// hints are ignored entirely (clean fallback to unhinted search). Not
  /// owned; must outlive the encoder.
  const MotionHints* reuse_hints = nullptr;
  /// Residual entropy coder. The Huffman profile buffers each tile's
  /// quantized blocks, builds a canonical code per tile payload, and falls
  /// back to Exp-Golomb per payload whenever the table would cost more than
  /// it saves — so it never loses bitrate. Reconstructions are bit-identical
  /// across profiles (entropy coding is lossless and the analysis never
  /// looks at entropy cost).
  EntropyProfile entropy_profile = EntropyProfile::kExpGolomb;

  /// Validates all fields; returns InvalidArgument with a reason otherwise.
  Status Validate() const;

  /// The corresponding stream header.
  SequenceHeader ToHeader() const;
};

/// \brief Single-stream video encoder (I/P GOP structure, tiled).
///
/// Stateful: frames must be supplied in presentation order. The first frame
/// of every GOP (and any frame after ForceKeyframe) is coded intra.
class Encoder {
 public:
  /// Validates `options` and creates an encoder.
  static Result<std::unique_ptr<Encoder>> Create(const EncoderOptions& options);

  /// Encodes the next frame. `frame` dimensions must match the options.
  Result<EncodedFrame> Encode(const Frame& frame);

  /// Forces the next frame to be a keyframe (used at segment boundaries of
  /// live ingest).
  void ForceKeyframe() { force_keyframe_ = true; }

  /// The encoder-side reconstruction of the last encoded frame — exactly
  /// what a decoder will produce, useful for quality instrumentation
  /// without a decode pass.
  const Frame& reconstructed() const { return recon_; }

  const EncoderOptions& options() const { return options_; }
  SequenceHeader header() const { return options_.ToHeader(); }

  /// Number of frames encoded so far.
  int frame_count() const { return frame_index_; }

 private:
  Encoder(const EncoderOptions& options,
          std::vector<TileGrid::PixelRect> tile_rects);

  /// Picks the QP for the next frame (rate control when enabled).
  int NextFrameQp() const;

  /// `reuse_row`, when non-null, points at this frame's per-macroblock hints
  /// (indexed by global raster macroblock index); `capture_row` likewise
  /// receives this frame's decisions.
  void EncodeTile(const Frame& frame, const TileGrid::PixelRect& rect,
                  FrameType type, double qstep, const BlockHint* reuse_row,
                  BlockHint* capture_row, BitWriter* writer);

  /// The analysis/prediction/transform loop shared by both entropy profiles.
  /// `Sink` receives each macroblock's syntax decision and residual blocks in
  /// bitstream order: the Exp-Golomb sink streams bits directly (the
  /// pre-profile byte-identical path) while the Huffman sink buffers
  /// everything for the two-pass emit in EncodeTile.
  template <typename Sink>
  void AnalyzeTile(const Frame& frame, const TileGrid::PixelRect& rect,
                   FrameType type, double qstep, const BlockHint* reuse_row,
                   BlockHint* capture_row, Sink* sink);

  /// Per-frame analysis accounting, flushed to the metrics registry at the
  /// end of each Encode() call.
  struct AnalysisStats {
    uint64_t full_searches = 0;    ///< Blocks that ran the full diamond walk.
    uint64_t hinted_searches = 0;  ///< Blocks seeded from a hint.
    uint64_t hints_accepted = 0;   ///< Hinted blocks that kept the hinted mode.
  };

  const EncoderOptions options_;
  const std::vector<TileGrid::PixelRect> tile_rects_;
  const bool reuse_ok_;  ///< reuse_hints present and geometry-compatible.
  double backlog_bytes_ = 0.0;  ///< rate-control virtual buffer fullness
  double control_qp_ = 0.0;     ///< adaptive rate-control QP state
  Frame recon_;      ///< reconstruction of the current frame (in progress)
  Frame reference_;  ///< reconstruction of the previous frame
  int frame_index_ = 0;
  bool force_keyframe_ = false;
  MotionSearchScratch scratch_;  ///< Visited-candidate memo + SAD counter.
  AnalysisStats frame_stats_;
};

/// Convenience: encodes `frames` as one stream with `options`.
Result<EncodedVideo> EncodeVideo(const std::vector<Frame>& frames,
                                 const EncoderOptions& options);

}  // namespace vc

#endif  // VC_CODEC_ENCODER_H_
