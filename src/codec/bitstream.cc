#include "codec/bitstream.h"

#include <cstring>

#include "codec/transform.h"

namespace vc {

namespace {

constexpr char kMagic[4] = {'V', 'C', 'C', '1'};

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v & 0xff));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  out->push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  out->push_back(static_cast<uint8_t>(v & 0xff));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

uint32_t GetU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

}  // namespace

std::vector<uint8_t> SequenceHeader::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kSerializedSize);
  out.insert(out.end(), kMagic, kMagic + 4);
  PutU16(&out, width);
  PutU16(&out, height);
  PutU16(&out, fps_times_100);
  PutU16(&out, gop_length);
  out.push_back(qp);
  out.push_back(tile_rows);
  out.push_back(tile_cols);
  out.push_back(flags);
  return out;
}

Result<SequenceHeader> SequenceHeader::Parse(Slice data) {
  if (data.size() < kSerializedSize) {
    return Status::Corruption("sequence header truncated");
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad VCC1 magic");
  }
  SequenceHeader header;
  const uint8_t* p = data.data() + 4;
  header.width = GetU16(p);
  header.height = GetU16(p + 2);
  header.fps_times_100 = GetU16(p + 4);
  header.gop_length = GetU16(p + 6);
  header.qp = p[8];
  header.tile_rows = p[9];
  header.tile_cols = p[10];
  header.flags = p[11];
  if (header.width == 0 || header.height == 0 || header.width % 16 != 0 ||
      header.height % 16 != 0) {
    return Status::Corruption("sequence header has invalid dimensions");
  }
  if (header.gop_length == 0 || header.tile_rows == 0 ||
      header.tile_cols == 0 || header.qp > kMaxQp) {
    return Status::Corruption("sequence header has invalid parameters");
  }
  constexpr uint8_t kKnownFlags = SequenceHeader::kFlagMotionConstrainedTiles |
                                  SequenceHeader::kFlagHuffmanEntropy;
  if ((header.flags & ~kKnownFlags) != 0) {
    return Status::Corruption("sequence header has unknown flags");
  }
  return header;
}

Result<std::vector<std::pair<uint32_t, uint32_t>>> ParseTileOffsets(
    Slice frame_payload, int tile_count) {
  // Frame payload layout: [type:u8][qp:u8][tile_count × offset:u32][data].
  size_t table_end = 2 + static_cast<size_t>(tile_count) * 4;
  if (frame_payload.size() < table_end) {
    return Status::Corruption("frame payload shorter than tile table");
  }
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  ranges.reserve(tile_count);
  uint32_t previous = static_cast<uint32_t>(table_end);
  for (int i = 0; i < tile_count; ++i) {
    uint32_t offset = GetU32(frame_payload.data() + 2 + i * 4);
    uint32_t next =
        i + 1 < tile_count
            ? GetU32(frame_payload.data() + 2 + (i + 1) * 4)
            : static_cast<uint32_t>(frame_payload.size());
    if (offset < previous || next < offset ||
        next > frame_payload.size()) {
      return Status::Corruption("tile offset table inconsistent");
    }
    ranges.emplace_back(offset, next - offset);
    previous = offset;
  }
  return ranges;
}

Result<FrameType> ParseFrameType(Slice frame_payload) {
  if (frame_payload.empty()) {
    return Status::Corruption("empty frame payload");
  }
  uint8_t type = frame_payload[0];
  if (type > 1) return Status::Corruption("unknown frame type");
  return static_cast<FrameType>(type);
}

Result<int> ParseFrameQp(Slice frame_payload) {
  if (frame_payload.size() < 2) {
    return Status::Corruption("frame payload missing qp");
  }
  uint8_t qp = frame_payload[1];
  if (qp > kMaxQp) return Status::Corruption("frame qp out of range");
  return static_cast<int>(qp);
}

size_t EncodedVideo::size_bytes() const {
  size_t total = SequenceHeader::kSerializedSize;
  for (const auto& frame : frames) total += 4 + frame.payload.size();
  return total;
}

std::vector<uint8_t> EncodedVideo::Serialize() const {
  std::vector<uint8_t> out = header.Serialize();
  out.reserve(size_bytes());
  for (const auto& frame : frames) {
    PutU32(&out, static_cast<uint32_t>(frame.payload.size()));
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  }
  return out;
}

Result<EncodedVideo> EncodedVideo::Parse(Slice data) {
  EncodedVideo video;
  VC_ASSIGN_OR_RETURN(video.header, SequenceHeader::Parse(data));
  size_t pos = SequenceHeader::kSerializedSize;
  while (pos < data.size()) {
    if (pos + 4 > data.size()) {
      return Status::Corruption("truncated frame length prefix");
    }
    uint32_t length = GetU32(data.data() + pos);
    pos += 4;
    if (pos + length > data.size()) {
      return Status::Corruption("truncated frame payload");
    }
    EncodedFrame frame;
    frame.payload.assign(data.data() + pos, data.data() + pos + length);
    FrameType type;
    VC_ASSIGN_OR_RETURN(type, ParseFrameType(Slice(frame.payload)));
    frame.type = type;
    video.frames.push_back(std::move(frame));
    pos += length;
  }
  return video;
}

}  // namespace vc
