#ifndef VC_CODEC_MB_COMMON_H_
#define VC_CODEC_MB_COMMON_H_

// Internal shared helpers for the encoder and decoder. The two sides must
// produce bit-identical predictions and reconstructions; keeping the logic in
// one place is what guarantees no encoder/decoder drift.

#include <array>
#include <vector>

#include "codec/bitstream.h"
#include "codec/entropy.h"
#include "codec/motion.h"
#include "codec/transform.h"
#include "common/bitio.h"
#include "common/result.h"
#include "image/frame.h"

namespace vc {
namespace codec_internal {

/// Luma macroblock edge (16×16 luma, 8×8 chroma).
inline constexpr int kMbSize = 16;

/// Computes the per-tile luma pixel rectangles for a stream configuration.
/// Fails when the tile grid is too fine for the frame (each tile must hold at
/// least one macroblock).
Result<std::vector<TileGrid::PixelRect>> ComputeTileRects(
    const SequenceHeader& header);

/// Which intra neighbors exist for a block at (x, y) given its tile
/// rectangle: prediction never crosses tile boundaries so tiles stay
/// independently decodable.
struct IntraNeighbors {
  bool top = false;
  bool left = false;
};
IntraNeighbors IntraAvailability(int x, int y, const MotionBounds& bounds);

/// Builds a `size`×`size` intra prediction from reconstructed neighbors.
/// `bounds` is in the plane's own coordinates. H requires `left`, V requires
/// `top` (callers must pick an available mode); DC uses whatever exists and
/// falls back to 128.
void IntraPredict(PlaneView plane, int x, int y, int size, IntraMode mode,
                  const MotionBounds& bounds, uint8_t* out);

/// Encodes the residual between `size`×`size` blocks `cur` (arbitrary
/// stride) and `pred` (contiguous), writing levels to `writer` and the
/// reconstruction (pred + dequantized residual, clamped) to `recon`
/// (contiguous). Handles any size that is a multiple of 8 by iterating 8×8
/// transform blocks in raster order.
void EncodeResidual(const uint8_t* cur, int cur_stride, const uint8_t* pred,
                    int size, double qstep, BitWriter* writer, uint8_t* recon);

/// Analysis half of EncodeResidual for two-pass entropy profiles: identical
/// transform/quantization/reconstruction, but the quantized blocks are
/// appended to `blocks` (in the exact order EncodeResidual would emit them)
/// instead of being entropy-coded. Emitting each buffered block afterwards
/// with EncodeLevelBlock (or UE(0) when `nonzero == 0`) reproduces
/// EncodeResidual's bitstream byte for byte.
void AnalyzeResidual(const uint8_t* cur, int cur_stride, const uint8_t* pred,
                     int size, double qstep, std::vector<CodedBlock>* blocks,
                     uint8_t* recon);

/// Decoder mirror of EncodeResidual: reads levels and reconstructs. When
/// `huffman` is non-null the levels are read as Huffman tokens (the tile
/// payload's canonical table), otherwise as Exp-Golomb.
Status DecodeResidual(BitReader* reader, const uint8_t* pred, int size,
                      double qstep, uint8_t* recon,
                      const HuffmanBlockDecoder* huffman = nullptr);

/// Writes a contiguous `size`×`size` block into a frame plane.
void StoreBlock(const uint8_t* block, int size, uint8_t* plane, int stride,
                int x, int y);

/// Chroma motion vector derived from a luma vector (half resolution).
inline MotionVector ChromaVector(MotionVector mv) {
  return MotionVector{mv.dx / 2, mv.dy / 2};
}

/// Halves a luma-space rectangle into chroma coordinates.
inline MotionBounds ChromaBounds(const MotionBounds& luma) {
  return MotionBounds{luma.x0 / 2, luma.y0 / 2, luma.x1 / 2, luma.y1 / 2};
}

/// Converts a tile pixel rect to motion bounds.
inline MotionBounds BoundsOf(const TileGrid::PixelRect& rect) {
  return MotionBounds{rect.x, rect.y, rect.x + rect.width,
                      rect.y + rect.height};
}

}  // namespace codec_internal
}  // namespace vc

#endif  // VC_CODEC_MB_COMMON_H_
