#include "codec/transform.h"

#include <cmath>

#include "common/math_util.h"

namespace vc {

namespace {

/// Precomputed DCT-II basis: basis[u][x] = c(u) cos((2x+1)uπ/16).
struct DctBasis {
  double value[kBlockSize][kBlockSize];
  DctBasis() {
    for (int u = 0; u < kBlockSize; ++u) {
      double cu = u == 0 ? std::sqrt(1.0 / kBlockSize)
                         : std::sqrt(2.0 / kBlockSize);
      for (int x = 0; x < kBlockSize; ++x) {
        value[u][x] = cu * std::cos((2 * x + 1) * u * kPi / (2 * kBlockSize));
      }
    }
  }
};

const DctBasis& Basis() {
  static const DctBasis basis;
  return basis;
}

}  // namespace

void ForwardDct(const ResidualBlock& input, CoeffBlock* output) {
  const auto& b = Basis();
  // Separable: rows then columns.
  double temp[kBlockSize][kBlockSize];
  for (int y = 0; y < kBlockSize; ++y) {
    for (int u = 0; u < kBlockSize; ++u) {
      double sum = 0;
      for (int x = 0; x < kBlockSize; ++x) {
        sum += input[y * kBlockSize + x] * b.value[u][x];
      }
      temp[y][u] = sum;
    }
  }
  for (int u = 0; u < kBlockSize; ++u) {
    for (int v = 0; v < kBlockSize; ++v) {
      double sum = 0;
      for (int y = 0; y < kBlockSize; ++y) {
        sum += temp[y][u] * b.value[v][y];
      }
      (*output)[v * kBlockSize + u] = sum;
    }
  }
}

void InverseDct(const CoeffBlock& input, ResidualBlock* output) {
  const auto& b = Basis();
  double temp[kBlockSize][kBlockSize];
  for (int v = 0; v < kBlockSize; ++v) {
    for (int x = 0; x < kBlockSize; ++x) {
      double sum = 0;
      for (int u = 0; u < kBlockSize; ++u) {
        sum += input[v * kBlockSize + u] * b.value[u][x];
      }
      temp[v][x] = sum;
    }
  }
  for (int x = 0; x < kBlockSize; ++x) {
    for (int y = 0; y < kBlockSize; ++y) {
      double sum = 0;
      for (int v = 0; v < kBlockSize; ++v) {
        sum += temp[v][x] * b.value[v][y];
      }
      double rounded = std::lround(sum);
      (*output)[y * kBlockSize + x] =
          static_cast<int16_t>(Clamp(rounded, -32768.0, 32767.0));
    }
  }
}

double QStepForQp(int qp) {
  qp = Clamp(qp, 0, kMaxQp);
  return 0.625 * std::pow(2.0, qp / 6.0);
}

void Quantize(const CoeffBlock& coeffs, double qstep, LevelBlock* levels) {
  // Dead-zone quantizer: slightly biases toward zero, which measurably
  // improves rate at equal distortion for residual statistics.
  constexpr double kDeadZone = 0.4;
  for (int i = 0; i < kBlockPixels; ++i) {
    double scaled = coeffs[i] / qstep;
    double magnitude = std::floor(std::abs(scaled) + kDeadZone);
    (*levels)[i] = static_cast<int32_t>(scaled < 0 ? -magnitude : magnitude);
  }
}

void Dequantize(const LevelBlock& levels, double qstep, CoeffBlock* coeffs) {
  for (int i = 0; i < kBlockPixels; ++i) {
    (*coeffs)[i] = levels[i] * qstep;
  }
}

const std::array<int, kBlockPixels>& ZigzagOrder() {
  static const std::array<int, kBlockPixels> order = [] {
    std::array<int, kBlockPixels> o{};
    int index = 0;
    for (int s = 0; s < 2 * kBlockSize - 1; ++s) {
      if (s % 2 == 0) {
        // Walk up-right on even anti-diagonals.
        int y = s < kBlockSize ? s : kBlockSize - 1;
        int x = s - y;
        while (y >= 0 && x < kBlockSize) {
          o[index++] = y * kBlockSize + x;
          --y;
          ++x;
        }
      } else {
        int x = s < kBlockSize ? s : kBlockSize - 1;
        int y = s - x;
        while (x >= 0 && y < kBlockSize) {
          o[index++] = y * kBlockSize + x;
          --x;
          ++y;
        }
      }
    }
    return o;
  }();
  return order;
}

}  // namespace vc
