#include "codec/transform.h"

#include <cmath>

#include "codec/simd.h"
#include "common/math_util.h"

namespace vc {

namespace {

constexpr int kHalf = kBlockSize / 2;

/// Precomputed DCT-II basis, folded by the cosine symmetry
/// cos((2(N−1−x)+1)uπ/2N) = (−1)ᵘ cos((2x+1)uπ/2N): even-frequency rows
/// see only the symmetric half-sums of the input, odd rows only the
/// antisymmetric half-differences. Folding first and multiplying 4×4
/// sub-matrices halves the multiply count of every 8-point transform.
struct DctBasis {
  double even[kHalf][kHalf];  // even[k][x] = c(2k)·cos((2x+1)(2k)π/16)
  double odd[kHalf][kHalf];   // odd[k][x]  = c(2k+1)·cos((2x+1)(2k+1)π/16)
  double full[kBlockSize][kBlockSize];  // full[u][x], for the sparse path
  DctBasis() {
    for (int u = 0; u < kBlockSize; ++u) {
      double cu = u == 0 ? std::sqrt(1.0 / kBlockSize)
                         : std::sqrt(2.0 / kBlockSize);
      for (int x = 0; x < kBlockSize; ++x) {
        double value = cu * std::cos((2 * x + 1) * u * kPi / (2 * kBlockSize));
        full[u][x] = value;
        if (x < kHalf) {
          if (u % 2 == 0) {
            even[u / 2][x] = value;
          } else {
            odd[u / 2][x] = value;
          }
        }
      }
    }
  }
};

const DctBasis& Basis() {
  static const DctBasis basis;
  return basis;
}

/// 8-point DCT-II of `in` into `out` (natural frequency order).
inline void ForwardDct8(const double* in, double* out, const DctBasis& b) {
  double e[kHalf], o[kHalf];
  for (int i = 0; i < kHalf; ++i) {
    e[i] = in[i] + in[kBlockSize - 1 - i];
    o[i] = in[i] - in[kBlockSize - 1 - i];
  }
  for (int k = 0; k < kHalf; ++k) {
    double sum_e = 0, sum_o = 0;
    for (int i = 0; i < kHalf; ++i) {
      sum_e += e[i] * b.even[k][i];
      sum_o += o[i] * b.odd[k][i];
    }
    out[2 * k] = sum_e;
    out[2 * k + 1] = sum_o;
  }
}

/// 8-point inverse of ForwardDct8.
inline void InverseDct8(const double* in, double* out, const DctBasis& b) {
  for (int i = 0; i < kHalf; ++i) {
    double e = 0, o = 0;
    for (int k = 0; k < kHalf; ++k) {
      e += in[2 * k] * b.even[k][i];
      o += in[2 * k + 1] * b.odd[k][i];
    }
    out[i] = e + o;
    out[kBlockSize - 1 - i] = e - o;
  }
}

void ForwardDctScalar(const ResidualBlock& input, CoeffBlock* output) {
  const auto& b = Basis();
  // Separable: rows, then columns of the (transposed) row results.
  double row[kBlockSize], freq[kBlockSize];
  double temp[kBlockSize][kBlockSize];  // temp[u][y]
  for (int y = 0; y < kBlockSize; ++y) {
    for (int x = 0; x < kBlockSize; ++x) row[x] = input[y * kBlockSize + x];
    ForwardDct8(row, freq, b);
    for (int u = 0; u < kBlockSize; ++u) temp[u][y] = freq[u];
  }
  for (int u = 0; u < kBlockSize; ++u) {
    ForwardDct8(temp[u], freq, b);
    for (int v = 0; v < kBlockSize; ++v) {
      (*output)[v * kBlockSize + u] = freq[v];
    }
  }
}

void InverseDctScalar(const CoeffBlock& input, ResidualBlock* output) {
  const auto& b = Basis();
  double spatial[kBlockSize];
  double temp[kBlockSize][kBlockSize];  // temp[x][v]
  for (int v = 0; v < kBlockSize; ++v) {
    InverseDct8(&input[v * kBlockSize], spatial, b);
    for (int x = 0; x < kBlockSize; ++x) temp[x][v] = spatial[x];
  }
  for (int x = 0; x < kBlockSize; ++x) {
    InverseDct8(temp[x], spatial, b);
    for (int y = 0; y < kBlockSize; ++y) {
      // Round half away from zero (as std::lround), without the libm call:
      // adding ±0.5 then truncating matches lround for every magnitude a
      // dequantized coefficient sum can reach.
      double rounded = spatial[y] + std::copysign(0.5, spatial[y]);
      (*output)[y * kBlockSize + x] =
          static_cast<int16_t>(Clamp(rounded, -32768.0, 32767.0));
    }
  }
}

void InverseDctSparseScalar(const CoeffBlock& input, int nonzero_count,
                            ResidualBlock* output) {
  const auto& b = Basis();
  double acc[kBlockPixels] = {};
  int remaining = nonzero_count;
  for (int v = 0; v < kBlockSize && remaining > 0; ++v) {
    for (int u = 0; u < kBlockSize && remaining > 0; ++u) {
      const double coeff = input[v * kBlockSize + u];
      if (coeff == 0.0) continue;
      --remaining;
      // One separable outer product: coeff · B[v][y] · B[u][x].
      const double* col = b.full[v];
      const double* row = b.full[u];
      for (int y = 0; y < kBlockSize; ++y) {
        const double weight = coeff * col[y];
        double* out_row = acc + y * kBlockSize;
        for (int x = 0; x < kBlockSize; ++x) out_row[x] += weight * row[x];
      }
    }
  }
  for (int i = 0; i < kBlockPixels; ++i) {
    double rounded = acc[i] + std::copysign(0.5, acc[i]);
    (*output)[i] = static_cast<int16_t>(Clamp(rounded, -32768.0, 32767.0));
  }
}

void QuantizeScalar(const CoeffBlock& coeffs, double inv_qstep,
                    double dead_zone, LevelBlock* levels) {
  for (int i = 0; i < kBlockPixels; ++i) {
    double scaled = coeffs[i] * inv_qstep;
    auto magnitude = static_cast<int32_t>(std::abs(scaled) + dead_zone);
    (*levels)[i] = scaled < 0 ? -magnitude : magnitude;
  }
}

#if defined(VC_SIMD_X86)

// The vector DCT works "column-parallel": instead of an 8-point butterfly on
// one row at a time, each stage runs the butterfly on all 8 rows at once with
// the row index spread across vector lanes. Two 8×8 transposes put the data
// in lane order for each stage. Per lane, the adds/multiplies happen in
// exactly the order ForwardDct8/InverseDct8 perform them (accumulators start
// at zero and fold terms in ascending i/k, no FMA contraction), so every
// output element is bit-identical to the scalar path — which the tests and
// the encoder/decoder bit-exactness contract rely on.

/// Loads a row-major int16 block into 8 rows × 4 __m128d registers.
inline void LoadResidualRows(const ResidualBlock& input, __m128d m[8][4]) {
  for (int y = 0; y < kBlockSize; ++y) {
    __m128i v16 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(&input[y * kBlockSize]));
    // Sign-extend int16 → int32 without SSE4.1: duplicate then arithmetic
    // shift right.
    __m128i lo32 = _mm_srai_epi32(_mm_unpacklo_epi16(v16, v16), 16);
    __m128i hi32 = _mm_srai_epi32(_mm_unpackhi_epi16(v16, v16), 16);
    m[y][0] = _mm_cvtepi32_pd(lo32);
    m[y][1] = _mm_cvtepi32_pd(_mm_unpackhi_epi64(lo32, lo32));
    m[y][2] = _mm_cvtepi32_pd(hi32);
    m[y][3] = _mm_cvtepi32_pd(_mm_unpackhi_epi64(hi32, hi32));
  }
}

/// Forward butterfly stage on 8 lanes-worth of 8-point inputs: `in[i]` holds
/// sample i across lanes, `out[u]` receives frequency u across lanes.
inline void ForwardStage(const __m128d in[8][4], __m128d out[8][4],
                         const DctBasis& b) {
  __m128d e[kHalf][4], o[kHalf][4];
  for (int i = 0; i < kHalf; ++i) {
    for (int j = 0; j < 4; ++j) {
      e[i][j] = _mm_add_pd(in[i][j], in[kBlockSize - 1 - i][j]);
      o[i][j] = _mm_sub_pd(in[i][j], in[kBlockSize - 1 - i][j]);
    }
  }
  for (int k = 0; k < kHalf; ++k) {
    for (int j = 0; j < 4; ++j) {
      __m128d se = _mm_setzero_pd();
      __m128d so = _mm_setzero_pd();
      for (int i = 0; i < kHalf; ++i) {
        se = _mm_add_pd(se, _mm_mul_pd(e[i][j], _mm_set1_pd(b.even[k][i])));
        so = _mm_add_pd(so, _mm_mul_pd(o[i][j], _mm_set1_pd(b.odd[k][i])));
      }
      out[2 * k][j] = se;
      out[2 * k + 1][j] = so;
    }
  }
}

/// Inverse butterfly stage, mirroring InverseDct8 lane-wise.
inline void InverseStage(const __m128d in[8][4], __m128d out[8][4],
                         const DctBasis& b) {
  for (int i = 0; i < kHalf; ++i) {
    for (int j = 0; j < 4; ++j) {
      __m128d e = _mm_setzero_pd();
      __m128d o = _mm_setzero_pd();
      for (int k = 0; k < kHalf; ++k) {
        e = _mm_add_pd(e, _mm_mul_pd(in[2 * k][j], _mm_set1_pd(b.even[k][i])));
        o = _mm_add_pd(o,
                       _mm_mul_pd(in[2 * k + 1][j], _mm_set1_pd(b.odd[k][i])));
      }
      out[i][j] = _mm_add_pd(e, o);
      out[kBlockSize - 1 - i][j] = _mm_sub_pd(e, o);
    }
  }
}

/// Rounds half-away-from-zero, clamps to int16 range, and stores one
/// row-major block row. Matches the scalar `copysign(0.5)` + Clamp + cast
/// sequence bit for bit (min/max_pd compose to the same ternary, cvttpd
/// truncates like the cast).
inline void StoreRoundedRow(const __m128d row[4], int16_t* out) {
  const __m128d sign_mask = _mm_set1_pd(-0.0);
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d lo = _mm_set1_pd(-32768.0);
  const __m128d hi = _mm_set1_pd(32767.0);
  __m128i quads[4];
  for (int j = 0; j < 4; ++j) {
    __m128d v = row[j];
    __m128d signed_half = _mm_or_pd(_mm_and_pd(v, sign_mask), half);
    __m128d rounded = _mm_add_pd(v, signed_half);
    __m128d clamped = _mm_max_pd(_mm_min_pd(rounded, hi), lo);
    quads[j] = _mm_cvttpd_epi32(clamped);
  }
  __m128i lo32 = _mm_unpacklo_epi64(quads[0], quads[1]);
  __m128i hi32 = _mm_unpacklo_epi64(quads[2], quads[3]);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm_packs_epi32(lo32, hi32));
}

void ForwardDctSse2(const ResidualBlock& input, CoeffBlock* output) {
  const auto& b = Basis();
  __m128d m[8][4], t[8][4];
  LoadResidualRows(input, m);
  simd::Transpose8x8(m);      // m[x] spans rows y across lanes
  ForwardStage(m, t, b);      // t[u][y lanes] == scalar temp[u][y]
  simd::Transpose8x8(t);      // t[y] spans columns u across lanes
  ForwardStage(t, m, b);      // m[v][u lanes] == output row v
  for (int v = 0; v < kBlockSize; ++v) {
    for (int j = 0; j < 4; ++j) {
      _mm_storeu_pd(&(*output)[v * kBlockSize + 2 * j], m[v][j]);
    }
  }
}

void InverseDctSse2(const CoeffBlock& input, ResidualBlock* output) {
  const auto& b = Basis();
  __m128d m[8][4], t[8][4];
  for (int v = 0; v < kBlockSize; ++v) {
    for (int j = 0; j < 4; ++j) {
      m[v][j] = _mm_loadu_pd(&input[v * kBlockSize + 2 * j]);
    }
  }
  simd::Transpose8x8(m);      // m[u] spans rows v across lanes
  InverseStage(m, t, b);      // t[x][v lanes] == scalar temp[x][v]
  simd::Transpose8x8(t);      // t[v] spans columns x across lanes
  InverseStage(t, m, b);      // m[y][x lanes] == output row y
  for (int y = 0; y < kBlockSize; ++y) {
    StoreRoundedRow(m[y], &(*output)[y * kBlockSize]);
  }
}

void QuantizeSse2(const CoeffBlock& coeffs, double inv_qstep, double dead_zone,
                  LevelBlock* levels) {
  const __m128d inv = _mm_set1_pd(inv_qstep);
  const __m128d dz = _mm_set1_pd(dead_zone);
  const __m128d abs_mask =
      _mm_castsi128_pd(_mm_srli_epi64(_mm_set1_epi32(-1), 1));
  const __m128d zero = _mm_setzero_pd();
  for (int i = 0; i < kBlockPixels; i += 4) {
    __m128d s0 = _mm_mul_pd(_mm_loadu_pd(&coeffs[i]), inv);
    __m128d s1 = _mm_mul_pd(_mm_loadu_pd(&coeffs[i + 2]), inv);
    __m128d m0 = _mm_add_pd(_mm_and_pd(s0, abs_mask), dz);
    __m128d m1 = _mm_add_pd(_mm_and_pd(s1, abs_mask), dz);
    __m128i magnitude = _mm_unpacklo_epi64(_mm_cvttpd_epi32(m0),
                                           _mm_cvttpd_epi32(m1));
    // Compact the two 64-bit `scaled < 0` masks into four 32-bit lanes, then
    // negate the flagged lanes via (x ^ m) - m.
    __m128i neg = _mm_castps_si128(
        _mm_shuffle_ps(_mm_castpd_ps(_mm_cmplt_pd(s0, zero)),
                       _mm_castpd_ps(_mm_cmplt_pd(s1, zero)),
                       _MM_SHUFFLE(2, 0, 2, 0)));
    __m128i level = _mm_sub_epi32(_mm_xor_si128(magnitude, neg), neg);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&(*levels)[i]), level);
  }
}

void DequantizeSse2(const LevelBlock& levels, double qstep,
                    CoeffBlock* coeffs) {
  const __m128d step = _mm_set1_pd(qstep);
  for (int i = 0; i < kBlockPixels; i += 4) {
    __m128i quad =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&levels[i]));
    __m128d lo = _mm_cvtepi32_pd(quad);
    __m128d hi = _mm_cvtepi32_pd(_mm_unpackhi_epi64(quad, quad));
    _mm_storeu_pd(&(*coeffs)[i], _mm_mul_pd(lo, step));
    _mm_storeu_pd(&(*coeffs)[i + 2], _mm_mul_pd(hi, step));
  }
}

#if defined(VC_SIMD_X86_AVX2_DISPATCH)

// AVX2 variants of the same column-parallel scheme with 4 lanes per register:
// the 8×8 double working set is 8 rows × 2 __m256d, i.e. exactly the 16 ymm
// registers — no spills between stages, which is where the 2-lane SSE2
// version loses time. Per lane the arithmetic order is unchanged (no FMA
// contraction — the `target` attribute enables AVX2 only, not FMA;
// accumulators fold terms in ascending i/k), so every output stays
// bit-identical to the scalar and SSE2 paths.

VC_AVX2_FN inline void LoadResidualRowsAvx2(const ResidualBlock& input,
                                            __m256d m[8][2]) {
  for (int y = 0; y < kBlockSize; ++y) {
    __m128i v16 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(&input[y * kBlockSize]));
    __m256i v32 = _mm256_cvtepi16_epi32(v16);
    m[y][0] = _mm256_cvtepi32_pd(_mm256_castsi256_si128(v32));
    m[y][1] = _mm256_cvtepi32_pd(_mm256_extracti128_si256(v32, 1));
  }
}

VC_AVX2_FN inline void ForwardStageAvx2(const __m256d in[8][2],
                                        __m256d out[8][2],
                                        const DctBasis& b) {
  __m256d e[kHalf][2], o[kHalf][2];
  for (int i = 0; i < kHalf; ++i) {
    for (int j = 0; j < 2; ++j) {
      e[i][j] = _mm256_add_pd(in[i][j], in[kBlockSize - 1 - i][j]);
      o[i][j] = _mm256_sub_pd(in[i][j], in[kBlockSize - 1 - i][j]);
    }
  }
  for (int k = 0; k < kHalf; ++k) {
    for (int j = 0; j < 2; ++j) {
      __m256d se = _mm256_setzero_pd();
      __m256d so = _mm256_setzero_pd();
      for (int i = 0; i < kHalf; ++i) {
        se = _mm256_add_pd(
            se, _mm256_mul_pd(e[i][j], _mm256_set1_pd(b.even[k][i])));
        so = _mm256_add_pd(
            so, _mm256_mul_pd(o[i][j], _mm256_set1_pd(b.odd[k][i])));
      }
      out[2 * k][j] = se;
      out[2 * k + 1][j] = so;
    }
  }
}

VC_AVX2_FN inline void InverseStageAvx2(const __m256d in[8][2],
                                        __m256d out[8][2],
                                        const DctBasis& b) {
  for (int i = 0; i < kHalf; ++i) {
    for (int j = 0; j < 2; ++j) {
      __m256d e = _mm256_setzero_pd();
      __m256d o = _mm256_setzero_pd();
      for (int k = 0; k < kHalf; ++k) {
        e = _mm256_add_pd(
            e, _mm256_mul_pd(in[2 * k][j], _mm256_set1_pd(b.even[k][i])));
        o = _mm256_add_pd(
            o, _mm256_mul_pd(in[2 * k + 1][j], _mm256_set1_pd(b.odd[k][i])));
      }
      out[i][j] = _mm256_add_pd(e, o);
      out[kBlockSize - 1 - i][j] = _mm256_sub_pd(e, o);
    }
  }
}

VC_AVX2_FN inline void StoreRoundedRowAvx2(const __m256d row[2],
                                           int16_t* out) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d lo = _mm256_set1_pd(-32768.0);
  const __m256d hi = _mm256_set1_pd(32767.0);
  __m128i quads[2];
  for (int j = 0; j < 2; ++j) {
    __m256d v = row[j];
    __m256d signed_half = _mm256_or_pd(_mm256_and_pd(v, sign_mask), half);
    __m256d rounded = _mm256_add_pd(v, signed_half);
    __m256d clamped = _mm256_max_pd(_mm256_min_pd(rounded, hi), lo);
    quads[j] = _mm256_cvttpd_epi32(clamped);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm_packs_epi32(quads[0], quads[1]));
}

VC_AVX2_FN void ForwardDctAvx2(const ResidualBlock& input,
                               CoeffBlock* output) {
  const auto& b = Basis();
  __m256d m[8][2], t[8][2];
  LoadResidualRowsAvx2(input, m);
  simd::Transpose8x8(m);
  ForwardStageAvx2(m, t, b);
  simd::Transpose8x8(t);
  ForwardStageAvx2(t, m, b);
  for (int v = 0; v < kBlockSize; ++v) {
    for (int j = 0; j < 2; ++j) {
      _mm256_storeu_pd(&(*output)[v * kBlockSize + 4 * j], m[v][j]);
    }
  }
}

VC_AVX2_FN void InverseDctAvx2(const CoeffBlock& input,
                               ResidualBlock* output) {
  const auto& b = Basis();
  __m256d m[8][2], t[8][2];
  for (int v = 0; v < kBlockSize; ++v) {
    for (int j = 0; j < 2; ++j) {
      m[v][j] = _mm256_loadu_pd(&input[v * kBlockSize + 4 * j]);
    }
  }
  simd::Transpose8x8(m);
  InverseStageAvx2(m, t, b);
  simd::Transpose8x8(t);
  InverseStageAvx2(t, m, b);
  for (int y = 0; y < kBlockSize; ++y) {
    StoreRoundedRowAvx2(m[y], &(*output)[y * kBlockSize]);
  }
}

VC_AVX2_FN void InverseDctSparseAvx2(const CoeffBlock& input,
                                     int nonzero_count,
                                     ResidualBlock* output) {
  const auto& b = Basis();
  __m256d acc[kBlockSize][2];
  for (int y = 0; y < kBlockSize; ++y) {
    acc[y][0] = _mm256_setzero_pd();
    acc[y][1] = _mm256_setzero_pd();
  }
  int remaining = nonzero_count;
  for (int v = 0; v < kBlockSize && remaining > 0; ++v) {
    for (int u = 0; u < kBlockSize && remaining > 0; ++u) {
      const double coeff = input[v * kBlockSize + u];
      if (coeff == 0.0) continue;
      --remaining;
      const double* col = b.full[v];
      const __m256d row0 = _mm256_loadu_pd(&b.full[u][0]);
      const __m256d row1 = _mm256_loadu_pd(&b.full[u][4]);
      for (int y = 0; y < kBlockSize; ++y) {
        const __m256d weight = _mm256_set1_pd(coeff * col[y]);
        acc[y][0] = _mm256_add_pd(acc[y][0], _mm256_mul_pd(weight, row0));
        acc[y][1] = _mm256_add_pd(acc[y][1], _mm256_mul_pd(weight, row1));
      }
    }
  }
  for (int y = 0; y < kBlockSize; ++y) {
    StoreRoundedRowAvx2(acc[y], &(*output)[y * kBlockSize]);
  }
}

VC_AVX2_FN void QuantizeAvx2(const CoeffBlock& coeffs, double inv_qstep,
                             double dead_zone, LevelBlock* levels) {
  const __m256d inv = _mm256_set1_pd(inv_qstep);
  const __m256d dz = _mm256_set1_pd(dead_zone);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_srli_epi64(_mm256_set1_epi32(-1), 1));
  const __m256d zero = _mm256_setzero_pd();
  for (int i = 0; i < kBlockPixels; i += 4) {
    __m256d s = _mm256_mul_pd(_mm256_loadu_pd(&coeffs[i]), inv);
    __m256d m = _mm256_add_pd(_mm256_and_pd(s, abs_mask), dz);
    __m128i magnitude = _mm256_cvttpd_epi32(m);
    // Compact the four 64-bit `scaled < 0` masks into four 32-bit lanes,
    // then negate the flagged lanes via (x ^ m) - m.
    __m256d cmp = _mm256_cmp_pd(s, zero, _CMP_LT_OQ);
    __m128i neg = _mm_castps_si128(
        _mm_shuffle_ps(_mm_castpd_ps(_mm256_castpd256_pd128(cmp)),
                       _mm_castpd_ps(_mm256_extractf128_pd(cmp, 1)),
                       _MM_SHUFFLE(2, 0, 2, 0)));
    __m128i level = _mm_sub_epi32(_mm_xor_si128(magnitude, neg), neg);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&(*levels)[i]), level);
  }
}

VC_AVX2_FN void DequantizeAvx2(const LevelBlock& levels, double qstep,
                               CoeffBlock* coeffs) {
  const __m256d step = _mm256_set1_pd(qstep);
  for (int i = 0; i < kBlockPixels; i += 8) {
    __m128i q0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&levels[i]));
    __m128i q1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&levels[i + 4]));
    _mm256_storeu_pd(&(*coeffs)[i],
                     _mm256_mul_pd(_mm256_cvtepi32_pd(q0), step));
    _mm256_storeu_pd(&(*coeffs)[i + 4],
                     _mm256_mul_pd(_mm256_cvtepi32_pd(q1), step));
  }
}

/// Whether the tiered transform kernels should take their AVX2 variant.
inline bool DispatchAvx2() {
  return simd::ActiveLevel() >= simd::Level::kAvx2;
}

#endif  // VC_SIMD_X86_AVX2_DISPATCH

#endif  // VC_SIMD_X86

}  // namespace

void ForwardDct(const ResidualBlock& input, CoeffBlock* output) {
#if defined(VC_SIMD_X86)
  if (simd::Enabled()) {
#if defined(VC_SIMD_X86_AVX2_DISPATCH)
    if (DispatchAvx2()) {
      ForwardDctAvx2(input, output);
      return;
    }
#endif
    ForwardDctSse2(input, output);
    return;
  }
#endif
  ForwardDctScalar(input, output);
}

void InverseDct(const CoeffBlock& input, ResidualBlock* output) {
#if defined(VC_SIMD_X86)
  if (simd::Enabled()) {
#if defined(VC_SIMD_X86_AVX2_DISPATCH)
    if (DispatchAvx2()) {
      InverseDctAvx2(input, output);
      return;
    }
#endif
    InverseDctSse2(input, output);
    return;
  }
#endif
  InverseDctScalar(input, output);
}

void InverseDctSparse(const CoeffBlock& input, int nonzero_count,
                      ResidualBlock* output) {
  const auto& b = Basis();
  if (nonzero_count == 1 && input[0] != 0.0) {
    // DC-only block — the most common sparse case at medium/high QP. The
    // outer product is a constant fill; the arithmetic below matches the
    // general loop exactly (same multiply order), so the result is
    // bit-identical to taking the general path.
    const double weight = input[0] * b.full[0][0];
    const double value = weight * b.full[0][0];
    const double rounded = value + std::copysign(0.5, value);
    const auto pixel = static_cast<int16_t>(Clamp(rounded, -32768.0, 32767.0));
    output->fill(pixel);
    return;
  }
  // No SSE2 tier here: a 2-lane version of the outer-product accumulator
  // measured *slower* than the autovectorized scalar loop (the 32-register
  // double working set spills), so sparse blocks dispatch straight from
  // AVX2 (where the accumulators fit in ymm registers) to scalar.
#if defined(VC_SIMD_X86_AVX2_DISPATCH)
  if (simd::Enabled() && DispatchAvx2()) {
    InverseDctSparseAvx2(input, nonzero_count, output);
    return;
  }
#endif
  InverseDctSparseScalar(input, nonzero_count, output);
}

double QStepForQp(int qp) {
  qp = Clamp(qp, 0, kMaxQp);
  return 0.625 * std::pow(2.0, qp / 6.0);
}

void Quantize(const CoeffBlock& coeffs, double qstep, LevelBlock* levels) {
  // Dead-zone quantizer: slightly biases toward zero, which measurably
  // improves rate at equal distortion for residual statistics. One
  // reciprocal up front instead of 64 divides; floor of a non-negative
  // value is a plain truncating cast, which vectorizes.
  constexpr double kDeadZone = 0.4;
  const double inv_qstep = 1.0 / qstep;
#if defined(VC_SIMD_X86)
  if (simd::Enabled()) {
#if defined(VC_SIMD_X86_AVX2_DISPATCH)
    if (DispatchAvx2()) {
      QuantizeAvx2(coeffs, inv_qstep, kDeadZone, levels);
      return;
    }
#endif
    QuantizeSse2(coeffs, inv_qstep, kDeadZone, levels);
    return;
  }
#endif
  QuantizeScalar(coeffs, inv_qstep, kDeadZone, levels);
}

void Dequantize(const LevelBlock& levels, double qstep, CoeffBlock* coeffs) {
#if defined(VC_SIMD_X86)
  if (simd::Enabled()) {
#if defined(VC_SIMD_X86_AVX2_DISPATCH)
    if (DispatchAvx2()) {
      DequantizeAvx2(levels, qstep, coeffs);
      return;
    }
#endif
    DequantizeSse2(levels, qstep, coeffs);
    return;
  }
#endif
#pragma omp simd
  for (int i = 0; i < kBlockPixels; ++i) {
    (*coeffs)[i] = levels[i] * qstep;
  }
}

const std::array<int, kBlockPixels>& ZigzagOrder() {
  static const std::array<int, kBlockPixels> order = [] {
    std::array<int, kBlockPixels> o{};
    int index = 0;
    for (int s = 0; s < 2 * kBlockSize - 1; ++s) {
      if (s % 2 == 0) {
        // Walk up-right on even anti-diagonals.
        int y = s < kBlockSize ? s : kBlockSize - 1;
        int x = s - y;
        while (y >= 0 && x < kBlockSize) {
          o[index++] = y * kBlockSize + x;
          --y;
          ++x;
        }
      } else {
        int x = s < kBlockSize ? s : kBlockSize - 1;
        int y = s - x;
        while (x >= 0 && y < kBlockSize) {
          o[index++] = y * kBlockSize + x;
          --x;
          ++y;
        }
      }
    }
    return o;
  }();
  return order;
}

}  // namespace vc
