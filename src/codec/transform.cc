#include "codec/transform.h"

#include <cmath>

#include "common/math_util.h"

namespace vc {

namespace {

constexpr int kHalf = kBlockSize / 2;

/// Precomputed DCT-II basis, folded by the cosine symmetry
/// cos((2(N−1−x)+1)uπ/2N) = (−1)ᵘ cos((2x+1)uπ/2N): even-frequency rows
/// see only the symmetric half-sums of the input, odd rows only the
/// antisymmetric half-differences. Folding first and multiplying 4×4
/// sub-matrices halves the multiply count of every 8-point transform.
struct DctBasis {
  double even[kHalf][kHalf];  // even[k][x] = c(2k)·cos((2x+1)(2k)π/16)
  double odd[kHalf][kHalf];   // odd[k][x]  = c(2k+1)·cos((2x+1)(2k+1)π/16)
  double full[kBlockSize][kBlockSize];  // full[u][x], for the sparse path
  DctBasis() {
    for (int u = 0; u < kBlockSize; ++u) {
      double cu = u == 0 ? std::sqrt(1.0 / kBlockSize)
                         : std::sqrt(2.0 / kBlockSize);
      for (int x = 0; x < kBlockSize; ++x) {
        double value = cu * std::cos((2 * x + 1) * u * kPi / (2 * kBlockSize));
        full[u][x] = value;
        if (x < kHalf) {
          if (u % 2 == 0) {
            even[u / 2][x] = value;
          } else {
            odd[u / 2][x] = value;
          }
        }
      }
    }
  }
};

const DctBasis& Basis() {
  static const DctBasis basis;
  return basis;
}

/// 8-point DCT-II of `in` into `out` (natural frequency order).
inline void ForwardDct8(const double* in, double* out, const DctBasis& b) {
  double e[kHalf], o[kHalf];
  for (int i = 0; i < kHalf; ++i) {
    e[i] = in[i] + in[kBlockSize - 1 - i];
    o[i] = in[i] - in[kBlockSize - 1 - i];
  }
  for (int k = 0; k < kHalf; ++k) {
    double sum_e = 0, sum_o = 0;
    for (int i = 0; i < kHalf; ++i) {
      sum_e += e[i] * b.even[k][i];
      sum_o += o[i] * b.odd[k][i];
    }
    out[2 * k] = sum_e;
    out[2 * k + 1] = sum_o;
  }
}

/// 8-point inverse of ForwardDct8.
inline void InverseDct8(const double* in, double* out, const DctBasis& b) {
  for (int i = 0; i < kHalf; ++i) {
    double e = 0, o = 0;
    for (int k = 0; k < kHalf; ++k) {
      e += in[2 * k] * b.even[k][i];
      o += in[2 * k + 1] * b.odd[k][i];
    }
    out[i] = e + o;
    out[kBlockSize - 1 - i] = e - o;
  }
}

}  // namespace

void ForwardDct(const ResidualBlock& input, CoeffBlock* output) {
  const auto& b = Basis();
  // Separable: rows, then columns of the (transposed) row results.
  double row[kBlockSize], freq[kBlockSize];
  double temp[kBlockSize][kBlockSize];  // temp[u][y]
  for (int y = 0; y < kBlockSize; ++y) {
    for (int x = 0; x < kBlockSize; ++x) row[x] = input[y * kBlockSize + x];
    ForwardDct8(row, freq, b);
    for (int u = 0; u < kBlockSize; ++u) temp[u][y] = freq[u];
  }
  for (int u = 0; u < kBlockSize; ++u) {
    ForwardDct8(temp[u], freq, b);
    for (int v = 0; v < kBlockSize; ++v) {
      (*output)[v * kBlockSize + u] = freq[v];
    }
  }
}

void InverseDct(const CoeffBlock& input, ResidualBlock* output) {
  const auto& b = Basis();
  double spatial[kBlockSize];
  double temp[kBlockSize][kBlockSize];  // temp[x][v]
  for (int v = 0; v < kBlockSize; ++v) {
    InverseDct8(&input[v * kBlockSize], spatial, b);
    for (int x = 0; x < kBlockSize; ++x) temp[x][v] = spatial[x];
  }
  for (int x = 0; x < kBlockSize; ++x) {
    InverseDct8(temp[x], spatial, b);
    for (int y = 0; y < kBlockSize; ++y) {
      // Round half away from zero (as std::lround), without the libm call:
      // adding ±0.5 then truncating matches lround for every magnitude a
      // dequantized coefficient sum can reach.
      double rounded = spatial[y] + std::copysign(0.5, spatial[y]);
      (*output)[y * kBlockSize + x] =
          static_cast<int16_t>(Clamp(rounded, -32768.0, 32767.0));
    }
  }
}

void InverseDctSparse(const CoeffBlock& input, int nonzero_count,
                      ResidualBlock* output) {
  const auto& b = Basis();
  if (nonzero_count == 1 && input[0] != 0.0) {
    // DC-only block — the most common sparse case at medium/high QP. The
    // outer product is a constant fill; the arithmetic below matches the
    // general loop exactly (same multiply order), so the result is
    // bit-identical to taking the general path.
    const double weight = input[0] * b.full[0][0];
    const double value = weight * b.full[0][0];
    const double rounded = value + std::copysign(0.5, value);
    const auto pixel = static_cast<int16_t>(Clamp(rounded, -32768.0, 32767.0));
    output->fill(pixel);
    return;
  }
  double acc[kBlockPixels] = {};
  int remaining = nonzero_count;
  for (int v = 0; v < kBlockSize && remaining > 0; ++v) {
    for (int u = 0; u < kBlockSize && remaining > 0; ++u) {
      const double coeff = input[v * kBlockSize + u];
      if (coeff == 0.0) continue;
      --remaining;
      // One separable outer product: coeff · B[v][y] · B[u][x].
      const double* col = b.full[v];
      const double* row = b.full[u];
      for (int y = 0; y < kBlockSize; ++y) {
        const double weight = coeff * col[y];
        double* out_row = acc + y * kBlockSize;
        for (int x = 0; x < kBlockSize; ++x) out_row[x] += weight * row[x];
      }
    }
  }
  for (int i = 0; i < kBlockPixels; ++i) {
    double rounded = acc[i] + std::copysign(0.5, acc[i]);
    (*output)[i] = static_cast<int16_t>(Clamp(rounded, -32768.0, 32767.0));
  }
}

double QStepForQp(int qp) {
  qp = Clamp(qp, 0, kMaxQp);
  return 0.625 * std::pow(2.0, qp / 6.0);
}

void Quantize(const CoeffBlock& coeffs, double qstep, LevelBlock* levels) {
  // Dead-zone quantizer: slightly biases toward zero, which measurably
  // improves rate at equal distortion for residual statistics. One
  // reciprocal up front instead of 64 divides; floor of a non-negative
  // value is a plain truncating cast, which vectorizes.
  constexpr double kDeadZone = 0.4;
  const double inv_qstep = 1.0 / qstep;
  for (int i = 0; i < kBlockPixels; ++i) {
    double scaled = coeffs[i] * inv_qstep;
    auto magnitude = static_cast<int32_t>(std::abs(scaled) + kDeadZone);
    (*levels)[i] = scaled < 0 ? -magnitude : magnitude;
  }
}

void Dequantize(const LevelBlock& levels, double qstep, CoeffBlock* coeffs) {
  for (int i = 0; i < kBlockPixels; ++i) {
    (*coeffs)[i] = levels[i] * qstep;
  }
}

const std::array<int, kBlockPixels>& ZigzagOrder() {
  static const std::array<int, kBlockPixels> order = [] {
    std::array<int, kBlockPixels> o{};
    int index = 0;
    for (int s = 0; s < 2 * kBlockSize - 1; ++s) {
      if (s % 2 == 0) {
        // Walk up-right on even anti-diagonals.
        int y = s < kBlockSize ? s : kBlockSize - 1;
        int x = s - y;
        while (y >= 0 && x < kBlockSize) {
          o[index++] = y * kBlockSize + x;
          --y;
          ++x;
        }
      } else {
        int x = s < kBlockSize ? s : kBlockSize - 1;
        int y = s - x;
        while (x >= 0 && y < kBlockSize) {
          o[index++] = y * kBlockSize + x;
          --x;
          ++y;
        }
      }
    }
    return o;
  }();
  return order;
}

}  // namespace vc
