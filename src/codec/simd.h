#ifndef VC_CODEC_SIMD_H_
#define VC_CODEC_SIMD_H_

// Portable-intrinsics layer for the codec hot kernels.
//
// Selection happens at two levels:
//  - Compile time: the best ISA the compiler was asked to target (SSE2 is
//    the x86-64 baseline, SSE4.1 under -msse4.1, NEON on aarch64). Building
//    with -DVC_DISABLE_SIMD removes every intrinsics path outright, leaving
//    the scalar fallbacks — the configuration the CI `simd` leg uses to
//    prove both paths bit-identical.
//  - Run time: a capability guard (`ActiveLevel`) verifies the CPU actually
//    supports what was compiled in and exposes a kill-switch
//    (`SetEnabled(false)`, or VC_SIMD=off in the environment) so a single
//    binary can run either path — which is how the bit-exactness tests and
//    the scalar-vs-SIMD micro-benchmarks compare them.
//
// Every vector kernel in the codec is written to be *bit-identical* to its
// scalar fallback: integer kernels trivially so, floating-point kernels by
// performing the same operations in the same per-element order (no FMA
// contraction, no reassociation). Tests enforce this; see
// codec_test.cc (SimdTest.*).

#include <atomic>

#if !defined(VC_DISABLE_SIMD)
#if defined(__x86_64__) || defined(_M_X64) || defined(__SSE2__)
#define VC_SIMD_X86 1
#include <emmintrin.h>
#if defined(__SSE4_1__)
#define VC_SIMD_X86_SSE41 1
#include <smmintrin.h>
#endif
#if defined(__GNUC__) || defined(__clang__)
// GCC/Clang support per-function ISA selection (`target` attribute), so even
// an SSE2-baseline binary carries AVX2 variants of the hottest kernels and
// picks them at run time behind the capability guard. MSVC has no equivalent;
// there the SSE2 paths are the ceiling.
#define VC_SIMD_X86_AVX2_DISPATCH 1
#define VC_AVX2_FN __attribute__((target("avx2")))
#include <immintrin.h>
#endif
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define VC_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !VC_DISABLE_SIMD

#if defined(VC_SIMD_X86) || defined(VC_SIMD_NEON)
#define VC_SIMD_ANY 1
#endif

namespace vc {
namespace simd {

/// Instruction-set tiers the codec kernels dispatch over, in strength order.
enum class Level { kScalar = 0, kSse2 = 1, kSse41 = 2, kAvx2 = 3, kNeon = 4 };

/// The best tier with code compiled into this binary. With GCC/Clang on
/// x86-64 this is kAvx2 even for an SSE2-baseline build, because the AVX2
/// kernel variants are compiled via per-function `target` attributes and
/// only dispatched to when the host CPU passes the capability probe.
Level CompiledLevel();

/// The tier kernels actually run at: `CompiledLevel()` clamped by the
/// runtime capability guard (a binary carrying AVX2 or SSE4.1 paths refuses
/// to dispatch them on a CPU without that extension rather than fault), by
/// the `SetLevelCap` ceiling, and by the `SetEnabled` kill-switch.
Level ActiveLevel();

/// Human-readable tier name ("scalar", "sse2", "sse4.1", "avx2", "neon").
const char* LevelName(Level level);

/// Caps `ActiveLevel` at `level` (e.g. kSse2 forces the SSE2 paths on an
/// AVX2 host, which is how the bit-exactness tests and the tier-by-tier
/// micro-benchmarks exercise every compiled path on one machine). Also
/// settable at startup via VC_SIMD=scalar|sse2|sse4.1|avx2|neon. Only
/// kernels with multiple vector tiers consult the cap; baseline-tier
/// kernels (e.g. the SSE2 SAD) consult just the `SetEnabled` kill-switch,
/// which remains the way to force fully scalar execution. Returns the
/// resulting `ActiveLevel`.
Level SetLevelCap(Level level);

/// The current `SetLevelCap` ceiling (defaults to the strongest tier).
Level LevelCap();

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Whether vector kernels are active. Inline and branch-predictable: the
/// codec checks it once per kernel invocation.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime kill-switch. Enabling is a no-op when the binary has no vector
/// paths or the CPU fails the capability guard. Returns the resulting state.
bool SetEnabled(bool enabled);

#if defined(VC_SIMD_X86)

/// Horizontal sum of the two 64-bit SAD accumulators psadbw produces.
inline uint32_t HorizontalSadSum(__m128i sad) {
  return static_cast<uint32_t>(
      _mm_cvtsi128_si32(_mm_add_epi32(sad, _mm_srli_si128(sad, 8))));
}

/// Transposes an 8x8 block of doubles held as 8 rows x 4 __m128d registers.
/// `m[r][c]` covers columns 2c, 2c+1 of row r. Pure data movement — values
/// are untouched, so it cannot perturb bit-exactness.
inline void Transpose8x8(__m128d m[8][4]) {
  for (int r = 0; r < 8; r += 2) {
    for (int c = 0; c < 8; c += 2) {
      __m128d a = m[r][c / 2];
      __m128d b = m[r + 1][c / 2];
      m[r][c / 2] = _mm_unpacklo_pd(a, b);
      m[r + 1][c / 2] = _mm_unpackhi_pd(a, b);
    }
  }
  // The 2x2 tiles above transposed in place only the diagonal; swap the
  // off-diagonal tiles. Done as a second pass to keep the loop above simple.
  for (int r = 0; r < 8; r += 2) {
    for (int c = r + 2; c < 8; c += 2) {
      __m128d t0 = m[r][c / 2];
      __m128d t1 = m[r + 1][c / 2];
      m[r][c / 2] = m[c][r / 2];
      m[r + 1][c / 2] = m[c + 1][r / 2];
      m[c][r / 2] = t0;
      m[c + 1][r / 2] = t1;
    }
  }
}

#if defined(VC_SIMD_X86_AVX2_DISPATCH)

/// Transposes a 4x4 block of doubles held in four __m256d registers.
VC_AVX2_FN inline void Transpose4x4(__m256d* r0, __m256d* r1, __m256d* r2,
                                    __m256d* r3) {
  __m256d t0 = _mm256_unpacklo_pd(*r0, *r1);
  __m256d t1 = _mm256_unpackhi_pd(*r0, *r1);
  __m256d t2 = _mm256_unpacklo_pd(*r2, *r3);
  __m256d t3 = _mm256_unpackhi_pd(*r2, *r3);
  *r0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  *r1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  *r2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  *r3 = _mm256_permute2f128_pd(t1, t3, 0x31);
}

/// Transposes an 8x8 block of doubles held as 8 rows x 2 __m256d registers
/// (`m[r][c]` covers columns 4c..4c+3 of row r): transpose the two diagonal
/// 4x4 tiles in place, swap-and-transpose the off-diagonal pair. Pure data
/// movement, so it cannot perturb bit-exactness.
VC_AVX2_FN inline void Transpose8x8(__m256d m[8][2]) {
  Transpose4x4(&m[0][0], &m[1][0], &m[2][0], &m[3][0]);
  Transpose4x4(&m[4][1], &m[5][1], &m[6][1], &m[7][1]);
  __m256d b0 = m[0][1], b1 = m[1][1], b2 = m[2][1], b3 = m[3][1];
  Transpose4x4(&b0, &b1, &b2, &b3);
  m[0][1] = m[4][0];
  m[1][1] = m[5][0];
  m[2][1] = m[6][0];
  m[3][1] = m[7][0];
  Transpose4x4(&m[0][1], &m[1][1], &m[2][1], &m[3][1]);
  m[4][0] = b0;
  m[5][0] = b1;
  m[6][0] = b2;
  m[7][0] = b3;
}

#endif  // VC_SIMD_X86_AVX2_DISPATCH

#endif  // VC_SIMD_X86

}  // namespace simd
}  // namespace vc

#endif  // VC_CODEC_SIMD_H_
