#ifndef VC_CODEC_TRANSFORM_H_
#define VC_CODEC_TRANSFORM_H_

#include <array>
#include <cstdint>

namespace vc {

/// Residual/coefficient block edge length used throughout the codec.
inline constexpr int kBlockSize = 8;
inline constexpr int kBlockPixels = kBlockSize * kBlockSize;

/// A spatial-domain residual block (row-major).
using ResidualBlock = std::array<int16_t, kBlockPixels>;
/// A frequency-domain coefficient block (row-major before zigzag).
using CoeffBlock = std::array<double, kBlockPixels>;
/// A quantized-level block (what the entropy coder sees).
using LevelBlock = std::array<int32_t, kBlockPixels>;

/// Forward 8×8 orthonormal DCT-II of a residual block.
void ForwardDct(const ResidualBlock& input, CoeffBlock* output);

/// Inverse 8×8 DCT (exact inverse of ForwardDct up to float rounding).
void InverseDct(const CoeffBlock& input, ResidualBlock* output);

/// Inverse 8×8 DCT specialized for sparse blocks: sums one basis outer
/// product per nonzero coefficient, which beats the separable transform up
/// to roughly six nonzeros (the common case for inter residuals at medium
/// and high QP). Deterministic but not bit-identical to InverseDct (different
/// float summation order), so encoder and decoder must agree on when to use
/// it — both switch on `InverseDctSparseThreshold`.
void InverseDctSparse(const CoeffBlock& input, int nonzero_count,
                      ResidualBlock* output);

/// Nonzero-coefficient count at or below which both codec sides use
/// InverseDctSparse.
inline constexpr int kInverseDctSparseThreshold = 4;

/// Quantizer step size for quantization parameter `qp` ∈ [0, 51]; doubles
/// every 6 QP steps, as in H.264/HEVC.
double QStepForQp(int qp);

/// Maximum supported quantization parameter.
inline constexpr int kMaxQp = 51;

/// Quantizes DCT coefficients to integer levels with a dead-zone.
void Quantize(const CoeffBlock& coeffs, double qstep, LevelBlock* levels);

/// Reconstructs coefficients from levels. Bit-exact mirror of the decoder.
void Dequantize(const LevelBlock& levels, double qstep, CoeffBlock* coeffs);

/// Zigzag scan order for an 8×8 block (index i gives the raster position of
/// the i-th scanned coefficient).
const std::array<int, kBlockPixels>& ZigzagOrder();

}  // namespace vc

#endif  // VC_CODEC_TRANSFORM_H_
