#include "codec/decoder.h"

#include <cstdlib>

#include "codec/entropy.h"
#include "codec/mb_common.h"
#include "codec/motion.h"
#include "common/math_util.h"

namespace vc {

using codec_internal::kMbSize;

Result<std::unique_ptr<Decoder>> Decoder::Create(
    const SequenceHeader& header) {
  std::vector<TileGrid::PixelRect> rects;
  VC_ASSIGN_OR_RETURN(rects, codec_internal::ComputeTileRects(header));
  return std::unique_ptr<Decoder>(new Decoder(header, std::move(rects)));
}

Decoder::Decoder(const SequenceHeader& header,
                 std::vector<TileGrid::PixelRect> tile_rects)
    : header_(header),
      tile_rects_(std::move(tile_rects)),
      recon_(header.width, header.height),
      reference_(header.width, header.height) {}

Result<Frame> Decoder::Decode(Slice frame_payload) {
  std::vector<TileId> all;
  TileGrid grid = header_.tile_grid();
  all.reserve(grid.tile_count());
  for (int i = 0; i < grid.tile_count(); ++i) all.push_back(grid.TileAt(i));
  return DecodeTiles(frame_payload, all);
}

Result<Frame> Decoder::DecodeTiles(Slice frame_payload,
                                   const std::vector<TileId>& tiles) {
  FrameType type;
  VC_ASSIGN_OR_RETURN(type, ParseFrameType(frame_payload));
  int frame_qp;
  VC_ASSIGN_OR_RETURN(frame_qp, ParseFrameQp(frame_payload));
  const double qstep = QStepForQp(frame_qp);
  TileGrid grid = header_.tile_grid();
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  VC_ASSIGN_OR_RETURN(ranges,
                      ParseTileOffsets(frame_payload, grid.tile_count()));

  for (const TileId& tile : tiles) {
    if (tile.row < 0 || tile.row >= grid.rows() || tile.col < 0 ||
        tile.col >= grid.cols()) {
      return Status::InvalidArgument("tile id outside stream grid");
    }
    int index = grid.IndexOf(tile);
    Slice payload =
        frame_payload.Subslice(ranges[index].first, ranges[index].second);
    VC_RETURN_IF_ERROR(
        DecodeTilePayload(payload, tile_rects_[index], type, qstep));
  }
  reference_ = recon_;
  return recon_;
}

Status Decoder::DecodeTilePayload(Slice payload,
                                  const TileGrid::PixelRect& rect,
                                  FrameType type, double qstep) {
  using namespace codec_internal;  // NOLINT

  const MotionBounds luma_bounds =
      header_.motion_constrained_tiles()
          ? BoundsOf(rect)
          : MotionBounds{0, 0, header_.width, header_.height};
  const MotionBounds tile_bounds = BoundsOf(rect);
  const MotionBounds chroma_tile_bounds = ChromaBounds(tile_bounds);

  PlaneView ref_y{reference_.y_plane().data(), reference_.width()};
  PlaneView ref_u{reference_.u_plane().data(), reference_.chroma_width()};
  PlaneView ref_v{reference_.v_plane().data(), reference_.chroma_width()};
  PlaneView rec_y{recon_.y_plane().data(), recon_.width()};
  PlaneView rec_u{recon_.u_plane().data(), recon_.chroma_width()};
  PlaneView rec_v{recon_.v_plane().data(), recon_.chroma_width()};

  BitReader reader(payload);
  uint8_t pred_y[kMbSize * kMbSize];
  uint8_t pred_c[kBlockSize * kBlockSize];
  uint8_t recon_y[kMbSize * kMbSize];
  uint8_t recon_c[kBlockSize * kBlockSize];

  // Huffman-profile payloads lead with one bit choosing between the
  // canonical table (1) and a plain Exp-Golomb payload (0). Streams without
  // the header flag have no profile bit at all.
  HuffmanBlockDecoder huffman_decoder;
  const HuffmanBlockDecoder* huffman = nullptr;
  if (header_.huffman_entropy()) {
    bool use_huffman = false;
    VC_RETURN_IF_ERROR(reader.ReadBit(&use_huffman));
    if (use_huffman) {
      VC_RETURN_IF_ERROR(huffman_decoder.Init(&reader));
      huffman = &huffman_decoder;
    }
  }

  for (int ly = rect.y; ly < rect.y + rect.height; ly += kMbSize) {
    for (int lx = rect.x; lx < rect.x + rect.width; lx += kMbSize) {
      bool use_inter = false;
      MotionVector mv{0, 0};
      IntraMode intra_mode = IntraMode::kDc;

      if (type == FrameType::kInter) {
        VC_RETURN_IF_ERROR(reader.ReadBit(&use_inter));
      }
      if (use_inter) {
        int64_t dx, dy;
        VC_RETURN_IF_ERROR(reader.ReadSE(&dx));
        VC_RETURN_IF_ERROR(reader.ReadSE(&dy));
        mv = MotionVector{static_cast<int>(dx), static_cast<int>(dy)};
        if (lx + mv.dx < luma_bounds.x0 || ly + mv.dy < luma_bounds.y0 ||
            lx + mv.dx + kMbSize > luma_bounds.x1 ||
            ly + mv.dy + kMbSize > luma_bounds.y1) {
          return Status::Corruption("motion vector out of bounds");
        }
      } else {
        uint64_t mode;
        VC_RETURN_IF_ERROR(reader.ReadBits(2, &mode));
        if (mode > 2) return Status::Corruption("unknown intra mode");
        intra_mode = static_cast<IntraMode>(mode);
        IntraNeighbors neighbors = IntraAvailability(lx, ly, tile_bounds);
        if ((intra_mode == IntraMode::kHorizontal && !neighbors.left) ||
            (intra_mode == IntraMode::kVertical && !neighbors.top)) {
          return Status::Corruption("intra mode without neighbor");
        }
      }

      // Luma.
      if (use_inter) {
        CompensateBlock(ref_y, lx, ly, mv, kMbSize, pred_y);
      } else {
        IntraPredict(rec_y, lx, ly, kMbSize, intra_mode, tile_bounds, pred_y);
      }
      VC_RETURN_IF_ERROR(
          DecodeResidual(&reader, pred_y, kMbSize, qstep, recon_y, huffman));
      StoreBlock(recon_y, kMbSize, recon_.y_plane().data(), recon_.width(), lx,
                 ly);

      // Chroma.
      const int cx = lx / 2, cy = ly / 2;
      MotionVector cmv = ChromaVector(mv);
      for (int plane = 0; plane < 2; ++plane) {
        PlaneView ref_c = plane == 0 ? ref_u : ref_v;
        PlaneView rec_c = plane == 0 ? rec_u : rec_v;
        if (use_inter) {
          CompensateBlock(ref_c, cx, cy, cmv, kBlockSize, pred_c);
        } else {
          IntraPredict(rec_c, cx, cy, kBlockSize, IntraMode::kDc,
                       chroma_tile_bounds, pred_c);
        }
        VC_RETURN_IF_ERROR(
            DecodeResidual(&reader, pred_c, kBlockSize, qstep, recon_c,
                           huffman));
        uint8_t* plane_data = plane == 0 ? recon_.u_plane().data()
                                         : recon_.v_plane().data();
        StoreBlock(recon_c, kBlockSize, plane_data, recon_.chroma_width(), cx,
                   cy);
      }
    }
  }
  return Status::OK();
}

Result<std::vector<Frame>> DecodeVideo(const EncodedVideo& video) {
  std::unique_ptr<Decoder> decoder;
  VC_ASSIGN_OR_RETURN(decoder, Decoder::Create(video.header));
  std::vector<Frame> frames;
  frames.reserve(video.frames.size());
  for (const EncodedFrame& encoded : video.frames) {
    Frame frame;
    VC_ASSIGN_OR_RETURN(frame, decoder->Decode(Slice(encoded.payload)));
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace vc
