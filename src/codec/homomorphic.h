#ifndef VC_CODEC_HOMOMORPHIC_H_
#define VC_CODEC_HOMOMORPHIC_H_

#include <vector>

#include "codec/bitstream.h"
#include "geometry/tile_grid.h"

namespace vc {

// Homomorphic bitstream operations: transformations performed directly on
// encoded bytes, with no decode/encode cycle. They are what make the tiled
// storage layout cheap to serve in other shapes — exporting a monolithic
// stream for download, or re-tiling — at byte-copy speed.
//
// All of them rely on two properties of the VCC bitstream: (a) tile
// payloads are self-contained bit strings located via the frame's tile
// offset table, and (b) with motion-constrained tile sets a tile's syntax
// is position-independent (macroblock order, intra availability, and MV
// bounds are all relative to the tile rectangle).

/// TILESELECT: extracts one tile of a tiled stream as a standalone
/// single-tile stream whose frames decode to exactly the same pixels as a
/// partial decode of that tile. Requires motion-constrained tiles.
Result<EncodedVideo> ExtractTileStream(const EncodedVideo& tiled,
                                       TileId tile);

/// TILEUNION: merges single-tile streams (tile-index order, one per cell of
/// a `rows`×`cols` grid over a `width`×`height` frame) into one tiled
/// stream — the inverse of ExtractTileStream. All parts must agree on
/// frame count, per-frame type and QP, GOP length and fps, and their
/// dimensions must match the grid's 16-aligned partition of the frame.
Result<EncodedVideo> MergeTileStreams(const std::vector<EncodedVideo>& parts,
                                      int rows, int cols, int width,
                                      int height);

/// GOPUNION: temporal concatenation of streams with identical coding
/// parameters, each starting with a keyframe (true of every stored segment
/// cell). The result plays the parts back to back.
Result<EncodedVideo> ConcatenateStreams(
    const std::vector<EncodedVideo>& parts);

}  // namespace vc

#endif  // VC_CODEC_HOMOMORPHIC_H_
