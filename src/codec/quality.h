#ifndef VC_CODEC_QUALITY_H_
#define VC_CODEC_QUALITY_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace vc {

/// \brief One rung of VisualCloud's quality ladder: a name plus the
/// quantization parameter used to encode it. Lower QP = higher quality and
/// higher bitrate.
struct QualityLevel {
  std::string name;
  int qp = 28;

  bool operator==(const QualityLevel& o) const {
    return name == o.name && qp == o.qp;
  }
};

/// A quality ladder, ordered from highest quality (index 0) to lowest.
using QualityLadder = std::vector<QualityLevel>;

/// The default three-rung ladder used throughout the benchmarks.
inline QualityLadder DefaultQualityLadder() {
  return {{"high", 14}, {"medium", 28}, {"low", 42}};
}

/// Builds an `count`-rung ladder spanning QP [hi_qp, lo_qp] evenly.
Result<QualityLadder> MakeQualityLadder(int count, int hi_qp = 14,
                                        int lo_qp = 42);

}  // namespace vc

#endif  // VC_CODEC_QUALITY_H_
