#include "obs/export.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace vc {

namespace {

// ------------------------------------------------------------- Serialization

/// Shortest decimal form that round-trips through a double.
std::string FormatDouble(double value) {
  char buffer[64];
  auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "0";
  return std::string(buffer, end);
}

/// Metric names are plain identifiers, but escape the JSON specials anyway
/// so the output is always well-formed.
std::string QuoteString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void AppendHistogramJson(const HistogramSnapshot& h, std::string* out) {
  out->append("{\"bounds\": [");
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append(FormatDouble(h.bounds[i]));
  }
  out->append("], \"counts\": [");
  for (size_t i = 0; i < h.counts.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append(std::to_string(h.counts[i]));
  }
  out->append("], \"count\": ");
  out->append(std::to_string(h.count));
  out->append(", \"sum\": ");
  out->append(FormatDouble(h.sum));
  out->append("}");
}

// ------------------------------------------------------------------ Parsing

/// Cursor over the JSON text with the micro-grammar MetricsToJson emits.
struct Parser {
  const char* p;
  const char* end;
  Status error = Status::OK();

  void Fail(const std::string& what) {
    if (error.ok()) error = Status::Corruption("metrics JSON: " + what);
  }

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    Fail(std::string("expected '") + c + "'");
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return p < end && *p == c;
  }

  std::string ParseString() {
    std::string out;
    if (!Consume('"')) return out;
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) ++p;
      out.push_back(*p++);
    }
    if (p >= end) {
      Fail("unterminated string");
      return out;
    }
    ++p;  // closing quote
    return out;
  }

  double ParseDouble() {
    SkipWs();
    char* after = nullptr;
    double value = std::strtod(p, &after);
    if (after == p || after > end) {
      Fail("malformed number");
      return 0.0;
    }
    p = after;
    return value;
  }

  uint64_t ParseUint() {
    SkipWs();
    uint64_t value = 0;
    auto [after, ec] = std::from_chars(p, end, value);
    if (ec != std::errc()) {
      Fail("malformed integer");
      return 0;
    }
    p = after;
    return value;
  }

  /// Parses `"key": <value>` pairs of an object, invoking `field` per key.
  /// `field` must consume the value.
  template <typename Fn>
  void ParseObject(Fn field) {
    if (!Consume('{')) return;
    if (Peek('}')) {
      ++p;
      return;
    }
    while (error.ok()) {
      std::string key = ParseString();
      if (!Consume(':')) return;
      field(key);
      if (Peek(',')) {
        ++p;
        continue;
      }
      Consume('}');
      return;
    }
  }

  template <typename Fn>
  void ParseArray(Fn element) {
    if (!Consume('[')) return;
    if (Peek(']')) {
      ++p;
      return;
    }
    while (error.ok()) {
      element();
      if (Peek(',')) {
        ++p;
        continue;
      }
      Consume(']');
      return;
    }
  }

  HistogramSnapshot ParseHistogram() {
    HistogramSnapshot h;
    ParseObject([&](const std::string& key) {
      if (key == "bounds") {
        ParseArray([&] { h.bounds.push_back(ParseDouble()); });
      } else if (key == "counts") {
        ParseArray([&] { h.counts.push_back(ParseUint()); });
      } else if (key == "count") {
        h.count = ParseUint();
      } else if (key == "sum") {
        h.sum = ParseDouble();
      } else {
        Fail("unknown histogram field '" + key + "'");
      }
    });
    if (h.counts.size() != h.bounds.size() + 1) {
      Fail("histogram bucket count mismatch");
    }
    return h;
  }
};

}  // namespace

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out.append(", ");
    first = false;
    out.append(QuoteString(name) + ": " + std::to_string(value));
  }
  out.append("}, \"gauges\": {");
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out.append(", ");
    first = false;
    out.append(QuoteString(name) + ": " + FormatDouble(value));
  }
  out.append("}, \"histograms\": {");
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    if (!first) out.append(", ");
    first = false;
    out.append(QuoteString(name) + ": ");
    AppendHistogramJson(histogram, &out);
  }
  out.append("}}");
  return out;
}

std::string MetricsToCsv(const MetricsSnapshot& snapshot) {
  std::string out = "type,name,field,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    out.append("counter," + name + ",value," + std::to_string(value) + "\n");
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out.append("gauge," + name + ",value," + FormatDouble(value) + "\n");
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out.append("histogram," + name + ",count," + std::to_string(h.count) +
               "\n");
    out.append("histogram," + name + ",sum," + FormatDouble(h.sum) + "\n");
    out.append("histogram," + name + ",mean," + FormatDouble(h.Mean()) + "\n");
    out.append("histogram," + name + ",p50," +
               FormatDouble(h.Percentile(0.50)) + "\n");
    out.append("histogram," + name + ",p95," +
               FormatDouble(h.Percentile(0.95)) + "\n");
    out.append("histogram," + name + ",p99," +
               FormatDouble(h.Percentile(0.99)) + "\n");
  }
  return out;
}

Result<MetricsSnapshot> MetricsFromJson(Slice json) {
  // strtod needs a NUL terminator; copy so the cursor can never run off the
  // caller's buffer.
  std::string text = json.ToString();
  Parser parser{text.c_str(), text.c_str() + text.size()};
  MetricsSnapshot snapshot;
  parser.ParseObject([&](const std::string& section) {
    if (section == "counters") {
      parser.ParseObject([&](const std::string& name) {
        snapshot.counters[name] = parser.ParseUint();
      });
    } else if (section == "gauges") {
      parser.ParseObject([&](const std::string& name) {
        snapshot.gauges[name] = parser.ParseDouble();
      });
    } else if (section == "histograms") {
      parser.ParseObject([&](const std::string& name) {
        snapshot.histograms[name] = parser.ParseHistogram();
      });
    } else {
      parser.Fail("unknown section '" + section + "'");
    }
  });
  parser.SkipWs();
  if (parser.error.ok() && parser.p != parser.end) {
    parser.Fail("trailing characters");
  }
  VC_RETURN_IF_ERROR(parser.error);
  return snapshot;
}

}  // namespace vc
