#ifndef VC_OBS_EXPORT_H_
#define VC_OBS_EXPORT_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "obs/metrics.h"

namespace vc {

/// Serializes a snapshot as one JSON object:
///
///   {"counters": {"net.transfers": 12, ...},
///    "gauges": {"net.goodput_bps": 8.1e6, ...},
///    "histograms": {"storage.read_seconds":
///        {"bounds": [...], "counts": [...], "count": 9, "sum": 0.004}, ...}}
///
/// Numbers use shortest-round-trip formatting, so parsing the output yields
/// exactly the snapshot that was serialized.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Serializes a snapshot as CSV rows `type,name,field,value` — counters and
/// gauges one row each, histograms one row per aggregate (count, sum, mean,
/// p50, p95, p99). Includes a header line.
std::string MetricsToCsv(const MetricsSnapshot& snapshot);

/// Parses the JSON produced by `MetricsToJson` (the metrics interchange
/// format used in BENCH_*.json); not a general-purpose JSON parser.
Result<MetricsSnapshot> MetricsFromJson(Slice json);

}  // namespace vc

#endif  // VC_OBS_EXPORT_H_
