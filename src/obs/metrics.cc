#include "obs/metrics.h"

#include <algorithm>

namespace vc {

unsigned Counter::ShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0 || bounds.empty()) return 0.0;
  p = std::min(std::max(p, 0.0), 1.0);
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count - 1));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative > rank) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    counts_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

void Histogram::Observe(double value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.reserve(counts_.size());
  for (const auto& cell : counts_) {
    snapshot.counts.push_back(cell->load(std::memory_order_relaxed));
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (auto& cell : counts_) cell->store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBuckets() {
  static const std::vector<double> buckets = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
      5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0,
      30.0};
  return buckets;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace vc
