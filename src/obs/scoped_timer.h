#ifndef VC_OBS_SCOPED_TIMER_H_
#define VC_OBS_SCOPED_TIMER_H_

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace vc {

/// \brief RAII latency probe: records the enclosing scope's wall-clock
/// duration (seconds) into a histogram on destruction.
///
///   static Histogram* lat =
///       MetricRegistry::Global().GetHistogram("storage.read_seconds");
///   ScopedTimer timer(lat);
///
/// A null histogram disables the probe (so call sites can gate on config
/// without branching around the timer itself).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(watch_.ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far (the destructor still records the full scope).
  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

}  // namespace vc

#endif  // VC_OBS_SCOPED_TIMER_H_
