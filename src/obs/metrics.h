#ifndef VC_OBS_METRICS_H_
#define VC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vc {

/// \brief Process-wide metrics: lock-cheap counters, gauges, and fixed-bucket
/// histograms.
///
/// Every subsystem on the streaming hot path (storage cache, network
/// simulator, session loop, predictors) reports through these so that cache
/// hits, stall events, quality downgrades, and predictor misses are visible
/// outside ad-hoc bench prints. Handles returned by the registry are valid for
/// the process lifetime; updates are wait-free on `std::atomic` cells, so
/// instrumentation is safe (and cheap) from concurrent sessions and thread
/// pool workers.

/// Monotonic event counter. Increments land in one of several cache-line-
/// padded shards chosen per thread, so concurrent writers do not contend;
/// `Value()` sums the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Each thread gets a stable shard assigned round-robin on first use.
  static unsigned ShardIndex();

  Shard shards_[kShards];
};

/// Last-value metric (e.g. an instantaneous goodput estimate).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only copy of a histogram's state at snapshot time.
struct HistogramSnapshot {
  /// Upper bounds (inclusive) of the finite buckets; `counts` has one extra
  /// trailing overflow bucket for observations above the last bound.
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;  ///< Total observations.
  double sum = 0.0;    ///< Sum of observed values.

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Upper bound of the bucket containing the `p`-quantile (p in [0, 1]).
  /// Observations in the overflow bucket report the last finite bound.
  double Percentile(double p) const;
};

/// Fixed-bucket histogram: an observation of value `v` lands in the first
/// bucket whose upper bound satisfies `v <= bound`, or in the trailing
/// overflow bucket. All updates are relaxed atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  const std::vector<double> bounds_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets (seconds): ~1 µs to 30 s, roughly logarithmic.
const std::vector<double>& DefaultLatencyBuckets();

/// Everything the registry knew at one instant, keyed by metric name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// \brief Name → metric registry.
///
/// `Global()` is the process-wide instance every subsystem reports to.
/// Get* registers on first use and afterwards returns the same handle, so
/// call sites can cache the pointer (e.g. in a function-local static).
/// Metric names follow `<subsystem>.<event>[_<unit>]`, e.g.
/// `storage.cell_reads`, `net.transfer_seconds`.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is only consulted when the histogram does not exist yet.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds =
                              DefaultLatencyBuckets());

  /// Copies every registered metric's current value.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (registrations and handles stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace vc

#endif  // VC_OBS_METRICS_H_
