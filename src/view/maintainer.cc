#include "view/maintainer.h"

#include <utility>

#include "common/crc32.h"
#include "query/cost_model.h"
#include "query/executor.h"
#include "query/parser.h"

namespace vc {

struct ViewMaintainer::Registration {
  std::string name;
  Query query;  ///< As registered (subscribe or store outermost).
  std::string source;
  bool is_view = false;
  std::string defining_text;  ///< Canonical store-sink text (views only).
  uint32_t maintained_version = 0;
  /// DataDir of the source timeline maintained so far. Live checkpoints
  /// share one data directory, so append-only growth keeps this constant;
  /// a re-ingest starts a new directory and invalidates every slice
  /// already processed — maintenance latches an error instead of serving
  /// the old timeline's bytes as the new version's.
  std::string maintained_data_dir;
  size_t next_slice = 0;  ///< First defining-plan slice not yet processed.
  /// Open streaming writer of the view video; one per incremental run,
  /// archived (Commit) when the source archives. Dropping it uncommitted
  /// (RefreshView) abandons the invisible version's cells.
  std::unique_ptr<StorageManager::VideoWriter> writer;
  std::vector<StandingQueryResult> results;
  Status error;  ///< First maintenance error; latched.
};

namespace {

/// Walks the chain under the sink and returns the single Scan leaf's video;
/// rejects shapes incremental maintenance cannot serve.
Result<std::string> SingleScanSource(const LogicalNode* node) {
  while (node != nullptr) {
    switch (node->kind) {
      case LogicalOpKind::kScan:
        return node->video;
      case LogicalOpKind::kUnion:
        return Status::InvalidArgument(
            "standing queries take a single scan, not a union");
      case LogicalOpKind::kStore:
      case LogicalOpKind::kToFile:
      case LogicalOpKind::kSubscribe:
        return Status::InvalidArgument(
            std::string(LogicalOpName(node->kind)) +
            " cannot appear inside a standing query");
      default:
        node = node->inputs.empty() ? nullptr : node->inputs[0].get();
    }
  }
  return Status::InvalidArgument("standing query has no scan");
}

}  // namespace

ViewMaintainer::ViewMaintainer(VisualCloud* db)
    : db_(db),
      catalog_(db->storage()->env(), db->storage()->root()) {
  db_->AddObserver(this);
}

ViewMaintainer::~ViewMaintainer() { db_->RemoveObserver(this); }

ViewMaintainer::Registration* ViewMaintainer::Find(const std::string& name) {
  for (const auto& reg : registrations_) {
    if (reg->name == name) return reg.get();
  }
  return nullptr;
}

Result<std::string> ViewMaintainer::Register(Slice query_text) {
  Result<Query> parsed = ParseQuery(query_text);
  if (!parsed.ok()) return parsed.status();
  const LogicalNode* root = parsed->root().get();
  if (root == nullptr || root->kind != LogicalOpKind::kSubscribe) {
    return Status::InvalidArgument(
        "standing queries end in subscribe(<name>)");
  }
  const std::string name = root->target;
  const LogicalNode* inner = root->inputs[0].get();
  bool is_view = false;
  std::string defining_text;
  if (inner->kind == LogicalOpKind::kStore) {
    if (inner->target != name) {
      return Status::InvalidArgument("standing query '" + name +
                                     "' stores into '" + inner->target +
                                     "'; the names must match");
    }
    is_view = true;
    // Canonical text always ends " | subscribe(<name>)"; strip it to get
    // the store-sink defining query.
    const std::string full = parsed->ToString();
    const std::string suffix = " | subscribe(" + name + ")";
    if (full.size() <= suffix.size() ||
        full.compare(full.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      return Status::Internal("canonical standing-query text mismatch");
    }
    defining_text = full.substr(0, full.size() - suffix.size());
  } else if (inner->kind != LogicalOpKind::kEncode) {
    return Status::InvalidArgument(
        "standing queries need an encode (or encode|store) sink before "
        "subscribe");
  }
  std::lock_guard<std::mutex> lock(mu_);
  VC_RETURN_IF_ERROR(RegisterLocked(name, *parsed, is_view, defining_text));
  return name;
}

Status ViewMaintainer::CreateView(const std::string& name,
                                  Slice defining_query) {
  ViewDefinition def;
  VC_ASSIGN_OR_RETURN(def, MakeViewDefinition(name, defining_query));
  Result<Query> parsed = ParseQuery(Slice(def.query));
  if (!parsed.ok()) return parsed.status();
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(name, *parsed, /*is_view=*/true, def.query);
}

Status ViewMaintainer::RegisterLocked(const std::string& name,
                                      const Query& query, bool is_view,
                                      const std::string& defining_text) {
  if (Find(name) != nullptr) {
    return Status::InvalidArgument("standing query '" + name +
                                   "' already registered");
  }
  const LogicalNode* sink = query.root().get();
  if (sink->kind == LogicalOpKind::kSubscribe) sink = sink->inputs[0].get();
  std::string source;
  VC_ASSIGN_OR_RETURN(
      source, SingleScanSource(sink->kind == LogicalOpKind::kStore
                                   ? sink->inputs[0].get()
                                   : sink));
  if (is_view) {
    ViewDefinition def;
    VC_ASSIGN_OR_RETURN(def, MakeViewDefinition(name, Slice(defining_text)));
    VC_RETURN_IF_ERROR(catalog_.Save(def));
  }
  auto reg = std::make_unique<Registration>();
  reg->name = name;
  reg->query = query;
  reg->source = std::move(source);
  reg->is_view = is_view;
  reg->defining_text = defining_text;
  registrations_.push_back(std::move(reg));
  return Status::OK();
}

Status ViewMaintainer::MaintainLocked(Registration* reg) {
  if (!reg->error.ok()) return reg->error;
  auto latch = [&](const Status& status) {
    reg->error = status;
    if (status_.ok()) status_ = status;
    return status;
  };

  StorageManager* storage = db_->storage();
  Result<VideoMetadata> source = storage->GetVideo(reg->source);
  if (!source.ok()) return Status::OK();  // source not ingested yet
  if (source->version == reg->maintained_version) return Status::OK();
  if (reg->maintained_version != 0 &&
      source->DataDir() != reg->maintained_data_dir) {
    return latch(Status::Aborted(
        "source '" + reg->source + "' v" + std::to_string(source->version) +
        " is not append-only growth of the maintained timeline; '" +
        reg->name + "' needs a full refresh"));
  }

  // Re-plan against the new snapshot. Predicates are segment-local, so
  // already-processed slices come out identical and new segments append
  // new slices — the basis of incremental == full-recompute byte identity.
  OptimizeOptions options;
  options.scan_override = &*source;
  const CostModel pinned_model;
  options.cost_model = &pinned_model;
  Result<PhysicalPlan> planned = Optimize(reg->query, storage, options);
  if (!planned.ok()) return latch(planned.status());
  PhysicalPlan& plan = *planned;
  const ScanPlan& scan = plan.scans[0];

  bool appended = false;
  for (size_t i = reg->next_slice; i < scan.slices.size(); ++i) {
    // One encode-sink execution over exactly this slice: the same piece
    // the one-shot plan builds for it (pieces are per segment slice).
    PhysicalPlan piece_plan;
    ScanPlan single;
    single.metadata = scan.metadata;
    single.slices.push_back(scan.slices[i]);
    piece_plan.scans.push_back(std::move(single));
    piece_plan.sink = SinkKind::kEncode;
    piece_plan.encode_qp = plan.encode_qp;
    piece_plan.transcode_free = plan.transcode_free;
    Result<QueryResult> result = ExecutePlan(piece_plan, storage);
    if (!result.ok()) return latch(result.status());

    std::vector<uint8_t> bytes = result->encoded.Serialize();
    StandingQueryResult emit;
    emit.index = static_cast<int>(i);
    emit.source_segment = scan.slices[i].segment;
    emit.source_version = source->version;
    emit.bytes = bytes.size();
    emit.checksum = Crc32(Slice(bytes));
    emit.cells_scanned = result->cells_scanned;

    if (reg->is_view) {
      if (reg->writer == nullptr) {
        Result<std::unique_ptr<StorageManager::VideoWriter>> writer =
            storage->NewVideoWriter(DerivedVideoMetadata(
                reg->name, scan.metadata, StoreLadderFor(plan)));
        if (!writer.ok()) return latch(writer.status());
        reg->writer = *std::move(writer);
      }
      Result<std::vector<std::vector<uint8_t>>> cells = SplitPieceToCells(
          result->encoded, scan.metadata.tile_rows, scan.metadata.tile_cols);
      if (!cells.ok()) return latch(cells.status());
      Status added = reg->writer->AddSegment(
          static_cast<uint32_t>(result->encoded.frames.size()), *cells);
      if (!added.ok()) return latch(added);
      emit.view_segment = static_cast<int>(i);
      appended = true;
    }
    reg->results.push_back(std::move(emit));
    reg->next_slice = i + 1;
  }

  if (reg->is_view && reg->writer != nullptr) {
    // Publish: checkpoint while the source streams (append-only growth
    // continues), archive when the source archived. Archival happens even
    // with nothing appended this pass — the source's final commit may add
    // no segments (the last one was already published as a checkpoint),
    // but the view must still follow it out of the streaming state.
    if (source->streaming) {
      if (appended) {
        Result<uint32_t> version = reg->writer->CommitCheckpoint();
        if (!version.ok()) return latch(version.status());
      }
    } else {
      Result<uint32_t> version = reg->writer->Commit();
      if (!version.ok()) return latch(version.status());
      reg->writer.reset();
    }
  }
  if (reg->is_view && reg->next_slice > 0) {
    ViewDefinition def;
    def.name = reg->name;
    def.source = reg->source;
    def.source_version = source->version;
    def.segments = static_cast<int>(reg->next_slice);
    def.query = reg->defining_text;
    Status saved = catalog_.Save(def);
    if (!saved.ok()) return latch(saved);
  }
  reg->maintained_version = source->version;
  reg->maintained_data_dir = source->DataDir();
  return Status::OK();
}

Status ViewMaintainer::Maintain(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Registration* reg = Find(name);
  if (reg == nullptr) {
    return Status::NotFound("no standing query '" + name + "'");
  }
  return MaintainLocked(reg);
}

Status ViewMaintainer::MaintainAll() {
  std::lock_guard<std::mutex> lock(mu_);
  Status first;
  for (const auto& reg : registrations_) {
    Status status = MaintainLocked(reg.get());
    if (first.ok() && !status.ok()) first = status;
  }
  return first;
}

Status ViewMaintainer::RefreshView(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Registration* reg = Find(name);
  if (reg == nullptr) {
    ViewDefinition def;
    VC_ASSIGN_OR_RETURN(def, catalog_.Load(name));
    Result<Query> parsed = ParseQuery(Slice(def.query));
    if (!parsed.ok()) return parsed.status();
    VC_RETURN_IF_ERROR(
        RegisterLocked(name, *parsed, /*is_view=*/true, def.query));
    reg = Find(name);
  }
  if (!reg->is_view) {
    return Status::InvalidArgument("'" + name +
                                   "' is a standing query, not a view");
  }
  reg->writer.reset();
  reg->next_slice = 0;
  reg->maintained_version = 0;
  reg->maintained_data_dir.clear();
  reg->results.clear();
  reg->error = Status::OK();
  return MaintainLocked(reg);
}

void ViewMaintainer::OnCommit(const std::string& name, uint32_t version,
                              bool final) {
  (void)version;
  (void)final;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& reg : registrations_) {
    if (reg->source != name) continue;
    // Errors are latched in reg->error / status(); commits keep flowing.
    Status status = MaintainLocked(reg.get());
    (void)status;
  }
}

std::vector<std::string> ViewMaintainer::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(registrations_.size());
  for (const auto& reg : registrations_) names.push_back(reg->name);
  return names;
}

Result<std::vector<StandingQueryResult>> ViewMaintainer::Results(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& reg : registrations_) {
    if (reg->name == name) return reg->results;
  }
  return Status::NotFound("no standing query '" + name + "'");
}

Status ViewMaintainer::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace vc
