#ifndef VC_VIEW_CATALOG_H_
#define VC_VIEW_CATALOG_H_

#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "query/optimizer.h"
#include "storage/storage_manager.h"
#include "view/definition.h"

namespace vc {

/// \brief Persistent registry of materialized-view definitions.
///
/// One "VCVIEW 1" file per view under `<store root>/views/<name>.vcq`,
/// beside (never inside) the video directories the storage manager owns.
/// Saves are last-writer-wins whole-file rewrites — the maintainer is the
/// only writer and serializes them. Candidates() is the optimizer bridge:
/// it re-parses every definition and offers only *fresh* views (maintained
/// through the source's latest committed version, view video present) as
/// rewrite candidates, so a stale view silently stops matching instead of
/// serving old bytes.
class ViewCatalog {
 public:
  /// `root` is the storage manager's root directory (not owned env).
  ViewCatalog(Env* env, std::string root);

  /// Writes (or overwrites) `def`'s file.
  Status Save(const ViewDefinition& def);

  /// Loads and re-validates one definition.
  Result<ViewDefinition> Load(const std::string& name) const;

  /// Names of every persisted definition, sorted. Missing directory is an
  /// empty catalog, not an error.
  Result<std::vector<std::string>> List() const;

  /// Removes a definition (not the view's video). NotFound when absent.
  Status Drop(const std::string& name);

  /// Fresh view candidates for OptimizeOptions::views, sorted by name.
  /// Skips (without failing) definitions that are unreadable, never
  /// maintained, stale against the source's latest version, or whose view
  /// video is missing.
  Result<std::vector<MaterializedViewInfo>> Candidates(
      const StorageManager& storage) const;

 private:
  std::string PathFor(const std::string& name) const;

  Env* env_;
  std::string dir_;
};

}  // namespace vc

#endif  // VC_VIEW_CATALOG_H_
