#ifndef VC_VIEW_MAINTAINER_H_
#define VC_VIEW_MAINTAINER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/visualcloud.h"
#include "query/algebra.h"
#include "view/catalog.h"

namespace vc {

/// What one standing-query execution over one new source segment produced.
/// `bytes`/`checksum` describe the serialized encoded result for exactly
/// that segment — the unit the determinism guarantees cover: for a fixed
/// registration timeline they are byte-identical across reruns, node
/// counts, and prefetch modes (`source_version` reflects catch-up batching
/// and may differ between timelines).
struct StandingQueryResult {
  int index = 0;             ///< Emission number (defining-plan slice index).
  int source_segment = 0;    ///< Source segment the emission covers.
  uint32_t source_version = 0;  ///< Source version current at execution.
  uint64_t bytes = 0;        ///< Serialized encoded result size.
  uint32_t checksum = 0;     ///< CRC-32 of the serialized encoded result.
  int cells_scanned = 0;
  int view_segment = -1;     ///< Segment appended to the view video; -1 for
                             ///< plain (non-materializing) standing queries.
};

/// \brief Runs standing queries incrementally as the catalog commits.
///
/// Registers itself as a CatalogObserver on construction: every checkpoint
/// or final commit of a video triggers maintenance of the standing queries
/// scanning it. Maintenance re-optimizes the registered query against the
/// new snapshot and executes only the defining-plan slices not yet
/// processed, one encode-sink execution per slice — the async cell path,
/// same bytes the one-shot plan would produce for that slice. Because live
/// commits happen inside the server's deterministic (time, seq) scheduler,
/// per-segment results inherit its determinism.
///
/// A standing query whose inner chain sinks into `store(<name>)` is a
/// *materialized view*: each emission's piece is split back into per-tile
/// cells (homomorphically, so the view's cells are byte-identical to a
/// full recompute) and appended to derived catalog video `<name>` — a
/// streaming checkpoint per maintenance batch while the source streams,
/// an archived commit when the source closes. The definition and progress
/// persist in the ViewCatalog, whose Candidates() feed the optimizer's
/// view-matching rewrite.
///
/// Incremental maintenance assumes append-only source growth — live
/// checkpoint versions extending one shared data directory. A re-ingest
/// (new data directory, old slices invalid) is detected and latched as an
/// error rather than silently advancing; RefreshView recovers with a full
/// recompute.
///
/// Thread-safety: all entry points (including OnCommit) serialize on one
/// mutex. OnCommit fires on the committing thread; maintenance work —
/// decode, stitch, view writes — runs inline there. The first maintenance
/// error is latched in status() and fails the next Maintain call for that
/// registration; commits keep flowing regardless.
class ViewMaintainer : public CatalogObserver {
 public:
  /// Registers with `db` (must outlive this maintainer).
  explicit ViewMaintainer(VisualCloud* db);
  ~ViewMaintainer() override;

  ViewMaintainer(const ViewMaintainer&) = delete;
  ViewMaintainer& operator=(const ViewMaintainer&) = delete;

  /// Registers a standing query: `scan(...) | ... | subscribe(<name>)`.
  /// The inner chain must end in `encode` (plain standing query) or
  /// `encode | store(<name>)` (materialized view; the store target must
  /// equal the subscribe name, and the definition is persisted). Returns
  /// the registration name. Does not execute anything — call Maintain for
  /// catch-up, or let commits drive it.
  Result<std::string> Register(Slice query_text);

  /// Registers materialized view `name` from its defining query
  /// (`scan(...) | ... | encode | store(<name>)`) and persists the
  /// definition. Equivalent to Register with a subscribe wrapper.
  Status CreateView(const std::string& name, Slice defining_query);

  /// Catch-up: processes every committed-but-unprocessed slice of `name`.
  Status Maintain(const std::string& name);

  /// Catch-up for every registration; first error wins.
  Status MaintainAll();

  /// Full recompute of view `name` from the view catalog: re-registers if
  /// needed, discards incremental progress, and re-derives every slice
  /// into a fresh view version. The result is byte-identical to what
  /// incremental maintenance accumulates (satellite-tested).
  Status RefreshView(const std::string& name);

  /// CatalogObserver: maintains every registration scanning `name`.
  void OnCommit(const std::string& name, uint32_t version,
                bool final) override;

  /// Registration names, in registration order.
  std::vector<std::string> Names() const;

  /// Per-segment results emitted so far for `name` (copy).
  Result<std::vector<StandingQueryResult>> Results(
      const std::string& name) const;

  /// First maintenance error since construction (OK when healthy).
  Status status() const;

  ViewCatalog* catalog() { return &catalog_; }

 private:
  struct Registration;

  Registration* Find(const std::string& name);
  Status RegisterLocked(const std::string& name, const Query& query,
                        bool is_view, const std::string& defining_text);
  Status MaintainLocked(Registration* reg);

  VisualCloud* db_;
  ViewCatalog catalog_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Registration>> registrations_;
  Status status_;
};

}  // namespace vc

#endif  // VC_VIEW_MAINTAINER_H_
