#ifndef VC_VIEW_DEFINITION_H_
#define VC_VIEW_DEFINITION_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace vc {

// A materialized view's persisted definition: the defining query plus how
// far maintenance has progressed. Definitions live next to the catalog
// (one "VCVIEW 1" text file per view, see view/catalog.h) so a restarted
// process can re-offer fresh views to the optimizer and refresh stale ones.
//
// Format (line-oriented, keyword-first, one of each line, any order after
// the magic):
//
//     VCVIEW 1
//     name <view>
//     source <video> <version>
//     segments <count>
//     query <canonical defining query>
//
// `source <video> 0` / `segments 0` means the view was defined but never
// maintained. The query line holds the *canonical* text form
// (ParseQuery -> Query::ToString), must parse, must sink into
// `store(<view>)`, and must scan exactly `<video>` — ParseViewDefinition
// re-validates all of that, so a parsed definition always round-trips:
// Parse(Serialize(Parse(x))) == Parse(x).

struct ViewDefinition {
  std::string name;            ///< View (derived video) catalog name.
  std::string source;          ///< The defining query's scanned video.
  uint32_t source_version = 0; ///< Source version maintained through; 0 =
                               ///< never maintained.
  int segments = 0;            ///< Defining-plan slices materialized so far.
  std::string query;           ///< Canonical defining query text.

  /// The "VCVIEW 1" text form.
  std::string Serialize() const;
};

/// Parses and fully validates a "VCVIEW 1" definition (see format above).
Result<ViewDefinition> ParseViewDefinition(Slice text);

/// Builds a fresh (never-maintained) definition for view `name` from a
/// defining query: parses `query_text`, requires a single Scan leaf and a
/// `store(<name>)` sink (no subscribe, no union), canonicalizes the text,
/// and derives `source` from the scan. This is the only constructor the
/// create paths (vcctl `view create`, ViewMaintainer::Register) use.
Result<ViewDefinition> MakeViewDefinition(const std::string& name,
                                          Slice query_text);

}  // namespace vc

#endif  // VC_VIEW_DEFINITION_H_
