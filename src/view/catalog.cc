#include "view/catalog.h"

#include <algorithm>

#include "query/parser.h"

namespace vc {

namespace {
const char kSuffix[] = ".vcq";
}  // namespace

ViewCatalog::ViewCatalog(Env* env, std::string root)
    : env_(env), dir_(std::move(root)) {
  if (!dir_.empty() && dir_.back() != '/') dir_ += '/';
  dir_ += "views";
}

std::string ViewCatalog::PathFor(const std::string& name) const {
  return dir_ + "/" + name + kSuffix;
}

Status ViewCatalog::Save(const ViewDefinition& def) {
  // Round-trip through the parser so only valid definitions ever persist.
  Result<ViewDefinition> valid = ParseViewDefinition(Slice(def.Serialize()));
  if (!valid.ok()) return valid.status();
  VC_RETURN_IF_ERROR(env_->CreateDirs(dir_));
  std::string text = valid->Serialize();
  return env_->WriteFile(PathFor(def.name), Slice(text));
}

Result<ViewDefinition> ViewCatalog::Load(const std::string& name) const {
  if (!env_->FileExists(PathFor(name))) {
    return Status::NotFound("no view '" + name + "'");
  }
  std::vector<uint8_t> bytes;
  VC_ASSIGN_OR_RETURN(bytes, env_->ReadFile(PathFor(name)));
  ViewDefinition def;
  VC_ASSIGN_OR_RETURN(def, ParseViewDefinition(Slice(bytes)));
  if (def.name != name) {
    return Status::Corruption("view file '" + name + "' defines '" +
                              def.name + "'");
  }
  return def;
}

Result<std::vector<std::string>> ViewCatalog::List() const {
  std::vector<std::string> names;
  Result<std::vector<std::string>> entries = env_->ListDir(dir_);
  if (!entries.ok()) return names;  // no directory yet: empty catalog
  for (const std::string& entry : *entries) {
    const size_t suffix_len = sizeof(kSuffix) - 1;
    if (entry.size() <= suffix_len ||
        entry.compare(entry.size() - suffix_len, suffix_len, kSuffix) != 0) {
      continue;
    }
    names.push_back(entry.substr(0, entry.size() - suffix_len));
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status ViewCatalog::Drop(const std::string& name) {
  if (!env_->FileExists(PathFor(name))) {
    return Status::NotFound("no view '" + name + "'");
  }
  return env_->DeleteFile(PathFor(name));
}

Result<std::vector<MaterializedViewInfo>> ViewCatalog::Candidates(
    const StorageManager& storage) const {
  std::vector<MaterializedViewInfo> out;
  std::vector<std::string> names;
  VC_ASSIGN_OR_RETURN(names, List());
  for (const std::string& name : names) {
    Result<ViewDefinition> def = Load(name);
    if (!def.ok()) continue;
    if (def->source_version == 0 || def->segments == 0) continue;
    Result<VideoMetadata> source = storage.GetVideo(def->source);
    if (!source.ok() || source->version != def->source_version) continue;
    if (!storage.GetVideo(def->name).ok()) continue;
    Result<Query> query = ParseQuery(Slice(def->query));
    if (!query.ok()) continue;
    MaterializedViewInfo info;
    info.name = def->name;
    info.source = def->source;
    info.source_version = def->source_version;
    info.segments = def->segments;
    info.query = *std::move(query);
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace vc
