#include "view/definition.h"

#include <sstream>

#include "query/algebra.h"
#include "query/parser.h"

namespace vc {

namespace {

/// View names become file and catalog names; keep them one safe token.
Status ValidateName(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty view name");
  for (char c : name) {
    if (c <= ' ' || c == '/' || c == '\\' || c == 0x7f) {
      return Status::InvalidArgument("view name '" + name +
                                     "' has unsafe characters");
    }
  }
  return Status::OK();
}

/// Validates the defining query's shape for view `name` and returns the
/// scanned source video: store(<name>) sink, single Scan leaf, no nested
/// subscribe/union/sinks.
Result<std::string> ValidateDefiningQuery(const Query& query,
                                          const std::string& name) {
  const LogicalNode* node = query.root().get();
  if (node == nullptr) return Status::InvalidArgument("empty defining query");
  if (node->kind != LogicalOpKind::kStore) {
    return Status::InvalidArgument(
        "defining query must sink into store(" + name + ")");
  }
  if (node->target != name) {
    return Status::InvalidArgument("defining query stores into '" +
                                   node->target + "', not view '" + name +
                                   "'");
  }
  node = node->inputs[0].get();
  while (node != nullptr) {
    switch (node->kind) {
      case LogicalOpKind::kScan:
        return node->video;
      case LogicalOpKind::kUnion:
        return Status::InvalidArgument(
            "materialized views take a single scan, not a union");
      case LogicalOpKind::kStore:
      case LogicalOpKind::kToFile:
      case LogicalOpKind::kSubscribe:
        return Status::InvalidArgument(
            std::string(LogicalOpName(node->kind)) +
            " cannot appear inside a view definition");
      default:
        node = node->inputs.empty() ? nullptr : node->inputs[0].get();
    }
  }
  return Status::InvalidArgument("defining query has no scan");
}

}  // namespace

std::string ViewDefinition::Serialize() const {
  std::string out = "VCVIEW 1\n";
  out += "name " + name + "\n";
  out += "source " + source + " " + std::to_string(source_version) + "\n";
  out += "segments " + std::to_string(segments) + "\n";
  out += "query " + query + "\n";
  return out;
}

Result<ViewDefinition> ParseViewDefinition(Slice text) {
  std::istringstream in(text.ToString());
  std::string line;
  if (!std::getline(in, line) || (line != "VCVIEW 1" && line != "VCVIEW 1\r")) {
    return Status::Corruption("view definition: bad magic");
  }
  ViewDefinition def;
  bool saw_name = false;
  bool saw_source = false;
  bool saw_segments = false;
  bool saw_query = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "name") {
      if (saw_name) return Status::Corruption("view definition: dup name");
      std::string extra;
      if (!(fields >> def.name) || (fields >> extra)) {
        return Status::Corruption("view definition: bad name line");
      }
      saw_name = true;
    } else if (keyword == "source") {
      if (saw_source) return Status::Corruption("view definition: dup source");
      long long version = -1;
      std::string extra;
      if (!(fields >> def.source >> version) || (fields >> extra) ||
          version < 0 || version > 0xffffffffLL) {
        return Status::Corruption("view definition: bad source line");
      }
      def.source_version = static_cast<uint32_t>(version);
      saw_source = true;
    } else if (keyword == "segments") {
      if (saw_segments) {
        return Status::Corruption("view definition: dup segments");
      }
      long long count = -1;
      std::string extra;
      if (!(fields >> count) || (fields >> extra) || count < 0 ||
          count > 0x7fffffffLL) {
        return Status::Corruption("view definition: bad segments line");
      }
      def.segments = static_cast<int>(count);
      saw_segments = true;
    } else if (keyword == "query") {
      if (saw_query) return Status::Corruption("view definition: dup query");
      std::string rest;
      std::getline(fields, rest);
      size_t start = rest.find_first_not_of(" \t");
      size_t end = rest.find_last_not_of(" \t");
      if (start == std::string::npos) {
        return Status::Corruption("view definition: empty query");
      }
      def.query = rest.substr(start, end - start + 1);
      saw_query = true;
    } else {
      return Status::Corruption("view definition: unknown keyword '" +
                                keyword + "'");
    }
  }
  if (!saw_name || !saw_source || !saw_segments || !saw_query) {
    return Status::Corruption("view definition: missing fields");
  }
  VC_RETURN_IF_ERROR(ValidateName(def.name));
  // Never-maintained definitions carry version 0 and no segments; anything
  // maintained must name a real version.
  if (def.source_version == 0 && def.segments != 0) {
    return Status::Corruption(
        "view definition: segments without a source version");
  }
  Result<Query> parsed = ParseQuery(Slice(def.query));
  if (!parsed.ok()) {
    return Status::Corruption("view definition: defining query: " +
                              parsed.status().ToString());
  }
  std::string scanned;
  VC_ASSIGN_OR_RETURN(scanned, ValidateDefiningQuery(*parsed, def.name));
  if (scanned != def.source) {
    return Status::Corruption("view definition: query scans '" + scanned +
                              "' but source says '" + def.source + "'");
  }
  // Canonicalize so Serialize() is a fixed point of parse -> serialize.
  def.query = parsed->ToString();
  return def;
}

Result<ViewDefinition> MakeViewDefinition(const std::string& name,
                                          Slice query_text) {
  VC_RETURN_IF_ERROR(ValidateName(name));
  Result<Query> parsed = ParseQuery(query_text);
  if (!parsed.ok()) return parsed.status();
  ViewDefinition def;
  def.name = name;
  VC_ASSIGN_OR_RETURN(def.source, ValidateDefiningQuery(*parsed, name));
  def.query = parsed->ToString();
  return def;
}

}  // namespace vc
