#include "core/export.h"

#include "codec/homomorphic.h"

namespace vc {

Result<EncodedVideo> ExportMonolithic(StorageManager* storage,
                                      const VideoMetadata& metadata,
                                      int quality) {
  if (quality < 0 || quality >= metadata.quality_count()) {
    return Status::InvalidArgument("quality rung out of range");
  }
  std::vector<EncodedVideo> segments;
  segments.reserve(metadata.segment_count());
  for (int segment = 0; segment < metadata.segment_count(); ++segment) {
    std::vector<EncodedVideo> tiles;
    tiles.reserve(metadata.tile_count());
    for (int tile = 0; tile < metadata.tile_count(); ++tile) {
      LruCache::Value bytes;
      VC_ASSIGN_OR_RETURN(bytes,
                          storage->ReadCell(metadata, segment, tile, quality));
      EncodedVideo cell;
      VC_ASSIGN_OR_RETURN(cell, EncodedVideo::Parse(Slice(*bytes)));
      tiles.push_back(std::move(cell));
    }
    EncodedVideo merged;
    VC_ASSIGN_OR_RETURN(
        merged, MergeTileStreams(tiles, metadata.tile_rows,
                                 metadata.tile_cols, metadata.width,
                                 metadata.height));
    segments.push_back(std::move(merged));
  }
  return ConcatenateStreams(segments);
}

}  // namespace vc
