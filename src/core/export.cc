#include "core/export.h"

#include "query/executor.h"

namespace vc {

Result<EncodedVideo> ExportMonolithic(StorageManager* storage,
                                      const VideoMetadata& metadata,
                                      int quality) {
  if (quality < 0 || quality >= metadata.quality_count()) {
    return Status::InvalidArgument("quality rung out of range");
  }
  // A full-video, full-grid, single-rung query: the optimizer proves it
  // transcode-free and the executor serves stored bytes homomorphically
  // (TILEUNION per segment, then GOPUNION) — no pixel is ever decoded.
  Query query = Query::Scan(metadata.name).QualityFloor(quality).Encode();
  OptimizeOptions optimize;
  optimize.scan_override = &metadata;  // pin the caller's version
  QueryResult result;
  VC_ASSIGN_OR_RETURN(result, ExecuteQuery(query, storage, optimize));
  if (!result.has_encoded) {
    return Status::Internal("export query produced no encoded stream");
  }
  return std::move(result.encoded);
}

}  // namespace vc
