#ifndef VC_CORE_SESSION_H_
#define VC_CORE_SESSION_H_

#include <memory>
#include <string>

#include "core/plan_cache.h"
#include "core/tile_assignment.h"
#include "geometry/viewport.h"
#include "image/scene.h"
#include "predict/head_trace.h"
#include "predict/popularity.h"
#include "predict/predictor.h"
#include "storage/cell_source.h"
#include "storage/prefetcher.h"
#include "storage/storage_manager.h"
#include "streaming/adaptation.h"
#include "streaming/network.h"
#include "streaming/qoe.h"

namespace vc {

class Counter;
class Histogram;

/// The streaming strategies compared in the evaluation.
enum class StreamingApproach {
  /// Every tile of every segment at the top ladder rung — the behaviour of
  /// serving the full panorama at full quality (YouTube-style baseline).
  kMonolithicFull,
  /// Classic DASH: one quality for all tiles, rate-adapted to throughput —
  /// view-agnostic adaptive streaming.
  kUniformDash,
  /// VisualCloud: predicted-viewport tiles high quality, rest low, with
  /// adaptive degradation under bandwidth pressure.
  kVisualCloud,
  /// VisualCloud with a perfect predictor (knows the future orientation) —
  /// the upper bound on what prediction can save.
  kOracle,
};

/// Stable display name ("monolithic", "uniform_dash", ...).
std::string ApproachName(StreamingApproach approach);

/// \brief What a session can know about a still-growing (live) stream.
///
/// Implemented by the server-side live feed (see server/live_feed.h). All
/// times are on the same simulated wall clock the session and server use.
/// The publish schedule is deterministic — PublishTimeOf is defined for
/// every segment the stream will ever have, published or not — so session
/// deadlines stay a pure function of the run's inputs.
class LiveAvailability {
 public:
  virtual ~LiveAvailability() = default;

  /// Segments published (fetchable) so far.
  virtual int published_segments() const = 0;

  /// Wall-clock time at which `segment` was (or will be) published.
  virtual double PublishTimeOf(int segment) const = 0;

  /// Total segments the stream will have once complete.
  virtual int final_segment_count() const = 0;

  /// Metadata of the newest published checkpoint: it only ever grows
  /// (segments/cells append; layout fields never change). Sessions refresh
  /// their own copy from this when they exhaust it at the live edge.
  virtual const VideoMetadata& snapshot() const = 0;
};

/// Configuration of one simulated client session.
struct SessionOptions {
  StreamingApproach approach = StreamingApproach::kVisualCloud;
  std::string predictor = "dead_reckoning";  ///< See MakePredictor().
  NetworkOptions network;
  ViewportSpec viewport;         ///< HMD FOV and render size.
  double viewport_margin = 0.2;  ///< Extra tile-selection margin (radians).
  int high_quality = 0;          ///< Ladder rung for in-view tiles.
  bool adaptive = true;          ///< Degrade plans that exceed the budget.
  double budget_safety = 0.85;   ///< Derating of the throughput estimate.
  /// Client buffer target: a segment's download starts no earlier than
  /// this long before its playback deadline. Pacing is what makes the
  /// system react to bandwidth changes mid-session instead of having
  /// prefetched everything at t=0.
  double buffer_ahead_seconds = 1.0;
  double feed_rate_hz = 30.0;    ///< Orientation feedback cadence.
  /// When true (requires `reference`), decode what was delivered and
  /// measure in-viewport PSNR against the pristine source.
  bool evaluate_quality = false;
  int eval_frames_per_segment = 2;

  /// When true, every delivered cell is actually fetched through the
  /// storage manager's cell cache (instead of only being accounted for in
  /// bytes). A server sets this so concurrent viewers of the same video
  /// exercise — and benefit from — the shared buffer cache.
  bool fetch_cells = false;

  /// Optional cell source (not owned) that `fetch_cells` reads route
  /// through instead of the session's StorageManager — a sharded store's
  /// per-node view, so the session's demand misses land in that node's
  /// L1/L2 tiers. Quality evaluation still decodes via the StorageManager.
  CellSource* cell_source = nullptr;

  /// Optional cross-user popularity model (not owned). When set and the
  /// approach is kVisualCloud, tiles covering `popularity_coverage` of the
  /// historical gaze mass are also streamed at high quality — catching
  /// content-driven attention shifts individual motion prediction misses.
  const PopularityModel* popularity = nullptr;
  double popularity_coverage = 0.8;

  /// Optional shared plan cache (not owned; one per video). Sessions with
  /// identical planning inputs (segment, predicted orientation, approach,
  /// budget, popularity overlay) flyweight one TileQualityPlan instead of
  /// each re-running assignment + budget fitting. Exact memoization: served
  /// bytes and QoE are byte-identical with or without it. Only
  /// kVisualCloud and kUniformDash plans are cached (kOracle plans from
  /// the whole trace path; kMonolithicFull is already trivial).
  PlanCache* plan_cache = nullptr;

  /// Optional live popularity sink (not owned). Every orientation the
  /// session observes while playing is also recorded here, so concurrent
  /// viewers of the same video teach each other where to look. Distinct
  /// from `popularity` (the read side) — a server typically points both at
  /// the same shared model.
  PopularityModel* popularity_sink = nullptr;

  /// Optional live-stream availability (not owned; must outlive the
  /// session). When set the session joins at the live edge: playback
  /// starts at the newest published segment, NextDeadline() never precedes
  /// a segment's publish time (waiting at the edge surfaces as ordinary
  /// pacing, and a late publish as a stall), the session refreshes its
  /// metadata from `live->snapshot()` as the catalog grows, and it runs
  /// until the feed's final segment.
  const LiveAvailability* live = nullptr;

  Status Validate() const;
};

/// \brief One steppable simulated viewer session.
///
/// Decomposes the classic run-to-completion session loop into an
/// event-driven object so a server can interleave many viewers over shared
/// storage: `NextDeadline()` reports the wall-clock time at which the
/// session next wants to act (the pacing deadline of its upcoming
/// segment), and `Step(now)` advances the clock to `now` and streams
/// exactly one segment — plan, transfer (with fault retry), QoE
/// accounting. Driving a lone session with
/// `while (!done()) Step(NextDeadline())` reproduces the historical
/// `SimulateSession` free function byte-for-byte; that function survives
/// as a thin wrapper doing exactly this.
///
/// Not thread-safe; a server steps each session from its scheduler thread.
class ClientSession {
 public:
  /// Validates options and builds a session. `metadata` and `trace` are
  /// copied; `storage` and `reference` (required only when
  /// `options.evaluate_quality` is set) must outlive the session.
  static Result<std::unique_ptr<ClientSession>> Create(
      StorageManager* storage, const VideoMetadata& metadata,
      const HeadTrace& trace, const SessionOptions& options,
      const SceneGenerator* reference = nullptr);

  ~ClientSession();

  /// Wall-clock seconds at which the next segment's download may start —
  /// the client pacing deadline (`buffer_ahead_seconds` before the
  /// segment's playback deadline). Before playback has started (or once
  /// done()) this is simply the current wall clock.
  double NextDeadline() const;

  /// Advances the wall clock to `now` (never backwards) and streams the
  /// next segment. Finalizes stats() after the last segment. It is an
  /// error to step a completed session.
  Status Step(double now);

  /// Forecast of the segment the next Step() will stream: its index and the
  /// predictor's orientation estimate for its midpoint, plus the viewport
  /// and ladder parameters a prefetcher needs to turn that into cells. A
  /// pure read — calling it does not advance the predictor or any session
  /// accounting, so servers may consult it (or not) without changing the
  /// session's behaviour. Invalid once done().
  PrefetchHint NextPrefetchHint() const;

  bool done() const { return done_; }
  /// Session accounting; aggregate means are finalized once done().
  const SessionStats& stats() const { return stats_; }
  double wall_seconds() const { return wall_; }
  /// Index of the segment the next Step() will stream.
  int next_segment() const { return segment_; }
  int segment_count() const { return metadata_.segment_count(); }
  /// The segment playback started at: 0 offline, the live-edge join point
  /// for a session created against a LiveAvailability.
  int start_segment() const { return start_segment_; }
  const SessionOptions& options() const { return options_; }
  const VideoMetadata& metadata() const { return metadata_; }

 private:
  ClientSession(StorageManager* storage, const VideoMetadata& metadata,
                const HeadTrace& trace, const SessionOptions& options,
                const SceneGenerator* reference, NetworkSimulator network,
                std::unique_ptr<Predictor> predictor);

  /// Pulls newly published segments from the live snapshot when the
  /// session has streamed everything it knows about. No-op offline.
  void RefreshLiveMetadata();

  /// Total segments this session will stream through (the feed's final
  /// count when live; the static count otherwise).
  int FinalSegmentCount() const;

  void Finalize();

  StorageManager* storage_;
  VideoMetadata metadata_;
  HeadTrace trace_;
  SessionOptions options_;
  const SceneGenerator* reference_;
  NetworkSimulator network_;
  ThroughputEstimator estimator_;
  std::unique_ptr<Predictor> predictor_;

  double segment_seconds_;
  double fps_;
  double media_duration_;
  double feed_dt_;

  SessionStats stats_;
  int segment_ = 0;
  /// Live-edge join point; 0 offline. Media time is viewer-local: t=0 is
  /// this segment's start, so traces and predictors are join-relative.
  int start_segment_ = 0;
  /// Media seconds between stream start and the viewer's join point —
  /// what converts viewer-local media time back to stream media time
  /// (popularity observations, publish comparisons). 0 offline.
  double media_origin_ = 0.0;
  bool done_ = false;
  double wall_ = 0.0;
  double play_start_ = -1.0;
  double stall_total_ = 0.0;
  double last_fed_ = -1.0;
  double psnr_sum_ = 0.0;
  double psnr_min_;
  double inview_quality_sum_ = 0.0;
  int inview_quality_count_ = 0;

  // Registry-owned metric handles (process lifetime).
  Counter* segments_streamed_;
  Counter* stall_events_;
  Histogram* stall_seconds_;
  Histogram* plan_seconds_;
  Counter* predict_hits_;
  Counter* predict_misses_;
  Counter* transfer_faults_;
  Counter* transfer_retries_;
  Counter* segments_skipped_;
};

/// Simulates one client streaming session of the stored video `metadata`
/// driven by head-movement `trace`, and returns its QoE accounting.
/// `reference` (the pristine scene) is required when
/// `options.evaluate_quality` is set and ignored otherwise. Thin wrapper
/// over ClientSession.
Result<SessionStats> SimulateSession(StorageManager* storage,
                                     const VideoMetadata& metadata,
                                     const HeadTrace& trace,
                                     const SessionOptions& options,
                                     const SceneGenerator* reference = nullptr);

}  // namespace vc

#endif  // VC_CORE_SESSION_H_
