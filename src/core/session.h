#ifndef VC_CORE_SESSION_H_
#define VC_CORE_SESSION_H_

#include <string>

#include "core/tile_assignment.h"
#include "geometry/viewport.h"
#include "image/scene.h"
#include "predict/head_trace.h"
#include "predict/popularity.h"
#include "storage/storage_manager.h"
#include "streaming/network.h"
#include "streaming/qoe.h"

namespace vc {

/// The streaming strategies compared in the evaluation.
enum class StreamingApproach {
  /// Every tile of every segment at the top ladder rung — the behaviour of
  /// serving the full panorama at full quality (YouTube-style baseline).
  kMonolithicFull,
  /// Classic DASH: one quality for all tiles, rate-adapted to throughput —
  /// view-agnostic adaptive streaming.
  kUniformDash,
  /// VisualCloud: predicted-viewport tiles high quality, rest low, with
  /// adaptive degradation under bandwidth pressure.
  kVisualCloud,
  /// VisualCloud with a perfect predictor (knows the future orientation) —
  /// the upper bound on what prediction can save.
  kOracle,
};

/// Stable display name ("monolithic", "uniform_dash", ...).
std::string ApproachName(StreamingApproach approach);

/// Configuration of one simulated client session.
struct SessionOptions {
  StreamingApproach approach = StreamingApproach::kVisualCloud;
  std::string predictor = "dead_reckoning";  ///< See MakePredictor().
  NetworkOptions network;
  ViewportSpec viewport;         ///< HMD FOV and render size.
  double viewport_margin = 0.2;  ///< Extra tile-selection margin (radians).
  int high_quality = 0;          ///< Ladder rung for in-view tiles.
  bool adaptive = true;          ///< Degrade plans that exceed the budget.
  double budget_safety = 0.85;   ///< Derating of the throughput estimate.
  /// Client buffer target: a segment's download starts no earlier than
  /// this long before its playback deadline. Pacing is what makes the
  /// system react to bandwidth changes mid-session instead of having
  /// prefetched everything at t=0.
  double buffer_ahead_seconds = 1.0;
  double feed_rate_hz = 30.0;    ///< Orientation feedback cadence.
  /// When true (requires `reference`), decode what was delivered and
  /// measure in-viewport PSNR against the pristine source.
  bool evaluate_quality = false;
  int eval_frames_per_segment = 2;

  /// Optional cross-user popularity model (not owned). When set and the
  /// approach is kVisualCloud, tiles covering `popularity_coverage` of the
  /// historical gaze mass are also streamed at high quality — catching
  /// content-driven attention shifts individual motion prediction misses.
  const PopularityModel* popularity = nullptr;
  double popularity_coverage = 0.8;

  Status Validate() const;
};

/// Simulates one client streaming session of the stored video `metadata`
/// driven by head-movement `trace`, and returns its QoE accounting.
/// `reference` (the pristine scene) is required when
/// `options.evaluate_quality` is set and ignored otherwise.
Result<SessionStats> SimulateSession(StorageManager* storage,
                                     const VideoMetadata& metadata,
                                     const HeadTrace& trace,
                                     const SessionOptions& options,
                                     const SceneGenerator* reference = nullptr);

}  // namespace vc

#endif  // VC_CORE_SESSION_H_
