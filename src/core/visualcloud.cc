#include "core/visualcloud.h"

#include <thread>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/transform.h"
#include "core/reconstruct.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace vc {

Status IngestOptions::Validate() const {
  if (tile_rows < 1 || tile_rows > 255 || tile_cols < 1 || tile_cols > 255) {
    return Status::InvalidArgument("tile grid out of range");
  }
  if (frames_per_segment < 1 || frames_per_segment > 600) {
    return Status::InvalidArgument("frames_per_segment out of range [1, 600]");
  }
  if (fps <= 0 || fps > 600) {
    return Status::InvalidArgument("fps out of range");
  }
  if (ladder.empty() || ladder.size() > 16) {
    return Status::InvalidArgument("quality ladder must have 1-16 rungs");
  }
  for (const QualityLevel& level : ladder) {
    if (level.qp < 0 || level.qp > kMaxQp) {
      return Status::InvalidArgument("ladder QP out of range");
    }
  }
  if (motion_range < 0 || motion_range > 127) {
    return Status::InvalidArgument("motion_range out of range");
  }
  return Status::OK();
}

EncoderOptions IngestOptions::MakeEncoderOptions(int width, int height,
                                                 int quality) const {
  EncoderOptions encoder;
  encoder.width = width;
  encoder.height = height;
  encoder.fps = fps;
  encoder.gop_length = frames_per_segment;
  encoder.qp = ladder[quality].qp;
  encoder.motion_range = motion_range;
  encoder.motion_constrained_tiles = motion_constrained_tiles;
  encoder.entropy_profile = entropy_profile;
  return encoder;
}

VisualCloud::VisualCloud(std::unique_ptr<StorageManager> storage,
                         int encode_threads)
    : storage_(std::move(storage)),
      encode_pool_(static_cast<size_t>(encode_threads)) {}

Result<std::unique_ptr<VisualCloud>> VisualCloud::Open(
    const VisualCloudOptions& options) {
  std::unique_ptr<StorageManager> storage;
  VC_ASSIGN_OR_RETURN(storage, StorageManager::Open(options.storage));
  int threads = options.encode_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  return std::unique_ptr<VisualCloud>(
      new VisualCloud(std::move(storage), threads));
}

namespace {

VideoMetadata MakeLayoutMetadata(const std::string& name, int width,
                                 int height, const IngestOptions& options) {
  VideoMetadata metadata;
  metadata.name = name;
  metadata.width = static_cast<uint16_t>(width);
  metadata.height = static_cast<uint16_t>(height);
  metadata.fps_times_100 =
      static_cast<uint16_t>(std::lround(options.fps * 100.0));
  metadata.frames_per_segment =
      static_cast<uint16_t>(options.frames_per_segment);
  metadata.tile_rows = static_cast<uint8_t>(options.tile_rows);
  metadata.tile_cols = static_cast<uint8_t>(options.tile_cols);
  metadata.ladder = options.ladder;
  metadata.spherical.stereo = options.stereo;
  return metadata;
}

Status CheckIngestFrames(const std::vector<Frame>& frames, int width,
                         int height) {
  if (frames.empty()) return Status::InvalidArgument("no frames to ingest");
  if (width % 16 != 0 || height % 16 != 0) {
    return Status::InvalidArgument(
        "ingest frames must have dimensions that are multiples of 16");
  }
  for (const Frame& frame : frames) {
    if (frame.width() != width || frame.height() != height) {
      return Status::InvalidArgument("ingest frames differ in size");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<uint8_t>>> VisualCloud::EncodeSegment(
    const std::vector<Frame>& segment_frames, const IngestOptions& options,
    int width, int height) {
  static Counter* segments_encoded =
      MetricRegistry::Global().GetCounter("ingest.segments");
  static Counter* cells_encoded =
      MetricRegistry::Global().GetCounter("ingest.cells");
  static Histogram* cell_seconds =
      MetricRegistry::Global().GetHistogram("ingest.cell_encode_seconds");

  TileGrid grid(options.tile_rows, options.tile_cols);
  const int tiles = grid.tile_count();
  const int qualities = static_cast<int>(options.ladder.size());

  // Crop each frame once per tile. A 1×1 grid covers the whole frame, so
  // the ingest frames are used in place instead of deep-copying every frame
  // into a single "tile".
  std::vector<std::vector<Frame>> cropped(tiles);
  std::vector<const std::vector<Frame>*> tile_frames(tiles);
  if (tiles == 1) {
    tile_frames[0] = &segment_frames;
  } else {
    for (int tile = 0; tile < tiles; ++tile) {
      TileGrid::PixelRect rect;
      VC_ASSIGN_OR_RETURN(
          rect, grid.PixelRectOf(grid.TileAt(tile), width, height, 16));
      cropped[tile].reserve(segment_frames.size());
      for (const Frame& frame : segment_frames) {
        Frame crop;
        VC_ASSIGN_OR_RETURN(
            crop, frame.Crop(rect.x, rect.y, rect.width, rect.height));
        cropped[tile].push_back(std::move(crop));
      }
      tile_frames[tile] = &cropped[tile];
    }
  }

  std::vector<std::vector<uint8_t>> cells(
      static_cast<size_t>(tiles) * qualities);
  std::vector<Status> statuses(cells.size());

  // Encodes one (tile, quality) cell, optionally capturing or reusing the
  // tile's motion analysis.
  auto encode_cell = [&](int tile, int quality, MotionHints* capture,
                         const MotionHints* reuse) {
    ScopedTimer timer(cell_seconds);
    size_t index = static_cast<size_t>(tile) * qualities + quality;
    const std::vector<Frame>& frames = *tile_frames[tile];
    EncoderOptions encoder_options = options.MakeEncoderOptions(
        frames[0].width(), frames[0].height(), quality);
    encoder_options.capture_hints = capture;
    encoder_options.reuse_hints = reuse;
    auto video = EncodeVideo(frames, encoder_options);
    if (!video.ok()) {
      statuses[index] = video.status();
      return;
    }
    cells[index] = video->Serialize();
    cells_encoded->Add(1);
  };

  const bool reuse = options.reuse_motion_analysis && qualities > 1;
  if (!reuse) {
    for (int tile = 0; tile < tiles; ++tile) {
      for (int quality = 0; quality < qualities; ++quality) {
        encode_pool_.Submit(
            [&encode_cell, tile, quality] { encode_cell(tile, quality, nullptr, nullptr); });
      }
    }
    encode_pool_.WaitIdle();
  } else {
    // Wave 1: the reference rung (ladder index 0, the highest quality and
    // thus the cleanest analysis) of every tile in parallel, each capturing
    // its per-block decisions.
    std::vector<MotionHints> hints(tiles);
    for (int tile = 0; tile < tiles; ++tile) {
      encode_pool_.Submit([&encode_cell, &hints, tile] {
        encode_cell(tile, /*quality=*/0, &hints[tile], nullptr);
      });
    }
    // WaitIdle is both the schedule barrier and the publication point: the
    // pool's mutex orders the wave-1 writes to hints before wave 2 reads.
    encode_pool_.WaitIdle();
    // Wave 2: every remaining rung in parallel, seeded from its tile's
    // hints.
    for (int tile = 0; tile < tiles; ++tile) {
      for (int quality = 1; quality < qualities; ++quality) {
        encode_pool_.Submit([&encode_cell, &hints, tile, quality] {
          encode_cell(tile, quality, nullptr, &hints[tile]);
        });
      }
    }
    encode_pool_.WaitIdle();
  }

  for (const Status& status : statuses) {
    VC_RETURN_IF_ERROR(status);
  }
  segments_encoded->Add(1);
  return cells;
}

Result<uint32_t> VisualCloud::Ingest(const std::string& name,
                                     const std::vector<Frame>& frames,
                                     const IngestOptions& options) {
  VC_RETURN_IF_ERROR(options.Validate());
  if (frames.empty()) return Status::InvalidArgument("no frames to ingest");
  const int width = frames[0].width();
  const int height = frames[0].height();
  VC_RETURN_IF_ERROR(CheckIngestFrames(frames, width, height));

  std::unique_ptr<LiveIngestSession> session;
  VC_ASSIGN_OR_RETURN(session,
                      StartLiveIngest(name, width, height, options));
  VC_RETURN_IF_ERROR(session->AppendFrames(frames));
  return session->Close();
}

Result<uint32_t> VisualCloud::IngestScene(const std::string& name,
                                          const SceneGenerator& scene,
                                          int frame_count,
                                          const IngestOptions& options) {
  VC_RETURN_IF_ERROR(options.Validate());
  if (frame_count <= 0) {
    return Status::InvalidArgument("frame_count must be positive");
  }
  const int width = scene.width();
  const int height = scene.height();
  if (width % 16 != 0 || height % 16 != 0) {
    return Status::InvalidArgument("scene dimensions must be multiples of 16");
  }

  std::unique_ptr<LiveIngestSession> session;
  VC_ASSIGN_OR_RETURN(session,
                      StartLiveIngest(name, width, height, options));
  // Generate one segment's worth at a time — the whole video never exists
  // in memory; each AppendFrames lands exactly on a segment boundary.
  for (int start = 0; start < frame_count;
       start += options.frames_per_segment) {
    int end = std::min(frame_count, start + options.frames_per_segment);
    std::vector<Frame> segment;
    segment.reserve(end - start);
    for (int i = start; i < end; ++i) segment.push_back(scene.FrameAt(i));
    VC_RETURN_IF_ERROR(session->AppendFrames(segment));
  }
  return session->Close();
}

Result<std::unique_ptr<LiveIngestSession>> VisualCloud::StartLiveIngest(
    const std::string& name, int width, int height,
    const LiveIngestOptions& options) {
  VC_RETURN_IF_ERROR(options.ingest.Validate());
  if (width <= 0 || height <= 0 || width % 16 != 0 || height % 16 != 0) {
    return Status::InvalidArgument("live frame size must be multiples of 16");
  }
  std::unique_ptr<StorageManager::VideoWriter> writer;
  VC_ASSIGN_OR_RETURN(
      writer, storage_->NewVideoWriter(
                  MakeLayoutMetadata(name, width, height, options.ingest)));
  return std::unique_ptr<LiveIngestSession>(
      new LiveIngestSession(this, std::move(writer), options, width, height));
}

Result<std::unique_ptr<LiveIngestSession>> VisualCloud::StartLiveIngest(
    const std::string& name, int width, int height,
    const IngestOptions& options) {
  LiveIngestOptions live;
  live.ingest = options;
  return StartLiveIngest(name, width, height, live);
}

LiveIngestSession::LiveIngestSession(
    VisualCloud* db, std::unique_ptr<StorageManager::VideoWriter> writer,
    LiveIngestOptions options, int width, int height)
    : db_(db),
      writer_(std::move(writer)),
      options_(std::move(options)),
      width_(width),
      height_(height) {}

int LiveIngestSession::segments_written() const {
  return writer_->metadata().segment_count();
}

const VideoMetadata& LiveIngestSession::metadata() const {
  return writer_->metadata();
}

Status LiveIngestSession::FlushSegment() {
  if (pending_.empty()) return Status::OK();
  std::vector<std::vector<uint8_t>> cells;
  VC_ASSIGN_OR_RETURN(
      cells, db_->EncodeSegment(pending_, options_.ingest, width_, height_));
  VC_RETURN_IF_ERROR(
      writer_->AddSegment(static_cast<uint32_t>(pending_.size()), cells));
  pending_.clear();
  if (options_.publish_segments) {
    uint32_t version;
    VC_ASSIGN_OR_RETURN(version, writer_->CommitCheckpoint());
    last_published_ = version;
    db_->NotifyCommit(writer_->metadata().name, version, /*final=*/false);
  }
  return Status::OK();
}

Status LiveIngestSession::AppendFrame(const Frame& frame) {
  if (closed_) return Status::Aborted("live ingest already finished");
  if (frame.width() != width_ || frame.height() != height_) {
    return Status::InvalidArgument("live frame size mismatch");
  }
  pending_.push_back(frame);
  if (static_cast<int>(pending_.size()) >=
      options_.ingest.frames_per_segment) {
    return FlushSegment();
  }
  return Status::OK();
}

Status LiveIngestSession::AppendFrames(const std::vector<Frame>& frames) {
  for (const Frame& frame : frames) {
    VC_RETURN_IF_ERROR(AppendFrame(frame));
  }
  return Status::OK();
}

Status LiveIngestSession::FinishSegment() {
  if (closed_) return Status::Aborted("live ingest already finished");
  return FlushSegment();
}

Result<uint32_t> LiveIngestSession::Checkpoint() {
  if (closed_) return Status::Aborted("live ingest already finished");
  if (writer_->metadata().segment_count() == 0) {
    return Status::InvalidArgument("no full segment captured yet");
  }
  uint32_t version;
  VC_ASSIGN_OR_RETURN(version, writer_->CommitCheckpoint());
  last_published_ = version;
  db_->NotifyCommit(writer_->metadata().name, version, /*final=*/false);
  return version;
}

Result<uint32_t> LiveIngestSession::Close() {
  if (closed_) return Status::Aborted("live ingest already finished");
  VC_RETURN_IF_ERROR(FlushSegment());
  closed_ = true;
  const std::string name = writer_->metadata().name;
  uint32_t version;
  VC_ASSIGN_OR_RETURN(version, writer_->Commit());
  db_->NotifyCommit(name, version, /*final=*/true);
  return version;
}

Result<VideoMetadata> VisualCloud::Describe(const std::string& name) const {
  return storage_->GetVideo(name);
}

Result<std::vector<std::string>> VisualCloud::List() const {
  return storage_->ListVideos();
}

Status VisualCloud::Drop(const std::string& name) {
  return storage_->DropVideo(name);
}

void VisualCloud::AddObserver(CatalogObserver* observer) {
  if (observer == nullptr) return;
  std::lock_guard<std::mutex> lock(observers_mu_);
  observers_.push_back(observer);
}

void VisualCloud::RemoveObserver(CatalogObserver* observer) {
  std::lock_guard<std::mutex> lock(observers_mu_);
  for (size_t i = 0; i < observers_.size(); ++i) {
    if (observers_[i] == observer) {
      observers_.erase(observers_.begin() + i);
      return;
    }
  }
}

void VisualCloud::NotifyCommit(const std::string& name, uint32_t version,
                               bool final) {
  std::vector<CatalogObserver*> snapshot;
  {
    std::lock_guard<std::mutex> lock(observers_mu_);
    snapshot = observers_;
  }
  for (CatalogObserver* observer : snapshot) {
    observer->OnCommit(name, version, final);
  }
}

Result<std::vector<Frame>> VisualCloud::ReadFrames(const std::string& name,
                                                   int first, int last,
                                                   int quality) {
  VideoMetadata metadata;
  VC_ASSIGN_OR_RETURN(metadata, storage_->GetVideo(name));
  return ReconstructFrameRange(storage_.get(), metadata, first, last, quality);
}

}  // namespace vc
