#include "core/plan_cache.h"

#include <cmath>

#include "obs/metrics.h"

namespace vc {

namespace {

Counter* PlanHitCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("plan.cache_hits");
  return counter;
}
Counter* PlanMissCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("plan.cache_misses");
  return counter;
}

uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Quantize a continuous input to a hash bucket. llround is exact for equal
// inputs (equal keys must hash equally); the bucket width only shapes how
// often unequal keys share a bucket.
uint64_t Bucket(double value, double width) {
  return static_cast<uint64_t>(std::llround(value / width));
}

}  // namespace

size_t PlanKeyHash::operator()(const PlanKey& key) const {
  // ~0.008 rad orientation buckets; 4 KiB budget tiers.
  constexpr double kAngleBucket = 1.0 / 128.0;
  constexpr double kBudgetBucket = 4096.0;
  uint64_t h = Mix(static_cast<uint64_t>(key.segment) * 0x9e3779b97f4a7c15ULL +
                   static_cast<uint64_t>(key.approach));
  h = Mix(h ^ ((static_cast<uint64_t>(key.adaptive) << 32) +
               static_cast<uint64_t>(key.high_quality)));
  h = Mix(h ^ Bucket(key.fov_yaw, kAngleBucket));
  h = Mix(h ^ Bucket(key.fov_pitch, kAngleBucket));
  h = Mix(h ^ Bucket(key.margin, kAngleBucket));
  h = Mix(h ^ Bucket(key.yaw, kAngleBucket));
  h = Mix(h ^ Bucket(key.pitch, kAngleBucket));
  h = Mix(h ^ Bucket(key.budget_bytes, kBudgetBucket));
  for (int tile : key.popular) {
    h = Mix(h ^ static_cast<uint64_t>(static_cast<uint32_t>(tile)));
  }
  return static_cast<size_t>(h);
}

PlanCache::PlanCache(size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

bool PlanCache::Lookup(const PlanKey& key, Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    PlanMissCounter()->Add();
    return false;
  }
  ++stats_.hits;
  PlanHitCounter()->Add();
  *out = it->second;
  return true;
}

void PlanCache::Insert(const PlanKey& key, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.size() >= max_entries_) {
    // Generational flush: plans are cheap relative to tracking per-entry
    // recency, and a flush only costs misses — it cannot change any plan.
    map_.clear();
  }
  map_[key] = std::move(entry);
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace vc
