#ifndef VC_CORE_TILE_ASSIGNMENT_H_
#define VC_CORE_TILE_ASSIGNMENT_H_

#include "core/reconstruct.h"
#include "geometry/orientation.h"
#include "geometry/tile_grid.h"
#include "storage/metadata.h"

namespace vc {

/// How tiles are split into in-view and out-of-view quality classes.
struct AssignmentOptions {
  double fov_yaw = DegToRad(100.0);
  double fov_pitch = DegToRad(90.0);
  /// Extra angular margin added to the FOV when selecting in-view tiles,
  /// absorbing prediction error (radians per axis).
  double margin = 0.2;
  int high_quality = 0;   ///< Ladder rung for predicted-visible tiles.
  int low_quality = -1;   ///< Rung for the rest; -1 = lowest rung.
};

/// VisualCloud's core serving decision: tiles intersecting the predicted
/// viewport (enlarged by `margin`) get `high_quality`, everything else
/// `low_quality`.
TileQualityPlan AssignTileQualities(const VideoMetadata& metadata,
                                    const Orientation& predicted,
                                    const AssignmentOptions& options);

/// Bytes the plan will transfer for `segment`.
uint64_t PlanBytes(const VideoMetadata& metadata, int segment,
                   const TileQualityPlan& plan);

/// Degrades `plan` until it fits `budget_bytes` (or every tile is at the
/// lowest rung). Tiles are degraded one rung at a time, farthest-from-gaze
/// first, so the fovea keeps quality the longest — this is the adaptive
/// half of VisualCloud's predictive streaming.
TileQualityPlan FitPlanToBudget(const VideoMetadata& metadata, int segment,
                                TileQualityPlan plan,
                                const Orientation& predicted,
                                double budget_bytes);

}  // namespace vc

#endif  // VC_CORE_TILE_ASSIGNMENT_H_
