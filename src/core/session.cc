#include "core/session.h"

#include <algorithm>
#include <cmath>

#include "image/metrics.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "predict/predictor.h"
#include "streaming/adaptation.h"

namespace vc {

std::string ApproachName(StreamingApproach approach) {
  switch (approach) {
    case StreamingApproach::kMonolithicFull:
      return "monolithic";
    case StreamingApproach::kUniformDash:
      return "uniform_dash";
    case StreamingApproach::kVisualCloud:
      return "visualcloud";
    case StreamingApproach::kOracle:
      return "oracle";
  }
  return "unknown";
}

Status SessionOptions::Validate() const {
  VC_RETURN_IF_ERROR(network.Validate());
  if (viewport_margin < 0 || viewport_margin > kPi) {
    return Status::InvalidArgument("viewport margin out of range");
  }
  if (high_quality < 0) {
    return Status::InvalidArgument("high_quality must be >= 0");
  }
  if (budget_safety <= 0 || budget_safety > 1.0) {
    return Status::InvalidArgument("budget_safety must be in (0, 1]");
  }
  if (feed_rate_hz <= 0 || feed_rate_hz > 1000) {
    return Status::InvalidArgument("feed rate out of range");
  }
  if (eval_frames_per_segment < 1) {
    return Status::InvalidArgument("eval_frames_per_segment must be >= 1");
  }
  if (buffer_ahead_seconds < 0 || buffer_ahead_seconds > 3600) {
    return Status::InvalidArgument("buffer_ahead_seconds out of range");
  }
  return Status::OK();
}

namespace {

/// Tiles whose planned rung was lowered by budget fitting (a "quality
/// downgrade" in the viewport-adaptive-streaming sense).
int CountDowngrades(const TileQualityPlan& before,
                    const TileQualityPlan& after) {
  int downgrades = 0;
  for (size_t i = 0; i < before.size() && i < after.size(); ++i) {
    if (after[i] > before[i]) ++downgrades;
  }
  return downgrades;
}

Counter* DowngradeCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("session.quality_downgrades");
  return counter;
}

/// Plans the segment's per-tile qualities for the chosen approach.
TileQualityPlan PlanSegment(const VideoMetadata& metadata, int segment,
                            StreamingApproach approach,
                            const Orientation& predicted,
                            const SessionOptions& options,
                            double budget_bytes) {
  const int lowest = metadata.quality_count() - 1;
  switch (approach) {
    case StreamingApproach::kMonolithicFull: {
      return TileQualityPlan(metadata.tile_count(),
                             Clamp(options.high_quality, 0, lowest));
    }
    case StreamingApproach::kUniformDash: {
      std::vector<uint64_t> sizes(metadata.quality_count());
      for (int q = 0; q < metadata.quality_count(); ++q) {
        sizes[q] = metadata.SegmentBytesAtQuality(segment, q);
      }
      int quality = options.adaptive
                        ? PickQualityForBudget(sizes, budget_bytes)
                        : Clamp(options.high_quality, 0, lowest);
      return TileQualityPlan(metadata.tile_count(), quality);
    }
    case StreamingApproach::kVisualCloud:
    case StreamingApproach::kOracle: {
      AssignmentOptions assignment;
      assignment.fov_yaw = options.viewport.fov_yaw;
      assignment.fov_pitch = options.viewport.fov_pitch;
      // The oracle knows exactly where the viewer looks; no margin needed.
      assignment.margin =
          approach == StreamingApproach::kOracle ? 0.0 : options.viewport_margin;
      assignment.high_quality = options.high_quality;
      TileQualityPlan plan =
          AssignTileQualities(metadata, predicted, assignment);
      if (approach == StreamingApproach::kVisualCloud &&
          options.popularity != nullptr &&
          options.popularity->grid() == metadata.tile_grid()) {
        int high = Clamp(options.high_quality, 0, lowest);
        for (const TileId& tile : options.popularity->PopularTiles(
                 segment, options.popularity_coverage)) {
          plan[metadata.tile_grid().IndexOf(tile)] = high;
        }
      }
      if (options.adaptive) {
        TileQualityPlan requested = plan;
        plan = FitPlanToBudget(metadata, segment, std::move(plan), predicted,
                               budget_bytes);
        DowngradeCounter()->Add(CountDowngrades(requested, plan));
      }
      return plan;
    }
  }
  return TileQualityPlan(metadata.tile_count(), lowest);
}

}  // namespace

Result<SessionStats> SimulateSession(StorageManager* storage,
                                     const VideoMetadata& metadata,
                                     const HeadTrace& trace,
                                     const SessionOptions& options,
                                     const SceneGenerator* reference) {
  VC_RETURN_IF_ERROR(options.Validate());
  if (metadata.segment_count() == 0) {
    return Status::InvalidArgument("video has no segments");
  }
  if (trace.empty()) {
    return Status::InvalidArgument("head trace is empty");
  }
  if (options.evaluate_quality && reference == nullptr) {
    return Status::InvalidArgument(
        "evaluate_quality requires a reference scene");
  }
  if (options.high_quality >= metadata.quality_count()) {
    return Status::InvalidArgument("high_quality beyond ladder");
  }

  NetworkSimulator network = *NetworkSimulator::Create(options.network);
  ThroughputEstimator estimator(0.3, options.network.bandwidth_bps * 0.5);
  std::unique_ptr<Predictor> predictor;
  VC_ASSIGN_OR_RETURN(predictor,
                      MakePredictor(options.predictor, metadata.tile_grid()));

  const double segment_seconds = metadata.segment_duration_seconds();
  const double fps = metadata.fps();
  const double media_duration =
      metadata.segments.back().start_frame / fps +
      metadata.segments.back().frame_count / fps;

  SessionStats stats;
  stats.approach = ApproachName(options.approach);
  stats.segments = metadata.segment_count();
  stats.duration_seconds = media_duration;

  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("session.sessions")->Add();
  Counter* segments_streamed = registry.GetCounter("session.segments");
  Counter* stall_events = registry.GetCounter("session.stall_events");
  Histogram* stall_seconds = registry.GetHistogram("session.stall_seconds");
  Histogram* plan_seconds = registry.GetHistogram("session.plan_seconds");
  Counter* predict_hits =
      registry.GetCounter("predict." + options.predictor + ".viewport_hits");
  Counter* predict_misses =
      registry.GetCounter("predict." + options.predictor + ".viewport_misses");

  double wall = 0.0;
  double play_start = -1.0;
  double stall_total = 0.0;
  double last_fed = -1.0;
  double psnr_sum = 0.0;
  double psnr_min = kInfinitePsnr;
  double inview_quality_sum = 0.0;
  int inview_quality_count = 0;
  const double feed_dt = 1.0 / options.feed_rate_hz;

  for (int segment = 0; segment < metadata.segment_count(); ++segment) {
    const SegmentInfo& info = metadata.segments[segment];
    const double media_start = info.start_frame / fps;
    const double media_mid = media_start + info.frame_count / fps / 2.0;

    // Pacing: hold the download until the segment is within the client's
    // buffer target of its playback deadline.
    if (play_start >= 0.0) {
      double earliest = play_start + stall_total + media_start -
                        options.buffer_ahead_seconds;
      if (earliest > wall) wall = earliest;
    }

    // The viewer's current playback position: media advances in wall time
    // once playback starts, minus accumulated stalls.
    double media_now = 0.0;
    if (play_start >= 0.0) {
      media_now = Clamp(wall - play_start - stall_total, 0.0, media_duration);
    }

    // Feed the predictor every orientation report up to "now".
    for (double t = (last_fed < 0 ? 0.0 : last_fed + feed_dt); t <= media_now;
         t += feed_dt) {
      predictor->Observe(t, trace.At(t));
      last_fed = t;
    }

    // Orientation the plan is built around.
    Orientation predicted;
    if (options.approach == StreamingApproach::kOracle) {
      predicted = trace.At(media_mid);
    } else {
      double lookahead = std::max(0.0, media_mid - media_now);
      predicted = predictor->Predict(lookahead);
    }

    double budget =
        SegmentByteBudget(estimator.estimate_bps(), segment_seconds,
                          options.budget_safety);
    TileQualityPlan plan;
    {
      ScopedTimer plan_timer(plan_seconds);
      if (options.approach == StreamingApproach::kOracle) {
        // The oracle knows the viewer's entire path through the segment: the
        // high-quality set is the union of the viewports along it. This is
        // the true upper bound a predictor can approach.
        AssignmentOptions assignment;
        assignment.fov_yaw = options.viewport.fov_yaw;
        assignment.fov_pitch = options.viewport.fov_pitch;
        assignment.margin = 0.0;
        assignment.high_quality = options.high_quality;
        plan.assign(metadata.tile_count(), metadata.quality_count() - 1);
        for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
          double t = media_start + fraction * segment_seconds;
          TileQualityPlan at_t = AssignTileQualities(metadata, trace.At(t),
                                                     assignment);
          for (int i = 0; i < metadata.tile_count(); ++i) {
            plan[i] = std::min(plan[i], at_t[i]);
          }
        }
        if (options.adaptive) {
          TileQualityPlan requested = plan;
          plan = FitPlanToBudget(metadata, segment, std::move(plan),
                                 predicted, budget);
          DowngradeCounter()->Add(CountDowngrades(requested, plan));
        }
      } else {
        plan = PlanSegment(metadata, segment, options.approach, predicted,
                           options, budget);
      }
    }
    segments_streamed->Add();

    uint64_t bytes = PlanBytes(metadata, segment, plan);
    double done = network.Transfer(wall, bytes);
    estimator.AddSample(bytes, done - wall);
    stats.bytes_sent += bytes;
    wall = done;

    if (segment == 0) {
      play_start = wall;
      stats.startup_delay = wall;
    } else {
      double deadline = play_start + stall_total + media_start;
      if (wall > deadline + 1e-9) {
        stats.stall_seconds += wall - deadline;
        stall_total += wall - deadline;
        ++stats.stall_events;
        stall_events->Add();
        stall_seconds->Observe(wall - deadline);
      }
    }

    // In-view quality bookkeeping: the rung the viewer actually sees.
    {
      TileGrid grid = metadata.tile_grid();
      Orientation actual = trace.At(media_mid);
      auto visible = grid.TilesInViewport(actual, options.viewport.fov_yaw,
                                          options.viewport.fov_pitch);
      for (const TileId& tile : visible) {
        inview_quality_sum += plan[grid.IndexOf(tile)];
        ++inview_quality_count;
      }
      // Predictor accuracy as the session experienced it: did the viewport
      // planned around the prediction (FOV + selection margin) cover the
      // tile the viewer actually gazed at mid-segment? The oracle is
      // excluded — its "prediction" is the ground truth.
      if (options.approach != StreamingApproach::kOracle) {
        auto covered = grid.TilesInViewport(
            predicted, options.viewport.fov_yaw + 2 * options.viewport_margin,
            options.viewport.fov_pitch + 2 * options.viewport_margin);
        TileId gaze = grid.TileFor(actual);
        bool hit = std::find(covered.begin(), covered.end(), gaze) !=
                   covered.end();
        (hit ? predict_hits : predict_misses)->Add();
      }
    }

    if (options.evaluate_quality) {
      std::vector<Frame> delivered;
      VC_ASSIGN_OR_RETURN(
          delivered, ReconstructSegment(storage, metadata, segment, plan));
      int step = std::max(
          1, static_cast<int>(info.frame_count) /
                 options.eval_frames_per_segment);
      for (int k = step / 2; k < static_cast<int>(info.frame_count);
           k += step) {
        int frame_index = static_cast<int>(info.start_frame) + k;
        double media_t = frame_index / fps;
        Orientation actual = trace.At(media_t);
        Frame original = reference->FrameAt(frame_index);
        double psnr;
        VC_ASSIGN_OR_RETURN(
            psnr, ViewportPsnr(original, delivered[k], actual,
                               options.viewport));
        psnr_sum += psnr;
        psnr_min = std::min(psnr_min, psnr);
        ++stats.quality_samples;
      }
    }
  }

  if (stats.quality_samples > 0) {
    stats.mean_viewport_psnr = psnr_sum / stats.quality_samples;
    stats.min_viewport_psnr = psnr_min;
  }
  if (inview_quality_count > 0) {
    stats.mean_inview_quality = inview_quality_sum / inview_quality_count;
  }
  return stats;
}

}  // namespace vc
