#include "core/session.h"

#include <algorithm>
#include <cmath>

#include "image/metrics.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "predict/predictor.h"
#include "streaming/adaptation.h"

namespace vc {

std::string ApproachName(StreamingApproach approach) {
  switch (approach) {
    case StreamingApproach::kMonolithicFull:
      return "monolithic";
    case StreamingApproach::kUniformDash:
      return "uniform_dash";
    case StreamingApproach::kVisualCloud:
      return "visualcloud";
    case StreamingApproach::kOracle:
      return "oracle";
  }
  return "unknown";
}

Status SessionOptions::Validate() const {
  VC_RETURN_IF_ERROR(network.Validate());
  if (viewport_margin < 0 || viewport_margin > kPi) {
    return Status::InvalidArgument("viewport margin out of range");
  }
  if (high_quality < 0) {
    return Status::InvalidArgument("high_quality must be >= 0");
  }
  if (budget_safety <= 0 || budget_safety > 1.0) {
    return Status::InvalidArgument("budget_safety must be in (0, 1]");
  }
  if (feed_rate_hz <= 0 || feed_rate_hz > 1000) {
    return Status::InvalidArgument("feed rate out of range");
  }
  if (eval_frames_per_segment < 1) {
    return Status::InvalidArgument("eval_frames_per_segment must be >= 1");
  }
  if (buffer_ahead_seconds < 0 || buffer_ahead_seconds > 3600) {
    return Status::InvalidArgument("buffer_ahead_seconds out of range");
  }
  return Status::OK();
}

namespace {

/// Tiles whose planned rung was lowered by budget fitting (a "quality
/// downgrade" in the viewport-adaptive-streaming sense).
int CountDowngrades(const TileQualityPlan& before,
                    const TileQualityPlan& after) {
  int downgrades = 0;
  for (size_t i = 0; i < before.size() && i < after.size(); ++i) {
    if (after[i] > before[i]) ++downgrades;
  }
  return downgrades;
}

Counter* DowngradeCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("session.quality_downgrades");
  return counter;
}

/// A computed plan plus its budget-fitting downgrade count (0 when fitting
/// did not run) — what the plan cache memoizes.
struct PlannedSegment {
  TileQualityPlan plan;
  int downgrades = 0;
};

/// Computes the segment's per-tile qualities for the chosen approach.
/// `popular` is the popularity overlay as grid indices (already resolved by
/// the caller so it can also key the plan cache); only kVisualCloud applies
/// it. Pure function of its arguments — the property the plan cache rests
/// on.
PlannedSegment ComputePlan(const VideoMetadata& metadata, int segment,
                           StreamingApproach approach,
                           const Orientation& predicted,
                           const SessionOptions& options, double budget_bytes,
                           const std::vector<int>& popular) {
  const int lowest = metadata.quality_count() - 1;
  switch (approach) {
    case StreamingApproach::kMonolithicFull: {
      return {TileQualityPlan(metadata.tile_count(),
                              Clamp(options.high_quality, 0, lowest)),
              0};
    }
    case StreamingApproach::kUniformDash: {
      std::vector<uint64_t> sizes(metadata.quality_count());
      for (int q = 0; q < metadata.quality_count(); ++q) {
        sizes[q] = metadata.SegmentBytesAtQuality(segment, q);
      }
      int quality = options.adaptive
                        ? PickQualityForBudget(sizes, budget_bytes)
                        : Clamp(options.high_quality, 0, lowest);
      return {TileQualityPlan(metadata.tile_count(), quality), 0};
    }
    case StreamingApproach::kVisualCloud:
    case StreamingApproach::kOracle: {
      AssignmentOptions assignment;
      assignment.fov_yaw = options.viewport.fov_yaw;
      assignment.fov_pitch = options.viewport.fov_pitch;
      // The oracle knows exactly where the viewer looks; no margin needed.
      assignment.margin =
          approach == StreamingApproach::kOracle ? 0.0 : options.viewport_margin;
      assignment.high_quality = options.high_quality;
      TileQualityPlan plan =
          AssignTileQualities(metadata, predicted, assignment);
      if (approach == StreamingApproach::kVisualCloud && !popular.empty()) {
        int high = Clamp(options.high_quality, 0, lowest);
        for (int index : popular) plan[index] = high;
      }
      int downgrades = 0;
      if (options.adaptive) {
        TileQualityPlan requested = plan;
        plan = FitPlanToBudget(metadata, segment, std::move(plan), predicted,
                               budget_bytes);
        downgrades = CountDowngrades(requested, plan);
      }
      return {std::move(plan), downgrades};
    }
  }
  return {TileQualityPlan(metadata.tile_count(), lowest), 0};
}

/// Plans the segment's per-tile qualities, memoizing through
/// `options.plan_cache` when one is wired in. The cached entry replays the
/// downgrade metric, so observability is identical on a hit.
TileQualityPlan PlanSegment(const VideoMetadata& metadata, int segment,
                            StreamingApproach approach,
                            const Orientation& predicted,
                            const SessionOptions& options,
                            double budget_bytes) {
  // The popularity overlay is resolved once, up front: it both keys the
  // cache (the overlay is a plan input that changes as the shared model
  // learns) and feeds the computation, so PopularTiles runs once per plan
  // either way.
  std::vector<int> popular;
  if (approach == StreamingApproach::kVisualCloud &&
      options.popularity != nullptr &&
      options.popularity->grid() == metadata.tile_grid()) {
    for (const TileId& tile : options.popularity->PopularTiles(
             segment, options.popularity_coverage)) {
      popular.push_back(metadata.tile_grid().IndexOf(tile));
    }
  }

  const bool cacheable = options.plan_cache != nullptr &&
                         (approach == StreamingApproach::kVisualCloud ||
                          approach == StreamingApproach::kUniformDash);
  if (cacheable) {
    PlanKey key;
    key.segment = segment;
    key.approach = static_cast<int>(approach);
    key.adaptive = options.adaptive;
    key.high_quality = options.high_quality;
    if (approach == StreamingApproach::kVisualCloud) {
      // View-dependent inputs, exactly as used by the computation.
      key.fov_yaw = options.viewport.fov_yaw;
      key.fov_pitch = options.viewport.fov_pitch;
      key.margin = options.viewport_margin;
      key.yaw = predicted.yaw;
      key.pitch = predicted.pitch;
      key.popular = popular;
    }
    // kUniformDash is view-agnostic: zeroed orientation fields let every
    // session at the same budget tier share one entry per segment.
    key.budget_bytes = options.adaptive ? budget_bytes : 0.0;

    PlanCache::Entry entry;
    if (options.plan_cache->Lookup(key, &entry)) {
      DowngradeCounter()->Add(entry.downgrades);
      return entry.plan;
    }
    PlannedSegment planned = ComputePlan(metadata, segment, approach,
                                         predicted, options, budget_bytes,
                                         popular);
    DowngradeCounter()->Add(planned.downgrades);
    options.plan_cache->Insert(key, {planned.plan, planned.downgrades});
    return std::move(planned.plan);
  }

  PlannedSegment planned = ComputePlan(metadata, segment, approach, predicted,
                                       options, budget_bytes, popular);
  DowngradeCounter()->Add(planned.downgrades);
  return std::move(planned.plan);
}

}  // namespace

Result<std::unique_ptr<ClientSession>> ClientSession::Create(
    StorageManager* storage, const VideoMetadata& metadata,
    const HeadTrace& trace, const SessionOptions& options,
    const SceneGenerator* reference) {
  VC_RETURN_IF_ERROR(options.Validate());
  if (metadata.segment_count() == 0) {
    return Status::InvalidArgument("video has no segments");
  }
  if (trace.empty()) {
    return Status::InvalidArgument("head trace is empty");
  }
  if (options.evaluate_quality && reference == nullptr) {
    return Status::InvalidArgument(
        "evaluate_quality requires a reference scene");
  }
  if (options.high_quality >= metadata.quality_count()) {
    return Status::InvalidArgument("high_quality beyond ladder");
  }

  NetworkSimulator network = *NetworkSimulator::Create(options.network);
  std::unique_ptr<Predictor> predictor;
  VC_ASSIGN_OR_RETURN(predictor,
                      MakePredictor(options.predictor, metadata.tile_grid()));
  return std::unique_ptr<ClientSession>(
      new ClientSession(storage, metadata, trace, options, reference,
                        std::move(network), std::move(predictor)));
}

ClientSession::ClientSession(StorageManager* storage,
                             const VideoMetadata& metadata,
                             const HeadTrace& trace,
                             const SessionOptions& options,
                             const SceneGenerator* reference,
                             NetworkSimulator network,
                             std::unique_ptr<Predictor> predictor)
    : storage_(storage),
      metadata_(metadata),
      trace_(trace),
      options_(options),
      reference_(reference),
      network_(std::move(network)),
      estimator_(0.3, options.network.bandwidth_bps * 0.5),
      predictor_(std::move(predictor)),
      segment_seconds_(metadata_.segment_duration_seconds()),
      fps_(metadata_.fps()),
      media_duration_(metadata_.segments.back().start_frame / fps_ +
                      metadata_.segments.back().frame_count / fps_),
      feed_dt_(1.0 / options.feed_rate_hz),
      psnr_min_(kInfinitePsnr) {
  if (options_.live != nullptr) {
    // Join at the live edge: the newest published segment. Media time is
    // viewer-local from here on — the trace's t=0 is the join point.
    start_segment_ = std::max(0, metadata_.segment_count() - 1);
    segment_ = start_segment_;
    media_origin_ = metadata_.segments[start_segment_].start_frame / fps_;
    media_duration_ -= media_origin_;
  }
  stats_.approach = ApproachName(options_.approach);
  stats_.segments = FinalSegmentCount() - start_segment_;
  stats_.duration_seconds = media_duration_;

  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("session.sessions")->Add();
  segments_streamed_ = registry.GetCounter("session.segments");
  stall_events_ = registry.GetCounter("session.stall_events");
  stall_seconds_ = registry.GetHistogram("session.stall_seconds");
  plan_seconds_ = registry.GetHistogram("session.plan_seconds");
  predict_hits_ =
      registry.GetCounter("predict." + options_.predictor + ".viewport_hits");
  predict_misses_ =
      registry.GetCounter("predict." + options_.predictor + ".viewport_misses");
  transfer_faults_ = registry.GetCounter("session.transfer_faults");
  transfer_retries_ = registry.GetCounter("session.transfer_retries");
  segments_skipped_ = registry.GetCounter("session.segments_skipped");
}

ClientSession::~ClientSession() = default;

int ClientSession::FinalSegmentCount() const {
  return options_.live != nullptr ? options_.live->final_segment_count()
                                  : metadata_.segment_count();
}

void ClientSession::RefreshLiveMetadata() {
  if (options_.live == nullptr) return;
  if (segment_ < metadata_.segment_count()) return;
  const VideoMetadata& snapshot = options_.live->snapshot();
  if (snapshot.segment_count() <= metadata_.segment_count()) return;
  metadata_ = snapshot;
  media_duration_ = metadata_.segments.back().start_frame / fps_ +
                    metadata_.segments.back().frame_count / fps_ -
                    media_origin_;
  stats_.duration_seconds = media_duration_;
}

double ClientSession::NextDeadline() const {
  // Pacing: the next segment's download is held until it is within the
  // client's buffer target of its playback deadline.
  if (done_) return wall_;
  double deadline = wall_;
  if (play_start_ >= 0.0) {
    // The next segment's stream media start: from its SegmentInfo when
    // known, else from the uniform layout (start_frame is always
    // segment × frames_per_segment — only the final frame_count varies).
    double media_start =
        segment_ < metadata_.segment_count()
            ? metadata_.segments[segment_].start_frame / fps_
            : segment_ * segment_seconds_;
    double earliest = play_start_ + stall_total_ +
                      (media_start - media_origin_) -
                      options_.buffer_ahead_seconds;
    deadline = std::max(deadline, earliest);
  }
  // A live segment cannot be fetched before the ingest pipeline publishes
  // it: blocking at the live edge is just a later deadline.
  if (options_.live != nullptr && segment_ < FinalSegmentCount()) {
    deadline = std::max(deadline, options_.live->PublishTimeOf(segment_));
  }
  return deadline;
}

PrefetchHint ClientSession::NextPrefetchHint() const {
  PrefetchHint hint;
  if (done_) return hint;
  // At the live edge the next segment is not published yet: its cell files
  // do not exist, so there is nothing to warm — and speculatively touching
  // them would race the ingest pipeline. No hint until it lands.
  if (options_.live != nullptr && segment_ >= metadata_.segment_count()) {
    return hint;
  }

  // Mirror Step()'s prediction inputs without mutating anything: the same
  // playback position, the same lookahead to the segment midpoint. The
  // forecast is made with the orientations fed so far; by the time Step()
  // runs the predictor will have seen more — that gap is exactly the
  // uncertainty real prefetching lives with.
  const SegmentInfo& info = metadata_.segments[segment_];
  const double media_start = info.start_frame / fps_ - media_origin_;
  const double media_mid = media_start + info.frame_count / fps_ / 2.0;
  double media_now = 0.0;
  if (play_start_ >= 0.0) {
    media_now =
        Clamp(wall_ - play_start_ - stall_total_, 0.0, media_duration_);
  }

  hint.valid = true;
  hint.segment = segment_;
  if (options_.approach == StreamingApproach::kOracle) {
    hint.predicted = trace_.At(media_mid);
  } else {
    hint.predicted = predictor_->Predict(std::max(0.0, media_mid - media_now));
  }
  hint.fov_yaw = options_.viewport.fov_yaw;
  hint.fov_pitch = options_.viewport.fov_pitch;
  hint.margin = options_.viewport_margin;
  hint.high_quality = options_.high_quality;
  hint.popularity_coverage = options_.popularity_coverage;
  return hint;
}

Status ClientSession::Step(double now) {
  if (done_) return Status::Aborted("session already complete");
  if (now > wall_) wall_ = now;
  RefreshLiveMetadata();
  if (segment_ >= metadata_.segment_count()) {
    return Status::Aborted("segment not published yet");
  }

  const int segment = segment_;
  const SegmentInfo& info = metadata_.segments[segment];
  // Viewer-local media time (origin 0 offline, the join point live).
  const double media_start = info.start_frame / fps_ - media_origin_;
  const double media_mid = media_start + info.frame_count / fps_ / 2.0;

  // The viewer's current playback position: media advances in wall time
  // once playback starts, minus accumulated stalls.
  double media_now = 0.0;
  if (play_start_ >= 0.0) {
    media_now =
        Clamp(wall_ - play_start_ - stall_total_, 0.0, media_duration_);
  }

  // Feed the predictor (and any shared popularity model) every orientation
  // report up to "now".
  for (double t = (last_fed_ < 0 ? 0.0 : last_fed_ + feed_dt_);
       t <= media_now; t += feed_dt_) {
    Orientation seen = trace_.At(t);
    predictor_->Observe(t, seen);
    if (options_.popularity_sink != nullptr) {
      // The shared model is indexed by stream media time, so mid-join
      // viewers teach (and learn) about the segments they actually watch.
      options_.popularity_sink->Observe(t + media_origin_, seen);
    }
    last_fed_ = t;
  }

  // Orientation the plan is built around.
  Orientation predicted;
  if (options_.approach == StreamingApproach::kOracle) {
    predicted = trace_.At(media_mid);
  } else {
    double lookahead = std::max(0.0, media_mid - media_now);
    predicted = predictor_->Predict(lookahead);
  }

  double budget =
      SegmentByteBudget(estimator_.estimate_bps(), segment_seconds_,
                        options_.budget_safety);
  TileQualityPlan plan;
  {
    ScopedTimer plan_timer(plan_seconds_);
    if (options_.approach == StreamingApproach::kOracle) {
      // The oracle knows the viewer's entire path through the segment: the
      // high-quality set is the union of the viewports along it. This is
      // the true upper bound a predictor can approach.
      AssignmentOptions assignment;
      assignment.fov_yaw = options_.viewport.fov_yaw;
      assignment.fov_pitch = options_.viewport.fov_pitch;
      assignment.margin = 0.0;
      assignment.high_quality = options_.high_quality;
      plan.assign(metadata_.tile_count(), metadata_.quality_count() - 1);
      for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        double t = media_start + fraction * segment_seconds_;
        TileQualityPlan at_t =
            AssignTileQualities(metadata_, trace_.At(t), assignment);
        for (int i = 0; i < metadata_.tile_count(); ++i) {
          plan[i] = std::min(plan[i], at_t[i]);
        }
      }
      if (options_.adaptive) {
        TileQualityPlan requested = plan;
        plan = FitPlanToBudget(metadata_, segment, std::move(plan), predicted,
                               budget);
        DowngradeCounter()->Add(CountDowngrades(requested, plan));
      }
    } else {
      plan = PlanSegment(metadata_, segment, options_.approach, predicted,
                         options_, budget);
    }
  }
  segments_streamed_->Add();

  const int lowest = metadata_.quality_count() - 1;
  uint64_t bytes = PlanBytes(metadata_, segment, plan);
  TransferResult transfer = network_.Transfer(wall_, bytes);
  bool delivered = true;
  bool skipped = false;
  if (transfer.faulted) {
    // The request timed out. Retry once with every tile one rung lower — a
    // smaller request with better odds of landing inside the viewer's
    // patience window. A second fault abandons the segment; the resulting
    // stall is charged against the playback deadline below.
    ++stats_.transfer_faults;
    transfer_faults_->Add();
    wall_ = transfer.completion_time;
    for (int& q : plan) q = std::min(q + 1, lowest);
    bytes = PlanBytes(metadata_, segment, plan);
    ++stats_.transfer_retries;
    transfer_retries_->Add();
    transfer = network_.Transfer(wall_, bytes);
    if (transfer.faulted) {
      ++stats_.transfer_faults;
      transfer_faults_->Add();
      ++stats_.segments_skipped;
      segments_skipped_->Add();
      delivered = false;
      skipped = true;
      bytes = 0;
    }
  }
  if (delivered) {
    estimator_.AddSample(bytes, transfer.completion_time - wall_);
    stats_.bytes_sent += bytes;
  }
  wall_ = transfer.completion_time;

  if (segment == start_segment_) {
    play_start_ = wall_;
    stats_.startup_delay = wall_;
  } else {
    double deadline = play_start_ + stall_total_ + media_start;
    if (wall_ > deadline + 1e-9) {
      stats_.stall_seconds += wall_ - deadline;
      stall_total_ += wall_ - deadline;
      ++stats_.stall_events;
      stall_events_->Add();
      stall_seconds_->Observe(wall_ - deadline);
    }
  }

  // Under a server, delivery is real: pull every planned cell through the
  // shared storage cache, so concurrent viewers contend for — and reuse —
  // the same buffer pool. With an I/O pool the segment's cells load as one
  // overlapped batch.
  if (options_.fetch_cells && delivered) {
    CellSource* source =
        options_.cell_source != nullptr ? options_.cell_source : storage_;
    VC_RETURN_IF_ERROR(source->ReadPlannedCells(metadata_, segment, plan));
  }

  // In-view quality bookkeeping: the rung the viewer actually sees (the
  // lowest rung when the segment was skipped — the player shows stale or
  // minimal detail).
  {
    TileGrid grid = metadata_.tile_grid();
    Orientation actual = trace_.At(media_mid);
    auto visible = grid.TilesInViewport(actual, options_.viewport.fov_yaw,
                                        options_.viewport.fov_pitch);
    for (const TileId& tile : visible) {
      inview_quality_sum_ += skipped ? lowest : plan[grid.IndexOf(tile)];
      ++inview_quality_count_;
    }
    // Predictor accuracy as the session experienced it: did the viewport
    // planned around the prediction (FOV + selection margin) cover the
    // tile the viewer actually gazed at mid-segment? The oracle is
    // excluded — its "prediction" is the ground truth.
    if (options_.approach != StreamingApproach::kOracle) {
      auto covered = grid.TilesInViewport(
          predicted, options_.viewport.fov_yaw + 2 * options_.viewport_margin,
          options_.viewport.fov_pitch + 2 * options_.viewport_margin);
      TileId gaze = grid.TileFor(actual);
      bool hit =
          std::find(covered.begin(), covered.end(), gaze) != covered.end();
      (hit ? predict_hits_ : predict_misses_)->Add();
    }
  }

  if (options_.evaluate_quality && delivered) {
    std::vector<Frame> dframes;
    VC_ASSIGN_OR_RETURN(
        dframes, ReconstructSegment(storage_, metadata_, segment, plan));
    int step = std::max(1, static_cast<int>(info.frame_count) /
                               options_.eval_frames_per_segment);
    for (int k = step / 2; k < static_cast<int>(info.frame_count); k += step) {
      int frame_index = static_cast<int>(info.start_frame) + k;
      double media_t = frame_index / fps_ - media_origin_;
      Orientation actual = trace_.At(media_t);
      Frame original = reference_->FrameAt(frame_index);
      double psnr;
      VC_ASSIGN_OR_RETURN(
          psnr, ViewportPsnr(original, dframes[k], actual, options_.viewport));
      psnr_sum_ += psnr;
      psnr_min_ = std::min(psnr_min_, psnr);
      ++stats_.quality_samples;
    }
  }

  ++segment_;
  if (segment_ == FinalSegmentCount()) Finalize();
  return Status::OK();
}

void ClientSession::Finalize() {
  done_ = true;
  if (stats_.quality_samples > 0) {
    stats_.mean_viewport_psnr = psnr_sum_ / stats_.quality_samples;
    stats_.min_viewport_psnr = psnr_min_;
  }
  if (inview_quality_count_ > 0) {
    stats_.mean_inview_quality = inview_quality_sum_ / inview_quality_count_;
  }
  if (options_.popularity_sink != nullptr) {
    options_.popularity_sink->EndViewer();
  }
}

Result<SessionStats> SimulateSession(StorageManager* storage,
                                     const VideoMetadata& metadata,
                                     const HeadTrace& trace,
                                     const SessionOptions& options,
                                     const SceneGenerator* reference) {
  std::unique_ptr<ClientSession> session;
  VC_ASSIGN_OR_RETURN(session, ClientSession::Create(storage, metadata, trace,
                                                     options, reference));
  while (!session->done()) {
    VC_RETURN_IF_ERROR(session->Step(session->NextDeadline()));
  }
  return session->stats();
}

}  // namespace vc
