#ifndef VC_CORE_EXPORT_H_
#define VC_CORE_EXPORT_H_

#include "codec/bitstream.h"
#include "storage/storage_manager.h"

namespace vc {

/// \brief Exports a stored video as one monolithic tiled stream at a single
/// ladder rung, **without any transcode**: per segment the stored tile
/// cells are byte-merged (homomorphic TILEUNION) and the segments are then
/// concatenated (GOPUNION). The result decodes to exactly the pixels the
/// stored cells decode to, and is what a server hands to a client that
/// wants a plain download instead of an adaptive session.
Result<EncodedVideo> ExportMonolithic(StorageManager* storage,
                                      const VideoMetadata& metadata,
                                      int quality);

}  // namespace vc

#endif  // VC_CORE_EXPORT_H_
