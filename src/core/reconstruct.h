#ifndef VC_CORE_RECONSTRUCT_H_
#define VC_CORE_RECONSTRUCT_H_

#include <vector>

#include "common/result.h"
#include "image/frame.h"
#include "storage/storage_manager.h"

namespace vc {

/// Per-tile ladder rungs chosen for one segment (tile-index order;
/// values index `metadata.ladder`, 0 = best).
using TileQualityPlan = std::vector<int>;

/// \brief Decodes one whole segment at the given per-tile qualities and
/// reassembles the panorama frames. This is what the VisualCloud client
/// does with the cells the server streamed: decode each tile's stream and
/// paste it into the equirectangular canvas.
Result<std::vector<Frame>> ReconstructSegment(StorageManager* storage,
                                              const VideoMetadata& metadata,
                                              int segment,
                                              const TileQualityPlan& plan);

/// Reconstructs panorama frames [first, last] (presentation indices,
/// inclusive) of the stored video, all tiles at ladder rung `quality`.
Result<std::vector<Frame>> ReconstructFrameRange(StorageManager* storage,
                                                 const VideoMetadata& metadata,
                                                 int first, int last,
                                                 int quality);

}  // namespace vc

#endif  // VC_CORE_RECONSTRUCT_H_
