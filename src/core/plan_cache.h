#ifndef VC_CORE_PLAN_CACHE_H_
#define VC_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/reconstruct.h"

namespace vc {

/// \brief Everything a segment plan is a function of, for one video.
///
/// Two sessions with equal keys would compute byte-identical
/// TileQualityPlans, so the plan can be computed once and shared — the
/// VisualCloud thesis (plan centrally, serve many viewers) applied to the
/// planner itself. Equality is EXACT, doubles included: the cache is a pure
/// memoizer, never an approximation, which is what makes served bytes/QoE
/// provably identical with the cache on or off. Orientation and budget
/// quantization exist only inside PlanKeyHash, to bucket nearby keys; they
/// can only affect hit rate, never the returned plan.
///
/// A PlanKey carries no video identity: use one PlanCache per video (the
/// server keeps a per-video map, like the shared popularity model). Live
/// growth is safe — a published segment's cell sizes never change, so a
/// cached plan stays valid for the video's lifetime.
struct PlanKey {
  int segment = 0;
  int approach = 0;  ///< static_cast<int>(StreamingApproach).
  bool adaptive = false;
  int high_quality = 0;
  double fov_yaw = 0.0;
  double fov_pitch = 0.0;
  double margin = 0.0;
  /// Predicted gaze the plan is built around (zeroed for view-agnostic
  /// approaches so all sessions share one key per segment/budget).
  double yaw = 0.0;
  double pitch = 0.0;
  double budget_bytes = 0.0;
  /// Popularity-overlay tile indices forced to the high rung, in the
  /// deterministic order PopularTiles returns them.
  std::vector<int> popular;

  bool operator==(const PlanKey&) const = default;
};

/// Hash bucketing for PlanKey: exact discrete fields, quantized continuous
/// ones (orientation to ~0.008 rad, budget to 4 KiB tiers). Exactly equal
/// keys always collide into the same bucket; nearby-but-unequal keys often
/// do too, which costs an equality check, never correctness.
struct PlanKeyHash {
  size_t operator()(const PlanKey& key) const;
};

/// \brief Shared memoization of segment plans across a video's sessions.
///
/// Thread-safe. Eviction is generational: when the table reaches
/// `max_entries` it is dropped wholesale — plans are cheap to recompute and
/// a generation flush can only cause extra misses, never a wrong plan.
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// A cached plan plus the downgrade count budget fitting produced — the
  /// session replays the `session.quality_downgrades` metric on a hit, so
  /// observability is identical cached or not.
  struct Entry {
    TileQualityPlan plan;
    int downgrades = 0;
  };

  explicit PlanCache(size_t max_entries = 1 << 16);

  /// True and fills `*out` when `key` is cached (counts a hit; else a miss).
  bool Lookup(const PlanKey& key, Entry* out);

  /// Stores the computed plan for `key`.
  void Insert(const PlanKey& key, Entry entry);

  Stats stats() const;
  size_t size() const;

 private:
  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<PlanKey, Entry, PlanKeyHash> map_;
  Stats stats_;
};

}  // namespace vc

#endif  // VC_CORE_PLAN_CACHE_H_
