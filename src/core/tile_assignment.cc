#include "core/tile_assignment.h"

#include <algorithm>

namespace vc {

TileQualityPlan AssignTileQualities(const VideoMetadata& metadata,
                                    const Orientation& predicted,
                                    const AssignmentOptions& options) {
  TileGrid grid = metadata.tile_grid();
  int low = options.low_quality >= 0 ? options.low_quality
                                     : metadata.quality_count() - 1;
  low = Clamp(low, 0, metadata.quality_count() - 1);
  int high = Clamp(options.high_quality, 0, metadata.quality_count() - 1);

  TileQualityPlan plan(grid.tile_count(), low);
  auto visible = grid.TilesInViewport(predicted,
                                      options.fov_yaw + 2 * options.margin,
                                      options.fov_pitch + 2 * options.margin);
  for (const TileId& tile : visible) {
    plan[grid.IndexOf(tile)] = high;
  }
  return plan;
}

uint64_t PlanBytes(const VideoMetadata& metadata, int segment,
                   const TileQualityPlan& plan) {
  uint64_t total = 0;
  for (int tile = 0; tile < metadata.tile_count(); ++tile) {
    total += metadata.cells[metadata.CellIndex(segment, tile, plan[tile])]
                 .byte_size;
  }
  return total;
}

TileQualityPlan FitPlanToBudget(const VideoMetadata& metadata, int segment,
                                TileQualityPlan plan,
                                const Orientation& predicted,
                                double budget_bytes) {
  TileGrid grid = metadata.tile_grid();
  const int lowest = metadata.quality_count() - 1;

  // Tiles ordered farthest-from-gaze first.
  std::vector<int> order(grid.tile_count());
  for (int i = 0; i < grid.tile_count(); ++i) order[i] = i;
  std::vector<double> distance(grid.tile_count());
  for (int i = 0; i < grid.tile_count(); ++i) {
    distance[i] = AngularDistance(grid.CenterOf(grid.TileAt(i)), predicted);
  }
  std::sort(order.begin(), order.end(), [&distance](int a, int b) {
    return distance[a] > distance[b];
  });

  uint64_t bytes = PlanBytes(metadata, segment, plan);
  while (static_cast<double>(bytes) > budget_bytes) {
    bool degraded = false;
    for (int tile : order) {
      if (plan[tile] < lowest) {
        uint64_t before =
            metadata.cells[metadata.CellIndex(segment, tile, plan[tile])]
                .byte_size;
        plan[tile] += 1;
        uint64_t after =
            metadata.cells[metadata.CellIndex(segment, tile, plan[tile])]
                .byte_size;
        bytes = bytes - before + after;
        degraded = true;
        break;
      }
    }
    if (!degraded) break;  // everything already at the lowest rung
  }
  return plan;
}

}  // namespace vc
