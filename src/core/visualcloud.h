#ifndef VC_CORE_VISUALCLOUD_H_
#define VC_CORE_VISUALCLOUD_H_

#include <memory>
#include <string>
#include <vector>

#include "codec/bitstream.h"
#include "codec/quality.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "image/frame.h"
#include "image/scene.h"
#include "storage/storage_manager.h"

namespace vc {

/// Options for opening a VisualCloud instance.
struct VisualCloudOptions {
  StorageOptions storage;   ///< Where and how videos are persisted.
  int encode_threads = 0;   ///< Ingest parallelism; 0 = hardware concurrency.
};

/// Per-ingest configuration: the spatiotemporal partitioning and ladder.
struct IngestOptions {
  int tile_rows = 4;            ///< Spatial partitioning of the sphere.
  int tile_cols = 4;
  int frames_per_segment = 30;  ///< Temporal partition (≈ 1 s GOPs).
  double fps = 30.0;
  QualityLadder ladder = DefaultQualityLadder();
  /// Stereoscopic layout of the ingested frames. For kStereoTopBottom the
  /// frames are width × 2·height packed panoramas (see image/stereo.h); the
  /// layout is recorded in the sv3d metadata so clients unpack per eye.
  StereoMode stereo = StereoMode::kMono;
  int motion_range = 16;
  bool motion_constrained_tiles = true;
  /// Multi-rate analysis reuse: encode the ladder's first rung per
  /// (segment, tile) cell first, capture its per-block motion vectors and
  /// mode decisions, and seed the remaining rungs from them — a short
  /// refine instead of a full diamond search per block. Ingest analysis
  /// cost becomes near-O(1) in ladder depth at a ≤0.1 dB PSNR cost; the
  /// produced streams are ordinary valid streams. Disable to force every
  /// rung through the full search (e.g. for A/B benchmarking).
  bool reuse_motion_analysis = true;
  /// Residual entropy coder for every encoded cell. The Huffman profile
  /// builds a canonical code per tile payload and falls back to Exp-Golomb
  /// whenever that is smaller, so it strictly reduces storage at identical
  /// reconstruction (entropy coding is lossless).
  EntropyProfile entropy_profile = EntropyProfile::kExpGolomb;

  Status Validate() const;
};

class VisualCloud;

/// \brief A live (streaming) ingest session.
///
/// Push frames as a camera rig produces them; every full segment is encoded
/// and written immediately, and `Checkpoint()` publishes everything captured
/// so far as a committed version — viewers stream the latest checkpoint
/// while capture continues. Checkpoints share cell files (no copying).
class LiveIngest {
 public:
  /// Buffers one frame; encodes and persists when a segment fills.
  Status PushFrame(const Frame& frame);

  /// Publishes the segments captured so far; returns the version.
  /// At least one full segment must exist.
  Result<uint32_t> Checkpoint();

  /// Encodes any buffered partial segment and commits the final version.
  /// The session must not be used afterwards.
  Result<uint32_t> Finish();

  /// Segments fully encoded and written so far.
  int segments_written() const;

 private:
  friend class VisualCloud;
  LiveIngest(VisualCloud* db,
             std::unique_ptr<StorageManager::VideoWriter> writer,
             IngestOptions options, int width, int height);

  Status FlushSegment();

  VisualCloud* db_;
  std::unique_ptr<StorageManager::VideoWriter> writer_;
  const IngestOptions options_;
  const int width_;
  const int height_;
  std::vector<Frame> pending_;
  bool finished_ = false;
};

/// \brief The VisualCloud server facade: a DBMS for VR video.
///
/// `Ingest` spatiotemporally partitions a 360° equirectangular video into
/// (segment × tile × quality) cells — each an independently decodable
/// encoded stream — and commits them as a new immutable version in the
/// storage manager. Reads and streaming sessions (see session.h) operate on
/// committed versions only.
class VisualCloud {
 public:
  static Result<std::unique_ptr<VisualCloud>> Open(
      const VisualCloudOptions& options);

  /// Ingests `frames` as a new version of video `name`. Returns the version.
  Result<uint32_t> Ingest(const std::string& name,
                          const std::vector<Frame>& frames,
                          const IngestOptions& options);

  /// Ingests frames produced by `scene` without materializing the whole
  /// video: frames are generated and encoded one segment at a time — the
  /// live-ingest path.
  Result<uint32_t> IngestScene(const std::string& name,
                               const SceneGenerator& scene, int frame_count,
                               const IngestOptions& options);

  /// Starts a live ingest session for `name` (see LiveIngest).
  Result<std::unique_ptr<LiveIngest>> StartLiveIngest(
      const std::string& name, int width, int height,
      const IngestOptions& options);

  /// Latest committed metadata for a video.
  Result<VideoMetadata> Describe(const std::string& name) const;

  /// Videos in the catalog.
  Result<std::vector<std::string>> List() const;

  /// Drops a video and all versions.
  Status Drop(const std::string& name);

  /// Reconstructs full panorama frames [first, last] (inclusive) of the
  /// latest version, decoding every tile at ladder rung `quality`.
  Result<std::vector<Frame>> ReadFrames(const std::string& name, int first,
                                        int last, int quality = 0);

  StorageManager* storage() { return storage_.get(); }

 private:
  friend class LiveIngest;
  VisualCloud(std::unique_ptr<StorageManager> storage, int encode_threads);

  /// Encodes one segment's worth of tile frames into cell payloads
  /// (tile-major × quality-minor) on the long-lived pool. With analysis
  /// reuse enabled the schedule runs in two waves: every tile's reference
  /// rung in parallel (capturing motion hints), then every remaining
  /// (tile, rung) cell in parallel seeded from its tile's hints.
  Result<std::vector<std::vector<uint8_t>>> EncodeSegment(
      const std::vector<Frame>& segment_frames, const IngestOptions& options,
      int width, int height);

  std::unique_ptr<StorageManager> storage_;
  /// Long-lived encode pool: live ingest encodes a segment every second,
  /// and spinning up / joining a pool per segment costs more than encoding
  /// small segments. EncodeSegment is the only submitter and drains the
  /// pool (WaitIdle) before returning.
  ThreadPool encode_pool_;
};

}  // namespace vc

#endif  // VC_CORE_VISUALCLOUD_H_
