#ifndef VC_CORE_VISUALCLOUD_H_
#define VC_CORE_VISUALCLOUD_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "codec/bitstream.h"
#include "codec/encoder.h"
#include "codec/quality.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "image/frame.h"
#include "image/scene.h"
#include "storage/storage_manager.h"

namespace vc {

/// Options for opening a VisualCloud instance.
struct VisualCloudOptions {
  StorageOptions storage;   ///< Where and how videos are persisted.
  int encode_threads = 0;   ///< Ingest parallelism; 0 = hardware concurrency.
};

/// Per-ingest configuration: the spatiotemporal partitioning and ladder.
struct IngestOptions {
  int tile_rows = 4;            ///< Spatial partitioning of the sphere.
  int tile_cols = 4;
  int frames_per_segment = 30;  ///< Temporal partition (≈ 1 s GOPs).
  double fps = 30.0;
  QualityLadder ladder = DefaultQualityLadder();
  /// Stereoscopic layout of the ingested frames. For kStereoTopBottom the
  /// frames are width × 2·height packed panoramas (see image/stereo.h); the
  /// layout is recorded in the sv3d metadata so clients unpack per eye.
  StereoMode stereo = StereoMode::kMono;
  int motion_range = 16;
  bool motion_constrained_tiles = true;
  /// Multi-rate analysis reuse: encode the ladder's first rung per
  /// (segment, tile) cell first, capture its per-block motion vectors and
  /// mode decisions, and seed the remaining rungs from them — a short
  /// refine instead of a full diamond search per block. Ingest analysis
  /// cost becomes near-O(1) in ladder depth at a ≤0.1 dB PSNR cost; the
  /// produced streams are ordinary valid streams. Disable to force every
  /// rung through the full search (e.g. for A/B benchmarking).
  bool reuse_motion_analysis = true;
  /// Residual entropy coder for every encoded cell. The Huffman profile
  /// builds a canonical code per tile payload and falls back to Exp-Golomb
  /// whenever that is smaller, so it strictly reduces storage at identical
  /// reconstruction (entropy coding is lossless).
  EntropyProfile entropy_profile = EntropyProfile::kExpGolomb;

  Status Validate() const;

  /// The codec-level options one ladder rung of one cell encodes with —
  /// the single source of truth for the IngestOptions → EncoderOptions
  /// mapping (hint capture/reuse wiring stays with the caller).
  EncoderOptions MakeEncoderOptions(int width, int height, int quality) const;
};

/// Configuration of a live ingest session beyond the layout itself.
struct LiveIngestOptions {
  IngestOptions ingest;
  /// Publish every completed segment immediately as a streaming checkpoint
  /// version (CommitCheckpoint): the append-only catalog grows while
  /// capture continues and viewers can join at the live edge. When false —
  /// the default, and what the offline `Ingest*` wrappers use — nothing is
  /// visible to readers until an explicit Checkpoint() or Close().
  bool publish_segments = false;
};

class VisualCloud;

/// \brief Subscriber to catalog commits: the hook standing queries and
/// materialized-view maintenance build on (see view/maintainer.h).
///
/// `OnCommit` fires synchronously on the committing thread immediately
/// after a version of `name` becomes visible to readers — once per
/// streaming checkpoint publish (per segment with `publish_segments`, or
/// per explicit `Checkpoint()`) and once for the final archived commit of
/// `Close()`. Because live publishes happen inside the server's
/// deterministic (time, seq) event scheduler, work done here inherits that
/// ordering: per-segment results are byte-identical across reruns, node
/// counts, and prefetch modes. Observers must not re-enter the session
/// that notified them.
class CatalogObserver {
 public:
  virtual ~CatalogObserver() = default;
  /// `final` is true for the archived (Close) commit of the video.
  virtual void OnCommit(const std::string& name, uint32_t version,
                        bool final) = 0;
};

/// \brief A live (streaming) ingest session — the primitive every ingest
/// path is built on.
///
/// Append frames as a camera rig produces them; every time a segment's
/// worth has accumulated it is encoded (full quality ladder, multi-rate
/// hint reuse) and written. With `publish_segments` set each finished
/// segment is also committed as a streaming checkpoint version, so the
/// catalog grows append-only under live viewers; otherwise `Checkpoint()`
/// publishes on demand. `Close()` encodes any buffered partial segment and
/// commits the final archived version. The offline `VisualCloud::Ingest*`
/// entry points are thin byte-identical wrappers over this class.
class LiveIngestSession {
 public:
  /// Buffers one frame; encodes (and, with publish_segments, publishes)
  /// when a segment fills.
  Status AppendFrame(const Frame& frame);

  /// Appends frames in order; equivalent to AppendFrame per frame.
  Status AppendFrames(const std::vector<Frame>& frames);

  /// Encodes and writes the buffered partial segment immediately instead
  /// of waiting for it to fill (e.g. an ad-break splice point). No-op when
  /// nothing is buffered.
  Status FinishSegment();

  /// Publishes the segments captured so far as a streaming checkpoint
  /// version; returns the version. At least one full segment must exist.
  /// (With publish_segments set this happens automatically per segment.)
  Result<uint32_t> Checkpoint();

  /// Encodes any buffered partial segment and commits the final archived
  /// version; returns it. The session must not be used afterwards.
  Result<uint32_t> Close();

  /// Segments fully encoded and written so far.
  int segments_written() const;

  /// The metadata accumulated so far (pre-commit: version already set).
  const VideoMetadata& metadata() const;

  /// Version of the most recent checkpoint publish; 0 before any.
  uint32_t last_published_version() const { return last_published_; }

 private:
  friend class VisualCloud;
  LiveIngestSession(VisualCloud* db,
                    std::unique_ptr<StorageManager::VideoWriter> writer,
                    LiveIngestOptions options, int width, int height);

  Status FlushSegment();

  VisualCloud* db_;
  std::unique_ptr<StorageManager::VideoWriter> writer_;
  const LiveIngestOptions options_;
  const int width_;
  const int height_;
  std::vector<Frame> pending_;
  uint32_t last_published_ = 0;
  bool closed_ = false;
};

/// \brief The VisualCloud server facade: a DBMS for VR video.
///
/// `Ingest` spatiotemporally partitions a 360° equirectangular video into
/// (segment × tile × quality) cells — each an independently decodable
/// encoded stream — and commits them as a new immutable version in the
/// storage manager. Reads and streaming sessions (see session.h) operate on
/// committed versions only.
class VisualCloud {
 public:
  static Result<std::unique_ptr<VisualCloud>> Open(
      const VisualCloudOptions& options);

  /// Ingests `frames` as a new version of video `name`. Returns the
  /// version. Thin wrapper over LiveIngestSession (append everything,
  /// Close) — byte-identical output, same segment chunking.
  Result<uint32_t> Ingest(const std::string& name,
                          const std::vector<Frame>& frames,
                          const IngestOptions& options);

  /// Ingests frames produced by `scene` without materializing the whole
  /// video: frames are generated and appended one segment at a time.
  Result<uint32_t> IngestScene(const std::string& name,
                               const SceneGenerator& scene, int frame_count,
                               const IngestOptions& options);

  /// Starts a live ingest session for `name` (see LiveIngestSession).
  Result<std::unique_ptr<LiveIngestSession>> StartLiveIngest(
      const std::string& name, int width, int height,
      const LiveIngestOptions& options);

  /// Convenience overload: plain layout options, explicit-checkpoint mode.
  Result<std::unique_ptr<LiveIngestSession>> StartLiveIngest(
      const std::string& name, int width, int height,
      const IngestOptions& options);

  /// Latest committed metadata for a video.
  Result<VideoMetadata> Describe(const std::string& name) const;

  /// Videos in the catalog.
  Result<std::vector<std::string>> List() const;

  /// Drops a video and all versions.
  Status Drop(const std::string& name);

  /// Registers `observer` for commit notifications from every ingest
  /// session of this instance (see CatalogObserver). Not owned; the
  /// observer must outlive its registration.
  void AddObserver(CatalogObserver* observer);
  void RemoveObserver(CatalogObserver* observer);

  /// Reconstructs full panorama frames [first, last] (inclusive) of the
  /// latest version, decoding every tile at ladder rung `quality`.
  Result<std::vector<Frame>> ReadFrames(const std::string& name, int first,
                                        int last, int quality = 0);

  StorageManager* storage() { return storage_.get(); }

 private:
  friend class LiveIngestSession;
  VisualCloud(std::unique_ptr<StorageManager> storage, int encode_threads);

  /// Invokes every registered observer, in registration order, on the
  /// calling thread.
  void NotifyCommit(const std::string& name, uint32_t version, bool final);

  /// Encodes one segment's worth of tile frames into cell payloads
  /// (tile-major × quality-minor) on the long-lived pool. With analysis
  /// reuse enabled the schedule runs in two waves: every tile's reference
  /// rung in parallel (capturing motion hints), then every remaining
  /// (tile, rung) cell in parallel seeded from its tile's hints.
  Result<std::vector<std::vector<uint8_t>>> EncodeSegment(
      const std::vector<Frame>& segment_frames, const IngestOptions& options,
      int width, int height);

  std::unique_ptr<StorageManager> storage_;
  /// Commit observers, in registration order. Guarded by observers_mu_;
  /// notification happens outside the lock on a copied snapshot so an
  /// observer may remove itself (but not others) during a callback.
  mutable std::mutex observers_mu_;
  std::vector<CatalogObserver*> observers_;
  /// Long-lived encode pool: live ingest encodes a segment every second,
  /// and spinning up / joining a pool per segment costs more than encoding
  /// small segments. EncodeSegment is the only submitter and drains the
  /// pool (WaitIdle) before returning.
  ThreadPool encode_pool_;
};

}  // namespace vc

#endif  // VC_CORE_VISUALCLOUD_H_
