#include "core/reconstruct.h"

#include "query/executor.h"

namespace vc {

Result<std::vector<Frame>> ReconstructSegment(StorageManager* storage,
                                              const VideoMetadata& metadata,
                                              int segment,
                                              const TileQualityPlan& plan) {
  if (segment < 0 || segment >= metadata.segment_count()) {
    return Status::InvalidArgument("segment out of range");
  }
  if (static_cast<int>(plan.size()) != metadata.tile_count()) {
    return Status::InvalidArgument("quality plan size != tile count");
  }
  for (int quality : plan) {
    if (quality < 0 || quality >= metadata.quality_count()) {
      return Status::InvalidArgument("quality plan rung out of range");
    }
  }
  // Per-tile rung choices are not expressible in the logical algebra, so
  // this builds the physical plan directly: one scan, one whole-segment
  // slice carrying the per-tile rungs, materialize sink.
  const SegmentInfo& info = metadata.segments[segment];
  PhysicalPlan physical;
  ScanPlan scan;
  scan.metadata = metadata;
  SegmentSlice slice;
  slice.segment = segment;
  slice.first_frame = static_cast<int>(info.start_frame);
  slice.last_frame =
      static_cast<int>(info.start_frame + info.frame_count) - 1;
  slice.tile_quality = plan;
  scan.slices.push_back(std::move(slice));
  physical.scans.push_back(std::move(scan));

  QueryResult result;
  VC_ASSIGN_OR_RETURN(result, ExecutePlan(physical, storage));
  return std::move(result.frames);
}

Result<std::vector<Frame>> ReconstructFrameRange(StorageManager* storage,
                                                 const VideoMetadata& metadata,
                                                 int first, int last,
                                                 int quality) {
  if (first < 0 || last < first) {
    return Status::InvalidArgument("bad frame range");
  }
  if (quality < 0 || quality >= metadata.quality_count()) {
    return Status::InvalidArgument("quality plan rung out of range");
  }
  Query query =
      Query::Scan(metadata.name).FrameSlice(first, last).QualityFloor(quality);
  OptimizeOptions optimize;
  optimize.scan_override = &metadata;  // pin the caller's version
  QueryResult result;
  VC_ASSIGN_OR_RETURN(result, ExecuteQuery(query, storage, optimize));
  if (result.frames.size() != static_cast<size_t>(last - first + 1)) {
    return Status::OutOfRange("frame range extends past stored video");
  }
  return std::move(result.frames);
}

}  // namespace vc
