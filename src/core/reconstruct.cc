#include "core/reconstruct.h"

#include "codec/decoder.h"

namespace vc {

Result<std::vector<Frame>> ReconstructSegment(StorageManager* storage,
                                              const VideoMetadata& metadata,
                                              int segment,
                                              const TileQualityPlan& plan) {
  if (segment < 0 || segment >= metadata.segment_count()) {
    return Status::InvalidArgument("segment out of range");
  }
  if (static_cast<int>(plan.size()) != metadata.tile_count()) {
    return Status::InvalidArgument("quality plan size != tile count");
  }
  TileGrid grid = metadata.tile_grid();
  const int frame_count = metadata.segments[segment].frame_count;

  std::vector<Frame> panorama(frame_count,
                              Frame(metadata.width, metadata.height));

  for (int tile = 0; tile < metadata.tile_count(); ++tile) {
    int quality = plan[tile];
    if (quality < 0 || quality >= metadata.quality_count()) {
      return Status::InvalidArgument("quality plan rung out of range");
    }
    LruCache::Value bytes;
    VC_ASSIGN_OR_RETURN(bytes,
                        storage->ReadCell(metadata, segment, tile, quality));
    EncodedVideo video;
    VC_ASSIGN_OR_RETURN(video, EncodedVideo::Parse(Slice(*bytes)));
    if (static_cast<int>(video.frames.size()) != frame_count) {
      return Status::Corruption("cell frame count mismatch");
    }
    std::unique_ptr<Decoder> decoder;
    VC_ASSIGN_OR_RETURN(decoder, Decoder::Create(video.header));
    TileGrid::PixelRect rect;
    VC_ASSIGN_OR_RETURN(rect, grid.PixelRectOf(grid.TileAt(tile),
                                               metadata.width,
                                               metadata.height, 16));
    for (int i = 0; i < frame_count; ++i) {
      Frame tile_frame;
      VC_ASSIGN_OR_RETURN(tile_frame,
                          decoder->Decode(Slice(video.frames[i].payload)));
      VC_RETURN_IF_ERROR(panorama[i].Paste(tile_frame, rect.x, rect.y));
    }
  }
  return panorama;
}

Result<std::vector<Frame>> ReconstructFrameRange(StorageManager* storage,
                                                 const VideoMetadata& metadata,
                                                 int first, int last,
                                                 int quality) {
  if (first < 0 || last < first) {
    return Status::InvalidArgument("bad frame range");
  }
  TileQualityPlan plan(metadata.tile_count(), quality);
  std::vector<Frame> out;
  for (int segment = 0; segment < metadata.segment_count(); ++segment) {
    const SegmentInfo& info = metadata.segments[segment];
    int seg_first = static_cast<int>(info.start_frame);
    int seg_last = seg_first + static_cast<int>(info.frame_count) - 1;
    if (seg_last < first) continue;
    if (seg_first > last) break;
    std::vector<Frame> frames;
    VC_ASSIGN_OR_RETURN(frames,
                        ReconstructSegment(storage, metadata, segment, plan));
    for (int i = 0; i < static_cast<int>(frames.size()); ++i) {
      int presentation = seg_first + i;
      if (presentation >= first && presentation <= last) {
        out.push_back(std::move(frames[i]));
      }
    }
  }
  if (out.size() != static_cast<size_t>(last - first + 1)) {
    return Status::OutOfRange("frame range extends past stored video");
  }
  return out;
}

}  // namespace vc
