#include "server/cluster_server.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>
#include <string>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace vc {

Status ClusterOptions::Validate() const {
  if (nodes < 1) {
    return Status::InvalidArgument("ClusterOptions.nodes must be >= 1");
  }
  if (balance_slack < 0) {
    return Status::InvalidArgument("ClusterOptions.balance_slack must be >= 0");
  }
  return node.Validate();
}

namespace {

enum class EventKind { kPublish, kArrival, kStep };

/// One scheduler entry. `seq` (assigned in push order, cluster-wide) breaks
/// time ties exactly as in the single-node server; `node` completes the
/// tiebreak so the order is total even for events sharing a seq source.
/// Arrivals carry node -1 — their node is decided by placement at pop time.
/// Publish events (live runs) also carry node -1 and reuse `viewer` for the
/// segment index; they are pushed before any arrival, so their seqs win
/// every time tie — the catalog grows before viewers act.
struct Event {
  double time;
  uint64_t seq;
  int node;
  EventKind kind;
  int viewer;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.seq != b.seq) return a.seq > b.seq;
    return a.node > b.node;
  }
};

/// Mutable per-node serving state.
struct NodeState {
  std::unique_ptr<ShardedStore::Node> view;  ///< L1-over-L2 read path.
  std::unique_ptr<PredictivePrefetcher> prefetcher;
  int active = 0;
  double admitted_bps = 0.0;
  std::vector<int> video_active;  ///< Active sessions per catalog video.
  double host_seconds = 0.0;
  ClusterNodeStats stats;
};

}  // namespace

ClusterServer::ClusterServer(ShardedStore* store,
                             const ClusterOptions& options)
    : store_(store), options_(options) {}

Result<ClusterStats> ClusterServer::Run(
    const std::vector<VideoMetadata>& videos,
    const std::vector<ViewerRequest>& viewers,
    const SceneGenerator* reference) {
  if (videos.empty()) {
    return Status::InvalidArgument("cluster requires at least one video");
  }
  for (const VideoMetadata& video : videos) {
    if (video.segment_count() == 0) {
      return Status::InvalidArgument("video has no segments");
    }
  }
  return RunInternal(&videos, nullptr, viewers, reference);
}

Result<ClusterStats> ClusterServer::RunLive(
    LiveFeed* feed, const std::vector<ViewerRequest>& viewers,
    const SceneGenerator* reference) {
  if (feed == nullptr) {
    return Status::InvalidArgument("RunLive requires a live feed");
  }
  if (feed->published_segments() != 0) {
    return Status::InvalidArgument("live feed already partially published");
  }
  return RunInternal(nullptr, feed, viewers, reference);
}

Result<ClusterStats> ClusterServer::RunInternal(
    const std::vector<VideoMetadata>* static_videos, LiveFeed* live,
    const std::vector<ViewerRequest>& viewers,
    const SceneGenerator* reference) {
  VC_RETURN_IF_ERROR(options_.Validate());
  if (store_ == nullptr) {
    return Status::InvalidArgument("cluster requires a sharded store");
  }
  // A live run serves a one-video catalog whose metadata is the feed's
  // growing snapshot; `video_of` reads the newest published state.
  const size_t video_count = live != nullptr ? 1 : static_videos->size();
  auto video_of = [&](int video) -> const VideoMetadata& {
    return live != nullptr ? live->snapshot() : (*static_videos)[video];
  };
  for (const ViewerRequest& viewer : viewers) {
    if (viewer.arrival_seconds < 0) {
      return Status::InvalidArgument("viewer arrival_seconds must be >= 0");
    }
    if (viewer.video < 0 ||
        viewer.video >= static_cast<int>(video_count)) {
      return Status::InvalidArgument("viewer video index out of range");
    }
  }

  MetricRegistry& registry = MetricRegistry::Global();
  Counter* locality_counter =
      registry.GetCounter("server.cluster.locality_placements");
  Counter* spillover_counter =
      registry.GetCounter("server.cluster.spillovers");

  const Stopwatch host_clock;
  const CacheStats l2_before = store_->l2_stats();

  // One popularity model per catalog video, shared by every node: viewers
  // of a video teach each other where to look no matter where they were
  // placed. The event loop is single-threaded, and the model feed order is
  // fixed by the (time, seq) event order — placement never perturbs it.
  std::vector<std::unique_ptr<PopularityModel>> popularity;
  popularity.reserve(video_count);
  for (size_t v = 0; v < video_count; ++v) {
    const VideoMetadata& video = video_of(static_cast<int>(v));
    popularity.push_back(std::make_unique<PopularityModel>(
        video.tile_grid(), video.segment_duration_seconds(),
        live != nullptr ? live->final_segment_count()
                        : video.segment_count()));
  }

  // One plan cache per catalog video, shared by every node: a session's
  // planning inputs carry no node identity, so any node's viewer can reuse
  // a plan first computed anywhere in the cluster. Exact memoization keeps
  // outcomes byte-identical across node counts and with the cache off.
  std::vector<std::unique_ptr<PlanCache>> plan_caches;
  plan_caches.reserve(video_count);
  for (size_t v = 0; v < video_count; ++v) {
    plan_caches.push_back(std::make_unique<PlanCache>());
  }

  std::vector<NodeState> nodes(options_.nodes);
  for (int n = 0; n < options_.nodes; ++n) {
    nodes[n].view = store_->CreateNode(options_.l1_capacity_bytes);
    nodes[n].video_active.assign(video_count, 0);
    nodes[n].stats.node_id = n;
    if (options_.node.prefetch != PrefetchMode::kOff &&
        nodes[n].view->io_pool() != nullptr) {
      PrefetcherOptions prefetch_options = options_.node.prefetcher;
      prefetch_options.mode = options_.node.prefetch;
      nodes[n].prefetcher = std::make_unique<PredictivePrefetcher>(
          nodes[n].view.get(), prefetch_options);
    }
  }

  ClusterStats stats;
  ServerStats& totals = stats.totals;
  std::vector<std::unique_ptr<ClientSession>> sessions(viewers.size());
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::deque<int> waiting;  // cluster-wide FIFO for the admission limits
  uint64_t seq = 0;
  int total_active = 0;

  if (live != nullptr) {
    for (int s = 0; s < live->final_segment_count(); ++s) {
      events.push(
          Event{live->PublishTimeOf(s), seq++, -1, EventKind::kPublish, s});
    }
  }
  for (size_t i = 0; i < viewers.size(); ++i) {
    double at = viewers[i].arrival_seconds;
    if (live != nullptr) at = std::max(at, live->PublishTimeOf(0));
    events.push(Event{at, seq++, -1, EventKind::kArrival,
                      static_cast<int>(i)});
  }

  // Popularity-locality placement with a balance guard. Among nodes that
  // can admit the viewer *and* sit under the balance limit, pick the one
  // with the most active sessions of the viewer's video (tie: fewer active
  // sessions, then lower id). Returns -1 when no node can admit.
  auto place = [&](int viewer) -> int {
    double viewer_bps = viewers[viewer].session.network.bandwidth_bps;
    int video = viewers[viewer].video;
    int limit = total_active / options_.nodes + 1 + options_.balance_slack;
    auto better = [&](int a, int b) {  // is node a a better target than b?
      if (b < 0) return true;
      const NodeState& na = nodes[a];
      const NodeState& nb = nodes[b];
      if (na.video_active[video] != nb.video_active[video]) {
        return na.video_active[video] > nb.video_active[video];
      }
      if (na.active != nb.active) return na.active < nb.active;
      return a < b;
    };
    int preferred = -1;  // locality ideal, ignoring capacity — for counters
    int chosen = -1;
    for (int n = 0; n < options_.nodes; ++n) {
      if (better(n, preferred)) preferred = n;
      const NodeState& node = nodes[n];
      bool admissible =
          node.active < options_.node.max_concurrent_sessions &&
          (options_.node.bandwidth_budget_bps <= 0 ||
           node.admitted_bps + viewer_bps <=
               options_.node.bandwidth_budget_bps + 1e-9);
      if (admissible && node.active < limit && better(n, chosen)) chosen = n;
    }
    if (chosen < 0) return -1;
    if (nodes[chosen].video_active[video] > 0) {
      ++nodes[chosen].stats.locality_placements;
      locality_counter->Add();
    }
    if (chosen != preferred) {
      ++nodes[chosen].stats.spillovers;
      spillover_counter->Add();
    }
    return chosen;
  };

  auto admit = [&](int viewer, int node_id, double now) -> Status {
    NodeState& node = nodes[node_id];
    int video = viewers[viewer].video;
    SessionOptions session_options = viewers[viewer].session;
    session_options.fetch_cells = options_.node.fetch_cells;
    session_options.cell_source = node.view.get();
    session_options.live = live;
    if (options_.node.shared_popularity) {
      session_options.popularity = popularity[video].get();
      session_options.popularity_sink = popularity[video].get();
      session_options.popularity_coverage = options_.node.popularity_coverage;
    }
    if (options_.node.share_plans) {
      session_options.plan_cache = plan_caches[video].get();
    }
    Stopwatch node_clock;
    std::unique_ptr<ClientSession> session;
    VC_ASSIGN_OR_RETURN(
        session,
        ClientSession::Create(store_->shard(0), video_of(video),
                              viewers[viewer].trace, session_options,
                              reference));
    sessions[viewer] = std::move(session);
    ++node.active;
    ++total_active;
    ++node.video_active[video];
    ++node.stats.sessions_placed;
    node.stats.max_active_sessions =
        std::max(node.stats.max_active_sessions, node.active);
    node.admitted_bps += viewers[viewer].session.network.bandwidth_bps;
    ++totals.sessions_admitted;
    totals.max_active_sessions =
        std::max(totals.max_active_sessions, total_active);
    double deadline = std::max(now, sessions[viewer]->NextDeadline());
    events.push(Event{deadline, seq++, node_id, EventKind::kStep, viewer});
    if (node.prefetcher != nullptr) {
      node.prefetcher->EnqueueSegment(
          video_of(video), sessions[viewer]->NextPrefetchHint(),
          options_.node.shared_popularity ? popularity[video].get() : nullptr,
          deadline);
    }
    node.host_seconds += node_clock.ElapsedSeconds();
    return Status::OK();
  };

  // Which node each admitted viewer runs on, for completion bookkeeping.
  std::vector<int> placed_on(viewers.size(), -1);

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();

    if (event.node >= 0 && nodes[event.node].prefetcher != nullptr) {
      nodes[event.node].prefetcher->Pump(event.time);
    }

    if (event.kind == EventKind::kPublish) {
      VC_RETURN_IF_ERROR(live->Publish(event.viewer));
      continue;
    }

    if (event.kind == EventKind::kArrival) {
      ++totals.sessions_offered;
      double viewer_bps = viewers[event.viewer].session.network.bandwidth_bps;
      if (options_.node.bandwidth_budget_bps > 0 &&
          viewer_bps > options_.node.bandwidth_budget_bps + 1e-9) {
        // Exceeds a whole node's budget: no placement could ever admit it.
        ++totals.sessions_rejected;
        continue;
      }
      int node_id = place(event.viewer);
      if (node_id < 0) {
        waiting.push_back(event.viewer);
        ++totals.sessions_queued;
        totals.max_queue_depth = std::max(totals.max_queue_depth,
                                          static_cast<int>(waiting.size()));
        continue;
      }
      placed_on[event.viewer] = node_id;
      VC_RETURN_IF_ERROR(admit(event.viewer, node_id, event.time));
      continue;
    }

    NodeState& node = nodes[event.node];
    ClientSession* session = sessions[event.viewer].get();
    Stopwatch node_clock;
    Status stepped = session->Step(event.time);
    node.host_seconds += node_clock.ElapsedSeconds();
    VC_RETURN_IF_ERROR(stepped);
    if (!session->done()) {
      double deadline = session->NextDeadline();
      events.push(Event{deadline, seq++, event.node, EventKind::kStep,
                        event.viewer});
      if (node.prefetcher != nullptr) {
        int video = viewers[event.viewer].video;
        node.prefetcher->EnqueueSegment(
            video_of(video), session->NextPrefetchHint(),
            options_.node.shared_popularity ? popularity[video].get()
                                            : nullptr,
            deadline);
      }
      continue;
    }

    // Session completed: free its node's slot and bandwidth, then admit
    // waiters (head of line first — FIFO fairness over placement greed).
    --node.active;
    --total_active;
    --node.video_active[viewers[event.viewer].video];
    node.admitted_bps -= viewers[event.viewer].session.network.bandwidth_bps;
    ++totals.sessions_completed;
    totals.wall_seconds =
        std::max(totals.wall_seconds, session->wall_seconds());
    while (!waiting.empty()) {
      int next = waiting.front();
      int next_node = place(next);
      if (next_node < 0) break;  // head of line waits for capacity
      waiting.pop_front();
      placed_on[next] = next_node;
      VC_RETURN_IF_ERROR(admit(next, next_node, event.time));
    }
  }

  for (size_t i = 0; i < viewers.size(); ++i) {
    if (sessions[i] == nullptr) continue;  // rejected
    const SessionStats& session = sessions[i]->stats();
    totals.sessions.push_back(session);
    totals.admitted.push_back(static_cast<int>(i));
    totals.bytes_sent += session.bytes_sent;
    totals.media_seconds += session.duration_seconds;
    totals.stall_seconds += session.stall_seconds;
    totals.stall_events += session.stall_events;
    totals.transfer_faults += session.transfer_faults;
    totals.transfer_retries += session.transfer_retries;
    totals.segments_skipped += session.segments_skipped;
    nodes[placed_on[i]].stats.bytes_sent += session.bytes_sent;
  }

  if (live != nullptr) totals.live = live->stats();

  // Settle speculation, then read each node's L1 (created fresh for this
  // run, so its counters are the run's deltas) and publish per-node gauges.
  stats.nodes.reserve(nodes.size());
  for (NodeState& node : nodes) {
    if (node.prefetcher != nullptr) {
      node.prefetcher->Drain();
      node.stats.prefetch = node.prefetcher->stats();
      totals.prefetch.enqueued += node.stats.prefetch.enqueued;
      totals.prefetch.dispatched += node.stats.prefetch.dispatched;
      totals.prefetch.cancelled += node.stats.prefetch.cancelled;
      totals.prefetch.deduped += node.stats.prefetch.deduped;
      totals.prefetch.stale_skipped += node.stats.prefetch.stale_skipped;
    }
    node.stats.l1 = node.view->cache_stats();
    node.stats.host_seconds = node.host_seconds;
    totals.cache.hits += node.stats.l1.hits;
    totals.cache.misses += node.stats.l1.misses;
    totals.cache.evictions += node.stats.l1.evictions;
    totals.cache.coalesced += node.stats.l1.coalesced;
    totals.cache.rejected_oversize += node.stats.l1.rejected_oversize;
    totals.cache.admission_rejects += node.stats.l1.admission_rejects;
    totals.cache.bytes_cached += node.stats.l1.bytes_cached;
    totals.cache.prefetch_issued += node.stats.l1.prefetch_issued;
    totals.cache.prefetch_hits += node.stats.l1.prefetch_hits;
    totals.cache.prefetch_wasted += node.stats.l1.prefetch_wasted;
    std::string prefix = "server.node." + std::to_string(node.stats.node_id);
    registry.GetGauge(prefix + ".cache_hit_rate")
        ->Set(node.stats.l1.HitRate());
    registry.GetGauge(prefix + ".host_seconds")->Set(node.host_seconds);
    stats.nodes.push_back(node.stats);
  }

  const CacheStats l2_after = store_->l2_stats();
  stats.l2.hits = l2_after.hits - l2_before.hits;
  stats.l2.misses = l2_after.misses - l2_before.misses;
  stats.l2.evictions = l2_after.evictions - l2_before.evictions;
  stats.l2.coalesced = l2_after.coalesced - l2_before.coalesced;
  stats.l2.rejected_oversize =
      l2_after.rejected_oversize - l2_before.rejected_oversize;
  stats.l2.admission_rejects =
      l2_after.admission_rejects - l2_before.admission_rejects;
  stats.l2.bytes_cached = l2_after.bytes_cached;
  stats.l2.prefetch_issued =
      l2_after.prefetch_issued - l2_before.prefetch_issued;
  stats.l2.prefetch_hits = l2_after.prefetch_hits - l2_before.prefetch_hits;
  stats.l2.prefetch_wasted =
      l2_after.prefetch_wasted - l2_before.prefetch_wasted;

  for (const std::unique_ptr<PlanCache>& cache : plan_caches) {
    PlanCache::Stats plan = cache->stats();
    totals.plan.hits += plan.hits;
    totals.plan.misses += plan.misses;
  }
  registry.GetGauge("server.plan_cache_hit_rate")->Set(totals.plan.HitRate());

  totals.host_seconds = host_clock.ElapsedSeconds();
  return stats;
}

}  // namespace vc
