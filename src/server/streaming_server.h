#ifndef VC_SERVER_STREAMING_SERVER_H_
#define VC_SERVER_STREAMING_SERVER_H_

#include <memory>
#include <vector>

#include "core/session.h"
#include "predict/popularity.h"
#include "server/live_feed.h"
#include "storage/cache.h"
#include "storage/prefetcher.h"
#include "storage/storage_manager.h"

namespace vc {

/// One viewer joining a StreamingServer run: a head-movement trace, the
/// client's session configuration, and when (server wall clock) it arrives.
struct ViewerRequest {
  HeadTrace trace;
  SessionOptions session;
  double arrival_seconds = 0.0;
  /// Which catalog video the viewer streams — an index into the video list
  /// given to ClusterServer::Run. A single-video StreamingServer ignores it.
  int video = 0;
};

/// Admission and sharing policy of a streaming server.
struct ServerOptions {
  /// Sessions streaming at once; arrivals beyond this wait in FIFO order.
  int max_concurrent_sessions = 64;
  /// Aggregate client byte-rate budget (bits/second) admission control
  /// guards: admitted session bandwidths never sum over this. A viewer
  /// whose own bandwidth exceeds the whole budget is rejected outright
  /// (it could never be admitted); others wait in the queue until enough
  /// bandwidth and a slot free up. 0 disables the budget.
  double bandwidth_budget_bps = 0.0;
  /// Route every delivered cell through the storage manager's shared
  /// buffer cache (ClientSession fetch_cells). This is what makes
  /// concurrent viewers of one video share reads.
  bool fetch_cells = true;
  /// Maintain one popularity model per run, fed by every admitted
  /// session's live orientations and consulted by every kVisualCloud
  /// plan — viewers teach each other where to look.
  bool shared_popularity = true;
  double popularity_coverage = 0.8;

  /// Maintain one PlanCache per run (per video under a cluster): sessions
  /// with identical planning inputs share one computed TileQualityPlan.
  /// Exact memoization — served bytes and QoE are byte-identical with this
  /// on or off; only host time and `plan` stats move. On by default.
  bool share_plans = true;

  /// Speculative cell loading: ahead of each session's pacing deadline,
  /// its orientation prediction (and, under kPopularity, the shared
  /// popularity model) warms the storage cache on the I/O pool's
  /// low-priority lane. Requires the storage manager to have an I/O pool
  /// (StorageOptions::io_threads > 0); without one the mode silently
  /// degrades to kOff. Prefetching never changes a run's simulated
  /// outcome — served bytes, QoE, admission, and fault accounting are
  /// byte-identical with it on or off — only host wall time and cache
  /// statistics move.
  PrefetchMode prefetch = PrefetchMode::kOff;
  /// Queue/in-flight bounds of the prefetcher; `prefetcher.mode` is
  /// ignored (`prefetch` above wins).
  PrefetcherOptions prefetcher;

  Status Validate() const;
};

/// Aggregate accounting of one server run.
struct ServerStats {
  int sessions_offered = 0;    ///< Viewers presented to admission.
  int sessions_admitted = 0;   ///< Started (immediately or from the queue).
  int sessions_rejected = 0;   ///< Refused by the byte-rate budget.
  int sessions_queued = 0;     ///< Arrivals that had to wait for a slot.
  int sessions_completed = 0;
  int max_queue_depth = 0;
  int max_active_sessions = 0;

  uint64_t bytes_sent = 0;       ///< Media bytes across all sessions.
  double wall_seconds = 0.0;     ///< When the last session finished.
  /// Real (host) time Run() took — the only field that legitimately moves
  /// with io_threads / prefetch settings. Everything above is simulated.
  double host_seconds = 0.0;
  double media_seconds = 0.0;    ///< Sum of media durations streamed.
  double stall_seconds = 0.0;    ///< Sum of rebuffering time.
  int stall_events = 0;
  int transfer_faults = 0;
  int transfer_retries = 0;
  int segments_skipped = 0;

  /// Shared-cache activity attributable to this run (delta over the
  /// storage manager's counters; bytes_cached is the end-of-run value).
  /// Includes the prefetch issued/hit/wasted attribution deltas.
  CacheStats cache;
  /// Prefetch request-queue accounting (zero when prefetch is off).
  PrefetcherStats prefetch;
  /// Plan-cache accounting (zero when share_plans is off). Under a cluster
  /// this sums the per-video caches.
  PlanCache::Stats plan;

  /// Ingest-side accounting of the feed a RunLive() run served (all zero
  /// for an ordinary video-on-demand run).
  LiveFeedStats live;

  /// Per-admitted-session stats, in viewer order (rejected viewers have
  /// no entry; see `admitted` for the mapping).
  std::vector<SessionStats> sessions;
  /// Viewer indices (into the Run() request vector) of `sessions` entries.
  std::vector<int> admitted;

  /// Aggregate delivered rate over the busy period (megabits/second).
  double ServedMbps() const {
    return wall_seconds > 0
               ? static_cast<double>(bytes_sent) * 8.0 / wall_seconds / 1e6
               : 0.0;
  }
  /// Fraction of media time spent rebuffering across all sessions.
  double RebufferRatio() const {
    return media_seconds > 0 ? stall_seconds / media_seconds : 0.0;
  }
};

/// \brief A multi-viewer VisualCloud streaming server simulation.
///
/// Runs N concurrent ClientSessions over one shared StorageManager (and
/// its LRU cell cache) under a deterministic discrete-event scheduler: a
/// min-heap over session deadlines, ties broken by insertion order, so a
/// run's outcome is a pure function of its inputs — identical viewer
/// requests and seeds give bit-identical stats regardless of host timing.
/// Admission control bounds concurrency (FIFO wait queue) and aggregate
/// client bandwidth (reject), and an optional shared popularity model is
/// fed live by every session and consulted by every plan.
class StreamingServer {
 public:
  StreamingServer(StorageManager* storage, const ServerOptions& options);

  /// Streams `metadata` to every viewer in `viewers`, advancing simulated
  /// time until the last admitted session completes. `reference` is needed
  /// only when some viewer evaluates quality.
  Result<ServerStats> Run(const VideoMetadata& metadata,
                          const std::vector<ViewerRequest>& viewers,
                          const SceneGenerator* reference = nullptr);

  /// Streams a still-growing feed: the scheduler drives `feed`'s publish
  /// schedule and the viewers together, so sessions join at the live edge,
  /// discover segments as they are published, and wait (as ordinary
  /// pacing) for segments that do not exist yet. Publish events are pushed
  /// before any arrival, so at equal times the catalog grows first —
  /// making the run a pure function of the feed and cohort, byte-identical
  /// across host timing and prefetch settings. `feed` must be freshly
  /// created (nothing published).
  Result<ServerStats> RunLive(LiveFeed* feed,
                              const std::vector<ViewerRequest>& viewers,
                              const SceneGenerator* reference = nullptr);

  const ServerOptions& options() const { return options_; }

 private:
  Result<ServerStats> RunInternal(const VideoMetadata* static_metadata,
                                  LiveFeed* live,
                                  const std::vector<ViewerRequest>& viewers,
                                  const SceneGenerator* reference);

  StorageManager* storage_;
  ServerOptions options_;
};

}  // namespace vc

#endif  // VC_SERVER_STREAMING_SERVER_H_
