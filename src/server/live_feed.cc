#include "server/live_feed.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace vc {

Status LiveFeedOptions::Validate() const {
  if (start_seconds < 0) {
    return Status::InvalidArgument("LiveFeedOptions.start_seconds must be >= 0");
  }
  if (encode_seconds < 0) {
    return Status::InvalidArgument(
        "LiveFeedOptions.encode_seconds must be >= 0");
  }
  if (degraded_encode_seconds < 0) {
    return Status::InvalidArgument(
        "LiveFeedOptions.degraded_encode_seconds must be >= 0");
  }
  if (max_lag_seconds < 0) {
    return Status::InvalidArgument(
        "LiveFeedOptions.max_lag_seconds must be >= 0");
  }
  for (const auto& [segment, cost] : encode_overrides) {
    if (segment < 0 || cost < 0) {
      return Status::InvalidArgument("bad encode_overrides entry");
    }
  }
  return Status::OK();
}

LiveFeed::LiveFeed(VisualCloud* db, std::string name,
                   const SceneGenerator* scene, int frame_count,
                   std::unique_ptr<LiveIngestSession> session,
                   const LiveFeedOptions& options)
    : db_(db),
      name_(std::move(name)),
      scene_(scene),
      frame_count_(frame_count),
      frames_per_segment_(session->metadata().frames_per_segment),
      session_(std::move(session)),
      snapshot_(session_->metadata()),
      builder_(session_->metadata()) {
  const double fps = snapshot_.fps();
  total_segments_ =
      (frame_count_ + frames_per_segment_ - 1) / frames_per_segment_;
  arrival_.reserve(total_segments_);
  publish_.reserve(total_segments_);
  degraded_.reserve(total_segments_);

  // The whole schedule up front: capture finishes a segment when its last
  // frame lands; the encoder is a single pipeline stage (segment s+1 waits
  // for s); the degrade policy reacts to the *projected* lag, exactly like
  // a real ingest switching presets when its input queue grows.
  double prev_publish = 0.0;
  for (int s = 0; s < total_segments_; ++s) {
    int end_frame = std::min(frame_count_, (s + 1) * frames_per_segment_);
    double arrival = options.start_seconds + end_frame / fps;
    double encode_start = (s == 0) ? arrival : std::max(arrival, prev_publish);
    auto override_it = options.encode_overrides.find(s);
    bool overridden = override_it != options.encode_overrides.end();
    double cost = overridden ? override_it->second : options.encode_seconds;
    bool degraded = false;
    if (!overridden && options.max_lag_seconds > 0 &&
        options.degraded_encode_seconds > 0 &&
        options.degraded_encode_seconds < cost &&
        encode_start + cost - arrival > options.max_lag_seconds + 1e-12) {
      cost = options.degraded_encode_seconds;
      degraded = true;
    }
    prev_publish = encode_start + cost;
    arrival_.push_back(arrival);
    publish_.push_back(prev_publish);
    degraded_.push_back(degraded ? 1 : 0);
  }
}

Result<std::unique_ptr<LiveFeed>> LiveFeed::Create(
    VisualCloud* db, const std::string& name, const SceneGenerator& scene,
    int frame_count, const IngestOptions& ingest,
    const LiveFeedOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("live feed requires a database");
  }
  VC_RETURN_IF_ERROR(options.Validate());
  VC_RETURN_IF_ERROR(ingest.Validate());
  if (frame_count <= 0) {
    return Status::InvalidArgument("frame_count must be positive");
  }

  LiveIngestOptions live;
  live.ingest = ingest;
  live.publish_segments = true;
  std::unique_ptr<LiveIngestSession> session;
  VC_ASSIGN_OR_RETURN(
      session,
      db->StartLiveIngest(name, scene.width(), scene.height(), live));
  return std::unique_ptr<LiveFeed>(new LiveFeed(
      db, name, &scene, frame_count, std::move(session), options));
}

double LiveFeed::PublishTimeOf(int segment) const {
  segment = std::min(std::max(segment, 0), total_segments_ - 1);
  return publish_[segment];
}

double LiveFeed::ArrivalTimeOf(int segment) const {
  segment = std::min(std::max(segment, 0), total_segments_ - 1);
  return arrival_[segment];
}

double LiveFeed::LagOf(int segment) const {
  return PublishTimeOf(segment) - ArrivalTimeOf(segment);
}

bool LiveFeed::IsDegraded(int segment) const {
  segment = std::min(std::max(segment, 0), total_segments_ - 1);
  return degraded_[segment] != 0;
}

Status LiveFeed::Publish(int segment) {
  MetricRegistry& registry = MetricRegistry::Global();
  static Gauge* lag_gauge = registry.GetGauge("ingest.live_edge_lag_seconds");
  static Counter* published_counter =
      registry.GetCounter("ingest.live_segments_published");
  static Counter* degraded_counter =
      registry.GetCounter("ingest.live_degraded_segments");

  if (segment != published_) {
    return Status::InvalidArgument("live segments publish in order");
  }
  if (segment >= total_segments_) {
    return Status::InvalidArgument("live feed already complete");
  }

  int first = segment * frames_per_segment_;
  int last = std::min(frame_count_, first + frames_per_segment_);
  std::vector<Frame> frames;
  frames.reserve(last - first);
  for (int i = first; i < last; ++i) frames.push_back(scene_->FrameAt(i));
  VC_RETURN_IF_ERROR(session_->AppendFrames(frames));

  // Refresh the snapshot from the catalog itself — the round trip through
  // the committed metadata is the same read path a joining viewer takes.
  if (segment + 1 == total_segments_) {
    VC_ASSIGN_OR_RETURN(final_version_, session_->Close());
    VC_ASSIGN_OR_RETURN(snapshot_,
                        db_->storage()->GetVideoVersion(name_, final_version_));
  } else {
    VC_ASSIGN_OR_RETURN(
        snapshot_, db_->storage()->GetVideoVersion(
                       name_, session_->last_published_version()));
  }
  if (snapshot_.segment_count() != segment + 1) {
    return Status::Internal("live checkpoint segment count mismatch");
  }

  const SegmentInfo& info = snapshot_.segments[segment];
  size_t cell_base = snapshot_.CellIndex(segment, 0, 0);
  size_t cell_count = static_cast<size_t>(snapshot_.tile_count()) *
                      snapshot_.quality_count();
  std::vector<CellInfo> cells(snapshot_.cells.begin() + cell_base,
                              snapshot_.cells.begin() + cell_base + cell_count);
  builder_.AppendSegment(info, cells,
                         std::llround(publish_[segment] * 1000.0));

  ++published_;
  if (published_ == total_segments_) builder_.SetComplete(true);
  published_counter->Add();
  if (degraded_[segment] != 0) degraded_counter->Add();
  lag_gauge->Set(LagOf(segment));
  return Status::OK();
}

std::string LiveFeed::Manifest() const { return builder_.Build(); }

LiveFeedStats LiveFeed::stats() const {
  LiveFeedStats stats;
  stats.total_segments = total_segments_;
  stats.segments_published = published_;
  double lag_sum = 0.0;
  for (int s = 0; s < published_; ++s) {
    double lag = LagOf(s);
    lag_sum += lag;
    stats.max_lag_seconds = std::max(stats.max_lag_seconds, lag);
    if (degraded_[s] != 0) ++stats.degraded_segments;
  }
  if (published_ > 0) {
    stats.mean_lag_seconds = lag_sum / published_;
    stats.final_lag_seconds = LagOf(published_ - 1);
  }
  return stats;
}

}  // namespace vc
