#include "server/streaming_server.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace vc {

Status ServerOptions::Validate() const {
  if (max_concurrent_sessions < 1) {
    return Status::InvalidArgument("max_concurrent_sessions must be >= 1");
  }
  if (bandwidth_budget_bps < 0) {
    return Status::InvalidArgument("bandwidth_budget_bps must be >= 0");
  }
  if (popularity_coverage <= 0 || popularity_coverage > 1.0) {
    return Status::InvalidArgument("popularity_coverage must be in (0, 1]");
  }
  if (prefetcher.max_queue < 1) {
    return Status::InvalidArgument("prefetcher.max_queue must be >= 1");
  }
  if (prefetcher.max_inflight < 0) {
    return Status::InvalidArgument("prefetcher.max_inflight must be >= 0");
  }
  return Status::OK();
}

namespace {

enum class EventKind { kPublish, kArrival, kStep };

/// One scheduler entry. `seq` (assigned in push order) breaks time ties, so
/// the event order — and therefore the whole run — is deterministic. For
/// kPublish events, `viewer` carries the segment index instead.
struct Event {
  double time;
  uint64_t seq;
  EventKind kind;
  int viewer;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

StreamingServer::StreamingServer(StorageManager* storage,
                                 const ServerOptions& options)
    : storage_(storage), options_(options) {}

Result<ServerStats> StreamingServer::Run(
    const VideoMetadata& metadata, const std::vector<ViewerRequest>& viewers,
    const SceneGenerator* reference) {
  if (metadata.segment_count() == 0) {
    return Status::InvalidArgument("video has no segments");
  }
  return RunInternal(&metadata, nullptr, viewers, reference);
}

Result<ServerStats> StreamingServer::RunLive(
    LiveFeed* feed, const std::vector<ViewerRequest>& viewers,
    const SceneGenerator* reference) {
  if (feed == nullptr) {
    return Status::InvalidArgument("RunLive requires a live feed");
  }
  if (feed->published_segments() != 0) {
    return Status::InvalidArgument("live feed already partially published");
  }
  return RunInternal(nullptr, feed, viewers, reference);
}

Result<ServerStats> StreamingServer::RunInternal(
    const VideoMetadata* static_metadata, LiveFeed* live,
    const std::vector<ViewerRequest>& viewers,
    const SceneGenerator* reference) {
  VC_RETURN_IF_ERROR(options_.Validate());
  if (storage_ == nullptr) {
    return Status::InvalidArgument("server requires a storage manager");
  }
  // Under a live feed the catalog grows during the run: `metadata` is a
  // reference to the feed's stable-address snapshot, so every use below
  // reads the newest published state.
  const VideoMetadata& metadata =
      live != nullptr ? live->snapshot() : *static_metadata;
  for (const ViewerRequest& viewer : viewers) {
    if (viewer.arrival_seconds < 0) {
      return Status::InvalidArgument("viewer arrival_seconds must be >= 0");
    }
  }

  MetricRegistry& registry = MetricRegistry::Global();
  Gauge* active_gauge = registry.GetGauge("server.active_sessions");
  Gauge* queue_gauge = registry.GetGauge("server.queue_depth");
  Counter* admitted_counter = registry.GetCounter("server.sessions_admitted");
  Counter* rejected_counter = registry.GetCounter("server.sessions_rejected");
  Counter* completed_counter =
      registry.GetCounter("server.sessions_completed");
  Gauge* hit_rate_gauge = registry.GetGauge("server.cache_hit_rate");
  Gauge* rebuffer_gauge = registry.GetGauge("server.rebuffer_ratio");

  const Stopwatch host_clock;
  const CacheStats cache_before = storage_->cache_stats();

  // Speculative loading rides alongside the scheduler: it only warms the
  // shared cache, so the event loop below stays logically deterministic —
  // identical simulated outcomes with prefetch on or off. Without an I/O
  // pool there is nothing to overlap, so the mode degrades to off.
  std::unique_ptr<PredictivePrefetcher> prefetcher;
  if (options_.prefetch != PrefetchMode::kOff &&
      storage_->io_pool() != nullptr) {
    PrefetcherOptions prefetch_options = options_.prefetcher;
    prefetch_options.mode = options_.prefetch;
    prefetcher =
        std::make_unique<PredictivePrefetcher>(storage_, prefetch_options);
  }

  // One popularity model per run: written by every admitted session's live
  // orientation feed, read by every kVisualCloud plan. The event loop is
  // single-threaded, so sessions see each other's gaze history with no
  // locking and no ordering ambiguity.
  PopularityModel popularity(metadata.tile_grid(),
                             metadata.segment_duration_seconds(),
                             live != nullptr ? live->final_segment_count()
                                             : metadata.segment_count());

  // One plan cache per run (this server streams one video): sessions with
  // identical planning inputs flyweight one TileQualityPlan. Exact
  // memoization — only host time and `stats.plan` move when this is on.
  PlanCache plan_cache;

  ServerStats stats;
  std::vector<std::unique_ptr<ClientSession>> sessions(viewers.size());
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::deque<int> waiting;  // FIFO queue for the concurrency limit
  uint64_t seq = 0;
  int active = 0;
  double admitted_bps = 0.0;

  // Publish events first: their seqs are the lowest, so at equal times the
  // catalog grows before any viewer arrives or steps — a session blocked
  // at the live edge finds the segment it was waiting for. Arrivals before
  // the first publish are clamped to it (nothing exists to join earlier),
  // mirroring a player that holds its join until the stream goes up.
  if (live != nullptr) {
    for (int s = 0; s < live->final_segment_count(); ++s) {
      events.push(
          Event{live->PublishTimeOf(s), seq++, EventKind::kPublish, s});
    }
  }
  for (size_t i = 0; i < viewers.size(); ++i) {
    double at = viewers[i].arrival_seconds;
    if (live != nullptr) at = std::max(at, live->PublishTimeOf(0));
    events.push(Event{at, seq++, EventKind::kArrival, static_cast<int>(i)});
  }

  auto admit = [&](int viewer, double now) -> Status {
    SessionOptions session_options = viewers[viewer].session;
    session_options.fetch_cells = options_.fetch_cells;
    session_options.live = live;
    if (options_.shared_popularity) {
      session_options.popularity = &popularity;
      session_options.popularity_sink = &popularity;
      session_options.popularity_coverage = options_.popularity_coverage;
    }
    if (options_.share_plans) session_options.plan_cache = &plan_cache;
    std::unique_ptr<ClientSession> session;
    VC_ASSIGN_OR_RETURN(
        session, ClientSession::Create(storage_, metadata,
                                       viewers[viewer].trace, session_options,
                                       reference));
    sessions[viewer] = std::move(session);
    ++active;
    ++stats.sessions_admitted;
    admitted_counter->Add();
    admitted_bps += viewers[viewer].session.network.bandwidth_bps;
    stats.max_active_sessions = std::max(stats.max_active_sessions, active);
    active_gauge->Set(active);
    double deadline = std::max(now, sessions[viewer]->NextDeadline());
    events.push(Event{deadline, seq++, EventKind::kStep, viewer});
    if (prefetcher != nullptr) {
      prefetcher->EnqueueSegment(
          metadata, sessions[viewer]->NextPrefetchHint(),
          options_.shared_popularity ? &popularity : nullptr, deadline);
    }
    return Status::OK();
  };

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();

    // Advance speculation to the event's simulated time: reap finished
    // loads, cancel requests whose demand moment has arrived, dispatch the
    // best of what remains.
    if (prefetcher != nullptr) prefetcher->Pump(event.time);

    if (event.kind == EventKind::kPublish) {
      VC_RETURN_IF_ERROR(live->Publish(event.viewer));
      continue;
    }

    if (event.kind == EventKind::kArrival) {
      ++stats.sessions_offered;
      double viewer_bps = viewers[event.viewer].session.network.bandwidth_bps;
      if (options_.bandwidth_budget_bps > 0 &&
          viewer_bps > options_.bandwidth_budget_bps + 1e-9) {
        // This client alone exceeds the whole uplink budget: it could
        // never be admitted, so reject instead of queueing it forever.
        ++stats.sessions_rejected;
        rejected_counter->Add();
        continue;
      }
      if (active >= options_.max_concurrent_sessions ||
          (options_.bandwidth_budget_bps > 0 &&
           admitted_bps + viewer_bps >
               options_.bandwidth_budget_bps + 1e-9)) {
        waiting.push_back(event.viewer);
        ++stats.sessions_queued;
        stats.max_queue_depth =
            std::max(stats.max_queue_depth, static_cast<int>(waiting.size()));
        queue_gauge->Set(static_cast<double>(waiting.size()));
        continue;
      }
      VC_RETURN_IF_ERROR(admit(event.viewer, event.time));
      continue;
    }

    ClientSession* session = sessions[event.viewer].get();
    VC_RETURN_IF_ERROR(session->Step(event.time));
    if (!session->done()) {
      double deadline = session->NextDeadline();
      events.push(Event{deadline, seq++, EventKind::kStep, event.viewer});
      // The session just told us when it will want its next segment; start
      // warming the cells its predictor expects it to ask for.
      if (prefetcher != nullptr) {
        prefetcher->EnqueueSegment(
            metadata, session->NextPrefetchHint(),
            options_.shared_popularity ? &popularity : nullptr, deadline);
      }
      continue;
    }

    // Session completed: free its slot and bandwidth, admit waiters.
    --active;
    active_gauge->Set(active);
    ++stats.sessions_completed;
    completed_counter->Add();
    admitted_bps -= viewers[event.viewer].session.network.bandwidth_bps;
    stats.wall_seconds = std::max(stats.wall_seconds, session->wall_seconds());
    while (!waiting.empty() && active < options_.max_concurrent_sessions) {
      int next = waiting.front();
      double next_bps = viewers[next].session.network.bandwidth_bps;
      if (options_.bandwidth_budget_bps > 0 &&
          admitted_bps + next_bps > options_.bandwidth_budget_bps + 1e-9) {
        break;  // head of line waits for more bandwidth to free up
      }
      waiting.pop_front();
      VC_RETURN_IF_ERROR(admit(next, event.time));
    }
    queue_gauge->Set(static_cast<double>(waiting.size()));
  }

  for (size_t i = 0; i < viewers.size(); ++i) {
    if (sessions[i] == nullptr) continue;  // rejected
    const SessionStats& session = sessions[i]->stats();
    stats.sessions.push_back(session);
    stats.admitted.push_back(static_cast<int>(i));
    stats.bytes_sent += session.bytes_sent;
    stats.media_seconds += session.duration_seconds;
    stats.stall_seconds += session.stall_seconds;
    stats.stall_events += session.stall_events;
    stats.transfer_faults += session.transfer_faults;
    stats.transfer_retries += session.transfer_retries;
    stats.segments_skipped += session.segments_skipped;
  }

  if (live != nullptr) stats.live = live->stats();

  // Settle speculation before reading the cache counters, so every
  // prefetched value has been classified as hit or wasted-so-far.
  if (prefetcher != nullptr) {
    prefetcher->Drain();
    stats.prefetch = prefetcher->stats();
  }

  const CacheStats cache_after = storage_->cache_stats();
  stats.cache.hits = cache_after.hits - cache_before.hits;
  stats.cache.misses = cache_after.misses - cache_before.misses;
  stats.cache.evictions = cache_after.evictions - cache_before.evictions;
  stats.cache.coalesced = cache_after.coalesced - cache_before.coalesced;
  stats.cache.bytes_cached = cache_after.bytes_cached;
  stats.cache.prefetch_issued =
      cache_after.prefetch_issued - cache_before.prefetch_issued;
  stats.cache.prefetch_hits =
      cache_after.prefetch_hits - cache_before.prefetch_hits;
  stats.cache.prefetch_wasted =
      cache_after.prefetch_wasted - cache_before.prefetch_wasted;
  stats.cache.rejected_oversize =
      cache_after.rejected_oversize - cache_before.rejected_oversize;
  stats.cache.admission_rejects =
      cache_after.admission_rejects - cache_before.admission_rejects;

  stats.plan = plan_cache.stats();
  registry.GetGauge("server.plan_cache_hit_rate")->Set(stats.plan.HitRate());

  hit_rate_gauge->Set(stats.cache.HitRate());
  rebuffer_gauge->Set(stats.RebufferRatio());
  stats.host_seconds = host_clock.ElapsedSeconds();
  return stats;
}

}  // namespace vc
