#ifndef VC_SERVER_CLUSTER_SERVER_H_
#define VC_SERVER_CLUSTER_SERVER_H_

#include <memory>
#include <vector>

#include "server/streaming_server.h"
#include "storage/sharded_store.h"

namespace vc {

/// Topology and placement policy of a multi-node serving cluster.
struct ClusterOptions {
  /// Simulated serving nodes, each with a private L1 cache, its own
  /// admission control, and its own prefetcher.
  int nodes = 1;
  /// Per-node private L1 cache capacity.
  size_t l1_capacity_bytes = 16ull << 20;
  /// Balance guard on locality placement: a node is only eligible while its
  /// active-session count is under ceil(mean) + slack, so co-scheduling a
  /// hot scene cannot pile every viewer onto one node.
  int balance_slack = 1;
  /// Per-node admission, sharing, and prefetch settings
  /// (max_concurrent_sessions and bandwidth_budget_bps apply per node).
  ServerOptions node;

  Status Validate() const;
};

/// Accounting of one node across a cluster run.
struct ClusterNodeStats {
  int node_id = 0;
  int sessions_placed = 0;
  /// Placements that landed the session next to an active session of the
  /// same video — the L1-sharing win the balancer optimizes for.
  int locality_placements = 0;
  /// Placements diverted off the locality-preferred node (it was full or
  /// over the balance limit).
  int spillovers = 0;
  int max_active_sessions = 0;

  uint64_t bytes_sent = 0;
  /// Host time spent stepping this node's sessions (admission + segment
  /// work). The per-node share of the run's real cost: roughly flat as
  /// nodes are added is the scale-out goal.
  double host_seconds = 0.0;
  /// The node's private L1 activity during the run.
  CacheStats l1;
  /// The node's prefetch request-queue accounting.
  PrefetcherStats prefetch;
};

/// Aggregate accounting of one cluster run.
struct ClusterStats {
  /// Cluster-wide totals; `totals.cache` sums the per-node L1 deltas and
  /// `totals.host_seconds` is the whole run's host time.
  ServerStats totals;
  /// Shared-L2 activity during the run (its hits are L1 misses that were
  /// saved from a backend read).
  CacheStats l2;
  std::vector<ClusterNodeStats> nodes;

  /// Total placements diverted off their locality-preferred node.
  int spillovers() const {
    int n = 0;
    for (const ClusterNodeStats& node : nodes) n += node.spillovers;
    return n;
  }
};

/// \brief A multi-node VisualCloud serving cluster simulation.
///
/// N serving nodes share one ShardedStore: every node reads any cell
/// through its private L1 over the cluster's shared L2, with cold reads
/// routed to the cell's owning backend by consistent hash. One global
/// deterministic scheduler drives all nodes — events order by
/// (time, seq, node), with seq assigned in push order exactly as the
/// single-node server does, so a run's simulated outcome (served bytes,
/// QoE, admission and fault accounting) is a pure function of the viewer
/// cohort: byte-identical across host timing, prefetch settings, and —
/// when admission never queues — across node counts. Only host_seconds and
/// cache hit rates may move.
///
/// Sessions are placed by popularity locality: an arriving viewer goes to
/// the admissible node with the most active sessions of its video (ties to
/// the emptier node, then the lower id), bounded by the balance guard, so
/// hot scenes co-schedule and share L1s without starving the rest of the
/// cluster.
class ClusterServer {
 public:
  ClusterServer(ShardedStore* store, const ClusterOptions& options);

  /// Streams to every viewer in `viewers`; `viewers[i].video` indexes
  /// `videos`. Both vectors (and `reference`, needed only when a viewer
  /// evaluates quality) must stay alive for the duration of the call.
  Result<ClusterStats> Run(const std::vector<VideoMetadata>& videos,
                           const std::vector<ViewerRequest>& viewers,
                           const SceneGenerator* reference = nullptr);

  /// Streams a still-growing feed (single-video catalog) exactly as
  /// StreamingServer::RunLive does: publish events carry the lowest seqs
  /// (cluster-wide), so the event order — and the simulated outcome — is
  /// identical to the single-node live run and across node counts. The
  /// feed must ingest into the same store root the cluster's backends
  /// share — published cells are then readable by every node through its
  /// L1/L2 tiers, exactly as for static videos.
  Result<ClusterStats> RunLive(LiveFeed* feed,
                               const std::vector<ViewerRequest>& viewers,
                               const SceneGenerator* reference = nullptr);

  const ClusterOptions& options() const { return options_; }

 private:
  Result<ClusterStats> RunInternal(const std::vector<VideoMetadata>* videos,
                                   LiveFeed* live,
                                   const std::vector<ViewerRequest>& viewers,
                                   const SceneGenerator* reference);

  ShardedStore* store_;
  ClusterOptions options_;
};

}  // namespace vc

#endif  // VC_SERVER_CLUSTER_SERVER_H_
