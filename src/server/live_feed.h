#ifndef VC_SERVER_LIVE_FEED_H_
#define VC_SERVER_LIVE_FEED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/visualcloud.h"
#include "image/scene.h"
#include "streaming/manifest.h"

namespace vc {

/// Timing model of a simulated live capture + encode pipeline.
///
/// All values are simulated seconds on the same wall clock the server's
/// event scheduler uses. The publish schedule is a pure function of these
/// options (plus the segment layout), computed up front, so every run of
/// the same feed publishes at identical instants regardless of host speed,
/// node count, or prefetch settings — the encoding work itself happens at
/// those instants but costs only host time.
struct LiveFeedOptions {
  /// Wall-clock time capture starts (frame 0 begins at this instant).
  double start_seconds = 0.0;
  /// Simulated encode latency of one segment (full ladder).
  double encode_seconds = 0.2;
  /// Simulated encode latency under the degraded (fast) preset the ingest
  /// pipeline falls back to when it is behind. 0 disables degradation.
  /// The produced bytes do not change — the model is a speed preset whose
  /// quality cost this simulation does not render — so degraded runs stay
  /// byte-identical to healthy ones; only the timing moves.
  double degraded_encode_seconds = 0.0;
  /// Glass-to-glass budget: when the projected publish lag of a segment
  /// exceeds this, the encoder degrades (if it can). 0 = unbounded.
  double max_lag_seconds = 0.0;
  /// Fault injection: per-segment encode latency overrides (e.g. one slow
  /// segment models an encoder hiccup). Overridden segments never degrade
  /// — the override *is* their cost — but later segments see the backlog
  /// and degrade to catch back up under the budget.
  std::map<int, double> encode_overrides;

  Status Validate() const;
};

/// Ingest-side accounting of a live feed (schedule-derived lag numbers
/// cover the published prefix, so they are final once the feed completes).
struct LiveFeedStats {
  int total_segments = 0;
  int segments_published = 0;
  int degraded_segments = 0;
  double max_lag_seconds = 0.0;
  double mean_lag_seconds = 0.0;
  /// Lag of the most recently published segment — the live-edge lag.
  double final_lag_seconds = 0.0;
};

/// \brief A live 360° feed: deterministic capture/encode schedule in front
/// of a real append-only ingest.
///
/// Owns a LiveIngestSession in publish-per-segment mode. The server event
/// loop calls Publish(s) at PublishTimeOf(s); each call renders the
/// segment's frames from the scene, encodes them through the database's
/// ingest pool (full ladder, multi-rate hint reuse — the exact offline
/// path), and commits a streaming checkpoint version, so the catalog
/// `snapshot()` grows append-only under live viewers. The final segment's
/// publish also closes the session, committing the archived version: a
/// fully caught-up live catalog holds byte-identical cells to the same
/// video ingested offline.
///
/// Implements LiveAvailability for sessions joining mid-stream.
class LiveFeed : public LiveAvailability {
 public:
  /// Validates and builds the feed: opens the ingest session (the catalog
  /// entry exists but is empty until the first publish) and precomputes
  /// the publish schedule. `db` and `scene` must outlive the feed.
  static Result<std::unique_ptr<LiveFeed>> Create(
      VisualCloud* db, const std::string& name, const SceneGenerator& scene,
      int frame_count, const IngestOptions& ingest,
      const LiveFeedOptions& options);

  // LiveAvailability:
  int published_segments() const override { return published_; }
  double PublishTimeOf(int segment) const override;
  int final_segment_count() const override { return total_segments_; }
  const VideoMetadata& snapshot() const override { return snapshot_; }

  /// When the last frame of `segment` has been captured — the earliest
  /// instant its encode can start; publish lag is measured from here.
  double ArrivalTimeOf(int segment) const;
  /// Publish lag (publish − capture-complete) of `segment`.
  double LagOf(int segment) const;
  /// Whether the schedule degrades `segment`'s encode to stay in budget.
  bool IsDegraded(int segment) const;

  /// Renders, encodes, and publishes segment `segment` — which must be the
  /// next unpublished one. Called by the server at PublishTimeOf(segment);
  /// the final segment also commits the archived version.
  Status Publish(int segment);

  /// Serialized manifest of the feed so far: static body plus the `live`
  /// overlay (epoch = publishes so far, publish times, completeness).
  std::string Manifest() const;

  const std::string& name() const { return name_; }
  /// Version of the archived commit; 0 until the final publish.
  uint32_t final_version() const { return final_version_; }
  bool complete() const { return published_ == total_segments_; }
  LiveFeedStats stats() const;

 private:
  LiveFeed(VisualCloud* db, std::string name, const SceneGenerator* scene,
           int frame_count, std::unique_ptr<LiveIngestSession> session,
           const LiveFeedOptions& options);

  VisualCloud* db_;
  std::string name_;
  const SceneGenerator* scene_;
  int frame_count_;
  int frames_per_segment_;
  int total_segments_ = 0;
  std::unique_ptr<LiveIngestSession> session_;
  /// Newest committed checkpoint, re-read from the catalog after every
  /// publish. Stable address (sessions and prefetchers hold pointers to
  /// it); mutated append-only on the scheduler thread.
  VideoMetadata snapshot_;
  ManifestBuilder builder_;

  // The precomputed schedule, indexed by segment.
  std::vector<double> arrival_;
  std::vector<double> publish_;
  std::vector<uint8_t> degraded_;

  int published_ = 0;
  uint32_t final_version_ = 0;
};

}  // namespace vc

#endif  // VC_SERVER_LIVE_FEED_H_
