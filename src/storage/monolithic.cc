#include "storage/monolithic.h"

namespace vc {

namespace {

uint32_t GetU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

/// Parses length-prefixed frame records from a byte range.
Result<std::vector<EncodedFrame>> ParseFrameRecords(Slice data) {
  std::vector<EncodedFrame> frames;
  size_t pos = 0;
  while (pos < data.size()) {
    if (pos + 4 > data.size()) {
      return Status::Corruption("truncated frame length prefix");
    }
    uint32_t length = GetU32(data.data() + pos);
    pos += 4;
    if (pos + length > data.size()) {
      return Status::Corruption("truncated frame payload");
    }
    EncodedFrame frame;
    frame.payload.assign(data.data() + pos, data.data() + pos + length);
    FrameType type;
    VC_ASSIGN_OR_RETURN(type, ParseFrameType(Slice(frame.payload)));
    frame.type = type;
    frames.push_back(std::move(frame));
    pos += length;
  }
  return frames;
}

}  // namespace

Result<GopIndex> WriteMonolithicStream(Env* env, const std::string& path,
                                       const EncodedVideo& video) {
  auto bytes = video.Serialize();
  VC_RETURN_IF_ERROR(env->WriteFile(path, Slice(bytes)));

  GopIndex index;
  uint64_t offset = SequenceHeader::kSerializedSize;
  GopIndexEntry current;
  bool open = false;
  uint32_t frame_number = 0;
  for (const EncodedFrame& frame : video.frames) {
    uint64_t record_size = 4 + frame.payload.size();
    if (frame.type == FrameType::kIntra) {
      if (open) index.entries.push_back(current);
      current = GopIndexEntry{};
      current.first_frame = frame_number;
      current.byte_offset = offset;
      current.frame_count = 0;
      current.byte_length = 0;
      open = true;
    } else if (!open) {
      return Status::InvalidArgument("stream does not start with a keyframe");
    }
    current.frame_count += 1;
    current.byte_length += record_size;
    offset += record_size;
    ++frame_number;
  }
  if (open) index.entries.push_back(current);
  return index;
}

Result<FrameRangeReadResult> ReadFrameRangeIndexed(Env* env,
                                                   const std::string& path,
                                                   const GopIndex& index,
                                                   uint32_t first_frame,
                                                   uint32_t last_frame) {
  if (first_frame > last_frame) {
    return Status::InvalidArgument("inverted frame range");
  }
  // Sequence header first (small, fixed read).
  std::vector<uint8_t> header_bytes;
  VC_ASSIGN_OR_RETURN(header_bytes,
                      env->ReadFileRange(path, 0,
                                         SequenceHeader::kSerializedSize));
  FrameRangeReadResult result;
  VC_ASSIGN_OR_RETURN(result.header,
                      SequenceHeader::Parse(Slice(header_bytes)));
  result.bytes_read = header_bytes.size();

  GopIndexEntry first_gop;
  VC_ASSIGN_OR_RETURN(first_gop, index.Lookup(first_frame));
  GopIndexEntry last_gop;
  VC_ASSIGN_OR_RETURN(last_gop, index.Lookup(last_frame));

  uint64_t begin = first_gop.byte_offset;
  uint64_t end = last_gop.byte_offset + last_gop.byte_length;
  std::vector<uint8_t> media;
  VC_ASSIGN_OR_RETURN(media, env->ReadFileRange(path, begin, end - begin));
  result.bytes_read += media.size();
  VC_ASSIGN_OR_RETURN(result.frames, ParseFrameRecords(Slice(media)));
  result.first_frame = first_gop.first_frame;
  return result;
}

Result<FrameRangeReadResult> ReadFrameRangeLinear(Env* env,
                                                  const std::string& path,
                                                  uint32_t first_frame,
                                                  uint32_t last_frame) {
  if (first_frame > last_frame) {
    return Status::InvalidArgument("inverted frame range");
  }
  std::vector<uint8_t> bytes;
  VC_ASSIGN_OR_RETURN(bytes, env->ReadFile(path));
  EncodedVideo video;
  VC_ASSIGN_OR_RETURN(video, EncodedVideo::Parse(Slice(bytes)));
  if (last_frame >= video.frames.size()) {
    return Status::OutOfRange("frame range past end of stream");
  }
  FrameRangeReadResult result;
  result.header = video.header;
  result.bytes_read = bytes.size();
  // Back up to the keyframe covering first_frame.
  uint32_t start = first_frame;
  while (start > 0 && video.frames[start].type != FrameType::kIntra) --start;
  // Extend to the end of last_frame's GOP.
  uint32_t end = last_frame;
  while (end + 1 < video.frames.size() &&
         video.frames[end + 1].type != FrameType::kIntra) {
    ++end;
  }
  result.first_frame = start;
  result.frames.assign(video.frames.begin() + start,
                       video.frames.begin() + end + 1);
  return result;
}

}  // namespace vc
