#include "storage/sharded_store.h"

#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "storage/cell_key.h"

namespace vc {

namespace {

// Same metric names as StorageManager's read path: session-level
// observability should not care which topology served the read.
Counter* CellReadsCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("storage.cell_reads");
  return counter;
}
Counter* CellReadBytesCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("storage.cell_read_bytes");
  return counter;
}
Histogram* ReadSecondsHistogram() {
  static Histogram* histogram =
      MetricRegistry::Global().GetHistogram("storage.read_seconds");
  return histogram;
}
Histogram* DemandMissHistogram() {
  static Histogram* histogram =
      MetricRegistry::Global().GetHistogram("storage.demand_miss_seconds");
  return histogram;
}

}  // namespace

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const ShardedStoreOptions& options) {
  if (options.shards < 1) {
    return Status::InvalidArgument("ShardedStoreOptions.shards must be >= 1");
  }
  if (options.vnodes_per_shard < 1) {
    return Status::InvalidArgument(
        "ShardedStoreOptions.vnodes_per_shard must be >= 1");
  }
  std::vector<std::unique_ptr<StorageManager>> shards;
  shards.reserve(options.shards);
  for (int i = 0; i < options.shards; ++i) {
    StorageOptions backend = options.backend;
    // The tiers own all caching; a backend cache under them would only
    // hide L2 miss costs and distort the hit-rate breakdown.
    backend.cache_capacity_bytes = 0;
    std::unique_ptr<StorageManager> shard;
    VC_ASSIGN_OR_RETURN(shard, StorageManager::Open(backend));
    shards.push_back(std::move(shard));
  }
  return std::unique_ptr<ShardedStore>(
      new ShardedStore(options, std::move(shards)));
}

ShardedStore::ShardedStore(const ShardedStoreOptions& options,
                           std::vector<std::unique_ptr<StorageManager>> shards)
    : options_(options),
      shard_map_(options.shards, options.vnodes_per_shard),
      l2_(LruCacheOptions{options.l2_capacity_bytes,
                          options.l2_admit_on_second_touch}),
      shards_(std::move(shards)) {}

std::unique_ptr<ShardedStore::Node> ShardedStore::CreateNode(
    size_t l1_capacity_bytes) {
  return std::unique_ptr<Node>(
      new Node(this, next_node_id_++, l1_capacity_bytes));
}

ShardedStore::Node::Node(ShardedStore* store, int node_id,
                         size_t l1_capacity_bytes)
    : store_(store), node_id_(node_id), tiers_(l1_capacity_bytes, store->l2()) {}

ThreadPool* ShardedStore::Node::io_pool() const {
  return store_->shards_[0]->io_pool();
}

Result<LruCache::Value> ShardedStore::Node::ReadCell(
    const VideoMetadata& metadata, int segment, int tile, int quality) {
  CellKey cell{segment, tile, quality};
  if (!cell.InRange(metadata)) {
    return Status::InvalidArgument("cell coordinates out of range");
  }
  CellReadsCounter()->Add();
  ScopedTimer timer(ReadSecondsHistogram());
  PackedCellKey key = cell.Packed(metadata);
  StorageManager* backend = store_->shard(store_->shard_map_.ShardFor(key));
  bool was_hit = false;
  Stopwatch stopwatch;
  Result<LruCache::Value> value = tiers_.GetOrCompute(
      key,
      [backend, &metadata, segment, tile,
       quality]() -> Result<LruCache::Value> {
        return backend->CellLoader(metadata, segment, tile, quality)();
      },
      &was_hit);
  if (!was_hit) DemandMissHistogram()->Observe(stopwatch.ElapsedSeconds());
  if (value.ok()) CellReadBytesCounter()->Add((*value)->size());
  return value;
}

Result<LruCache::AsyncHandle> ShardedStore::Node::ReadCellAsync(
    const VideoMetadata& metadata, int segment, int tile, int quality,
    LoadKind kind) {
  CellKey cell{segment, tile, quality};
  if (!cell.InRange(metadata)) {
    return Status::InvalidArgument("cell coordinates out of range");
  }
  if (kind == LoadKind::kDemand) CellReadsCounter()->Add();
  PackedCellKey key = cell.Packed(metadata);
  StorageManager* backend = store_->shard(store_->shard_map_.ShardFor(key));
  // The load is dispatched on the *owning* backend's pool, so each shard's
  // cold-read concurrency is bounded by its own pool regardless of how many
  // nodes route to it.
  return tiers_.GetOrComputeAsync(
      key, backend->CellLoader(metadata, segment, tile, quality),
      backend->io_pool(), kind);
}

Status ShardedStore::Node::ReadPlannedCells(
    const VideoMetadata& metadata, int segment,
    const std::vector<int>& tile_qualities) {
  if (static_cast<int>(tile_qualities.size()) != metadata.tile_count()) {
    return Status::InvalidArgument("one quality per tile required");
  }
  // Batch-issue so cold tiles overlap across their owning shards' pools,
  // then collect in tile order (first error wins) — same contract as
  // StorageManager::ReadPlannedCells. With synchronous backends the handles
  // come back resolved and this degenerates to the sequential path.
  std::vector<LruCache::AsyncHandle> handles;
  handles.reserve(tile_qualities.size());
  for (int tile = 0; tile < metadata.tile_count(); ++tile) {
    auto handle = ReadCellAsync(metadata, segment, tile, tile_qualities[tile],
                                LoadKind::kDemand);
    if (!handle.ok()) return handle.status();
    handles.push_back(std::move(*handle));
  }
  Status first_error = Status::OK();
  for (const LruCache::AsyncHandle& handle : handles) {
    Stopwatch stopwatch;
    Result<LruCache::Value> value = handle.Wait();
    double waited = stopwatch.ElapsedSeconds();
    ReadSecondsHistogram()->Observe(waited);
    if (!handle.hit()) DemandMissHistogram()->Observe(waited);
    if (value.ok()) {
      CellReadBytesCounter()->Add((*value)->size());
    } else if (first_error.ok()) {
      first_error = value.status();
    }
  }
  return first_error;
}

}  // namespace vc
