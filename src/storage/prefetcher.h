#ifndef VC_STORAGE_PREFETCHER_H_
#define VC_STORAGE_PREFETCHER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "geometry/orientation.h"
#include "predict/popularity.h"
#include "storage/cell_key.h"
#include "storage/cell_source.h"

namespace vc {

/// What the prefetcher speculates on.
enum class PrefetchMode {
  kOff,
  /// Per-session orientation prediction: the predicted viewport's tiles at
  /// the session's high rung, every other tile at the lowest rung.
  kPredict,
  /// kPredict plus the shared popularity model's hot tiles — cross-user
  /// attention the motion predictor cannot see.
  kPopularity,
};

/// Stable flag name ("off", "predict", "popularity").
const char* PrefetchModeName(PrefetchMode mode);

/// One session's forecast of its next segment, produced by
/// `ClientSession::NextPrefetchHint()` on the scheduler thread. Carries
/// everything the prefetcher needs to turn a predicted orientation into
/// concrete (segment, tile, quality) cells without reaching back into the
/// session.
struct PrefetchHint {
  bool valid = false;
  int segment = 0;          ///< Segment the session will stream next.
  Orientation predicted;    ///< Predicted gaze at that segment's midpoint.
  double fov_yaw = 0.0;     ///< Viewport extents (radians).
  double fov_pitch = 0.0;
  double margin = 0.0;      ///< Tile-selection margin (radians).
  int high_quality = 0;     ///< Ladder rung planned for in-view tiles.
  double popularity_coverage = 0.8;
};

/// Tuning of the speculative pipeline.
struct PrefetcherOptions {
  PrefetchMode mode = PrefetchMode::kPredict;
  /// Pending (not yet dispatched) requests kept; when full, the
  /// lowest-scored request is evicted — popularity-ordered eviction.
  int max_queue = 512;
  /// Speculative loads allowed in flight on the I/O pool at once; bounds
  /// how much of the pool speculation can occupy. 0 derives 2× the pool's
  /// worker count.
  int max_inflight = 0;
  /// Churn control: a cell hinted again within this many simulated seconds
  /// of a previous accepted hint is suppressed (`deduped`), even after the
  /// first request left the queue. Sessions pacing the same segment re-hint
  /// the same cells every deadline; without a memory the queue refills with
  /// work that the next Pump cancels again. 0 disables. Never affects
  /// served bytes or outcomes — only which speculative loads are attempted.
  double dedupe_ttl_seconds = 2.0;
};

/// Accounting of one prefetcher instance (cache-level issued/hit/wasted
/// counts live in CacheStats; these cover the request queue itself).
struct PrefetcherStats {
  uint64_t enqueued = 0;    ///< Requests accepted into the queue.
  uint64_t dispatched = 0;  ///< Requests handed to the I/O pool.
  /// Requests dropped before dispatch: stale (their playback deadline
  /// passed) or evicted by a fuller queue.
  uint64_t cancelled = 0;
  /// Hints suppressed by the dedupe TTL (the cell was accepted recently).
  uint64_t deduped = 0;
  /// Hints refused at enqueue because their deadline had already passed —
  /// the next Pump would cancel them before any dispatch, so queueing them
  /// is pure churn.
  uint64_t stale_skipped = 0;

  /// Fraction of accepted requests later dropped without dispatch — the
  /// churn the dedupe TTL and stale skip exist to keep low.
  double CancellationRatio() const {
    return enqueued == 0 ? 0.0 : static_cast<double>(cancelled) / enqueued;
  }
};

/// \brief Prediction-driven cell prefetcher: VisualCloud's "do the work
/// before the viewer needs it" half, applied to storage.
///
/// The streaming server calls `EnqueueSegment` one pacing deadline ahead of
/// each session — the session's orientation predictor (and optionally the
/// shared cross-user popularity model) names the (segment, tile, quality)
/// cells the session is likely to request, and the prefetcher loads them
/// through the shared LRU cache on the I/O pool's low-priority lane. Demand
/// loads are never delayed: speculation is bounded (queue and in-flight
/// caps), runs strictly below demand priority, and coalesces with demand
/// reads through the cache's single-flight machinery.
///
/// Threading: EnqueueSegment/Pump/Drain must be called from one thread (the
/// server's scheduler thread). The loads themselves run on the storage
/// manager's I/O pool. Requests hold pointers to the caller's VideoMetadata
/// and PopularityModel, which must outlive the prefetcher.
///
/// Determinism: the prefetcher only warms the cache. It never touches the
/// predictor, the popularity model (read-only), or any session accounting,
/// so a server run's served bytes / QoE / admission outcomes are
/// byte-identical with prefetching on or off — only host wall time and
/// cache statistics change.
class PredictivePrefetcher {
 public:
  /// `storage` must outlive the prefetcher and should have an I/O pool
  /// (without one, dispatched loads run synchronously inside Pump, which
  /// still works but hides nothing). Any CellSource works: a plain
  /// StorageManager or one node of a sharded store.
  PredictivePrefetcher(CellSource* storage, const PrefetcherOptions& options);

  /// Plans speculative loads for `hint.segment` of `metadata`, due at
  /// simulated time `deadline` (the session's pacing deadline — requests
  /// still queued past it are stale and get cancelled). `popularity` may be
  /// null; it is consulted synchronously on the calling thread.
  void EnqueueSegment(const VideoMetadata& metadata, const PrefetchHint& hint,
                      const PopularityModel* popularity, double deadline);

  /// Advances the pipeline at simulated time `now`: cancels stale requests,
  /// reaps completed loads, and dispatches queued requests (highest score
  /// first) while the in-flight cap allows.
  void Pump(double now);

  /// Blocks until every dispatched load has completed and drops the
  /// remaining queue (counted as cancelled). Call before reading end-of-run
  /// cache statistics.
  void Drain();

  const PrefetcherStats& stats() const { return stats_; }
  const PrefetcherOptions& options() const { return options_; }

 private:
  struct Request {
    const VideoMetadata* metadata;
    CellKey cell;
    PackedCellKey key;  ///< cell.Packed(*metadata), computed once at Add.
    double score;       ///< Higher dispatches first; lowest is evicted.
    double deadline;    ///< Simulated time after which the request is stale.
    uint64_t seq;       ///< Tie-break: earlier requests win.
  };

  void Add(const VideoMetadata& metadata, CellKey cell, double score,
           double deadline);
  void DispatchPending();

  CellSource* storage_;
  PrefetcherOptions options_;
  int max_inflight_;
  uint64_t seq_ = 0;
  /// Latest simulated time seen by Pump; the stale skip and dedupe TTL are
  /// measured on this clock.
  double now_ = 0.0;
  std::vector<Request> queue_;
  /// Cells currently queued or in flight, to avoid duplicate requests.
  std::unordered_set<PackedCellKey, CellKeyHash> pending_;
  /// Dedupe-TTL memory: key -> simulated time its suppression expires.
  /// Purged lazily when it outgrows the queue bound.
  std::unordered_map<PackedCellKey, double, CellKeyHash> recent_;
  std::vector<std::pair<LruCache::AsyncHandle, PackedCellKey>> inflight_;
  PrefetcherStats stats_;
};

}  // namespace vc

#endif  // VC_STORAGE_PREFETCHER_H_
