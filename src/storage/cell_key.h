#ifndef VC_STORAGE_CELL_KEY_H_
#define VC_STORAGE_CELL_KEY_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "storage/metadata.h"

namespace vc {

/// \brief A cell's identity packed into one machine word.
///
/// Every cache, shard, and prefetch structure on the serving hot path keys
/// on this instead of a formatted string, so a lookup is one integer hash
/// instead of a snprintf + string hash + byte-wise compare. Layout (MSB to
/// LSB): keyspace:18 | segment:22 | tile:16 | quality:8. The keyspace is a
/// process-interned id for (video name, data directory) — data directory,
/// not version, because live checkpoints publish versions that share cell
/// files. Coordinates that overflow a field fall back to interning the full
/// coordinate string as its own keyspace, so the mapping stays exact.
using PackedCellKey = uint64_t;

inline constexpr int kPackedQualityBits = 8;
inline constexpr int kPackedTileBits = 16;
inline constexpr int kPackedSegmentBits = 22;
inline constexpr int kPackedKeyspaceBits = 18;

/// splitmix64 finalizer: full-avalanche mix so sequential packed keys
/// spread across hash-table buckets and shard rings.
inline uint64_t MixCellKey(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hash functor for PackedCellKey-keyed tables. Counts invocations in a
/// process-wide relaxed atomic so tests can assert the single-hash property
/// of the unified cache index (one hash per lookup, hit or miss).
struct CellKeyHash {
  static std::atomic<uint64_t> invocations;

  size_t operator()(PackedCellKey key) const {
    invocations.fetch_add(1, std::memory_order_relaxed);
    return static_cast<size_t>(MixCellKey(key));
  }
};

/// Interns an arbitrary identity string into the process-wide keyspace
/// registry. Returns a stable id >= 1 (0 means "not interned" in memo
/// slots). Thread-safe.
uint32_t InternCellKeyspace(const std::string& identity);

/// \brief The (segment, tile, quality) coordinates of one stored cell —
/// the unit every layer above the storage manager addresses.
///
/// Centralizes the key/path formatting that the buffer cache, the
/// prefetcher, and the query executor all need, so there is exactly one
/// definition of what identifies a cell.
struct CellKey {
  int segment = 0;
  int tile = 0;
  int quality = 0;

  bool operator==(const CellKey& o) const {
    return segment == o.segment && tile == o.tile && quality == o.quality;
  }
  bool operator<(const CellKey& o) const {
    if (segment != o.segment) return segment < o.segment;
    if (tile != o.tile) return tile < o.tile;
    return quality < o.quality;
  }

  /// True when the coordinates address a cell of `metadata`.
  bool InRange(const VideoMetadata& metadata) const {
    return segment >= 0 && segment < metadata.segment_count() && tile >= 0 &&
           tile < metadata.tile_count() && quality >= 0 &&
           quality < metadata.quality_count();
  }

  /// Flat index into `metadata.cells`.
  size_t Index(const VideoMetadata& metadata) const {
    return metadata.CellIndex(segment, tile, quality);
  }

  /// Relative file name of the cell within the video's data directory.
  std::string FileName(const VideoMetadata& metadata) const {
    return metadata.CellFileName(segment, tile, quality);
  }

  /// Packed cache/shard key. The video's keyspace id is memoized on the
  /// metadata after the first call, so the steady-state cost is three
  /// shifts and an OR.
  PackedCellKey Packed(const VideoMetadata& metadata) const;

  /// Human-readable key for logs and error messages — the storage/debug
  /// boundary; never used on the hot path.
  std::string DebugString(const VideoMetadata& metadata) const;
};

}  // namespace vc

#endif  // VC_STORAGE_CELL_KEY_H_
