#ifndef VC_STORAGE_CELL_KEY_H_
#define VC_STORAGE_CELL_KEY_H_

#include <string>

#include "storage/metadata.h"

namespace vc {

/// \brief The (segment, tile, quality) coordinates of one stored cell —
/// the unit every layer above the storage manager addresses.
///
/// Centralizes the key/path formatting that the buffer cache, the
/// prefetcher, and the query executor all need, so there is exactly one
/// definition of what identifies a cell.
struct CellKey {
  int segment = 0;
  int tile = 0;
  int quality = 0;

  bool operator==(const CellKey& o) const {
    return segment == o.segment && tile == o.tile && quality == o.quality;
  }
  bool operator<(const CellKey& o) const {
    if (segment != o.segment) return segment < o.segment;
    if (tile != o.tile) return tile < o.tile;
    return quality < o.quality;
  }

  /// True when the coordinates address a cell of `metadata`.
  bool InRange(const VideoMetadata& metadata) const {
    return segment >= 0 && segment < metadata.segment_count() && tile >= 0 &&
           tile < metadata.tile_count() && quality >= 0 &&
           quality < metadata.quality_count();
  }

  /// Flat index into `metadata.cells`.
  size_t Index(const VideoMetadata& metadata) const {
    return metadata.CellIndex(segment, tile, quality);
  }

  /// Relative file name of the cell within the video's data directory.
  std::string FileName(const VideoMetadata& metadata) const {
    return metadata.CellFileName(segment, tile, quality);
  }

  /// Buffer-cache key: a single fixed-size snprintf into a stack buffer and
  /// one std::string construction, instead of the chain of temporary
  /// concatenations the full file path needs (the path itself is only built
  /// on the cold load path). Keyed by data directory, not version, because
  /// live checkpoints publish versions that share cell files.
  std::string CacheKey(const VideoMetadata& metadata) const;
};

}  // namespace vc

#endif  // VC_STORAGE_CELL_KEY_H_
