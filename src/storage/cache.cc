#include "storage/cache.h"

#include "obs/metrics.h"

namespace vc {

namespace {

// Process-wide mirrors of the per-instance CacheStats, so session-level
// observability sees every cache in the process without plumbing handles.
Counter* HitCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter("cache.hits");
  return counter;
}
Counter* MissCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.misses");
  return counter;
}
Counter* EvictionCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.evictions");
  return counter;
}
Counter* CoalescedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.coalesced_loads");
  return counter;
}
Counter* PrefetchIssuedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("prefetch.issued");
  return counter;
}
Counter* PrefetchHitCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("prefetch.hit");
  return counter;
}
Counter* PrefetchWastedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("prefetch.wasted");
  return counter;
}
Counter* RejectedOversizeCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.rejected_oversize");
  return counter;
}
Counter* AdmissionRejectCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.l2_admission_rejects");
  return counter;
}

}  // namespace

/// Shared state of one asynchronous (or coalesced synchronous) load.
///
/// Lock order: when both are held, the cache-wide `LruCache::mu_` is
/// acquired before `mu`. Waiters never hold the cache lock while blocking
/// on `cv`.
struct LruCache::AsyncHandle::State {
  mutable std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool hit = false;              ///< Served from cache at request time.
  bool prefetch_origin = false;  ///< Load was started by a prefetch.
  bool demanded = false;         ///< A demand caller shares this load.
  Status status = Status::OK();
  Value value;
};

bool LruCache::AsyncHandle::hit() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->hit;
}

bool LruCache::AsyncHandle::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

Result<LruCache::Value> LruCache::AsyncHandle::Wait() const {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  if (!state_->status.ok()) return state_->status;
  return state_->value;
}

LruCache::LruCache(size_t capacity_bytes)
    : LruCache(LruCacheOptions{capacity_bytes}) {}

LruCache::LruCache(const LruCacheOptions& options) : options_(options) {}

LruCache::Value LruCache::Get(PackedCellKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end() || !it->second.cached) {
    ++stats_.misses;
    MissCounter()->Add();
    return nullptr;
  }
  ++stats_.hits;
  HitCounter()->Add();
  TouchLocked(&*it->second.entry);
  lru_.splice(lru_.begin(), lru_, it->second.entry);
  return it->second.entry->value;
}

void LruCache::Put(PackedCellKey key, Value value) {
  if (value == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  PutLocked(table_.try_emplace(key).first, std::move(value),
            /*prefetched=*/false);
}

Result<LruCache::Value> LruCache::GetOrCompute(PackedCellKey key,
                                               const Loader& loader,
                                               bool* was_hit,
                                               bool* consumed_prefetch) {
  if (was_hit != nullptr) *was_hit = false;
  if (consumed_prefetch != nullptr) *consumed_prefetch = false;
  std::unique_lock<std::mutex> lock(mu_);
  // One try_emplace covers every case with a single hash of the key: a hit
  // (slot cached), a coalesce (slot in flight), or a miss that makes us the
  // loader (slot freshly inserted — it doubles as the in-flight marker).
  auto it = table_.try_emplace(key).first;
  Slot& slot = it->second;
  if (slot.cached) {
    ++stats_.hits;
    HitCounter()->Add();
    bool consumed = TouchLocked(&*slot.entry);
    if (consumed_prefetch != nullptr) *consumed_prefetch = consumed;
    lru_.splice(lru_.begin(), lru_, slot.entry);
    if (was_hit != nullptr) *was_hit = true;
    return slot.entry->value;
  }
  ++stats_.misses;
  MissCounter()->Add();

  if (slot.inflight != nullptr) {
    // Someone else is already loading this key: wait for their result.
    std::shared_ptr<AsyncHandle::State> state = slot.inflight;
    ++stats_.coalesced;
    CoalescedCounter()->Add();
    {
      std::lock_guard<std::mutex> state_lock(state->mu);
      if (state->prefetch_origin && !state->demanded) {
        ++stats_.prefetch_hits;
        PrefetchHitCounter()->Add();
        if (consumed_prefetch != nullptr) *consumed_prefetch = true;
      }
      state->demanded = true;
    }
    lock.unlock();
    std::unique_lock<std::mutex> state_lock(state->mu);
    state->cv.wait(state_lock, [&state] { return state->done; });
    if (!state->status.ok()) return state->status;
    return state->value;
  }

  // We are the loader for this key.
  auto state = std::make_shared<AsyncHandle::State>();
  state->demanded = true;
  slot.inflight = state;
  lock.unlock();
  Result<Value> loaded = loader();
  Complete(key, state, loaded);
  return loaded;
}

LruCache::AsyncHandle LruCache::GetOrComputeAsync(PackedCellKey key,
                                                  Loader loader,
                                                  ThreadPool* pool,
                                                  LoadKind kind,
                                                  bool* consumed_prefetch) {
  const bool demand = kind == LoadKind::kDemand;
  if (consumed_prefetch != nullptr) *consumed_prefetch = false;
  std::unique_lock<std::mutex> lock(mu_);
  auto it = table_.try_emplace(key).first;
  Slot& slot = it->second;
  if (slot.cached) {
    if (demand) {
      ++stats_.hits;
      HitCounter()->Add();
      bool consumed = TouchLocked(&*slot.entry);
      if (consumed_prefetch != nullptr) *consumed_prefetch = consumed;
      lru_.splice(lru_.begin(), lru_, slot.entry);
    }
    auto state = std::make_shared<AsyncHandle::State>();
    state->done = true;
    state->hit = true;
    state->value = slot.entry->value;
    return AsyncHandle(std::move(state));
  }
  if (demand) {
    ++stats_.misses;
    MissCounter()->Add();
  }

  if (slot.inflight != nullptr) {
    std::shared_ptr<AsyncHandle::State> state = slot.inflight;
    if (demand) {
      ++stats_.coalesced;
      CoalescedCounter()->Add();
      std::lock_guard<std::mutex> state_lock(state->mu);
      if (state->prefetch_origin && !state->demanded) {
        ++stats_.prefetch_hits;
        PrefetchHitCounter()->Add();
        if (consumed_prefetch != nullptr) *consumed_prefetch = true;
      }
      state->demanded = true;
    }
    return AsyncHandle(std::move(state));
  }

  auto state = std::make_shared<AsyncHandle::State>();
  state->prefetch_origin = !demand;
  state->demanded = demand;
  slot.inflight = state;
  if (!demand) {
    ++stats_.prefetch_issued;
    PrefetchIssuedCounter()->Add();
  }
  lock.unlock();

  if (pool == nullptr) {
    Complete(key, state, loader());
    return AsyncHandle(std::move(state));
  }
  bool accepted = pool->Submit(
      [this, key, loader = std::move(loader), state] {
        Complete(key, state, loader());
      },
      demand ? TaskPriority::kHigh : TaskPriority::kLow);
  if (!accepted) {
    // Pool shut down: resolve the handle so no waiter hangs, cache nothing.
    Complete(key, state, Status::Aborted("I/O pool shut down"));
  }
  return AsyncHandle(std::move(state));
}

void LruCache::Complete(PackedCellKey key,
                        const std::shared_ptr<AsyncHandle::State>& state,
                        Result<Value> loaded) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find(key);
    // Only the thread that registered `state` completes this key, and
    // nothing else clears an in-flight marker, so the slot must still be
    // here holding it.
    it->second.inflight = nullptr;
    std::lock_guard<std::mutex> state_lock(state->mu);
    state->done = true;
    if (loaded.ok()) {
      state->value = *loaded;
      // A prefetched value nobody demanded yet stays tagged so its eventual
      // consumption (or eviction) is attributed to the prefetcher.
      PutLocked(it, std::move(*loaded),
                state->prefetch_origin && !state->demanded);
    } else {
      state->status = loaded.status();
      // A speculative load that failed before anyone wanted it produced
      // nothing a demand read could consume: close its attribution as
      // wasted so issued == hits + wasted still balances.
      if (state->prefetch_origin && !state->demanded) {
        ++stats_.prefetch_wasted;
        PrefetchWastedCounter()->Add();
      }
      EraseSlotIfEmptyLocked(it);
    }
  }
  state->cv.notify_all();
}

bool LruCache::TouchLocked(Entry* entry) {
  if (!entry->prefetched) return false;
  entry->prefetched = false;
  ++stats_.prefetch_hits;
  PrefetchHitCounter()->Add();
  return true;
}

void LruCache::CreditPrefetchConsumption(PackedCellKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end() || !it->second.cached) return;
  Entry& entry = *it->second.entry;
  if (!entry.prefetched) return;
  entry.prefetched = false;
  ++stats_.prefetch_hits;
  PrefetchHitCounter()->Add();
}

void LruCache::Erase(PackedCellKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end() || !it->second.cached) return;
  if (it->second.entry->prefetched) {
    ++stats_.prefetch_wasted;
    PrefetchWastedCounter()->Add();
  }
  stats_.bytes_cached -= it->second.entry->value->size();
  lru_.erase(it->second.entry);
  it->second.cached = false;
  EraseSlotIfEmptyLocked(it);
}

void LruCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& entry : lru_) {
    if (entry.prefetched) {
      ++stats_.prefetch_wasted;
      PrefetchWastedCounter()->Add();
    }
  }
  lru_.clear();
  for (auto it = table_.begin(); it != table_.end();) {
    it->second.cached = false;
    if (it->second.inflight == nullptr) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.bytes_cached = 0;
}

CacheStats LruCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LruCache::PutLocked(Table::iterator it, Value value, bool prefetched) {
  if (value == nullptr) {
    EraseSlotIfEmptyLocked(it);
    return;
  }
  Slot& slot = it->second;
  if (value->size() > options_.capacity_bytes) {
    // Too big to ever fit: refuse to cache, but loudly. Waiters still get
    // the value (Complete resolves their state before calling us).
    ++stats_.rejected_oversize;
    RejectedOversizeCounter()->Add();
    if (prefetched) {
      // The speculation can never be consumed from this cache — wasted.
      ++stats_.prefetch_wasted;
      PrefetchWastedCounter()->Add();
    }
    EraseSlotIfEmptyLocked(it);
    return;
  }
  if (slot.cached) {
    // Displacing a still-unconsumed prefetched value closes its
    // attribution: nobody demanded it before it was overwritten.
    if (slot.entry->prefetched && !prefetched) {
      ++stats_.prefetch_wasted;
      PrefetchWastedCounter()->Add();
    }
    stats_.bytes_cached -= slot.entry->value->size();
    slot.entry->value = std::move(value);
    slot.entry->prefetched = prefetched;
    stats_.bytes_cached += slot.entry->value->size();
    lru_.splice(lru_.begin(), lru_, slot.entry);
  } else {
    if (options_.admit_on_second_touch && !AdmitLocked(it->first)) {
      ++stats_.admission_rejects;
      AdmissionRejectCounter()->Add();
      if (prefetched) {
        ++stats_.prefetch_wasted;
        PrefetchWastedCounter()->Add();
      }
      EraseSlotIfEmptyLocked(it);
      return;
    }
    lru_.push_front(Entry{it->first, std::move(value), prefetched});
    slot.entry = lru_.begin();
    slot.cached = true;
    stats_.bytes_cached += lru_.front().value->size();
  }
  EvictIfNeededLocked();
}

bool LruCache::AdmitLocked(PackedCellKey key) {
  if (touch_filter_.erase(key) > 0) return true;
  if (touch_filter_.size() >= options_.touch_filter_keys) {
    touch_filter_.clear();
  }
  touch_filter_.insert(key);
  return false;
}

void LruCache::EvictIfNeededLocked() {
  while (stats_.bytes_cached > options_.capacity_bytes && !lru_.empty()) {
    const Entry& victim = lru_.back();
    if (victim.prefetched) {
      ++stats_.prefetch_wasted;
      PrefetchWastedCounter()->Add();
    }
    auto it = table_.find(victim.key);
    stats_.bytes_cached -= victim.value->size();
    lru_.pop_back();
    it->second.cached = false;
    EraseSlotIfEmptyLocked(it);
    ++stats_.evictions;
    EvictionCounter()->Add();
  }
}

void LruCache::EraseSlotIfEmptyLocked(Table::iterator it) {
  if (!it->second.cached && it->second.inflight == nullptr) {
    table_.erase(it);
  }
}

}  // namespace vc
