#include "storage/cache.h"

#include "obs/metrics.h"

namespace vc {

namespace {

// Process-wide mirrors of the per-instance CacheStats, so session-level
// observability sees every cache in the process without plumbing handles.
Counter* HitCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter("cache.hits");
  return counter;
}
Counter* MissCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.misses");
  return counter;
}
Counter* EvictionCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.evictions");
  return counter;
}
Counter* CoalescedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.coalesced_loads");
  return counter;
}

}  // namespace

LruCache::LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

LruCache::Value LruCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    MissCounter()->Add();
    return nullptr;
  }
  ++stats_.hits;
  HitCounter()->Add();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void LruCache::Put(const std::string& key, Value value) {
  if (value == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  PutLocked(key, std::move(value));
}

Result<LruCache::Value> LruCache::GetOrCompute(const std::string& key,
                                               const Loader& loader) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats_.hits;
    HitCounter()->Add();
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }
  ++stats_.misses;
  MissCounter()->Add();

  auto flight = inflight_.find(key);
  if (flight != inflight_.end()) {
    // Someone else is already loading this key: wait for their result.
    std::shared_ptr<InFlight> state = flight->second;
    ++stats_.coalesced;
    CoalescedCounter()->Add();
    state->cv.wait(lock, [&state] { return state->done; });
    if (!state->status.ok()) return state->status;
    return state->value;
  }

  // We are the loader for this key.
  auto state = std::make_shared<InFlight>();
  inflight_[key] = state;
  lock.unlock();
  Result<Value> loaded = loader();
  lock.lock();
  inflight_.erase(key);
  state->done = true;
  if (loaded.ok()) {
    state->value = *loaded;
    PutLocked(key, *loaded);
  } else {
    state->status = loaded.status();
  }
  state->cv.notify_all();
  return loaded;
}

void LruCache::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  stats_.bytes_cached -= it->second->value->size();
  lru_.erase(it->second);
  index_.erase(it);
}

void LruCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.bytes_cached = 0;
}

CacheStats LruCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LruCache::PutLocked(const std::string& key, Value value) {
  if (value == nullptr) return;
  if (value->size() > capacity_) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.bytes_cached -= it->second->value->size();
    it->second->value = std::move(value);
    stats_.bytes_cached += it->second->value->size();
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(value)});
    index_[key] = lru_.begin();
    stats_.bytes_cached += lru_.front().value->size();
  }
  EvictIfNeededLocked();
}

void LruCache::EvictIfNeededLocked() {
  while (stats_.bytes_cached > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes_cached -= victim.value->size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    EvictionCounter()->Add();
  }
}

}  // namespace vc
