#include "storage/cache.h"

#include "obs/metrics.h"

namespace vc {

namespace {

// Process-wide mirrors of the per-instance CacheStats, so session-level
// observability sees every cache in the process without plumbing handles.
Counter* HitCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter("cache.hits");
  return counter;
}
Counter* MissCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.misses");
  return counter;
}
Counter* EvictionCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.evictions");
  return counter;
}
Counter* CoalescedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.coalesced_loads");
  return counter;
}
Counter* PrefetchIssuedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("prefetch.issued");
  return counter;
}
Counter* PrefetchHitCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("prefetch.hit");
  return counter;
}
Counter* PrefetchWastedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("prefetch.wasted");
  return counter;
}
Counter* RejectedOversizeCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("cache.rejected_oversize");
  return counter;
}

}  // namespace

/// Shared state of one asynchronous (or coalesced synchronous) load.
///
/// Lock order: when both are held, the cache-wide `LruCache::mu_` is
/// acquired before `mu`. Waiters never hold the cache lock while blocking
/// on `cv`.
struct LruCache::AsyncHandle::State {
  mutable std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool hit = false;              ///< Served from cache at request time.
  bool prefetch_origin = false;  ///< Load was started by a prefetch.
  bool demanded = false;         ///< A demand caller shares this load.
  Status status = Status::OK();
  Value value;
};

bool LruCache::AsyncHandle::hit() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->hit;
}

bool LruCache::AsyncHandle::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

Result<LruCache::Value> LruCache::AsyncHandle::Wait() const {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  if (!state_->status.ok()) return state_->status;
  return state_->value;
}

LruCache::LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

LruCache::Value LruCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    MissCounter()->Add();
    return nullptr;
  }
  ++stats_.hits;
  HitCounter()->Add();
  TouchLocked(&*it->second);
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void LruCache::Put(const std::string& key, Value value) {
  if (value == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  PutLocked(key, std::move(value));
}

Result<LruCache::Value> LruCache::GetOrCompute(const std::string& key,
                                               const Loader& loader,
                                               bool* was_hit,
                                               bool* consumed_prefetch) {
  if (was_hit != nullptr) *was_hit = false;
  if (consumed_prefetch != nullptr) *consumed_prefetch = false;
  std::unique_lock<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats_.hits;
    HitCounter()->Add();
    bool consumed = TouchLocked(&*it->second);
    if (consumed_prefetch != nullptr) *consumed_prefetch = consumed;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (was_hit != nullptr) *was_hit = true;
    return it->second->value;
  }
  ++stats_.misses;
  MissCounter()->Add();

  auto flight = inflight_.find(key);
  if (flight != inflight_.end()) {
    // Someone else is already loading this key: wait for their result.
    std::shared_ptr<AsyncHandle::State> state = flight->second;
    ++stats_.coalesced;
    CoalescedCounter()->Add();
    {
      std::lock_guard<std::mutex> state_lock(state->mu);
      if (state->prefetch_origin && !state->demanded) {
        ++stats_.prefetch_hits;
        PrefetchHitCounter()->Add();
        if (consumed_prefetch != nullptr) *consumed_prefetch = true;
      }
      state->demanded = true;
    }
    lock.unlock();
    std::unique_lock<std::mutex> state_lock(state->mu);
    state->cv.wait(state_lock, [&state] { return state->done; });
    if (!state->status.ok()) return state->status;
    return state->value;
  }

  // We are the loader for this key.
  auto state = std::make_shared<AsyncHandle::State>();
  state->demanded = true;
  inflight_[key] = state;
  lock.unlock();
  Result<Value> loaded = loader();
  Complete(key, state, loaded);
  return loaded;
}

LruCache::AsyncHandle LruCache::GetOrComputeAsync(const std::string& key,
                                                  Loader loader,
                                                  ThreadPool* pool,
                                                  LoadKind kind,
                                                  bool* consumed_prefetch) {
  const bool demand = kind == LoadKind::kDemand;
  if (consumed_prefetch != nullptr) *consumed_prefetch = false;
  std::unique_lock<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (demand) {
      ++stats_.hits;
      HitCounter()->Add();
      bool consumed = TouchLocked(&*it->second);
      if (consumed_prefetch != nullptr) *consumed_prefetch = consumed;
      lru_.splice(lru_.begin(), lru_, it->second);
    }
    auto state = std::make_shared<AsyncHandle::State>();
    state->done = true;
    state->hit = true;
    state->value = it->second->value;
    return AsyncHandle(std::move(state));
  }
  if (demand) {
    ++stats_.misses;
    MissCounter()->Add();
  }

  auto flight = inflight_.find(key);
  if (flight != inflight_.end()) {
    std::shared_ptr<AsyncHandle::State> state = flight->second;
    if (demand) {
      ++stats_.coalesced;
      CoalescedCounter()->Add();
      std::lock_guard<std::mutex> state_lock(state->mu);
      if (state->prefetch_origin && !state->demanded) {
        ++stats_.prefetch_hits;
        PrefetchHitCounter()->Add();
        if (consumed_prefetch != nullptr) *consumed_prefetch = true;
      }
      state->demanded = true;
    }
    return AsyncHandle(std::move(state));
  }

  auto state = std::make_shared<AsyncHandle::State>();
  state->prefetch_origin = !demand;
  state->demanded = demand;
  inflight_[key] = state;
  if (!demand) {
    ++stats_.prefetch_issued;
    PrefetchIssuedCounter()->Add();
  }
  lock.unlock();

  if (pool == nullptr) {
    Complete(key, state, loader());
    return AsyncHandle(std::move(state));
  }
  bool accepted = pool->Submit(
      [this, key, loader = std::move(loader), state] {
        Complete(key, state, loader());
      },
      demand ? TaskPriority::kHigh : TaskPriority::kLow);
  if (!accepted) {
    // Pool shut down: resolve the handle so no waiter hangs, cache nothing.
    Complete(key, state, Status::Aborted("I/O pool shut down"));
  }
  return AsyncHandle(std::move(state));
}

void LruCache::Complete(const std::string& key,
                        const std::shared_ptr<AsyncHandle::State>& state,
                        Result<Value> loaded) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    std::lock_guard<std::mutex> state_lock(state->mu);
    state->done = true;
    if (loaded.ok()) {
      state->value = *loaded;
      // A prefetched value nobody demanded yet stays tagged so its eventual
      // consumption (or eviction) is attributed to the prefetcher.
      PutLocked(key, std::move(*loaded),
                state->prefetch_origin && !state->demanded);
    } else {
      state->status = loaded.status();
      // A speculative load that failed before anyone wanted it produced
      // nothing a demand read could consume: close its attribution as
      // wasted so issued == hits + wasted still balances.
      if (state->prefetch_origin && !state->demanded) {
        ++stats_.prefetch_wasted;
        PrefetchWastedCounter()->Add();
      }
    }
  }
  state->cv.notify_all();
}

bool LruCache::TouchLocked(Entry* entry) {
  if (!entry->prefetched) return false;
  entry->prefetched = false;
  ++stats_.prefetch_hits;
  PrefetchHitCounter()->Add();
  return true;
}

void LruCache::CreditPrefetchConsumption(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  Entry& entry = *it->second;
  if (!entry.prefetched) return;
  entry.prefetched = false;
  ++stats_.prefetch_hits;
  PrefetchHitCounter()->Add();
}

void LruCache::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  if (it->second->prefetched) {
    ++stats_.prefetch_wasted;
    PrefetchWastedCounter()->Add();
  }
  stats_.bytes_cached -= it->second->value->size();
  lru_.erase(it->second);
  index_.erase(it);
}

void LruCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& entry : lru_) {
    if (entry.prefetched) {
      ++stats_.prefetch_wasted;
      PrefetchWastedCounter()->Add();
    }
  }
  lru_.clear();
  index_.clear();
  stats_.bytes_cached = 0;
}

CacheStats LruCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LruCache::PutLocked(const std::string& key, Value value,
                         bool prefetched) {
  if (value == nullptr) return;
  if (value->size() > capacity_) {
    // Too big to ever fit: refuse to cache, but loudly. Waiters still get
    // the value (Complete resolves their state before calling us).
    ++stats_.rejected_oversize;
    RejectedOversizeCounter()->Add();
    if (prefetched) {
      // The speculation can never be consumed from this cache — wasted.
      ++stats_.prefetch_wasted;
      PrefetchWastedCounter()->Add();
    }
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Displacing a still-unconsumed prefetched value closes its
    // attribution: nobody demanded it before it was overwritten.
    if (it->second->prefetched && !prefetched) {
      ++stats_.prefetch_wasted;
      PrefetchWastedCounter()->Add();
    }
    stats_.bytes_cached -= it->second->value->size();
    it->second->value = std::move(value);
    it->second->prefetched = prefetched;
    stats_.bytes_cached += it->second->value->size();
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(value), prefetched});
    index_[key] = lru_.begin();
    stats_.bytes_cached += lru_.front().value->size();
  }
  EvictIfNeededLocked();
}

void LruCache::EvictIfNeededLocked() {
  while (stats_.bytes_cached > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    if (victim.prefetched) {
      ++stats_.prefetch_wasted;
      PrefetchWastedCounter()->Add();
    }
    stats_.bytes_cached -= victim.value->size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    EvictionCounter()->Add();
  }
}

}  // namespace vc
