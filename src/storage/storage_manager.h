#ifndef VC_STORAGE_STORAGE_MANAGER_H_
#define VC_STORAGE_STORAGE_MANAGER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"
#include "storage/cache.h"
#include "storage/cell_source.h"
#include "storage/metadata.h"

namespace vc {

/// Configuration for opening a VisualCloud store.
struct StorageOptions {
  Env* env = Env::Default();          ///< Filesystem (not owned).
  std::string root;                   ///< Store root directory.
  size_t cache_capacity_bytes = 64ull << 20;  ///< Segment cell cache.
  /// Workers in the dedicated cell-load I/O pool. 0 (the default) keeps
  /// every read synchronous on the caller's thread — the historical
  /// behaviour; > 0 enables ReadCellAsync and overlapped batch reads.
  int io_threads = 0;
  /// Simulated per-load backing-store latency (seconds): every cold cell
  /// read sleeps this long before touching the filesystem, modelling a
  /// remote object store or spinning disk behind the in-process buffer
  /// cache. Cache hits pay nothing. 0 disables; benches use this to make
  /// miss serialization measurable on any host.
  double read_latency_seconds = 0.0;
};

/// \brief VisualCloud's no-overwrite, multi-version storage manager.
///
/// Layout under `root`:
///
///     <root>/<video>/metadata.v<N>.vcmf    one per committed version
///     <root>/<video>/v<N>/s*_t*_q*.vcc     encoded cell streams
///
/// Writes are copy-on-write: committing a video always creates version
/// max+1; readers that opened version N keep seeing exactly N's files
/// (snapshot isolation by immutability). Cell reads are checksum-verified
/// and served through an LRU buffer cache at cell (≈GOP) granularity.
class StorageManager : public CellSource {
 public:
  /// Opens (creating the root directory if needed).
  static Result<std::unique_ptr<StorageManager>> Open(
      const StorageOptions& options);

  /// \brief Streaming-friendly writer for one new video version.
  ///
  /// Append segments in order, then Commit() to publish atomically. The
  /// version is invisible to readers until Commit writes the metadata file.
  class VideoWriter {
   public:
    /// Appends one segment: `cells` holds tile-major × quality-minor encoded
    /// streams (tile_count × quality_count entries).
    Status AddSegment(uint32_t frame_count,
                      const std::vector<std::vector<uint8_t>>& cells);

    /// Publishes the version; returns the assigned version number. The
    /// writer must not be used afterwards.
    Result<uint32_t> Commit();

    /// Live-ingest checkpoint: publishes the segments written so far as a
    /// new committed version (flagged `streaming`) and keeps the writer
    /// open. Successive checkpoints produce successive versions that share
    /// the same data directory — already-written cells are never copied.
    Result<uint32_t> CommitCheckpoint();

    /// The metadata accumulated so far (pre-commit: version already set).
    const VideoMetadata& metadata() const { return metadata_; }

   private:
    friend class StorageManager;
    VideoWriter(StorageManager* store, VideoMetadata metadata,
                std::string version_dir);

    StorageManager* store_;
    VideoMetadata metadata_;
    std::string version_dir_;
    bool committed_ = false;
  };

  /// Starts writing a new version of `metadata.name`. `metadata.segments`
  /// and `metadata.cells` must be empty; layout fields must validate.
  Result<std::unique_ptr<VideoWriter>> NewVideoWriter(VideoMetadata metadata);

  /// One-shot store: metadata with segments filled in, plus all cell
  /// payloads in metadata cell order. Returns the assigned version.
  Result<uint32_t> StoreVideo(VideoMetadata metadata,
                              const std::vector<std::vector<uint8_t>>& cells);

  /// Video names present in the catalog (sorted).
  Result<std::vector<std::string>> ListVideos() const;

  /// Committed versions of a video (ascending).
  Result<std::vector<uint32_t>> ListVersions(const std::string& name) const;

  /// Latest committed version's metadata.
  Result<VideoMetadata> GetVideo(const std::string& name) const;

  /// Specific version's metadata.
  Result<VideoMetadata> GetVideoVersion(const std::string& name,
                                        uint32_t version) const;

  /// Reads one encoded cell stream (checksum-verified, cached).
  Result<LruCache::Value> ReadCell(const VideoMetadata& metadata, int segment,
                                   int tile, int quality) override;

  /// Asynchronous ReadCell: validates coordinates, then hands the load to
  /// the I/O pool and returns a handle to its eventual outcome. Demand
  /// loads run on the pool's high-priority lane; kPrefetch loads run on the
  /// low lane and stay invisible to the cache's hit/miss statistics.
  /// Single-flight with every other sync/async read of the same cell. When
  /// the store was opened with `io_threads == 0` the load runs
  /// synchronously on the caller's thread and an already-resolved handle is
  /// returned.
  Result<LruCache::AsyncHandle> ReadCellAsync(
      const VideoMetadata& metadata, int segment, int tile, int quality,
      LoadKind kind = LoadKind::kDemand) override;

  /// Demand-reads one cell per tile of `segment` at the planned qualities
  /// (`tile_qualities[t]` is tile t's ladder rung). With an I/O pool the
  /// loads are issued as one batch and overlap; without one they run
  /// sequentially. Returns the first error in tile order.
  Status ReadPlannedCells(const VideoMetadata& metadata, int segment,
                          const std::vector<int>& tile_qualities) override;

  /// Removes a video and all of its versions from disk and cache.
  Status DropVideo(const std::string& name);

  /// Buffer-cache statistics.
  CacheStats cache_stats() const override { return cache_.stats(); }

  /// Drops every cached cell (statistics are preserved). Benchmarks use
  /// this to measure cold-vs-warm cache behaviour between runs.
  void ClearCache();

  Env* env() const { return options_.env; }
  const std::string& root() const { return options_.root; }
  /// The async cell-load pool, or nullptr when `io_threads == 0`.
  ThreadPool* io_pool() const override { return io_pool_.get(); }

  /// The (owning) loader that reads and checksum-verifies one cell of this
  /// store, bypassing its cache; safe to run on a pool thread after the
  /// caller returns. Sharded stores use this to route a cell to its owning
  /// backend while caching in their own tiers.
  LruCache::Loader CellLoader(const VideoMetadata& metadata, int segment,
                              int tile, int quality) const {
    return MakeCellLoader(metadata, segment, tile, quality);
  }

 private:
  explicit StorageManager(const StorageOptions& options);

  std::string VideoDir(const std::string& name) const;
  std::string MetadataPath(const std::string& name, uint32_t version) const;
  /// Builds the (owning) loader that reads and checksum-verifies one cell;
  /// safe to run on a pool thread after the caller returns.
  LruCache::Loader MakeCellLoader(const VideoMetadata& metadata, int segment,
                                  int tile, int quality) const;

  StorageOptions options_;
  LruCache cache_;
  /// Declared after cache_: destroyed (shut down and joined) first, so no
  /// in-flight loader can touch a dead cache.
  std::unique_ptr<ThreadPool> io_pool_;
  mutable std::mutex writer_mu_;  ///< serializes version assignment
};

}  // namespace vc

#endif  // VC_STORAGE_STORAGE_MANAGER_H_
