#include "storage/shard_map.h"

#include <algorithm>
#include <cstdio>

namespace vc {

uint64_t ShardMap::Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

uint64_t ShardMap::Hash(const std::string& key) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a prime
  }
  // FNV-1a mixes short strings (like the ring's "<shard>#<vnode>" labels)
  // poorly in the high bits; a splitmix64-style finalizer avalanches them
  // so the ring points spread uniformly.
  return Mix(h);
}

ShardMap::ShardMap(int shard_count, int vnodes_per_shard)
    : shard_count_(shard_count < 1 ? 1 : shard_count) {
  if (vnodes_per_shard < 1) vnodes_per_shard = 1;
  ring_.reserve(static_cast<size_t>(shard_count_) * vnodes_per_shard);
  char point[32];
  for (int shard = 0; shard < shard_count_; ++shard) {
    for (int vnode = 0; vnode < vnodes_per_shard; ++vnode) {
      std::snprintf(point, sizeof(point), "%d#%d", shard, vnode);
      ring_.emplace_back(Hash(point), shard);
    }
  }
  // Sort by position; break the (vanishingly rare) position collision by
  // shard id so the ring is identical on every node regardless of insert
  // order.
  std::sort(ring_.begin(), ring_.end());
}

int ShardMap::ShardFor(const std::string& key) const {
  if (shard_count_ == 1) return 0;
  return ShardForHash(Hash(key));
}

int ShardMap::ShardFor(uint64_t key) const {
  if (shard_count_ == 1) return 0;
  // Sequential packed keys differ only in low bits; the mix avalanches them
  // across the whole ring.
  return ShardForHash(Mix(key));
}

int ShardMap::ShardForHash(uint64_t h) const {
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, 0),
      [](const std::pair<uint64_t, int>& a, const std::pair<uint64_t, int>& b) {
        return a.first < b.first;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
  return it->second;
}

}  // namespace vc
