#ifndef VC_STORAGE_MONOLITHIC_H_
#define VC_STORAGE_MONOLITHIC_H_

#include <string>
#include <vector>

#include "codec/bitstream.h"
#include "common/env.h"
#include "container/boxes.h"

namespace vc {

/// \brief Helpers for storing a video as a single monolithic stream file
/// with an external GOP index — the layout VisualCloud uses for archived
/// content that was not ingested through the tiled pipeline, and the subject
/// of the index microbenchmark (M2): a temporal range query with the index
/// reads only the covering GOPs' byte ranges; without it, the whole file.
///
/// File layout: exactly `EncodedVideo::Serialize()` (sequence header, then
/// length-prefixed frames).

/// Writes the stream to `path` and returns the GOP index over it.
Result<GopIndex> WriteMonolithicStream(Env* env, const std::string& path,
                                       const EncodedVideo& video);

/// Result of a frame-range read: the decoder-ready frames covering the
/// request plus how many bytes were actually read from storage.
struct FrameRangeReadResult {
  SequenceHeader header;
  /// Encoded frames of every GOP overlapping the request, in coding order.
  std::vector<EncodedFrame> frames;
  /// Presentation index of frames[0].
  uint32_t first_frame = 0;
  uint64_t bytes_read = 0;
};

/// Reads frames [first_frame, last_frame] using the GOP index: seeks
/// directly to the covering GOPs.
Result<FrameRangeReadResult> ReadFrameRangeIndexed(Env* env,
                                                   const std::string& path,
                                                   const GopIndex& index,
                                                   uint32_t first_frame,
                                                   uint32_t last_frame);

/// Baseline without an index: reads and parses the entire stream, then
/// returns the same covering range.
Result<FrameRangeReadResult> ReadFrameRangeLinear(Env* env,
                                                  const std::string& path,
                                                  uint32_t first_frame,
                                                  uint32_t last_frame);

}  // namespace vc

#endif  // VC_STORAGE_MONOLITHIC_H_
