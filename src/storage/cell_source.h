#ifndef VC_STORAGE_CELL_SOURCE_H_
#define VC_STORAGE_CELL_SOURCE_H_

#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "storage/cache.h"
#include "storage/metadata.h"

namespace vc {

/// \brief Read-side interface over stored segment cells.
///
/// Sessions and the prefetcher only ever *read* cells, so this is the seam
/// between the serving layer and the storage topology: a plain
/// StorageManager satisfies it directly, and a sharded store's per-node
/// view (private L1 over a shared L2, cells routed to their owning backend
/// by consistent hash) satisfies it too — the session code cannot tell the
/// difference. Implementations are thread-safe.
class CellSource {
 public:
  virtual ~CellSource() = default;

  /// Reads one encoded cell stream (checksum-verified, cached).
  virtual Result<LruCache::Value> ReadCell(const VideoMetadata& metadata,
                                           int segment, int tile,
                                           int quality) = 0;

  /// Asynchronous ReadCell: hands the load to the I/O pool and returns a
  /// handle to its eventual outcome. kPrefetch loads run on the low lane
  /// and stay invisible to demand hit/miss statistics. Synchronous when
  /// there is no I/O pool.
  virtual Result<LruCache::AsyncHandle> ReadCellAsync(
      const VideoMetadata& metadata, int segment, int tile, int quality,
      LoadKind kind = LoadKind::kDemand) = 0;

  /// Demand-reads one cell per tile of `segment` at the planned qualities
  /// (`tile_qualities[t]` is tile t's ladder rung). Returns the first error
  /// in tile order.
  virtual Status ReadPlannedCells(const VideoMetadata& metadata, int segment,
                                  const std::vector<int>& tile_qualities) = 0;

  /// The async cell-load pool, or nullptr when every read is synchronous.
  virtual ThreadPool* io_pool() const = 0;

  /// Statistics of the cache closest to this reader (a node's private L1;
  /// the one and only cache of a plain StorageManager).
  virtual CacheStats cache_stats() const = 0;
};

}  // namespace vc

#endif  // VC_STORAGE_CELL_SOURCE_H_
