#ifndef VC_STORAGE_METADATA_H_
#define VC_STORAGE_METADATA_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "codec/quality.h"
#include "container/boxes.h"
#include "geometry/tile_grid.h"

namespace vc {

/// \brief Memo slot for a video's process-wide packed-key namespace.
///
/// Packed cell keys (storage/cell_key.h) namespace the (segment, tile,
/// quality) bit-fields by video identity. Interning the identity string
/// costs a mutex + hash-map lookup, so the resulting id is memoized here on
/// first use. The id is a pure function of (name, DataDir()), which copies
/// carry along, so copies keep the memo; do not mutate those fields after
/// cells have been read through the cache. Copy operations are defined on
/// this member class (not on VideoMetadata) so VideoMetadata stays an
/// aggregate.
class CellKeyspaceId {
 public:
  CellKeyspaceId() = default;
  CellKeyspaceId(const CellKeyspaceId& o)
      : id_(o.id_.load(std::memory_order_relaxed)) {}
  CellKeyspaceId& operator=(const CellKeyspaceId& o) {
    id_.store(o.id_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    return *this;
  }

  /// 0 = not yet interned.
  uint32_t get() const { return id_.load(std::memory_order_relaxed); }
  void set(uint32_t id) const {
    id_.store(id, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<uint32_t> id_{0};
};

/// \brief Complete description of one stored (versioned) VR video.
///
/// A video is spatiotemporally partitioned into *cells*: segment (time) ×
/// tile (space) × quality (ladder rung). Each cell is an independently
/// decodable encoded stream on disk; this metadata records the layout plus
/// the per-cell size/checksum index. Serialized as a VCMF box tree
/// (metadata.v<N>.vcmf), mirroring how VisualCloud keeps a small MP4
/// metadata file per TLF version.
struct VideoMetadata {
  std::string name;
  uint32_t version = 0;
  uint16_t width = 0;
  uint16_t height = 0;
  uint16_t fps_times_100 = 3000;
  uint16_t frames_per_segment = 30;
  uint8_t tile_rows = 1;
  uint8_t tile_cols = 1;
  bool streaming = false;  ///< Live: segment count still growing.
  /// Directory (relative to the video dir) holding the cell files. Defaults
  /// to "v<version>". Live checkpoints publish successive versions that
  /// share one data directory, so already-written cells are never copied —
  /// the "unmodified tracks are pointers, not copies" rule.
  std::string data_dir;
  SphericalMeta spherical;
  QualityLadder ladder;
  std::vector<SegmentInfo> segments;
  /// Segment-major, then tile (row-major), then quality (ladder order).
  std::vector<CellInfo> cells;
  /// Runtime-only memo of the packed-cell-key namespace; never serialized.
  CellKeyspaceId cell_keyspace;

  int tile_count() const { return tile_rows * tile_cols; }
  int quality_count() const { return static_cast<int>(ladder.size()); }
  int segment_count() const { return static_cast<int>(segments.size()); }
  double fps() const { return fps_times_100 / 100.0; }
  TileGrid tile_grid() const { return TileGrid(tile_rows, tile_cols); }
  double segment_duration_seconds() const {
    return frames_per_segment / fps();
  }

  /// Flat index into `cells` for (segment, tile, quality).
  size_t CellIndex(int segment, int tile, int quality) const {
    return (static_cast<size_t>(segment) * tile_count() + tile) *
               quality_count() +
           quality;
  }

  /// Relative file name of a cell within the data directory.
  std::string CellFileName(int segment, int tile, int quality) const;

  /// The effective data directory ("v<version>" when unset).
  std::string DataDir() const {
    return data_dir.empty() ? "v" + std::to_string(version) : data_dir;
  }

  /// Total stored bytes across all cells.
  uint64_t TotalBytes() const;

  /// Bytes of one segment at a single quality across all tiles.
  uint64_t SegmentBytesAtQuality(int segment, int quality) const;

  /// Structural validation (counts consistent, ladder non-empty, ...).
  Status Validate() const;

  /// Serializes to a VCMF byte stream.
  std::vector<uint8_t> Serialize() const;

  /// Parses a stream produced by Serialize.
  static Result<VideoMetadata> Parse(Slice data);
};

}  // namespace vc

#endif  // VC_STORAGE_METADATA_H_
