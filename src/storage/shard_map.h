#ifndef VC_STORAGE_SHARD_MAP_H_
#define VC_STORAGE_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vc {

/// \brief Consistent-hash placement of cell keys onto storage shards.
///
/// Each shard owns `vnodes_per_shard` points on a 64-bit hash ring; a key
/// belongs to the shard owning the first point at or after the key's hash
/// (wrapping). Growing from N to N+1 shards therefore remaps only the keys
/// whose ring arc the new shard's points capture — about 1/(N+1) of them —
/// instead of rehashing everything, so a scale-out mostly preserves warm L2
/// contents. The mapping is a pure function of (shard_count,
/// vnodes_per_shard, key): every node of a cluster computes the same owner
/// with no coordination, and reruns are byte-for-byte reproducible.
class ShardMap {
 public:
  explicit ShardMap(int shard_count, int vnodes_per_shard = 64);

  /// The shard owning `key`, in [0, shard_count).
  int ShardFor(const std::string& key) const;

  /// The shard owning a packed 64-bit cell key (storage/cell_key.h) — the
  /// hot-path overload: one splitmix64 mix + ring lookup, no string
  /// formatting or byte-wise hashing.
  int ShardFor(uint64_t key) const;

  int shard_count() const { return shard_count_; }

  /// Stable 64-bit FNV-1a, the ring's hash. Exposed for tests.
  static uint64_t Hash(const std::string& key);

  /// splitmix64-style finalizer used both by Hash and by the packed-key
  /// ShardFor. Exposed for tests.
  static uint64_t Mix(uint64_t x);

 private:
  /// Ring lookup for an already-mixed 64-bit position.
  int ShardForHash(uint64_t h) const;

  int shard_count_;
  /// (ring position, shard) sorted by position.
  std::vector<std::pair<uint64_t, int>> ring_;
};

}  // namespace vc

#endif  // VC_STORAGE_SHARD_MAP_H_
