#ifndef VC_STORAGE_SHARDED_STORE_H_
#define VC_STORAGE_SHARDED_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/cell_source.h"
#include "storage/shard_map.h"
#include "storage/storage_manager.h"
#include "storage/tiered_cache.h"

namespace vc {

/// Configuration for a sharded, tiered-cache store.
struct ShardedStoreOptions {
  /// Template for every shard's backend StorageManager: env, root,
  /// io_threads, and read_latency_seconds apply per shard. The backend's
  /// own cache is forcibly disabled — caching happens in the tiers.
  StorageOptions backend;
  int shards = 1;
  int vnodes_per_shard = 64;
  /// Cluster-shared L2 cache over all backends.
  size_t l2_capacity_bytes = 256ull << 20;
  /// Admit new keys into the shared L2 only on their second load (see
  /// LruCacheOptions.admit_on_second_touch). Off by default; flipping it
  /// never changes served bytes or outcomes, only which loads the L2
  /// retains.
  bool l2_admit_on_second_touch = false;
};

/// \brief Cells consistent-hashed across N storage backends under a shared
/// L2 cache, read through per-node private L1s.
///
/// This is ROADMAP item 2's storage half: every backend is a full
/// StorageManager (own I/O pool, own simulated read latency) opened on the
/// common store root, and the ShardMap deterministically assigns each cell
/// key to the one backend whose pool serves its cold reads. Serving nodes
/// (`CreateNode`) see the whole catalog through the CellSource interface:
/// reads check the node's L1, then the shared L2, then run the owning
/// backend's loader — with single-flight at both tiers, so a scene hot
/// across many nodes hits the backing store once.
class ShardedStore {
 public:
  static Result<std::unique_ptr<ShardedStore>> Open(
      const ShardedStoreOptions& options);

  /// One serving node's read view: private L1 over the store's shared L2.
  /// Create one per simulated server node; destroy before the store.
  class Node : public CellSource {
   public:
    Result<LruCache::Value> ReadCell(const VideoMetadata& metadata,
                                     int segment, int tile,
                                     int quality) override;
    Result<LruCache::AsyncHandle> ReadCellAsync(
        const VideoMetadata& metadata, int segment, int tile, int quality,
        LoadKind kind = LoadKind::kDemand) override;
    Status ReadPlannedCells(const VideoMetadata& metadata, int segment,
                            const std::vector<int>& tile_qualities) override;
    /// A representative backend pool (the prefetcher sizes its in-flight
    /// cap from it); loads are actually dispatched on the owning shard's
    /// pool per cell. Null when backends run synchronous.
    ThreadPool* io_pool() const override;
    /// This node's private L1 statistics.
    CacheStats cache_stats() const override { return tiers_.l1_stats(); }

    int node_id() const { return node_id_; }
    /// Drops the node's L1 (stats preserved).
    void ClearL1() { tiers_.ClearL1(); }

   private:
    friend class ShardedStore;
    Node(ShardedStore* store, int node_id, size_t l1_capacity_bytes);

    ShardedStore* store_;
    int node_id_;
    TieredCache tiers_;
  };

  /// Creates a serving node with a private `l1_capacity_bytes` cache.
  std::unique_ptr<Node> CreateNode(size_t l1_capacity_bytes);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  StorageManager* shard(int i) { return shards_[i].get(); }
  const ShardMap& shard_map() const { return shard_map_; }

  /// Shared-L2 statistics.
  CacheStats l2_stats() const { return l2_.stats(); }
  LruCache* l2() { return &l2_; }
  /// Drops the shared L2 (stats preserved).
  void ClearL2() { l2_.Clear(); }

  /// Catalog reads — all backends share the root, so any shard resolves
  /// them; shard 0 is the convention.
  Result<VideoMetadata> GetVideo(const std::string& name) const {
    return shards_[0]->GetVideo(name);
  }
  Result<std::vector<std::string>> ListVideos() const {
    return shards_[0]->ListVideos();
  }

 private:
  ShardedStore(const ShardedStoreOptions& options,
               std::vector<std::unique_ptr<StorageManager>> shards);

  ShardedStoreOptions options_;
  ShardMap shard_map_;
  LruCache l2_;
  std::vector<std::unique_ptr<StorageManager>> shards_;
  int next_node_id_ = 0;
};

}  // namespace vc

#endif  // VC_STORAGE_SHARDED_STORE_H_
