#include "storage/metadata.h"

#include <cstdio>

namespace vc {

namespace {

constexpr uint8_t kFlagStreaming = 0x1;

std::vector<uint8_t> PackVchd(const VideoMetadata& m) {
  std::vector<uint8_t> out;
  auto u16 = [&out](uint16_t v) {
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v & 0xff));
  };
  auto u32 = [&](uint32_t v) {
    u16(static_cast<uint16_t>(v >> 16));
    u16(static_cast<uint16_t>(v & 0xffff));
  };
  u32(m.version);
  u16(m.width);
  u16(m.height);
  u16(m.fps_times_100);
  u16(m.frames_per_segment);
  out.push_back(m.tile_rows);
  out.push_back(m.tile_cols);
  out.push_back(m.streaming ? kFlagStreaming : 0);
  return out;
}

Status UnpackVchd(const Box& box, VideoMetadata* m) {
  if (box.data.size() != 15) return Status::Corruption("vchd size mismatch");
  const uint8_t* p = box.data.data();
  auto u16 = [&p]() {
    uint16_t v = static_cast<uint16_t>((p[0] << 8) | p[1]);
    p += 2;
    return v;
  };
  auto u32 = [&]() {
    uint32_t hi = u16();
    return (hi << 16) | u16();
  };
  m->version = u32();
  m->width = u16();
  m->height = u16();
  m->fps_times_100 = u16();
  m->frames_per_segment = u16();
  m->tile_rows = *p++;
  m->tile_cols = *p++;
  m->streaming = (*p++ & kFlagStreaming) != 0;
  return Status::OK();
}

}  // namespace

std::string VideoMetadata::CellFileName(int segment, int tile,
                                        int quality) const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "s%05d_t%03d_q%02d.vcc", segment, tile,
                quality);
  return buffer;
}

uint64_t VideoMetadata::TotalBytes() const {
  uint64_t total = 0;
  for (const CellInfo& cell : cells) total += cell.byte_size;
  return total;
}

uint64_t VideoMetadata::SegmentBytesAtQuality(int segment, int quality) const {
  uint64_t total = 0;
  for (int tile = 0; tile < tile_count(); ++tile) {
    total += cells[CellIndex(segment, tile, quality)].byte_size;
  }
  return total;
}

Status VideoMetadata::Validate() const {
  if (name.empty()) return Status::InvalidArgument("video name empty");
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "video name must be alphanumeric/underscore/dash");
    }
  }
  if (width == 0 || height == 0 || width % 16 != 0 || height % 16 != 0) {
    return Status::InvalidArgument("video dimensions must be multiples of 16");
  }
  if (frames_per_segment == 0) {
    return Status::InvalidArgument("frames_per_segment must be positive");
  }
  if (tile_rows == 0 || tile_cols == 0) {
    return Status::InvalidArgument("tile grid must be at least 1x1");
  }
  if (ladder.empty()) {
    return Status::InvalidArgument("quality ladder empty");
  }
  if (segments.empty()) {
    return Status::InvalidArgument("video has no segments");
  }
  size_t expected =
      static_cast<size_t>(segment_count()) * tile_count() * quality_count();
  if (cells.size() != expected) {
    return Status::InvalidArgument("cell index size mismatch: have " +
                                   std::to_string(cells.size()) + ", want " +
                                   std::to_string(expected));
  }
  uint32_t frame = 0;
  for (const SegmentInfo& s : segments) {
    if (s.start_frame != frame || s.frame_count == 0) {
      return Status::InvalidArgument("segments not contiguous from frame 0");
    }
    frame += s.frame_count;
  }
  return Status::OK();
}

std::vector<uint8_t> VideoMetadata::Serialize() const {
  Box root(kBoxVcmf);
  root.children.push_back(StringToBox(kBoxName, name));
  root.children.push_back(StringToBox(kBoxDref, DataDir()));
  root.children.push_back(Box(kBoxVchd, PackVchd(*this)));
  root.children.push_back(spherical.ToBox());
  root.children.push_back(QualityLadderToBox(ladder));
  root.children.push_back(SegmentIndexToBox(segments));
  root.children.push_back(CellIndexToBox(cells));
  return SerializeBoxes({root});
}

Result<VideoMetadata> VideoMetadata::Parse(Slice data) {
  std::vector<Box> boxes;
  VC_ASSIGN_OR_RETURN(boxes, ParseBoxes(data));
  if (boxes.size() != 1 || boxes[0].type != kBoxVcmf) {
    return Status::Corruption("metadata is not a single vcmf box");
  }
  const Box& root = boxes[0];
  VideoMetadata m;

  const Box* box;
  VC_ASSIGN_OR_RETURN(box, root.FindChild(kBoxName));
  VC_ASSIGN_OR_RETURN(m.name, StringFromBox(*box));
  VC_ASSIGN_OR_RETURN(box, root.FindChild(kBoxDref));
  VC_ASSIGN_OR_RETURN(m.data_dir, StringFromBox(*box));
  VC_ASSIGN_OR_RETURN(box, root.FindChild(kBoxVchd));
  VC_RETURN_IF_ERROR(UnpackVchd(*box, &m));
  VC_ASSIGN_OR_RETURN(box, root.FindChild(kBoxSv3d));
  VC_ASSIGN_OR_RETURN(m.spherical, SphericalMeta::FromBox(*box));
  VC_ASSIGN_OR_RETURN(box, root.FindChild(kBoxQlad));
  VC_ASSIGN_OR_RETURN(m.ladder, QualityLadderFromBox(*box));
  VC_ASSIGN_OR_RETURN(box, root.FindChild(kBoxSgix));
  VC_ASSIGN_OR_RETURN(m.segments, SegmentIndexFromBox(*box));
  VC_ASSIGN_OR_RETURN(box, root.FindChild(kBoxCidx));
  VC_ASSIGN_OR_RETURN(m.cells, CellIndexFromBox(*box));

  VC_RETURN_IF_ERROR(m.Validate());
  return m;
}

}  // namespace vc
