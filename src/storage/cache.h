#ifndef VC_STORAGE_CACHE_H_
#define VC_STORAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace vc {

/// Hit/miss/eviction counters for a cache instance.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_cached = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Byte-bounded LRU cache from string keys to immutable byte buffers.
///
/// This is VisualCloud's buffer pool: the storage manager caches encoded
/// segment cells at GOP granularity, which captures the temporal locality of
/// streaming sessions (clients re-request neighbouring qualities and replay
/// ranges). Thread-safe.
class LruCache {
 public:
  using Value = std::shared_ptr<const std::vector<uint8_t>>;

  /// `capacity_bytes` of zero disables caching entirely.
  explicit LruCache(size_t capacity_bytes);

  /// Returns the cached value or nullptr, updating recency and stats.
  Value Get(const std::string& key);

  /// Inserts (or replaces) a value, evicting LRU entries over capacity.
  /// Values larger than the whole capacity are not cached.
  void Put(const std::string& key, Value value);

  /// Removes one key if present.
  void Erase(const std::string& key);

  /// Drops everything (stats are preserved).
  void Clear();

  CacheStats stats() const;
  size_t capacity_bytes() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    Value value;
  };

  void EvictIfNeededLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace vc

#endif  // VC_STORAGE_CACHE_H_
