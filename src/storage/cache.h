#ifndef VC_STORAGE_CACHE_H_
#define VC_STORAGE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace vc {

/// Hit/miss/eviction counters for a cache instance.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_cached = 0;
  /// GetOrCompute callers that found another caller already loading the
  /// same key and waited for its result instead of loading again.
  uint64_t coalesced = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Byte-bounded LRU cache from string keys to immutable byte buffers.
///
/// This is VisualCloud's buffer pool: the storage manager caches encoded
/// segment cells at GOP granularity, which captures the temporal locality of
/// streaming sessions (clients re-request neighbouring qualities and replay
/// ranges). Thread-safe.
class LruCache {
 public:
  using Value = std::shared_ptr<const std::vector<uint8_t>>;
  using Loader = std::function<Result<Value>()>;

  /// `capacity_bytes` of zero disables caching entirely.
  explicit LruCache(size_t capacity_bytes);

  /// Returns the cached value or nullptr, updating recency and stats.
  Value Get(const std::string& key);

  /// Inserts (or replaces) a value, evicting LRU entries over capacity.
  /// Values larger than the whole capacity are not cached.
  void Put(const std::string& key, Value value);

  /// Returns the cached value for `key`, or runs `loader` to produce (and
  /// cache) it. Single-flight: when several threads miss on the same key
  /// concurrently, exactly one runs the loader — the rest block and share
  /// its outcome (value or error), so a popular segment cell is read from
  /// the backing store once, not once per waiting session. The loader runs
  /// without the cache lock held; loading the same key recursively from
  /// inside a loader deadlocks. Errors are not cached — the next caller
  /// retries the load.
  Result<Value> GetOrCompute(const std::string& key, const Loader& loader);

  /// Removes one key if present.
  void Erase(const std::string& key);

  /// Drops everything (stats are preserved).
  void Clear();

  CacheStats stats() const;
  size_t capacity_bytes() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    Value value;
  };

  /// One in-progress GetOrCompute load; waiters block on `cv`.
  struct InFlight {
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    Value value;
  };

  void PutLocked(const std::string& key, Value value);
  void EvictIfNeededLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  CacheStats stats_;
};

}  // namespace vc

#endif  // VC_STORAGE_CACHE_H_
