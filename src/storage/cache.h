#ifndef VC_STORAGE_CACHE_H_
#define VC_STORAGE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"

namespace vc {

/// Why a load was requested. Demand loads update hit/miss statistics and run
/// on the I/O pool's high-priority lane; prefetch loads are speculative —
/// they leave the demand-facing statistics untouched and run on the low
/// lane so they can never delay a session.
enum class LoadKind { kDemand, kPrefetch };

/// Hit/miss/eviction counters for a cache instance.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_cached = 0;
  /// GetOrCompute callers that found another caller already loading the
  /// same key and waited for its result instead of loading again.
  uint64_t coalesced = 0;

  /// Values larger than the whole cache that PutLocked refused to admit.
  /// The value is still delivered to every waiter — only caching is
  /// skipped — so a demand path that keeps re-loading the same oversized
  /// cell shows up here instead of thrashing invisibly.
  uint64_t rejected_oversize = 0;

  /// Speculative loads actually dispatched (not already cached/in flight).
  uint64_t prefetch_issued = 0;
  /// Prefetched values later consumed by a demand read — including demand
  /// reads that coalesced with a still-running prefetch load, and tier
  /// promotions credited via CreditPrefetchConsumption.
  uint64_t prefetch_hits = 0;
  /// Prefetched values that never served a demand read: evicted, erased,
  /// dropped by Clear, displaced by a later Put, rejected as oversize, or
  /// failed to load. Every issued prefetch eventually lands in exactly one
  /// of hits/wasted (or is still cached/in flight), so
  ///   prefetch_issued == prefetch_hits + prefetch_wasted
  /// holds once the cache is drained and cleared.
  uint64_t prefetch_wasted = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Byte-bounded LRU cache from string keys to immutable byte buffers.
///
/// This is VisualCloud's buffer pool: the storage manager caches encoded
/// segment cells at GOP granularity, which captures the temporal locality of
/// streaming sessions (clients re-request neighbouring qualities and replay
/// ranges). Thread-safe.
class LruCache {
 public:
  using Value = std::shared_ptr<const std::vector<uint8_t>>;
  using Loader = std::function<Result<Value>()>;

  /// One pending or resolved asynchronous load (see GetOrComputeAsync).
  /// Copyable handle over shared state; default-constructed handles are
  /// invalid. Wait() may be called from any thread, any number of times.
  class AsyncHandle {
   public:
    AsyncHandle() = default;

    bool valid() const { return state_ != nullptr; }
    /// True when the value was already cached at request time (no load was
    /// dispatched; Wait() returns without blocking).
    bool hit() const;
    /// True once the load has completed (value or error); Wait() will not
    /// block.
    bool ready() const;
    /// Blocks until the load completes and returns its outcome. Requires
    /// valid().
    Result<Value> Wait() const;

   private:
    friend class LruCache;
    struct State;
    explicit AsyncHandle(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  /// `capacity_bytes` of zero disables caching entirely.
  explicit LruCache(size_t capacity_bytes);

  /// Returns the cached value or nullptr, updating recency and stats.
  Value Get(const std::string& key);

  /// Inserts (or replaces) a value, evicting LRU entries over capacity.
  /// Values larger than the whole capacity are not cached (counted in
  /// `rejected_oversize`).
  void Put(const std::string& key, Value value);

  /// Returns the cached value for `key`, or runs `loader` to produce (and
  /// cache) it. Single-flight: when several threads miss on the same key
  /// concurrently, exactly one runs the loader — the rest block and share
  /// its outcome (value or error), so a popular segment cell is read from
  /// the backing store once, not once per waiting session. The loader runs
  /// without the cache lock held; loading the same key recursively from
  /// inside a loader deadlocks. Errors are not cached — the next caller
  /// retries the load. Also coalesces with loads started by
  /// GetOrComputeAsync. When `was_hit` is non-null it is set to whether the
  /// value was served from cache without waiting on any load. When
  /// `consumed_prefetch` is non-null it is set to whether this call was the
  /// first demand touch of a prefetched value (tiered callers use this to
  /// credit the copy in the other tier via CreditPrefetchConsumption).
  Result<Value> GetOrCompute(const std::string& key, const Loader& loader,
                             bool* was_hit = nullptr,
                             bool* consumed_prefetch = nullptr);

  /// Asynchronous GetOrCompute: the load is dispatched to `pool` (demand
  /// loads on the high-priority lane, prefetch loads on the low lane) and a
  /// handle to its eventual outcome is returned immediately. Single-flight
  /// is shared with GetOrCompute: concurrent sync and async requests for
  /// one key run a single loader. If the pool refuses the task (shutdown),
  /// the handle resolves to an Aborted error and nothing is cached; a null
  /// `pool` runs the loader synchronously on the calling thread and returns
  /// an already-resolved handle. `kind` selects statistics: kPrefetch loads
  /// never touch hit/miss counters and tag the cached value so later demand
  /// consumption (or eviction without it) is attributed to prefetching.
  /// `consumed_prefetch` is as in GetOrCompute (only a demand `kind` ever
  /// sets it).
  AsyncHandle GetOrComputeAsync(const std::string& key, Loader loader,
                                ThreadPool* pool, LoadKind kind,
                                bool* consumed_prefetch = nullptr);

  /// Tier-promotion credit: a demand read consumed `key`'s copy held by
  /// another cache tier (e.g. a node's private L1 over this shared L2). If
  /// this cache still holds `key` tagged as prefetched, the tag is cleared
  /// and the prefetch counted as a hit — the speculation paid off
  /// downstream, so its eventual eviction here must not be double-counted
  /// as wasted. Recency and the demand hit/miss counters are untouched.
  /// No-op when the key is absent or already consumed.
  void CreditPrefetchConsumption(const std::string& key);

  /// Removes one key if present.
  void Erase(const std::string& key);

  /// Drops everything (stats are preserved).
  void Clear();

  CacheStats stats() const;
  size_t capacity_bytes() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    Value value;
    /// Inserted by a prefetch load and not yet touched by any demand read.
    bool prefetched = false;
  };

  /// Resolves `state` with the loader's outcome: removes the in-flight
  /// entry, caches success, and wakes every waiter.
  void Complete(const std::string& key,
                const std::shared_ptr<AsyncHandle::State>& state,
                Result<Value> loaded);
  /// Marks a demand touch of `entry`, crediting the prefetcher when it was
  /// the one that brought the value in. Returns whether this touch consumed
  /// a prefetched value (cleared its tag).
  bool TouchLocked(Entry* entry);

  void PutLocked(const std::string& key, Value value, bool prefetched = false);
  void EvictIfNeededLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::unordered_map<std::string, std::shared_ptr<AsyncHandle::State>>
      inflight_;
  CacheStats stats_;
};

}  // namespace vc

#endif  // VC_STORAGE_CACHE_H_
