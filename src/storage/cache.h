#ifndef VC_STORAGE_CACHE_H_
#define VC_STORAGE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "storage/cell_key.h"

namespace vc {

/// Why a load was requested. Demand loads update hit/miss statistics and run
/// on the I/O pool's high-priority lane; prefetch loads are speculative —
/// they leave the demand-facing statistics untouched and run on the low
/// lane so they can never delay a session.
enum class LoadKind { kDemand, kPrefetch };

/// Hit/miss/eviction counters for a cache instance.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_cached = 0;
  /// GetOrCompute callers that found another caller already loading the
  /// same key and waited for its result instead of loading again.
  uint64_t coalesced = 0;

  /// Values larger than the whole cache that PutLocked refused to admit.
  /// The value is still delivered to every waiter — only caching is
  /// skipped — so a demand path that keeps re-loading the same oversized
  /// cell shows up here instead of thrashing invisibly.
  uint64_t rejected_oversize = 0;

  /// New values the admit-on-second-touch policy refused to cache (first
  /// touch goes into the filter, not the cache). Zero unless the policy is
  /// enabled. The value is still delivered to every waiter.
  uint64_t admission_rejects = 0;

  /// Speculative loads actually dispatched (not already cached/in flight).
  uint64_t prefetch_issued = 0;
  /// Prefetched values later consumed by a demand read — including demand
  /// reads that coalesced with a still-running prefetch load, and tier
  /// promotions credited via CreditPrefetchConsumption.
  uint64_t prefetch_hits = 0;
  /// Prefetched values that never served a demand read: evicted, erased,
  /// dropped by Clear, displaced by a later Put, rejected as oversize or by
  /// admission, or failed to load. Every issued prefetch eventually lands
  /// in exactly one of hits/wasted (or is still cached/in flight), so
  ///   prefetch_issued == prefetch_hits + prefetch_wasted
  /// holds once the cache is drained and cleared.
  uint64_t prefetch_wasted = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Construction options for LruCache.
struct LruCacheOptions {
  /// Zero disables caching entirely.
  size_t capacity_bytes = 0;
  /// Admit a *new* key only on its second load within the filter's memory:
  /// the first load parks the key in a small touch filter and the value is
  /// delivered but not cached; a later load of the same key admits it.
  /// Filters one-touch-wonder scans out of a shared tier (the classic L2
  /// problem: 10k viewers each touching a cold tail cell once would churn
  /// the whole tier). Replacements of already-cached keys always proceed.
  bool admit_on_second_touch = false;
  /// Touch-filter capacity in keys; when full it is cleared wholesale (a
  /// deterministic, allocation-stable approximation of aging out).
  size_t touch_filter_keys = 4096;
};

/// \brief Byte-bounded LRU cache from packed 64-bit cell keys to immutable
/// byte buffers.
///
/// This is VisualCloud's buffer pool: the storage manager caches encoded
/// segment cells at GOP granularity, which captures the temporal locality of
/// streaming sessions (clients re-request neighbouring qualities and replay
/// ranges). Keys are PackedCellKey (storage/cell_key.h); one unified slot
/// table holds both the cached entry and any in-flight load for a key, so
/// every lookup — hit, coalesce, or miss-become-loader — hashes exactly
/// once. Thread-safe.
class LruCache {
 public:
  using Value = std::shared_ptr<const std::vector<uint8_t>>;
  using Loader = std::function<Result<Value>()>;

  /// One pending or resolved asynchronous load (see GetOrComputeAsync).
  /// Copyable handle over shared state; default-constructed handles are
  /// invalid. Wait() may be called from any thread, any number of times.
  class AsyncHandle {
   public:
    AsyncHandle() = default;

    bool valid() const { return state_ != nullptr; }
    /// True when the value was already cached at request time (no load was
    /// dispatched; Wait() returns without blocking).
    bool hit() const;
    /// True once the load has completed (value or error); Wait() will not
    /// block.
    bool ready() const;
    /// Blocks until the load completes and returns its outcome. Requires
    /// valid().
    Result<Value> Wait() const;

   private:
    friend class LruCache;
    struct State;
    explicit AsyncHandle(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  /// `capacity_bytes` of zero disables caching entirely.
  explicit LruCache(size_t capacity_bytes);
  explicit LruCache(const LruCacheOptions& options);

  /// Returns the cached value or nullptr, updating recency and stats.
  Value Get(PackedCellKey key);

  /// Inserts (or replaces) a value, evicting LRU entries over capacity.
  /// Values larger than the whole capacity are not cached (counted in
  /// `rejected_oversize`).
  void Put(PackedCellKey key, Value value);

  /// Returns the cached value for `key`, or runs `loader` to produce (and
  /// cache) it. Single-flight: when several threads miss on the same key
  /// concurrently, exactly one runs the loader — the rest block and share
  /// its outcome (value or error), so a popular segment cell is read from
  /// the backing store once, not once per waiting session. The loader runs
  /// without the cache lock held; loading the same key recursively from
  /// inside a loader deadlocks. Errors are not cached — the next caller
  /// retries the load. Also coalesces with loads started by
  /// GetOrComputeAsync. When `was_hit` is non-null it is set to whether the
  /// value was served from cache without waiting on any load. When
  /// `consumed_prefetch` is non-null it is set to whether this call was the
  /// first demand touch of a prefetched value (tiered callers use this to
  /// credit the copy in the other tier via CreditPrefetchConsumption).
  Result<Value> GetOrCompute(PackedCellKey key, const Loader& loader,
                             bool* was_hit = nullptr,
                             bool* consumed_prefetch = nullptr);

  /// Asynchronous GetOrCompute: the load is dispatched to `pool` (demand
  /// loads on the high-priority lane, prefetch loads on the low lane) and a
  /// handle to its eventual outcome is returned immediately. Single-flight
  /// is shared with GetOrCompute: concurrent sync and async requests for
  /// one key run a single loader. If the pool refuses the task (shutdown),
  /// the handle resolves to an Aborted error and nothing is cached; a null
  /// `pool` runs the loader synchronously on the calling thread and returns
  /// an already-resolved handle. `kind` selects statistics: kPrefetch loads
  /// never touch hit/miss counters and tag the cached value so later demand
  /// consumption (or eviction without it) is attributed to prefetching.
  /// `consumed_prefetch` is as in GetOrCompute (only a demand `kind` ever
  /// sets it).
  AsyncHandle GetOrComputeAsync(PackedCellKey key, Loader loader,
                                ThreadPool* pool, LoadKind kind,
                                bool* consumed_prefetch = nullptr);

  /// Tier-promotion credit: a demand read consumed `key`'s copy held by
  /// another cache tier (e.g. a node's private L1 over this shared L2). If
  /// this cache still holds `key` tagged as prefetched, the tag is cleared
  /// and the prefetch counted as a hit — the speculation paid off
  /// downstream, so its eventual eviction here must not be double-counted
  /// as wasted. Recency and the demand hit/miss counters are untouched.
  /// No-op when the key is absent or already consumed.
  void CreditPrefetchConsumption(PackedCellKey key);

  /// Removes one key if present (in-flight loads are unaffected).
  void Erase(PackedCellKey key);

  /// Drops everything cached (stats and in-flight loads are preserved).
  void Clear();

  CacheStats stats() const;
  size_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  struct Entry {
    PackedCellKey key = 0;
    Value value;
    /// Inserted by a prefetch load and not yet touched by any demand read.
    bool prefetched = false;
  };

  /// One key's slot in the unified table: the cached entry (when `cached`)
  /// and/or the in-flight load. A slot exists iff at least one of the two
  /// is live; lookups therefore hash the key exactly once to learn
  /// everything about it.
  struct Slot {
    std::list<Entry>::iterator entry;
    bool cached = false;
    std::shared_ptr<AsyncHandle::State> inflight;
  };
  using Table = std::unordered_map<PackedCellKey, Slot, CellKeyHash>;

  /// Resolves `state` with the loader's outcome: clears the slot's
  /// in-flight marker, caches success, and wakes every waiter.
  void Complete(PackedCellKey key,
                const std::shared_ptr<AsyncHandle::State>& state,
                Result<Value> loaded);
  /// Marks a demand touch of `entry`, crediting the prefetcher when it was
  /// the one that brought the value in. Returns whether this touch consumed
  /// a prefetched value (cleared its tag).
  bool TouchLocked(Entry* entry);

  /// Stores `value` into the slot at `it` (which must be in table_),
  /// applying oversize and admission policy; erases the slot when it ends
  /// up neither cached nor in flight.
  void PutLocked(Table::iterator it, Value value, bool prefetched);
  /// Second-touch filter decision for a new key; true = admit now.
  bool AdmitLocked(PackedCellKey key);
  void EvictIfNeededLocked();
  /// Erases the slot when it holds neither a cached entry nor an in-flight
  /// load.
  void EraseSlotIfEmptyLocked(Table::iterator it);

  const LruCacheOptions options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  Table table_;
  std::unordered_set<PackedCellKey, CellKeyHash> touch_filter_;
  CacheStats stats_;
};

}  // namespace vc

#endif  // VC_STORAGE_CACHE_H_
