#include "storage/cell_key.h"

#include <cstdio>

namespace vc {

std::string CellKey::CacheKey(const VideoMetadata& metadata) const {
  char buffer[160];
  int n;
  if (metadata.data_dir.empty()) {
    n = std::snprintf(buffer, sizeof(buffer), "%s|v%u|%d.%d.%d",
                      metadata.name.c_str(), metadata.version, segment, tile,
                      quality);
  } else {
    n = std::snprintf(buffer, sizeof(buffer), "%s|%s|%d.%d.%d",
                      metadata.name.c_str(), metadata.data_dir.c_str(),
                      segment, tile, quality);
  }
  if (n < 0 || n >= static_cast<int>(sizeof(buffer))) {
    // Pathologically long video name: fall back to allocating pieces.
    return metadata.name + "|" + metadata.DataDir() + "|" +
           std::to_string(segment) + "." + std::to_string(tile) + "." +
           std::to_string(quality);
  }
  return std::string(buffer, static_cast<size_t>(n));
}

}  // namespace vc
