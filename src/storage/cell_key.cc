#include "storage/cell_key.h"

#include <cstdio>
#include <mutex>
#include <unordered_map>

namespace vc {

std::atomic<uint64_t> CellKeyHash::invocations{0};

namespace {

// Identity string a video's keyspace id is interned under: name + data
// directory, NUL-separated so concatenations cannot collide.
std::string KeyspaceIdentity(const VideoMetadata& metadata) {
  std::string identity = metadata.name;
  identity.push_back('\0');
  identity += metadata.DataDir();
  return identity;
}

}  // namespace

uint32_t InternCellKeyspace(const std::string& identity) {
  static std::mutex mu;
  static std::unordered_map<std::string, uint32_t>* registry =
      new std::unordered_map<std::string, uint32_t>();
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = registry->try_emplace(
      identity, static_cast<uint32_t>(registry->size() + 1));
  return it->second;
}

PackedCellKey CellKey::Packed(const VideoMetadata& metadata) const {
  uint32_t keyspace = metadata.cell_keyspace.get();
  if (keyspace == 0) {
    keyspace = InternCellKeyspace(KeyspaceIdentity(metadata));
    metadata.cell_keyspace.set(keyspace);
  }
  if (keyspace < (1u << kPackedKeyspaceBits) && segment >= 0 &&
      segment < (1 << kPackedSegmentBits) && tile >= 0 &&
      tile < (1 << kPackedTileBits) && quality >= 0 &&
      quality < (1 << kPackedQualityBits)) {
    return (static_cast<uint64_t>(keyspace)
            << (kPackedSegmentBits + kPackedTileBits + kPackedQualityBits)) |
           (static_cast<uint64_t>(segment)
            << (kPackedTileBits + kPackedQualityBits)) |
           (static_cast<uint64_t>(tile) << kPackedQualityBits) |
           static_cast<uint64_t>(quality);
  }
  // Escape hatch for coordinates that overflow a bit-field (or a keyspace
  // registry past 2^18 videos): intern the full coordinate string and
  // return its id in the low bits. Fast-path keys always carry a nonzero
  // keyspace in the top 18 bits, so the two ranges cannot collide. Exact,
  // merely slower; never taken for any layout the catalog validates today.
  std::string identity = KeyspaceIdentity(metadata);
  identity.push_back('\0');
  identity += std::to_string(segment) + "." + std::to_string(tile) + "." +
              std::to_string(quality);
  return static_cast<uint64_t>(InternCellKeyspace(identity));
}

std::string CellKey::DebugString(const VideoMetadata& metadata) const {
  char buffer[160];
  int n;
  if (metadata.data_dir.empty()) {
    n = std::snprintf(buffer, sizeof(buffer), "%s|v%u|%d.%d.%d",
                      metadata.name.c_str(), metadata.version, segment, tile,
                      quality);
  } else {
    n = std::snprintf(buffer, sizeof(buffer), "%s|%s|%d.%d.%d",
                      metadata.name.c_str(), metadata.data_dir.c_str(),
                      segment, tile, quality);
  }
  if (n < 0 || n >= static_cast<int>(sizeof(buffer))) {
    // Pathologically long video name: fall back to allocating pieces.
    return metadata.name + "|" + metadata.DataDir() + "|" +
           std::to_string(segment) + "." + std::to_string(tile) + "." +
           std::to_string(quality);
  }
  return std::string(buffer, static_cast<size_t>(n));
}

}  // namespace vc
