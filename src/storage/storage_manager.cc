#include "storage/storage_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/crc32.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "storage/cell_key.h"

namespace vc {

namespace {

Histogram* DemandMissHistogram() {
  static Histogram* histogram =
      MetricRegistry::Global().GetHistogram("storage.demand_miss_seconds");
  return histogram;
}

constexpr char kMetadataPrefix[] = "metadata.v";
constexpr char kMetadataSuffix[] = ".vcmf";

/// Parses "metadata.v<N>.vcmf" into N; returns 0 for non-matching names.
uint32_t VersionFromMetadataName(const std::string& filename) {
  const size_t prefix_len = sizeof(kMetadataPrefix) - 1;
  const size_t suffix_len = sizeof(kMetadataSuffix) - 1;
  if (filename.size() <= prefix_len + suffix_len) return 0;
  if (filename.compare(0, prefix_len, kMetadataPrefix) != 0) return 0;
  if (filename.compare(filename.size() - suffix_len, suffix_len,
                       kMetadataSuffix) != 0) {
    return 0;
  }
  uint32_t version = 0;
  for (size_t i = prefix_len; i < filename.size() - suffix_len; ++i) {
    if (filename[i] < '0' || filename[i] > '9') return 0;
    version = version * 10 + (filename[i] - '0');
  }
  return version;
}

}  // namespace

StorageManager::StorageManager(const StorageOptions& options)
    : options_(options), cache_(options.cache_capacity_bytes) {
  if (options.io_threads > 0) {
    io_pool_ = std::make_unique<ThreadPool>(options.io_threads);
  }
}

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const StorageOptions& options) {
  if (options.env == nullptr) {
    return Status::InvalidArgument("StorageOptions.env must not be null");
  }
  if (options.root.empty()) {
    return Status::InvalidArgument("StorageOptions.root must not be empty");
  }
  if (options.io_threads < 0) {
    return Status::InvalidArgument("StorageOptions.io_threads must be >= 0");
  }
  if (options.read_latency_seconds < 0) {
    return Status::InvalidArgument(
        "StorageOptions.read_latency_seconds must be >= 0");
  }
  VC_RETURN_IF_ERROR(options.env->CreateDirs(options.root));
  return std::unique_ptr<StorageManager>(new StorageManager(options));
}

std::string StorageManager::VideoDir(const std::string& name) const {
  return options_.root + "/" + name;
}

std::string StorageManager::MetadataPath(const std::string& name,
                                         uint32_t version) const {
  return VideoDir(name) + "/" + kMetadataPrefix + std::to_string(version) +
         kMetadataSuffix;
}

StorageManager::VideoWriter::VideoWriter(StorageManager* store,
                                         VideoMetadata metadata,
                                         std::string version_dir)
    : store_(store),
      metadata_(std::move(metadata)),
      version_dir_(std::move(version_dir)) {}

Result<std::unique_ptr<StorageManager::VideoWriter>>
StorageManager::NewVideoWriter(VideoMetadata metadata) {
  if (!metadata.segments.empty() || !metadata.cells.empty()) {
    return Status::InvalidArgument(
        "NewVideoWriter expects empty segment/cell lists");
  }
  // Validate layout fields using a dummy single segment.
  VideoMetadata probe = metadata;
  probe.segments = {SegmentInfo{0, metadata.frames_per_segment}};
  probe.cells.assign(
      static_cast<size_t>(probe.tile_count()) * probe.quality_count(),
      CellInfo{});
  probe.version = 1;
  VC_RETURN_IF_ERROR(probe.Validate());

  std::lock_guard<std::mutex> lock(writer_mu_);
  uint32_t next_version = 1;
  auto versions = ListVersions(metadata.name);
  if (versions.ok() && !versions->empty()) {
    next_version = versions->back() + 1;
  }
  metadata.version = next_version;
  metadata.data_dir = "v" + std::to_string(next_version);
  std::string dir = VideoDir(metadata.name) + "/" + metadata.data_dir;
  VC_RETURN_IF_ERROR(options_.env->CreateDirs(dir));
  return std::unique_ptr<VideoWriter>(
      new VideoWriter(this, std::move(metadata), std::move(dir)));
}

Status StorageManager::VideoWriter::AddSegment(
    uint32_t frame_count, const std::vector<std::vector<uint8_t>>& cells) {
  if (committed_) return Status::Aborted("writer already committed");
  size_t expected =
      static_cast<size_t>(metadata_.tile_count()) * metadata_.quality_count();
  if (cells.size() != expected) {
    return Status::InvalidArgument(
        "segment cell count mismatch: have " + std::to_string(cells.size()) +
        ", want " + std::to_string(expected));
  }
  if (frame_count == 0) {
    return Status::InvalidArgument("segment must contain frames");
  }
  uint32_t start = 0;
  if (!metadata_.segments.empty()) {
    start = metadata_.segments.back().start_frame +
            metadata_.segments.back().frame_count;
  }
  int segment = metadata_.segment_count();
  for (int tile = 0; tile < metadata_.tile_count(); ++tile) {
    for (int quality = 0; quality < metadata_.quality_count(); ++quality) {
      const auto& payload =
          cells[static_cast<size_t>(tile) * metadata_.quality_count() +
                quality];
      std::string path = version_dir_ + "/" +
                         metadata_.CellFileName(segment, tile, quality);
      VC_RETURN_IF_ERROR(
          store_->options_.env->WriteFile(path, Slice(payload)));
      CellInfo info;
      info.byte_size = payload.size();
      info.crc32 = Crc32(Slice(payload));
      metadata_.cells.push_back(info);
    }
  }
  metadata_.segments.push_back(SegmentInfo{start, frame_count});
  return Status::OK();
}

Result<uint32_t> StorageManager::VideoWriter::Commit() {
  if (committed_) return Status::Aborted("writer already committed");
  metadata_.streaming = false;
  VC_RETURN_IF_ERROR(metadata_.Validate());
  std::string path =
      store_->MetadataPath(metadata_.name, metadata_.version);
  auto bytes = metadata_.Serialize();
  VC_RETURN_IF_ERROR(store_->options_.env->WriteFile(path, Slice(bytes)));
  committed_ = true;
  return metadata_.version;
}

Result<uint32_t> StorageManager::VideoWriter::CommitCheckpoint() {
  if (committed_) return Status::Aborted("writer already committed");
  metadata_.streaming = true;
  VC_RETURN_IF_ERROR(metadata_.Validate());
  std::string path =
      store_->MetadataPath(metadata_.name, metadata_.version);
  auto bytes = metadata_.Serialize();
  VC_RETURN_IF_ERROR(store_->options_.env->WriteFile(path, Slice(bytes)));
  uint32_t published = metadata_.version;
  // Continue into the next version, reusing the same data directory so the
  // cells published so far are shared, not copied.
  metadata_.version += 1;
  return published;
}

Result<uint32_t> StorageManager::StoreVideo(
    VideoMetadata metadata, const std::vector<std::vector<uint8_t>>& cells) {
  std::vector<SegmentInfo> segments = std::move(metadata.segments);
  metadata.segments.clear();
  metadata.cells.clear();
  size_t per_segment =
      static_cast<size_t>(metadata.tile_count()) * metadata.quality_count();
  if (cells.size() != per_segment * segments.size()) {
    return Status::InvalidArgument("cell payload count mismatch");
  }
  std::unique_ptr<VideoWriter> writer;
  VC_ASSIGN_OR_RETURN(writer, NewVideoWriter(std::move(metadata)));
  for (size_t s = 0; s < segments.size(); ++s) {
    std::vector<std::vector<uint8_t>> segment_cells(
        cells.begin() + s * per_segment, cells.begin() + (s + 1) * per_segment);
    VC_RETURN_IF_ERROR(writer->AddSegment(segments[s].frame_count,
                                          segment_cells));
  }
  return writer->Commit();
}

Result<std::vector<std::string>> StorageManager::ListVideos() const {
  std::vector<std::string> names;
  VC_ASSIGN_OR_RETURN(names, options_.env->ListDir(options_.root));
  std::vector<std::string> videos;
  for (const std::string& name : names) {
    auto versions = ListVersions(name);
    if (versions.ok() && !versions->empty()) videos.push_back(name);
  }
  std::sort(videos.begin(), videos.end());
  return videos;
}

Result<std::vector<uint32_t>> StorageManager::ListVersions(
    const std::string& name) const {
  auto entries = options_.env->ListDir(VideoDir(name));
  if (!entries.ok()) {
    return Status::NotFound("video '" + name + "' not in catalog");
  }
  std::vector<uint32_t> versions;
  for (const std::string& entry : *entries) {
    uint32_t version = VersionFromMetadataName(entry);
    if (version > 0) versions.push_back(version);
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

Result<VideoMetadata> StorageManager::GetVideo(const std::string& name) const {
  std::vector<uint32_t> versions;
  VC_ASSIGN_OR_RETURN(versions, ListVersions(name));
  if (versions.empty()) {
    return Status::NotFound("video '" + name + "' has no committed versions");
  }
  return GetVideoVersion(name, versions.back());
}

Result<VideoMetadata> StorageManager::GetVideoVersion(
    const std::string& name, uint32_t version) const {
  auto bytes = options_.env->ReadFile(MetadataPath(name, version));
  if (!bytes.ok()) {
    return Status::NotFound("video '" + name + "' version " +
                            std::to_string(version) + " not found");
  }
  return VideoMetadata::Parse(Slice(*bytes));
}

LruCache::Loader StorageManager::MakeCellLoader(const VideoMetadata& metadata,
                                                int segment, int tile,
                                                int quality) const {
  // Owning captures only: the loader may run on an I/O pool thread after
  // the calling frame (and its metadata reference) is gone.
  std::string path = VideoDir(metadata.name) + "/" + metadata.DataDir() +
                     "/" + CellKey{segment, tile, quality}.FileName(metadata);
  CellInfo info = metadata.cells[metadata.CellIndex(segment, tile, quality)];
  Env* env = options_.env;
  double latency = options_.read_latency_seconds;
  return [path = std::move(path), info, env,
          latency]() -> Result<LruCache::Value> {
    if (latency > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(latency));
    }
    std::vector<uint8_t> bytes;
    VC_ASSIGN_OR_RETURN(bytes, env->ReadFile(path));
    if (bytes.size() != info.byte_size || Crc32(Slice(bytes)) != info.crc32) {
      return Status::Corruption("cell '" + path + "' fails checksum");
    }
    return std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
  };
}

Result<LruCache::Value> StorageManager::ReadCell(
    const VideoMetadata& metadata, int segment, int tile, int quality) {
  static Counter* cell_reads =
      MetricRegistry::Global().GetCounter("storage.cell_reads");
  static Counter* cell_read_bytes =
      MetricRegistry::Global().GetCounter("storage.cell_read_bytes");
  static Histogram* read_seconds =
      MetricRegistry::Global().GetHistogram("storage.read_seconds");
  if (!CellKey{segment, tile, quality}.InRange(metadata)) {
    return Status::InvalidArgument("cell coordinates out of range");
  }
  ScopedTimer timer(read_seconds);
  cell_reads->Add();
  // Single-flight through the cache: when many concurrent sessions miss on
  // the same popular cell, exactly one hits the filesystem; the rest share
  // its result. The packed cache key is three shifts and an OR (the hot
  // path of a warm server is this lookup); the file path is only built
  // inside the loader, which runs on misses.
  bool was_hit = false;
  Stopwatch stopwatch;
  Result<LruCache::Value> value =
      cache_.GetOrCompute(CellKey{segment, tile, quality}.Packed(metadata),
                          [this, &metadata, segment, tile,
                           quality]() -> Result<LruCache::Value> {
                            return MakeCellLoader(metadata, segment, tile,
                                                  quality)();
                          },
                          &was_hit);
  if (!was_hit) DemandMissHistogram()->Observe(stopwatch.ElapsedSeconds());
  if (value.ok()) cell_read_bytes->Add((*value)->size());
  return value;
}

Result<LruCache::AsyncHandle> StorageManager::ReadCellAsync(
    const VideoMetadata& metadata, int segment, int tile, int quality,
    LoadKind kind) {
  static Counter* cell_reads =
      MetricRegistry::Global().GetCounter("storage.cell_reads");
  if (!CellKey{segment, tile, quality}.InRange(metadata)) {
    return Status::InvalidArgument("cell coordinates out of range");
  }
  if (kind == LoadKind::kDemand) cell_reads->Add();
  // A null pool makes GetOrComputeAsync run the load synchronously and
  // return a resolved handle, so callers need not care whether the store
  // has an I/O pipeline.
  return cache_.GetOrComputeAsync(
      CellKey{segment, tile, quality}.Packed(metadata),
      MakeCellLoader(metadata, segment, tile, quality), io_pool_.get(), kind);
}

Status StorageManager::ReadPlannedCells(const VideoMetadata& metadata,
                                        int segment,
                                        const std::vector<int>& tile_qualities) {
  static Counter* cell_read_bytes =
      MetricRegistry::Global().GetCounter("storage.cell_read_bytes");
  static Histogram* read_seconds =
      MetricRegistry::Global().GetHistogram("storage.read_seconds");
  if (static_cast<int>(tile_qualities.size()) != metadata.tile_count()) {
    return Status::InvalidArgument("one quality per tile required");
  }
  if (io_pool_ == nullptr) {
    for (int tile = 0; tile < metadata.tile_count(); ++tile) {
      auto cell = ReadCell(metadata, segment, tile, tile_qualities[tile]);
      if (!cell.ok()) return cell.status();
    }
    return Status::OK();
  }
  // Issue the whole segment's loads at once so cold tiles overlap on the
  // I/O pool, then collect in tile order (first error wins, as in the
  // sequential path).
  std::vector<LruCache::AsyncHandle> handles;
  handles.reserve(tile_qualities.size());
  for (int tile = 0; tile < metadata.tile_count(); ++tile) {
    auto handle = ReadCellAsync(metadata, segment, tile,
                                tile_qualities[tile], LoadKind::kDemand);
    if (!handle.ok()) return handle.status();
    handles.push_back(std::move(*handle));
  }
  Status first_error = Status::OK();
  for (const LruCache::AsyncHandle& handle : handles) {
    Stopwatch stopwatch;
    Result<LruCache::Value> value = handle.Wait();
    double waited = stopwatch.ElapsedSeconds();
    read_seconds->Observe(waited);
    if (!handle.hit()) DemandMissHistogram()->Observe(waited);
    if (value.ok()) {
      cell_read_bytes->Add((*value)->size());
    } else if (first_error.ok()) {
      first_error = value.status();
    }
  }
  return first_error;
}

void StorageManager::ClearCache() { cache_.Clear(); }

Status StorageManager::DropVideo(const std::string& name) {
  auto versions = ListVersions(name);
  if (!versions.ok() || versions->empty()) {
    return Status::NotFound("video '" + name + "' not in catalog");
  }
  VC_RETURN_IF_ERROR(options_.env->RemoveDirRecursive(VideoDir(name)));
  cache_.Clear();
  return Status::OK();
}

}  // namespace vc
