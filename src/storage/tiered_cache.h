#ifndef VC_STORAGE_TIERED_CACHE_H_
#define VC_STORAGE_TIERED_CACHE_H_

#include "storage/cache.h"
#include "storage/cell_key.h"

namespace vc {

/// \brief A node-private L1 LruCache over a cluster-shared L2.
///
/// Every read goes through the L1 first; an L1 miss loads through the L2,
/// which in turn runs the backend loader on a miss. Both tiers keep their
/// single-flight behaviour, so N nodes missing on the same popular cell at
/// once still read it from the backing store exactly once — the L2 coalesces
/// the cross-node loads the way one LruCache coalesces cross-session loads.
///
/// Prefetch attribution stays honest across tiers: a prefetch fills both
/// tiers tagged, and when a demand read consumes the L1 copy the L2 copy is
/// credited too (LruCache::CreditPrefetchConsumption), so an eventual L2
/// eviction of the already-consumed value is not double-counted as wasted.
/// Known corner: a demand read that coalesces with a still-in-flight L1
/// prefetch credits only the L1 — the L2 copy's tag survives and its
/// eviction counts as wasted there. Each tier's own
/// `issued == hits + wasted` invariant still holds.
///
/// Thread-safe; `l2` is shared with other nodes and must outlive this.
class TieredCache {
 public:
  TieredCache(size_t l1_capacity_bytes, LruCache* l2);

  /// Synchronous tiered read: L1, then L2, then `loader`. `was_hit` reports
  /// an L1 hit (the cheap, node-local case).
  Result<LruCache::Value> GetOrCompute(PackedCellKey key,
                                       const LruCache::Loader& loader,
                                       bool* was_hit = nullptr);

  /// Asynchronous tiered read: the L1 dispatches one task to `pool` (use
  /// the owning backend's I/O pool so load concurrency is bounded per
  /// backend); that task resolves through the L2, coalescing with any other
  /// node's load of the same key. `kind` propagates to both tiers.
  LruCache::AsyncHandle GetOrComputeAsync(PackedCellKey key,
                                          LruCache::Loader loader,
                                          ThreadPool* pool, LoadKind kind);

  CacheStats l1_stats() const { return l1_.stats(); }
  LruCache* l2() const { return l2_; }

  /// Drops the L1 (stats preserved); the shared L2 is left alone.
  void ClearL1() { l1_.Clear(); }

 private:
  LruCache l1_;
  LruCache* l2_;
};

}  // namespace vc

#endif  // VC_STORAGE_TIERED_CACHE_H_
