#include "storage/prefetcher.h"

#include <algorithm>
#include <iterator>

#include "obs/metrics.h"

namespace vc {

namespace {

Counter* CancelledCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("prefetch.cancelled");
  return counter;
}
Counter* DedupedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("prefetch.deduped");
  return counter;
}
Counter* StaleSkippedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("prefetch.stale_skipped");
  return counter;
}

}  // namespace

const char* PrefetchModeName(PrefetchMode mode) {
  switch (mode) {
    case PrefetchMode::kOff:
      return "off";
    case PrefetchMode::kPredict:
      return "predict";
    case PrefetchMode::kPopularity:
      return "popularity";
  }
  return "unknown";
}

PredictivePrefetcher::PredictivePrefetcher(CellSource* storage,
                                           const PrefetcherOptions& options)
    : storage_(storage), options_(options) {
  max_inflight_ = options.max_inflight;
  if (max_inflight_ <= 0) {
    ThreadPool* pool = storage->io_pool();
    max_inflight_ =
        pool != nullptr ? 2 * static_cast<int>(pool->num_threads()) : 4;
  }
}

void PredictivePrefetcher::EnqueueSegment(const VideoMetadata& metadata,
                                          const PrefetchHint& hint,
                                          const PopularityModel* popularity,
                                          double deadline) {
  if (options_.mode == PrefetchMode::kOff || !hint.valid) return;
  if (hint.segment < 0 || hint.segment >= metadata.segment_count()) return;

  const TileGrid grid = metadata.tile_grid();
  const int lowest = metadata.quality_count() - 1;
  const int high = std::min(std::max(hint.high_quality, 0), lowest);

  std::vector<double> probabilities;
  if (popularity != nullptr && popularity->grid() == grid) {
    probabilities = popularity->TileProbabilities(hint.segment);
  }
  auto probability = [&probabilities](int tile) {
    return tile < static_cast<int>(probabilities.size())
               ? probabilities[tile]
               : 0.0;
  };

  // The predicted viewport (with the session's selection margin) at the
  // session's high rung — what the plan will most likely request.
  for (const TileId& tile : grid.TilesInViewport(
           hint.predicted, hint.fov_yaw + 2 * hint.margin,
           hint.fov_pitch + 2 * hint.margin)) {
    int index = grid.IndexOf(tile);
    Add(metadata, CellKey{hint.segment, index, high},
        1.0 + probability(index), deadline);
  }

  // Cross-user popularity: tiles covering most of the historical gaze mass
  // are planned at high quality too (see PlanSegment), so warm them.
  if (options_.mode == PrefetchMode::kPopularity && popularity != nullptr &&
      popularity->grid() == grid) {
    for (const TileId& tile :
         popularity->PopularTiles(hint.segment, hint.popularity_coverage)) {
      int index = grid.IndexOf(tile);
      Add(metadata, CellKey{hint.segment, index, high},
          0.8 + probability(index), deadline);
    }
  }

  // Every remaining tile streams at the lowest rung; backfill those at low
  // score so they fill otherwise-idle I/O capacity.
  if (lowest != high) {
    for (int index = 0; index < grid.tile_count(); ++index) {
      Add(metadata, CellKey{hint.segment, index, lowest},
          0.05 + 0.05 * probability(index), deadline);
    }
  }
}

void PredictivePrefetcher::Add(const VideoMetadata& metadata, CellKey cell,
                               double score, double deadline) {
  // Cancellation-aware enqueue: Pump cancels any request whose deadline has
  // passed *before* dispatching, and Pump runs at or after `now_` — so a
  // request already stale on arrival can never dispatch. Refusing it here
  // saves the queue insert, the eviction scan it might trigger, and the
  // guaranteed cancellation.
  if (deadline <= now_) {
    ++stats_.stale_skipped;
    StaleSkippedCounter()->Add();
    return;
  }
  PackedCellKey key = cell.Packed(metadata);
  if (options_.dedupe_ttl_seconds > 0) {
    auto it = recent_.find(key);
    if (it != recent_.end() && it->second > now_) {
      ++stats_.deduped;
      DedupedCounter()->Add();
      return;
    }
  }
  if (!pending_.insert(key).second) return;  // already queued or in flight
  if (options_.dedupe_ttl_seconds > 0) {
    recent_[key] = now_ + options_.dedupe_ttl_seconds;
    // Lazy purge: once the memory far outgrows the queue bound, sweep
    // expired entries in one pass (deterministic — depends only on `now_`).
    if (recent_.size() > static_cast<size_t>(options_.max_queue) * 4 + 4096) {
      for (auto it = recent_.begin(); it != recent_.end();) {
        it = it->second <= now_ ? recent_.erase(it) : std::next(it);
      }
    }
  }

  if (static_cast<int>(queue_.size()) >= options_.max_queue) {
    // Popularity-ordered eviction: the lowest-scored pending request makes
    // room, unless the newcomer scores even lower.
    auto victim = std::min_element(
        queue_.begin(), queue_.end(), [](const Request& a, const Request& b) {
          return a.score != b.score ? a.score < b.score : a.seq > b.seq;
        });
    if (victim->score >= score) {
      pending_.erase(key);
      // Nothing was accepted — leave no dedupe memory behind.
      recent_.erase(key);
      return;
    }
    pending_.erase(victim->key);
    ++stats_.cancelled;
    CancelledCounter()->Add();
    *victim = Request{&metadata, cell, key, score, deadline, seq_++};
    ++stats_.enqueued;
    return;
  }
  queue_.push_back(Request{&metadata, cell, key, score, deadline, seq_++});
  ++stats_.enqueued;
}

void PredictivePrefetcher::Pump(double now) {
  if (now > now_) now_ = now;
  // Reap finished loads so their slots free up (and a later re-request of
  // the same cell is possible — it would hit the cache anyway).
  for (size_t i = 0; i < inflight_.size();) {
    if (inflight_[i].first.ready()) {
      pending_.erase(inflight_[i].second);
      if (i + 1 != inflight_.size()) {  // guard the self-move at the back
        inflight_[i] = std::move(inflight_.back());
      }
      inflight_.pop_back();
    } else {
      ++i;
    }
  }

  // Cancel stale requests: their demand read happens at `deadline`, so once
  // the clock reaches it there is nothing left to win.
  for (size_t i = 0; i < queue_.size();) {
    if (queue_[i].deadline <= now) {
      pending_.erase(queue_[i].key);
      ++stats_.cancelled;
      CancelledCounter()->Add();
      if (i + 1 != queue_.size()) {  // guard the self-move at the back
        queue_[i] = std::move(queue_.back());
      }
      queue_.pop_back();
    } else {
      ++i;
    }
  }

  DispatchPending();
}

void PredictivePrefetcher::DispatchPending() {
  if (queue_.empty() ||
      static_cast<int>(inflight_.size()) >= max_inflight_) {
    return;
  }
  // One sort per Pump instead of a max_element scan per dispatch: worst
  // request first, so popping the back yields the same highest-score /
  // earliest-seq order the scan produced — O(n log n) per Pump where the
  // scan was O(n²) once 10k-viewer cohorts deepen the queue.
  std::sort(queue_.begin(), queue_.end(),
            [](const Request& a, const Request& b) {
              return a.score != b.score ? a.score < b.score : a.seq > b.seq;
            });
  while (static_cast<int>(inflight_.size()) < max_inflight_ &&
         !queue_.empty()) {
    Request request = queue_.back();
    queue_.pop_back();

    PackedCellKey key = request.key;
    auto handle = storage_->ReadCellAsync(
        *request.metadata, request.cell.segment, request.cell.tile,
        request.cell.quality, LoadKind::kPrefetch);
    ++stats_.dispatched;
    if (!handle.ok() || handle->ready()) {
      // Out of range (cannot happen for well-formed hints), already cached,
      // or resolved synchronously: nothing to track.
      pending_.erase(key);
      continue;
    }
    inflight_.emplace_back(std::move(*handle), key);
  }
}

void PredictivePrefetcher::Drain() {
  for (auto& [handle, key] : inflight_) {
    handle.Wait();  // outcome irrelevant — speculation may fail freely
    pending_.erase(key);
  }
  inflight_.clear();
  stats_.cancelled += queue_.size();
  CancelledCounter()->Add(queue_.size());
  for (const Request& request : queue_) {
    pending_.erase(request.key);
  }
  queue_.clear();
}

}  // namespace vc
