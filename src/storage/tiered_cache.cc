#include "storage/tiered_cache.h"

#include <utility>

namespace vc {

TieredCache::TieredCache(size_t l1_capacity_bytes, LruCache* l2)
    : l1_(l1_capacity_bytes), l2_(l2) {}

Result<LruCache::Value> TieredCache::GetOrCompute(
    PackedCellKey key, const LruCache::Loader& loader, bool* was_hit) {
  bool consumed_l1_prefetch = false;
  Result<LruCache::Value> value = l1_.GetOrCompute(
      key,
      // The reference capture is safe here: a synchronous loader runs
      // inside this call, on this thread.
      [this, key, &loader]() -> Result<LruCache::Value> {
        return l2_->GetOrCompute(key, loader);
      },
      was_hit, &consumed_l1_prefetch);
  if (consumed_l1_prefetch) l2_->CreditPrefetchConsumption(key);
  return value;
}

LruCache::AsyncHandle TieredCache::GetOrComputeAsync(PackedCellKey key,
                                                     LruCache::Loader loader,
                                                     ThreadPool* pool,
                                                     LoadKind kind) {
  bool consumed_l1_prefetch = false;
  LruCache::AsyncHandle handle = l1_.GetOrComputeAsync(
      key,
      // Owning captures only: this runs on a pool thread after we return.
      // The null pool makes the L2 resolve on that same thread (no
      // double-dispatch), still coalescing with other nodes' loads.
      [l2 = l2_, key, loader = std::move(loader),
       kind]() -> Result<LruCache::Value> {
        return l2->GetOrComputeAsync(key, std::move(loader), nullptr, kind)
            .Wait();
      },
      pool, kind, &consumed_l1_prefetch);
  if (consumed_l1_prefetch) l2_->CreditPrefetchConsumption(key);
  return handle;
}

}  // namespace vc
