#ifndef VC_PREDICT_TRACE_SYNTHESIZER_H_
#define VC_PREDICT_TRACE_SYNTHESIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "predict/head_trace.h"

namespace vc {

/// \brief Parameters of the synthetic head-movement model.
///
/// The model reproduces the two regimes real HMD traces show:
/// *smooth pursuit* — yaw/pitch angular velocities follow mean-reverting
/// Ornstein–Uhlenbeck processes, giving strongly autocorrelated motion that
/// short-horizon predictors can exploit — punctuated by Poisson-arriving
/// *saccades*, rapid reorientations toward a region of interest that defeat
/// extrapolation. Pitch additionally reverts toward the equator (viewers
/// rarely stare at the poles for long).
struct TraceSynthOptions {
  double duration_seconds = 90.0;
  double sample_rate_hz = 30.0;
  uint64_t seed = 1;  ///< Per-viewer randomness (pursuit noise, saccades).
  /// Seed for the *content-driven* part of the model: the positions of the
  /// regions of interest saccades aim at. Viewers of the same video share
  /// ROIs (attention is drawn by the content, not the viewer), so give all
  /// traces of one video the same content_seed — that correlation is what
  /// cross-user popularity prediction exploits.
  uint64_t content_seed = 1234;

  double yaw_volatility = 0.8;     ///< OU noise σ for yaw velocity (rad/s/√s).
  double pitch_volatility = 0.3;   ///< OU noise σ for pitch velocity.
  double velocity_damping = 2.0;   ///< OU mean-reversion rate for velocity.
  double pitch_reversion = 0.8;    ///< Pull of pitch toward the equator (1/s).
  double saccade_rate_hz = 0.15;   ///< Poisson rate of saccades.
  double saccade_speed = 3.5;      ///< Peak angular speed during a saccade.
  double roi_count = 3;            ///< Fixed ROIs saccades aim at.

  Status Validate() const;
};

/// Synthesizes one head trace.
Result<HeadTrace> SynthesizeTrace(const TraceSynthOptions& options);

/// Viewer archetypes used throughout the benchmarks: "calm" (mostly smooth
/// pursuit), "explorer" (moderate movement, occasional saccades), "frantic"
/// (fast, saccade-heavy). `seed` perturbs the individual trace.
Result<TraceSynthOptions> ArchetypeOptions(const std::string& archetype,
                                           uint64_t seed);

/// The archetype names understood by ArchetypeOptions.
const std::vector<std::string>& ViewerArchetypes();

}  // namespace vc

#endif  // VC_PREDICT_TRACE_SYNTHESIZER_H_
