#ifndef VC_PREDICT_ACCURACY_H_
#define VC_PREDICT_ACCURACY_H_

#include "geometry/tile_grid.h"
#include "predict/head_trace.h"
#include "predict/predictor.h"

namespace vc {

/// Aggregate accuracy of a predictor over one trace.
struct PredictionAccuracy {
  double mean_error_radians = 0.0;  ///< Mean great-circle error.
  double p95_error_radians = 0.0;   ///< 95th percentile error.
  double tile_hit_rate = 0.0;  ///< Fraction of predictions whose predicted
                               ///< viewport covered the actual gaze tile.
  int evaluations = 0;
};

/// Options for the accuracy evaluation loop.
struct AccuracyOptions {
  double lookahead_seconds = 1.0;  ///< Prediction horizon (≈ segment length).
  double feed_rate_hz = 30.0;      ///< Orientation report cadence.
  double eval_interval = 1.0;      ///< Seconds between evaluations.
  double fov_yaw = DegToRad(100.0);
  double fov_pitch = DegToRad(90.0);
};

/// Replays `trace` into `predictor` at `feed_rate_hz` and, every
/// `eval_interval`, compares Predict(lookahead) against the trace's actual
/// orientation at that future time. The predictor is Reset() first.
PredictionAccuracy EvaluatePredictor(Predictor* predictor,
                                     const HeadTrace& trace,
                                     const TileGrid& grid,
                                     const AccuracyOptions& options);

}  // namespace vc

#endif  // VC_PREDICT_ACCURACY_H_
