#include "predict/trace_synthesizer.h"

#include <cmath>

#include "common/math_util.h"
#include "common/random.h"

namespace vc {

Status TraceSynthOptions::Validate() const {
  if (duration_seconds <= 0 || duration_seconds > 86400) {
    return Status::InvalidArgument("trace duration out of range");
  }
  if (sample_rate_hz <= 0 || sample_rate_hz > 1000) {
    return Status::InvalidArgument("trace sample rate out of range");
  }
  if (yaw_volatility < 0 || pitch_volatility < 0 || velocity_damping < 0 ||
      pitch_reversion < 0 || saccade_rate_hz < 0 || saccade_speed < 0 ||
      roi_count < 0) {
    return Status::InvalidArgument("trace model parameters must be >= 0");
  }
  return Status::OK();
}

Result<HeadTrace> SynthesizeTrace(const TraceSynthOptions& options) {
  VC_RETURN_IF_ERROR(options.Validate());
  Random rng(options.seed);

  // Fixed regions of interest distributed on the equator band. Placed from
  // the content seed: every viewer of the same video sees the same ROIs.
  Random roi_rng(options.content_seed);
  std::vector<Orientation> rois;
  int roi_count = static_cast<int>(options.roi_count);
  for (int i = 0; i < roi_count; ++i) {
    rois.push_back(Orientation{roi_rng.UniformDouble(0, kTwoPi),
                               kPi / 2 + roi_rng.UniformDouble(-0.4, 0.4)});
  }

  const double dt = 1.0 / options.sample_rate_hz;
  const int count =
      static_cast<int>(options.duration_seconds * options.sample_rate_hz) + 1;

  double yaw = rng.UniformDouble(0, kTwoPi);
  double pitch = kPi / 2;
  double vyaw = 0.0, vpitch = 0.0;
  // Saccade state: remaining duration and target.
  double saccade_left = 0.0;
  Orientation saccade_target;

  std::vector<TraceSample> samples;
  samples.reserve(count);
  for (int i = 0; i < count; ++i) {
    double t = i * dt;
    samples.push_back(TraceSample{t, Orientation{yaw, pitch}});

    // Saccade arrivals (Poisson).
    if (saccade_left <= 0.0 &&
        rng.Bernoulli(options.saccade_rate_hz * dt)) {
      saccade_left = rng.UniformDouble(0.15, 0.5);
      saccade_target = rois.empty()
                           ? Orientation{rng.UniformDouble(0, kTwoPi),
                                         rng.UniformDouble(0.6, kPi - 0.6)}
                           : rois[rng.Uniform(rois.size())];
    }

    if (saccade_left > 0.0) {
      // Rapid reorientation toward the target at saccade_speed.
      double dyaw = YawDifference(saccade_target.yaw, yaw);
      double dpitch = saccade_target.pitch - pitch;
      double dist = std::sqrt(dyaw * dyaw + dpitch * dpitch);
      if (dist < options.saccade_speed * dt || dist < 1e-6) {
        yaw = saccade_target.yaw;
        pitch = saccade_target.pitch;
        saccade_left = 0.0;
        vyaw = vpitch = 0.0;
      } else {
        yaw = WrapYaw(yaw + options.saccade_speed * dt * dyaw / dist);
        pitch = ClampPitch(pitch + options.saccade_speed * dt * dpitch / dist);
        saccade_left -= dt;
      }
      continue;
    }

    // Smooth pursuit: OU velocities.
    double sqrt_dt = std::sqrt(dt);
    vyaw += -options.velocity_damping * vyaw * dt +
            options.yaw_volatility * sqrt_dt * rng.NextGaussian();
    vpitch += -options.velocity_damping * vpitch * dt +
              options.pitch_volatility * sqrt_dt * rng.NextGaussian();
    // Equator reversion on pitch.
    vpitch += options.pitch_reversion * (kPi / 2 - pitch) * dt;
    yaw = WrapYaw(yaw + vyaw * dt);
    pitch = ClampPitch(pitch + vpitch * dt);
  }
  return HeadTrace::FromSamples(std::move(samples));
}

const std::vector<std::string>& ViewerArchetypes() {
  static const std::vector<std::string> names = {"calm", "explorer",
                                                 "frantic"};
  return names;
}

Result<TraceSynthOptions> ArchetypeOptions(const std::string& archetype,
                                           uint64_t seed) {
  TraceSynthOptions options;
  options.seed = seed;
  if (archetype == "calm") {
    options.yaw_volatility = 0.35;
    options.pitch_volatility = 0.12;
    options.saccade_rate_hz = 0.04;
    options.saccade_speed = 2.5;
  } else if (archetype == "explorer") {
    options.yaw_volatility = 0.8;
    options.pitch_volatility = 0.3;
    options.saccade_rate_hz = 0.15;
    options.saccade_speed = 3.5;
  } else if (archetype == "frantic") {
    options.yaw_volatility = 1.8;
    options.pitch_volatility = 0.6;
    options.saccade_rate_hz = 0.5;
    options.saccade_speed = 5.0;
  } else {
    return Status::InvalidArgument("unknown archetype '" + archetype + "'");
  }
  return options;
}

}  // namespace vc
