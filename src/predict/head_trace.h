#ifndef VC_PREDICT_HEAD_TRACE_H_
#define VC_PREDICT_HEAD_TRACE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "geometry/orientation.h"

namespace vc {

/// One orientation observation from a head-mounted display.
struct TraceSample {
  double t = 0.0;  ///< Seconds since playback start.
  Orientation orientation;
};

/// \brief A viewer's head-movement trace: timestamped gaze orientations.
///
/// Stands in for the public 360° head-movement datasets the paper's
/// demonstration drew on; traces are either synthesized (see
/// trace_synthesizer.h) or loaded from CSV (`t,yaw,pitch` rows, radians),
/// the format those datasets are commonly distributed in.
class HeadTrace {
 public:
  HeadTrace() = default;

  /// Builds a trace from samples; they must be in strictly increasing time
  /// order starting at t ≥ 0.
  static Result<HeadTrace> FromSamples(std::vector<TraceSample> samples);

  /// Orientation at time `t`, interpolating between samples (shortest-path
  /// in yaw, linear in pitch) and clamping outside the sampled range.
  Orientation At(double t) const;

  double duration() const {
    return samples_.empty() ? 0.0 : samples_.back().t;
  }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<TraceSample>& samples() const { return samples_; }

  /// Serializes to "t,yaw,pitch\n" CSV (with a header row).
  std::string ToCsv() const;

  /// Parses the CSV format written by ToCsv (header row optional).
  static Result<HeadTrace> FromCsv(Slice csv);

 private:
  std::vector<TraceSample> samples_;
};

}  // namespace vc

#endif  // VC_PREDICT_HEAD_TRACE_H_
