#include "predict/predictor.h"

#include <cmath>
#include <deque>

#include "common/math_util.h"

namespace vc {

namespace {

/// Shared history bookkeeping: keeps (t, unwrapped yaw, pitch) observations
/// so extrapolation can cross the yaw seam safely.
class HistoryBase : public Predictor {
 public:
  explicit HistoryBase(std::string name, double window)
      : name_(std::move(name)), window_(window) {}

  const std::string& name() const override { return name_; }

  void Observe(double t, const Orientation& orientation) override {
    Orientation o = orientation.Normalized();
    if (!history_.empty() && t < history_.back().t) return;  // stale report
    double unwrapped;
    if (history_.empty()) {
      unwrapped = o.yaw;
    } else {
      unwrapped =
          history_.back().yaw + YawDifference(o.yaw, WrapYaw(history_.back().yaw));
    }
    history_.push_back(Obs{t, unwrapped, o.pitch});
    while (history_.size() > 2 && history_.front().t < t - window_) {
      history_.pop_front();
    }
  }

  void Reset() override { history_.clear(); }

 protected:
  struct Obs {
    double t;
    double yaw;  ///< unwrapped
    double pitch;
  };

  static Orientation Wrapped(double yaw, double pitch) {
    return Orientation{WrapYaw(yaw), ClampPitch(pitch)};
  }

  const std::string name_;
  const double window_;
  std::deque<Obs> history_;
};

class StaticPredictor final : public HistoryBase {
 public:
  StaticPredictor() : HistoryBase("static", 0.5) {}

  Orientation Predict(double) const override {
    if (history_.empty()) return Orientation{};
    return Wrapped(history_.back().yaw, history_.back().pitch);
  }
};

class DeadReckoningPredictor final : public HistoryBase {
 public:
  explicit DeadReckoningPredictor(double velocity_window)
      : HistoryBase("dead_reckoning", velocity_window) {}

  Orientation Predict(double lookahead) const override {
    if (history_.empty()) return Orientation{};
    const Obs& last = history_.back();
    if (history_.size() < 2) return Wrapped(last.yaw, last.pitch);
    const Obs& first = history_.front();
    double dt = last.t - first.t;
    if (dt <= 1e-9) return Wrapped(last.yaw, last.pitch);
    double vyaw = (last.yaw - first.yaw) / dt;
    double vpitch = (last.pitch - first.pitch) / dt;
    return Wrapped(last.yaw + vyaw * lookahead,
                   last.pitch + vpitch * lookahead);
  }
};

class LinearRegressionPredictor final : public HistoryBase {
 public:
  explicit LinearRegressionPredictor(double window)
      : HistoryBase("linear_regression", window) {}

  Orientation Predict(double lookahead) const override {
    if (history_.empty()) return Orientation{};
    const Obs& last = history_.back();
    if (history_.size() < 3) return Wrapped(last.yaw, last.pitch);
    // Least-squares slope/intercept for yaw(t) and pitch(t).
    double n = 0, sum_t = 0, sum_tt = 0;
    double sum_yaw = 0, sum_tyaw = 0, sum_pitch = 0, sum_tpitch = 0;
    for (const Obs& o : history_) {
      double t = o.t - last.t;  // center for conditioning
      n += 1;
      sum_t += t;
      sum_tt += t * t;
      sum_yaw += o.yaw;
      sum_tyaw += t * o.yaw;
      sum_pitch += o.pitch;
      sum_tpitch += t * o.pitch;
    }
    double denom = n * sum_tt - sum_t * sum_t;
    if (std::abs(denom) < 1e-12) return Wrapped(last.yaw, last.pitch);
    double yaw_slope = (n * sum_tyaw - sum_t * sum_yaw) / denom;
    double yaw_icept = (sum_yaw - yaw_slope * sum_t) / n;
    double pitch_slope = (n * sum_tpitch - sum_t * sum_pitch) / denom;
    double pitch_icept = (sum_pitch - pitch_slope * sum_t) / n;
    return Wrapped(yaw_icept + yaw_slope * lookahead,
                   pitch_icept + pitch_slope * lookahead);
  }
};

class EwmaVelocityPredictor final : public Predictor {
 public:
  explicit EwmaVelocityPredictor(double alpha)
      : name_("ewma_velocity"), alpha_(Clamp(alpha, 0.0, 1.0)) {}

  const std::string& name() const override { return name_; }

  void Observe(double t, const Orientation& orientation) override {
    Orientation o = orientation.Normalized();
    if (has_last_ && t > last_t_) {
      double dt = t - last_t_;
      double vyaw = YawDifference(o.yaw, last_.yaw) / dt;
      double vpitch = (o.pitch - last_.pitch) / dt;
      if (has_velocity_) {
        vyaw_ = alpha_ * vyaw + (1 - alpha_) * vyaw_;
        vpitch_ = alpha_ * vpitch + (1 - alpha_) * vpitch_;
      } else {
        vyaw_ = vyaw;
        vpitch_ = vpitch;
        has_velocity_ = true;
      }
    }
    if (!has_last_ || t >= last_t_) {
      last_ = o;
      last_t_ = t;
      has_last_ = true;
    }
  }

  Orientation Predict(double lookahead) const override {
    if (!has_last_) return Orientation{};
    if (!has_velocity_) return last_;
    return Orientation{WrapYaw(last_.yaw + vyaw_ * lookahead),
                       ClampPitch(last_.pitch + vpitch_ * lookahead)};
  }

  void Reset() override {
    has_last_ = has_velocity_ = false;
    vyaw_ = vpitch_ = 0;
  }

 private:
  const std::string name_;
  const double alpha_;
  bool has_last_ = false;
  bool has_velocity_ = false;
  Orientation last_;
  double last_t_ = 0;
  double vyaw_ = 0, vpitch_ = 0;
};

/// One-dimensional constant-velocity Kalman filter.
class Cv1dKalman {
 public:
  Cv1dKalman(double q, double r) : q_(q), r_(r) {}

  void Reset() { initialized_ = false; }

  void Update(double dt, double measurement) {
    if (!initialized_) {
      pos_ = measurement;
      vel_ = 0;
      p00_ = r_;
      p01_ = 0;
      p11_ = 1.0;
      initialized_ = true;
      return;
    }
    // Predict: x' = F x with F = [1 dt; 0 1]; P' = F P Fᵀ + Q.
    pos_ += vel_ * dt;
    double dt2 = dt * dt, dt3 = dt2 * dt;
    double p00 = p00_ + dt * (p01_ + p01_) + dt2 * p11_ + q_ * dt3 / 3.0;
    double p01 = p01_ + dt * p11_ + q_ * dt2 / 2.0;
    double p11 = p11_ + q_ * dt;
    // Update with measurement of position.
    double s = p00 + r_;
    double k0 = p00 / s;
    double k1 = p01 / s;
    double innovation = measurement - pos_;
    pos_ += k0 * innovation;
    vel_ += k1 * innovation;
    p00_ = (1 - k0) * p00;
    p01_ = (1 - k0) * p01;
    p11_ = p11 - k1 * p01;
  }

  double Extrapolate(double lookahead) const {
    return pos_ + vel_ * lookahead;
  }
  bool initialized() const { return initialized_; }
  double position() const { return pos_; }

 private:
  const double q_;
  const double r_;
  bool initialized_ = false;
  double pos_ = 0, vel_ = 0;
  double p00_ = 1, p01_ = 0, p11_ = 1;
};

class KalmanPredictor final : public Predictor {
 public:
  KalmanPredictor(double process_noise, double measurement_noise)
      : name_("kalman"),
        yaw_filter_(process_noise, measurement_noise),
        pitch_filter_(process_noise, measurement_noise) {}

  const std::string& name() const override { return name_; }

  void Observe(double t, const Orientation& orientation) override {
    Orientation o = orientation.Normalized();
    if (has_last_ && t < last_t_) return;
    double dt = has_last_ ? t - last_t_ : 0.0;
    // Unwrap yaw against the filter's current estimate.
    double unwrapped_yaw;
    if (yaw_filter_.initialized()) {
      double predicted = yaw_filter_.position();
      unwrapped_yaw = predicted + YawDifference(o.yaw, WrapYaw(predicted));
    } else {
      unwrapped_yaw = o.yaw;
    }
    yaw_filter_.Update(dt, unwrapped_yaw);
    pitch_filter_.Update(dt, o.pitch);
    last_t_ = t;
    has_last_ = true;
  }

  Orientation Predict(double lookahead) const override {
    if (!has_last_) return Orientation{};
    return Orientation{WrapYaw(yaw_filter_.Extrapolate(lookahead)),
                       ClampPitch(pitch_filter_.Extrapolate(lookahead))};
  }

  void Reset() override {
    yaw_filter_.Reset();
    pitch_filter_.Reset();
    has_last_ = false;
  }

 private:
  const std::string name_;
  Cv1dKalman yaw_filter_;
  Cv1dKalman pitch_filter_;
  bool has_last_ = false;
  double last_t_ = 0;
};

class MarkovPredictor final : public Predictor {
 public:
  MarkovPredictor(const TileGrid& grid, double step)
      : name_("markov"),
        grid_(grid),
        step_(step > 0 ? step : 0.25),
        counts_(static_cast<size_t>(grid.tile_count()) * grid.tile_count(),
                0) {}

  const std::string& name() const override { return name_; }

  void Observe(double t, const Orientation& orientation) override {
    Orientation o = orientation.Normalized();
    int cell = grid_.IndexOf(grid_.TileFor(o));
    if (!has_state_) {
      has_state_ = true;
      cell_ = cell;
      last_ = o;
      last_t_ = t;
      next_step_t_ = t + step_;
      return;
    }
    if (t < last_t_) return;
    last_ = o;
    last_t_ = t;
    // Record one transition per elapsed step boundary (self-transitions
    // included: dwell probability matters as much as movement).
    while (t >= next_step_t_) {
      counts_[static_cast<size_t>(cell_) * grid_.tile_count() + cell] += 1;
      cell_ = cell;
      next_step_t_ += step_;
    }
  }

  Orientation Predict(double lookahead) const override {
    if (!has_state_) return Orientation{};
    int steps = static_cast<int>(std::lround(lookahead / step_));
    int cell = grid_.IndexOf(grid_.TileFor(last_));
    for (int i = 0; i < steps; ++i) {
      const uint32_t* row =
          counts_.data() + static_cast<size_t>(cell) * grid_.tile_count();
      int best = cell;
      uint32_t best_count = 0;
      for (int next = 0; next < grid_.tile_count(); ++next) {
        if (row[next] > best_count) {
          best_count = row[next];
          best = next;
        }
      }
      if (best_count == 0) break;  // unseen state: persist
      cell = best;
    }
    if (cell == grid_.IndexOf(grid_.TileFor(last_))) {
      // Staying in the same cell: the precise last orientation is a better
      // estimate than the cell center.
      return last_;
    }
    return grid_.CenterOf(grid_.TileAt(cell));
  }

  void Reset() override {
    has_state_ = false;
    std::fill(counts_.begin(), counts_.end(), 0);
  }

 private:
  const std::string name_;
  const TileGrid grid_;
  const double step_;
  std::vector<uint32_t> counts_;
  bool has_state_ = false;
  int cell_ = 0;
  Orientation last_;
  double last_t_ = 0;
  double next_step_t_ = 0;
};

}  // namespace

std::unique_ptr<Predictor> NewStaticPredictor() {
  return std::make_unique<StaticPredictor>();
}

std::unique_ptr<Predictor> NewDeadReckoningPredictor(double velocity_window) {
  return std::make_unique<DeadReckoningPredictor>(velocity_window);
}

std::unique_ptr<Predictor> NewLinearRegressionPredictor(double window) {
  return std::make_unique<LinearRegressionPredictor>(window);
}

std::unique_ptr<Predictor> NewEwmaVelocityPredictor(double alpha) {
  return std::make_unique<EwmaVelocityPredictor>(alpha);
}

std::unique_ptr<Predictor> NewKalmanPredictor(double process_noise,
                                              double measurement_noise) {
  return std::make_unique<KalmanPredictor>(process_noise, measurement_noise);
}

std::unique_ptr<Predictor> NewMarkovPredictor(const TileGrid& grid,
                                              double step) {
  return std::make_unique<MarkovPredictor>(grid, step);
}

std::vector<std::unique_ptr<Predictor>> AllPredictors(const TileGrid& grid) {
  std::vector<std::unique_ptr<Predictor>> predictors;
  predictors.push_back(NewStaticPredictor());
  predictors.push_back(NewDeadReckoningPredictor());
  predictors.push_back(NewLinearRegressionPredictor());
  predictors.push_back(NewEwmaVelocityPredictor());
  predictors.push_back(NewKalmanPredictor());
  predictors.push_back(NewMarkovPredictor(grid));
  return predictors;
}

Result<std::unique_ptr<Predictor>> MakePredictor(const std::string& name,
                                                 const TileGrid& grid) {
  if (name == "static") return NewStaticPredictor();
  if (name == "dead_reckoning") return NewDeadReckoningPredictor();
  if (name == "linear_regression") return NewLinearRegressionPredictor();
  if (name == "ewma_velocity") return NewEwmaVelocityPredictor();
  if (name == "kalman") return NewKalmanPredictor();
  if (name == "markov") return NewMarkovPredictor(grid);
  return Status::InvalidArgument("unknown predictor '" + name + "'");
}

}  // namespace vc
