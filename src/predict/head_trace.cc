#include "predict/head_trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace vc {

Result<HeadTrace> HeadTrace::FromSamples(std::vector<TraceSample> samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("trace must contain samples");
  }
  if (samples.front().t < 0) {
    return Status::InvalidArgument("trace must start at t >= 0");
  }
  for (size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].t <= samples[i - 1].t) {
      return Status::InvalidArgument("trace timestamps must increase");
    }
  }
  for (TraceSample& sample : samples) {
    sample.orientation = sample.orientation.Normalized();
  }
  HeadTrace trace;
  trace.samples_ = std::move(samples);
  return trace;
}

Orientation HeadTrace::At(double t) const {
  if (samples_.empty()) return Orientation{};
  if (t <= samples_.front().t) return samples_.front().orientation;
  if (t >= samples_.back().t) return samples_.back().orientation;
  // Binary search for the bracketing pair.
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const TraceSample& s, double value) { return s.t < value; });
  const TraceSample& hi = *it;
  const TraceSample& lo = *(it - 1);
  double f = (t - lo.t) / (hi.t - lo.t);
  // Shortest-path interpolation in yaw, linear in pitch.
  double dyaw = YawDifference(hi.orientation.yaw, lo.orientation.yaw);
  Orientation out;
  out.yaw = WrapYaw(lo.orientation.yaw + f * dyaw);
  out.pitch =
      ClampPitch(lo.orientation.pitch +
                 f * (hi.orientation.pitch - lo.orientation.pitch));
  return out;
}

std::string HeadTrace::ToCsv() const {
  std::ostringstream out;
  out << "t,yaw,pitch\n";
  char line[96];
  for (const TraceSample& s : samples_) {
    std::snprintf(line, sizeof(line), "%.6f,%.6f,%.6f\n", s.t,
                  s.orientation.yaw, s.orientation.pitch);
    out << line;
  }
  return out.str();
}

Result<HeadTrace> HeadTrace::FromCsv(Slice csv) {
  std::vector<TraceSample> samples;
  std::string text = csv.ToString();
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line_number == 1 && line.find("yaw") != std::string::npos) {
      continue;  // header row
    }
    TraceSample sample;
    char* end = nullptr;
    const char* p = line.c_str();
    sample.t = std::strtod(p, &end);
    if (end == p || *end != ',') {
      return Status::Corruption("bad CSV at line " +
                                std::to_string(line_number));
    }
    p = end + 1;
    sample.orientation.yaw = std::strtod(p, &end);
    if (end == p || *end != ',') {
      return Status::Corruption("bad CSV at line " +
                                std::to_string(line_number));
    }
    p = end + 1;
    sample.orientation.pitch = std::strtod(p, &end);
    if (end == p) {
      return Status::Corruption("bad CSV at line " +
                                std::to_string(line_number));
    }
    samples.push_back(sample);
  }
  return FromSamples(std::move(samples));
}

}  // namespace vc
