#ifndef VC_PREDICT_POPULARITY_H_
#define VC_PREDICT_POPULARITY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "geometry/tile_grid.h"
#include "predict/head_trace.h"

namespace vc {

/// \brief Cross-user tile-popularity model for one video.
///
/// VisualCloud can predict not just from the *current* viewer's motion but
/// from where *previous* viewers of the same video looked: per segment, the
/// model accumulates gaze dwell time per tile across training traces. At
/// serving time the server unions the individually-predicted viewport with
/// the tiles that cover most of the historical gaze mass — catching
/// content-driven attention (a boat entering the scene) that motion
/// extrapolation cannot anticipate.
class PopularityModel {
 public:
  /// Creates an empty model for a video with `segment_count` segments of
  /// `segment_seconds` each, partitioned by `grid`.
  PopularityModel(const TileGrid& grid, double segment_seconds,
                  int segment_count);

  /// Accumulates one prior viewer's trace (sampled at `sample_rate_hz`).
  void AddTrace(const HeadTrace& trace, double sample_rate_hz = 30.0);

  /// Accumulates one live gaze sample at media time `media_t` seconds.
  /// Streaming sessions feed the model incrementally as they play (instead
  /// of as one whole trace after the fact); call EndViewer() when the
  /// session finishes so viewer_count() stays meaningful. Samples beyond
  /// the modelled video or before t=0 are ignored.
  void Observe(double media_t, const Orientation& orientation);

  /// Marks the end of one live viewer fed through Observe().
  void EndViewer() { ++viewer_count_; }

  /// Fraction of observed gaze time segment `segment` spent in `tile`
  /// (0 when the segment has no observations).
  double Probability(int segment, TileId tile) const;

  /// Every tile's gaze share of one segment in a single pass, indexed by
  /// `TileGrid::IndexOf` order (all zeros when unobserved). The bulk read
  /// the prefetcher scores candidate cells against — per-tile Probability
  /// calls would rescan the segment's counts per tile.
  std::vector<double> TileProbabilities(int segment) const;

  /// The most popular tiles of a segment, greedily selected until they
  /// cover at least `coverage` ∈ (0, 1] of the observed gaze mass. Empty
  /// when the segment has no observations.
  std::vector<TileId> PopularTiles(int segment, double coverage) const;

  int viewer_count() const { return viewer_count_; }
  int segment_count() const { return segment_count_; }
  const TileGrid& grid() const { return grid_; }

  /// Serializes the model (counts are preserved exactly).
  std::vector<uint8_t> Serialize() const;

  /// Parses a stream produced by Serialize.
  static Result<PopularityModel> Parse(Slice data);

 private:
  TileGrid grid_;
  double segment_seconds_;
  int segment_count_;
  int viewer_count_ = 0;
  /// counts_[segment * tile_count + tile] = gaze samples observed.
  std::vector<uint64_t> counts_;
};

}  // namespace vc

#endif  // VC_PREDICT_POPULARITY_H_
