#ifndef VC_PREDICT_PREDICTOR_H_
#define VC_PREDICT_PREDICTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/orientation.h"
#include "geometry/tile_grid.h"

namespace vc {

/// \brief Online head-orientation predictor.
///
/// The streaming server feeds every client orientation report through
/// `Observe` (strictly increasing timestamps) and, before committing a
/// segment's per-tile qualities, asks where the viewer will look one
/// segment-duration ahead via `Predict`. Implementations are deterministic
/// functions of the observation history.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Stable implementation name ("dead_reckoning", ...).
  virtual const std::string& name() const = 0;

  /// Records one orientation observation at time `t` (seconds). Timestamps
  /// must be non-decreasing; older reports are ignored.
  virtual void Observe(double t, const Orientation& orientation) = 0;

  /// Predicts the orientation `lookahead` seconds after the latest
  /// observation. With no observations yet, returns the equator at yaw 0.
  virtual Orientation Predict(double lookahead) const = 0;

  /// Clears all state (used between sessions).
  virtual void Reset() = 0;
};

/// Persistence: predicts the most recent orientation (the baseline every
/// tiled-streaming paper compares against).
std::unique_ptr<Predictor> NewStaticPredictor();

/// Dead reckoning: extrapolates the instantaneous angular velocity computed
/// over the last `velocity_window` seconds of observations.
std::unique_ptr<Predictor> NewDeadReckoningPredictor(
    double velocity_window = 0.3);

/// Least-squares linear fit of yaw/pitch over a `window` of history,
/// extrapolated. Yaw is unwrapped before fitting so seam crossings do not
/// corrupt the fit.
std::unique_ptr<Predictor> NewLinearRegressionPredictor(double window = 1.0);

/// Exponentially-weighted velocity extrapolation: smooths the instantaneous
/// velocity with factor `alpha` per observation.
std::unique_ptr<Predictor> NewEwmaVelocityPredictor(double alpha = 0.35);

/// Constant-velocity Kalman filter, one independent filter per axis (yaw is
/// unwrapped before filtering). `process_noise` is the white-noise
/// acceleration spectral density (rad²/s³); `measurement_noise` the
/// orientation-report variance (rad²). Smoother than dead reckoning on
/// noisy reports, same asymptotics on clean ones.
std::unique_ptr<Predictor> NewKalmanPredictor(double process_noise = 2.0,
                                              double measurement_noise = 1e-3);

/// First-order Markov model over the cells of `grid`: learns cell-to-cell
/// transition counts at `step` second granularity from the observation
/// stream and predicts by walking the maximum-likelihood chain. Falls back
/// to persistence for unseen cells.
std::unique_ptr<Predictor> NewMarkovPredictor(const TileGrid& grid,
                                              double step = 0.25);

/// All standard predictors (one of each), for sweeps.
std::vector<std::unique_ptr<Predictor>> AllPredictors(const TileGrid& grid);

/// Builds a predictor by name; Status for unknown names.
Result<std::unique_ptr<Predictor>> MakePredictor(const std::string& name,
                                                 const TileGrid& grid);

}  // namespace vc

#endif  // VC_PREDICT_PREDICTOR_H_
