#include "predict/popularity.h"

#include <algorithm>
#include <numeric>

namespace vc {

PopularityModel::PopularityModel(const TileGrid& grid, double segment_seconds,
                                 int segment_count)
    : grid_(grid),
      segment_seconds_(segment_seconds > 0 ? segment_seconds : 1.0),
      segment_count_(segment_count > 0 ? segment_count : 1),
      counts_(static_cast<size_t>(segment_count_) * grid.tile_count(), 0) {}

void PopularityModel::AddTrace(const HeadTrace& trace, double sample_rate_hz) {
  if (trace.empty() || sample_rate_hz <= 0) return;
  double dt = 1.0 / sample_rate_hz;
  double end = segment_count_ * segment_seconds_;
  for (double t = 0.0; t < end && t <= trace.duration(); t += dt) {
    int segment = static_cast<int>(t / segment_seconds_);
    if (segment >= segment_count_) break;
    TileId tile = grid_.TileFor(trace.At(t));
    counts_[static_cast<size_t>(segment) * grid_.tile_count() +
            grid_.IndexOf(tile)] += 1;
  }
  ++viewer_count_;
}

void PopularityModel::Observe(double media_t, const Orientation& orientation) {
  if (media_t < 0) return;
  int segment = static_cast<int>(media_t / segment_seconds_);
  if (segment >= segment_count_) return;
  counts_[static_cast<size_t>(segment) * grid_.tile_count() +
          grid_.IndexOf(grid_.TileFor(orientation))] += 1;
}

double PopularityModel::Probability(int segment, TileId tile) const {
  if (segment < 0 || segment >= segment_count_) return 0.0;
  const uint64_t* row =
      counts_.data() + static_cast<size_t>(segment) * grid_.tile_count();
  uint64_t total = std::accumulate(row, row + grid_.tile_count(),
                                   static_cast<uint64_t>(0));
  if (total == 0) return 0.0;
  return static_cast<double>(row[grid_.IndexOf(tile)]) /
         static_cast<double>(total);
}

std::vector<double> PopularityModel::TileProbabilities(int segment) const {
  std::vector<double> probabilities(grid_.tile_count(), 0.0);
  if (segment < 0 || segment >= segment_count_) return probabilities;
  const uint64_t* row =
      counts_.data() + static_cast<size_t>(segment) * grid_.tile_count();
  uint64_t total = std::accumulate(row, row + grid_.tile_count(),
                                   static_cast<uint64_t>(0));
  if (total == 0) return probabilities;
  for (int tile = 0; tile < grid_.tile_count(); ++tile) {
    probabilities[tile] =
        static_cast<double>(row[tile]) / static_cast<double>(total);
  }
  return probabilities;
}

std::vector<TileId> PopularityModel::PopularTiles(int segment,
                                                  double coverage) const {
  std::vector<TileId> popular;
  if (segment < 0 || segment >= segment_count_) return popular;
  coverage = Clamp(coverage, 0.0, 1.0);
  const uint64_t* row =
      counts_.data() + static_cast<size_t>(segment) * grid_.tile_count();
  uint64_t total = std::accumulate(row, row + grid_.tile_count(),
                                   static_cast<uint64_t>(0));
  if (total == 0) return popular;

  std::vector<int> order(grid_.tile_count());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [row](int a, int b) { return row[a] > row[b]; });

  uint64_t covered = 0;
  for (int index : order) {
    if (row[index] == 0) break;
    popular.push_back(grid_.TileAt(index));
    covered += row[index];
    if (static_cast<double>(covered) >= coverage * total) break;
  }
  return popular;
}

namespace {

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<uint8_t>((v >> shift) & 0xff));
  }
}

Result<uint64_t> GetU64(Slice data, size_t* pos) {
  if (*pos + 8 > data.size()) {
    return Status::Corruption("popularity model truncated");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data[(*pos)++];
  return v;
}

}  // namespace

std::vector<uint8_t> PopularityModel::Serialize() const {
  std::vector<uint8_t> out;
  PutU64(&out, static_cast<uint64_t>(grid_.rows()));
  PutU64(&out, static_cast<uint64_t>(grid_.cols()));
  PutU64(&out, static_cast<uint64_t>(segment_count_));
  // Segment duration stored in microseconds to stay integral.
  PutU64(&out, static_cast<uint64_t>(segment_seconds_ * 1e6));
  PutU64(&out, static_cast<uint64_t>(viewer_count_));
  for (uint64_t count : counts_) PutU64(&out, count);
  return out;
}

Result<PopularityModel> PopularityModel::Parse(Slice data) {
  size_t pos = 0;
  uint64_t rows, cols, segments, duration_us, viewers;
  VC_ASSIGN_OR_RETURN(rows, GetU64(data, &pos));
  VC_ASSIGN_OR_RETURN(cols, GetU64(data, &pos));
  VC_ASSIGN_OR_RETURN(segments, GetU64(data, &pos));
  VC_ASSIGN_OR_RETURN(duration_us, GetU64(data, &pos));
  VC_ASSIGN_OR_RETURN(viewers, GetU64(data, &pos));
  if (rows == 0 || rows > 255 || cols == 0 || cols > 255 || segments == 0 ||
      segments > 1u << 20) {
    return Status::Corruption("popularity model has bad dimensions");
  }
  uint64_t expected = segments * rows * cols;
  if (data.size() != 40 + expected * 8) {
    return Status::Corruption("popularity model size mismatch");
  }
  PopularityModel model(TileGrid(static_cast<int>(rows),
                                 static_cast<int>(cols)),
                        duration_us / 1e6, static_cast<int>(segments));
  model.viewer_count_ = static_cast<int>(viewers);
  for (size_t i = 0; i < model.counts_.size(); ++i) {
    VC_ASSIGN_OR_RETURN(model.counts_[i], GetU64(data, &pos));
  }
  if (pos != data.size()) {
    return Status::Corruption("popularity model has trailing bytes");
  }
  return model;
}

}  // namespace vc
