#include "predict/accuracy.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"

namespace vc {

PredictionAccuracy EvaluatePredictor(Predictor* predictor,
                                     const HeadTrace& trace,
                                     const TileGrid& grid,
                                     const AccuracyOptions& options) {
  predictor->Reset();
  PredictionAccuracy accuracy;
  if (trace.empty()) return accuracy;

  std::vector<double> errors;
  double hits = 0;
  const double dt = 1.0 / options.feed_rate_hz;
  double next_eval = options.eval_interval;
  const double end = trace.duration() - options.lookahead_seconds;

  for (double t = 0.0; t <= trace.duration() + 1e-9; t += dt) {
    predictor->Observe(t, trace.At(t));
    if (t >= next_eval && t <= end) {
      next_eval += options.eval_interval;
      Orientation predicted = predictor->Predict(options.lookahead_seconds);
      Orientation actual = trace.At(t + options.lookahead_seconds);
      errors.push_back(AngularDistance(predicted, actual));
      // Tile hit: would the viewport streamed for the prediction contain
      // the tile the user actually looks at?
      auto covered =
          grid.TilesInViewport(predicted, options.fov_yaw, options.fov_pitch);
      TileId actual_tile = grid.TileFor(actual);
      bool hit = std::find(covered.begin(), covered.end(), actual_tile) !=
                 covered.end();
      if (hit) hits += 1;
      // Per-model accuracy counters, so sweeps over many traces accumulate
      // an aggregate hit/miss tally in the metrics registry.
      MetricRegistry::Global()
          .GetCounter("predict." + predictor->name() +
                      (hit ? ".eval_hits" : ".eval_misses"))
          ->Add();
    }
  }

  if (errors.empty()) return accuracy;
  accuracy.evaluations = static_cast<int>(errors.size());
  double sum = 0;
  for (double e : errors) sum += e;
  accuracy.mean_error_radians = sum / errors.size();
  std::sort(errors.begin(), errors.end());
  size_t p95 = static_cast<size_t>(0.95 * (errors.size() - 1));
  accuracy.p95_error_radians = errors[p95];
  accuracy.tile_hit_rate = hits / errors.size();
  return accuracy;
}

}  // namespace vc
