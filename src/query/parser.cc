#include "query/parser.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>

#include "common/math_util.h"

namespace vc {

namespace {

/// Recursive-descent parser over the pipe syntax. Arguments are raw tokens
/// (anything up to ',', ';', ')', '|'), so paths and rung names need no
/// quoting.
class Parser {
 public:
  explicit Parser(Slice text)
      : text_(text.empty() ? std::string() : text.ToString()) {}

  Result<Query> Parse() {
    Result<Query> query = ParsePipeline();
    if (!query.ok()) return query;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input after query");
    }
    return query;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("query parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string Ident() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(text_, start, pos_ - start);
  }

  /// One raw argument: everything up to a delimiter, trimmed.
  std::string Arg() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != ')' &&
           text_[pos_] != ';' && text_[pos_] != '|' && text_[pos_] != '(') {
      ++pos_;
    }
    size_t end = pos_;
    while (end > start &&
           std::isspace(static_cast<unsigned char>(text_[end - 1]))) {
      --end;
    }
    return std::string(text_, start, end - start);
  }

  /// Parses "(arg, arg, ...)" — possibly empty when absent entirely.
  Result<std::vector<std::string>> Args(bool parens_required) {
    std::vector<std::string> args;
    if (!Consume('(')) {
      if (parens_required) return Error("expected '('");
      return args;
    }
    if (Consume(')')) return args;
    while (true) {
      args.push_back(Arg());
      if (Consume(')')) return args;
      if (!Consume(',')) return Error("expected ',' or ')'");
    }
  }

  Result<double> Number(const std::string& arg, const char* what) {
    char* end = nullptr;
    double value = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end == nullptr || *end != '\0') {
      return Error(std::string("bad ") + what + " '" + arg + "'");
    }
    return value;
  }

  /// Range-checked integer argument. Rejects overflow instead of wrapping:
  /// a wrapped atoi once turned degrade(10^21) into a negative rung whose
  /// canonical form didn't re-parse (found by the query fuzzer).
  Result<int> Int(const std::string& arg, const char* what, long min_value,
                  long max_value) {
    char* end = nullptr;
    errno = 0;
    long value = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
        value < min_value || value > max_value) {
      return Error(std::string("bad ") + what + " '" + arg + "'");
    }
    return static_cast<int>(value);
  }

  Result<Query> ParsePipeline() {
    Result<Query> source = ParseSource();
    if (!source.ok()) return source;
    Query query = *std::move(source);
    while (true) {
      SkipSpace();
      if (!Consume('|')) return query;
      Result<Query> next = ParseStage(query);
      if (!next.ok()) return next;
      query = *std::move(next);
    }
  }

  Result<Query> ParseSource() {
    std::string op = Ident();
    if (op == "scan") {
      std::vector<std::string> args;
      VC_ASSIGN_OR_RETURN(args, Args(/*parens_required=*/true));
      if (args.size() != 1 || args[0].empty()) {
        return Error("scan takes one video name");
      }
      return Query::Scan(args[0]);
    }
    if (op == "union") {
      if (!Consume('(')) return Error("expected '(' after union");
      std::vector<Query> branches;
      while (true) {
        Result<Query> branch = ParsePipeline();
        if (!branch.ok()) return branch;
        branches.push_back(*std::move(branch));
        if (Consume(')')) break;
        if (!Consume(';')) return Error("expected ';' or ')' in union");
      }
      if (branches.size() < 2) {
        return Error("union needs at least two branches");
      }
      return Query::Union(std::move(branches));
    }
    if (op.empty()) return Error("expected a query");
    return Error("query must start with scan(...) or union(...), got '" + op +
                 "'");
  }

  Result<Query> ParseStage(const Query& input) {
    std::string op = Ident();
    if (op.empty()) return Error("expected an operator after '|'");
    std::vector<std::string> args;
    VC_ASSIGN_OR_RETURN(args, Args(/*parens_required=*/false));

    auto arity = [&](size_t n) -> Status {
      if (args.size() != n) {
        return Error(op + " takes " + std::to_string(n) + " argument" +
                     (n == 1 ? "" : "s"));
      }
      return Status::OK();
    };

    if (op == "timeslice") {
      VC_RETURN_IF_ERROR(arity(2));
      double t0, t1;
      VC_ASSIGN_OR_RETURN(t0, Number(args[0], "time"));
      VC_ASSIGN_OR_RETURN(t1, Number(args[1], "time"));
      return input.TimeSlice(t0, t1);
    }
    if (op == "frames") {
      VC_RETURN_IF_ERROR(arity(2));
      int first, last;
      VC_ASSIGN_OR_RETURN(first, Int(args[0], "frame", INT_MIN, INT_MAX));
      VC_ASSIGN_OR_RETURN(last, Int(args[1], "frame", INT_MIN, INT_MAX));
      return input.FrameSlice(first, last);
    }
    if (op == "viewport") {
      VC_RETURN_IF_ERROR(arity(4));
      double deg[4];
      for (int i = 0; i < 4; ++i) {
        VC_ASSIGN_OR_RETURN(deg[i], Number(args[i], "angle"));
      }
      return input.Viewport(DegToRad(deg[0]), DegToRad(deg[1]),
                            DegToRad(deg[2]), DegToRad(deg[3]));
    }
    if (op == "quality" || op == "degrade") {
      VC_RETURN_IF_ERROR(arity(1));
      if (args[0].empty()) return Error(op + " needs a rung name or index");
      bool numeric = args[0].find_first_not_of("0123456789") ==
                     std::string::npos;
      if (numeric) {
        int rung;
        VC_ASSIGN_OR_RETURN(rung, Int(args[0], "rung", 0, INT_MAX));
        return op == "quality" ? input.QualityFloor(rung)
                               : input.Degrade(rung);
      }
      return op == "quality" ? input.QualityFloor(args[0])
                             : input.Degrade(args[0]);
    }
    if (op == "encode") {
      if (args.empty()) return input.Encode();
      VC_RETURN_IF_ERROR(arity(1));
      int qp;
      VC_ASSIGN_OR_RETURN(qp, Int(args[0], "qp", INT_MIN, INT_MAX));
      return input.Encode(qp);
    }
    if (op == "store") {
      VC_RETURN_IF_ERROR(arity(1));
      if (args[0].empty()) return Error("store needs a video name");
      return input.Store(args[0]);
    }
    if (op == "tofile") {
      VC_RETURN_IF_ERROR(arity(1));
      if (args[0].empty()) return Error("tofile needs a path");
      return input.ToFile(args[0]);
    }
    if (op == "subscribe") {
      VC_RETURN_IF_ERROR(arity(1));
      if (args[0].empty()) return Error("subscribe needs a name");
      return input.Subscribe(args[0]);
    }
    return Error("unknown operator '" + op + "'");
  }

  std::string text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(Slice text) { return Parser(text).Parse(); }

}  // namespace vc
