#ifndef VC_QUERY_PARSER_H_
#define VC_QUERY_PARSER_H_

#include "common/result.h"
#include "common/slice.h"
#include "query/algebra.h"

namespace vc {

/// \brief Parses the text form of the query algebra (the `vcctl query`
/// surface) into a logical plan.
///
/// Grammar (whitespace-insensitive):
///
///     query    := pipeline
///     pipeline := source ( '|' stage )*
///     source   := 'scan' '(' name ')'
///               | 'union' '(' pipeline ( ';' pipeline )+ ')'
///     stage    := 'timeslice' '(' t0 ',' t1 ')'            seconds, [t0,t1)
///               | 'frames' '(' first ',' last ')'          inclusive
///               | 'viewport' '(' yaw ',' pitch ',' fovYaw ',' fovPitch ')'
///                                                          degrees
///               | 'quality' '(' rung ')'                   name or index
///               | 'degrade' '(' rung ')'
///               | 'encode' [ '(' qp ')' ]
///               | 'store' '(' name ')'
///               | 'tofile' '(' path ')'
///
/// Examples:
///
///     scan(venice) | timeslice(5,10) | viewport(180,90,100,80) | quality(high)
///     union(scan(a) | timeslice(0,2) ; scan(b) | timeslice(0,2)) | encode
///
/// Angles are degrees in the text form (converted to radians in the plan);
/// `Query::ToString()` emits this exact syntax, so parse/print round-trips.
Result<Query> ParseQuery(Slice text);

}  // namespace vc

#endif  // VC_QUERY_PARSER_H_
