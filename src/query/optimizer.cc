#include "query/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "common/math_util.h"
#include "obs/metrics.h"

namespace vc {

const char* SinkKindName(SinkKind kind) {
  switch (kind) {
    case SinkKind::kMaterialize:
      return "materialize";
    case SinkKind::kEncode:
      return "encode";
    case SinkKind::kStore:
      return "store";
    case SinkKind::kToFile:
      return "tofile";
  }
  return "unknown";
}

bool SegmentSlice::WholeSegment(const VideoMetadata& metadata) const {
  const SegmentInfo& info = metadata.segments[segment];
  return first_frame == static_cast<int>(info.start_frame) &&
         last_frame ==
             static_cast<int>(info.start_frame + info.frame_count) - 1;
}

int PhysicalPlan::ScannedCells() const {
  int scanned = 0;
  for (const ScanPlan& scan : scans) {
    for (const SegmentSlice& slice : scan.slices) {
      for (int rung : slice.tile_quality) {
        if (rung >= 0) ++scanned;
      }
    }
  }
  return scanned;
}

int PhysicalPlan::TotalCells() const {
  int total = 0;
  for (const ScanPlan& scan : scans) {
    total += scan.metadata.segment_count() * scan.metadata.tile_count();
  }
  return total;
}

namespace {

std::string Percent(int part, int whole) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%",
                whole > 0 ? 100.0 * part / whole : 0.0);
  return buffer;
}

Counter* ViewHitCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("query.view_hits");
  return counter;
}

/// Stored bytes of exactly the cells the plan scans (catalog statistics).
uint64_t PlanStoredBytes(const PhysicalPlan& plan) {
  uint64_t bytes = 0;
  for (const ScanPlan& scan : plan.scans) {
    for (const SegmentSlice& slice : scan.slices) {
      for (size_t tile = 0; tile < slice.tile_quality.size(); ++tile) {
        int rung = slice.tile_quality[tile];
        if (rung < 0) continue;
        bytes += scan.metadata
                     .cells[scan.metadata.CellIndex(slice.segment,
                                                    static_cast<int>(tile),
                                                    rung)]
                     .byte_size;
      }
    }
  }
  return bytes;
}

/// Output pixels a transcode of the plan would re-encode.
uint64_t PlanOutputPixels(const PhysicalPlan& plan) {
  uint64_t pixels = 0;
  for (const ScanPlan& scan : plan.scans) {
    const uint64_t frame_pixels = static_cast<uint64_t>(scan.metadata.width) *
                                  scan.metadata.height;
    for (const SegmentSlice& slice : scan.slices) {
      pixels += frame_pixels *
                static_cast<uint64_t>(slice.last_frame - slice.first_frame + 1);
    }
  }
  return pixels;
}

/// Predicates accumulated walking a chain top-down toward its Scan leaf.
struct ChainState {
  std::vector<const LogicalNode*> times;
  std::vector<const LogicalNode*> views;
  std::vector<const LogicalNode*> floors;
  std::vector<const LogicalNode*> degrades;

  bool empty() const {
    return times.empty() && views.empty() && floors.empty() &&
           degrades.empty();
  }
};

class Planner {
 public:
  Planner(StorageManager* storage, const OptimizeOptions& options)
      : storage_(storage), options_(options) {}

  Result<PhysicalPlan> Plan(const Query& query) {
    const LogicalNode* node = query.root().get();
    if (node == nullptr) return Status::InvalidArgument("empty query");

    // Peel the sink layers: [Subscribe] -> [Store|ToFile] -> [Encode] ->
    // predicates -> Scan/Union. Anything else at these positions is a
    // malformed chain.
    if (node->kind == LogicalOpKind::kSubscribe) {
      if (node->target.empty()) {
        return Status::InvalidArgument("subscribe needs a name");
      }
      plan_.standing_name = node->target;
      node = node->inputs[0].get();
    }
    if (node->kind == LogicalOpKind::kStore ||
        node->kind == LogicalOpKind::kToFile) {
      plan_.sink = node->kind == LogicalOpKind::kStore ? SinkKind::kStore
                                                       : SinkKind::kToFile;
      plan_.target = node->target;
      node = node->inputs[0].get();
      if (node->kind != LogicalOpKind::kEncode) {
        return Status::InvalidArgument(
            std::string(SinkKindName(plan_.sink)) +
            " sink requires an encoded input; add encode before it");
      }
    }
    if (node->kind == LogicalOpKind::kEncode) {
      if (plan_.sink == SinkKind::kMaterialize) plan_.sink = SinkKind::kEncode;
      plan_.encode_qp = node->encode_qp;
      node = node->inputs[0].get();
    }

    VC_RETURN_IF_ERROR(Walk(*node, ChainState{}));

    if (options_.scan_override != nullptr && plan_.scans.size() != 1) {
      return Status::InvalidArgument(
          "scan_override requires a single-scan plan");
    }
    ApplyTranscodeElision();
    ChooseAlternative();
    return std::move(plan_);
  }

 private:
  Status Walk(const LogicalNode& node, ChainState state) {
    switch (node.kind) {
      case LogicalOpKind::kScan:
        return BindScan(node, state);
      case LogicalOpKind::kUnion: {
        if (!state.empty()) {
          Log("push-predicates-into-union: outer predicates distributed to " +
              std::to_string(node.inputs.size()) + " branches");
        }
        for (const LogicalNodeRef& branch : node.inputs) {
          VC_RETURN_IF_ERROR(Walk(*branch, state));
        }
        return Status::OK();
      }
      case LogicalOpKind::kTimeSlice:
        state.times.push_back(&node);
        return Walk(*node.inputs[0], std::move(state));
      case LogicalOpKind::kViewport:
        state.views.push_back(&node);
        return Walk(*node.inputs[0], std::move(state));
      case LogicalOpKind::kQualityFloor:
        state.floors.push_back(&node);
        return Walk(*node.inputs[0], std::move(state));
      case LogicalOpKind::kDegrade:
        state.degrades.push_back(&node);
        return Walk(*node.inputs[0], std::move(state));
      case LogicalOpKind::kEncode:
      case LogicalOpKind::kStore:
      case LogicalOpKind::kToFile:
      case LogicalOpKind::kSubscribe:
        return Status::InvalidArgument(
            std::string(LogicalOpName(node.kind)) +
            " must be the outermost operators of a query");
    }
    return Status::InvalidArgument("unknown logical operator");
  }

  /// Resolves a rung reference against `ladder`.
  Result<int> ResolveRung(const LogicalNode& node,
                          const QualityLadder& ladder) {
    if (node.quality >= 0) {
      if (node.quality >= static_cast<int>(ladder.size())) {
        return Status::InvalidArgument(
            "quality rung " + std::to_string(node.quality) +
            " out of range (ladder has " + std::to_string(ladder.size()) +
            " rungs)");
      }
      return node.quality;
    }
    for (size_t i = 0; i < ladder.size(); ++i) {
      if (ladder[i].name == node.quality_name) return static_cast<int>(i);
    }
    return Status::NotFound("quality rung '" + node.quality_name +
                            "' not in ladder");
  }

  Status BindScan(const LogicalNode& scan, const ChainState& state) {
    ScanPlan out;
    if (options_.scan_override != nullptr) {
      out.metadata = *options_.scan_override;
      Log("scan " + out.metadata.name + ": pinned to caller-provided v" +
          std::to_string(out.metadata.version));
    } else {
      VC_ASSIGN_OR_RETURN(out.metadata, storage_->GetVideo(scan.video));
    }
    const VideoMetadata& metadata = out.metadata;
    const int tile_count = metadata.tile_count();
    const TileGrid grid = metadata.tile_grid();

    // --- Rule: fuse adjacent time predicates, then prune to a segment
    // range against the catalog's segment index.
    int total_frames = 0;
    if (!metadata.segments.empty()) {
      total_frames = static_cast<int>(metadata.segments.back().start_frame +
                                      metadata.segments.back().frame_count);
    }
    int first = 0;
    int last = total_frames - 1;
    if (state.times.size() > 1) {
      Log("fuse-timeslice: " + std::to_string(state.times.size()) +
          " time predicates intersected");
    }
    for (const LogicalNode* t : state.times) {
      int f0, f1;
      if (t->first_frame >= 0) {
        if (t->last_frame < t->first_frame) {
          return Status::InvalidArgument("empty frame slice");
        }
        f0 = t->first_frame;
        f1 = t->last_frame;
      } else {
        if (t->t1 <= t->t0) {
          return Status::InvalidArgument("empty timeslice: t1 <= t0");
        }
        // Frame k covers [k/fps, (k+1)/fps): the slice [t0, t1) keeps the
        // first frame starting at or after t0 through the last frame
        // starting strictly before t1.
        f0 = static_cast<int>(std::ceil(t->t0 * metadata.fps() - 1e-9));
        f1 = static_cast<int>(std::ceil(t->t1 * metadata.fps() - 1e-9)) - 1;
      }
      first = std::max(first, f0);
      last = std::min(last, f1);
    }

    int seg0 = 0;
    int seg1 = metadata.segment_count() - 1;
    if (!state.times.empty()) {
      seg0 = metadata.segment_count();
      seg1 = -1;
      for (int s = 0; s < metadata.segment_count(); ++s) {
        const SegmentInfo& info = metadata.segments[s];
        int s_first = static_cast<int>(info.start_frame);
        int s_last = s_first + static_cast<int>(info.frame_count) - 1;
        if (s_last >= first && s_first <= last) {
          seg0 = std::min(seg0, s);
          seg1 = std::max(seg1, s);
        }
      }
      Log("timeslice->segments: frames [" + std::to_string(first) + "," +
          std::to_string(last) + "] -> segments [" + std::to_string(seg0) +
          "," + std::to_string(seg1) + "] of " +
          std::to_string(metadata.segment_count()));
    }

    // --- Rule: fuse adjacent viewport predicates, then prune to the
    // equirectangular tile set the fused viewport intersects.
    std::set<int> in_view;
    bool has_view = !state.views.empty();
    if (state.views.size() > 1) {
      Log("fuse-viewport: " + std::to_string(state.views.size()) +
          " viewport predicates intersected");
    }
    for (size_t i = 0; i < state.views.size(); ++i) {
      const LogicalNode* v = state.views[i];
      std::set<int> tiles;
      for (const TileId& tile :
           grid.TilesInViewport(v->center, v->fov_yaw, v->fov_pitch)) {
        tiles.insert(grid.IndexOf(tile));
      }
      if (i == 0) {
        in_view = std::move(tiles);
      } else {
        std::set<int> merged;
        std::set_intersection(in_view.begin(), in_view.end(), tiles.begin(),
                              tiles.end(),
                              std::inserter(merged, merged.begin()));
        in_view = std::move(merged);
      }
    }
    if (!has_view) {
      for (int t = 0; t < tile_count; ++t) in_view.insert(t);
    } else {
      Log("viewport->tiles: kept " + std::to_string(in_view.size()) + " of " +
          std::to_string(tile_count) + " tiles");
    }

    // --- Rule: push quality selection down to a stored ladder rung.
    int floor_rung = 0;
    for (const LogicalNode* f : state.floors) {
      int rung;
      VC_ASSIGN_OR_RETURN(rung, ResolveRung(*f, metadata.ladder));
      floor_rung = std::max(floor_rung, rung);
    }
    if (!state.floors.empty()) {
      Log("quality-pushdown: serve stored rung " +
          std::to_string(floor_rung) + " ('" +
          metadata.ladder[floor_rung].name + "')");
    }

    // --- Rule: out-of-view tiles are kept at the degrade rung instead of
    // pruned when one was requested.
    int degrade_rung = -1;
    if (!state.degrades.empty()) {
      VC_ASSIGN_OR_RETURN(degrade_rung,
                          ResolveRung(*state.degrades.back(), metadata.ladder));
      if (has_view) {
        Log("degrade-out-of-view: out-of-view tiles kept at rung " +
            std::to_string(degrade_rung) + " ('" +
            metadata.ladder[degrade_rung].name + "')");
      }
    }

    for (int s = seg0; s <= seg1; ++s) {
      const SegmentInfo& info = metadata.segments[s];
      SegmentSlice slice;
      slice.segment = s;
      slice.first_frame =
          std::max(first, static_cast<int>(info.start_frame));
      slice.last_frame = std::min(
          last, static_cast<int>(info.start_frame + info.frame_count) - 1);
      slice.tile_quality.assign(tile_count, -1);
      for (int t = 0; t < tile_count; ++t) {
        if (in_view.count(t)) {
          slice.tile_quality[t] = floor_rung;
        } else if (degrade_rung >= 0) {
          slice.tile_quality[t] = degrade_rung;
        }
      }
      out.slices.push_back(std::move(slice));
    }
    plan_.scans.push_back(std::move(out));
    return Status::OK();
  }

  /// Marks the plan transcode-free when the Encode sink can be served by
  /// homomorphic bitstream stitching of stored cells.
  void ApplyTranscodeElision() {
    if (plan_.sink == SinkKind::kMaterialize) return;
    if (plan_.encode_qp >= 0) {
      Log("encode: explicit qp=" + std::to_string(plan_.encode_qp) +
          " forces a transcode");
      return;
    }
    int uniform_rung = -1;
    bool elidable = !plan_.scans.empty();
    for (const ScanPlan& scan : plan_.scans) {
      // All stitched streams must agree on geometry and cadence.
      const VideoMetadata& m0 = plan_.scans[0].metadata;
      if (scan.metadata.width != m0.width ||
          scan.metadata.height != m0.height ||
          scan.metadata.fps_times_100 != m0.fps_times_100 ||
          scan.metadata.tile_rows != m0.tile_rows ||
          scan.metadata.tile_cols != m0.tile_cols) {
        elidable = false;
        break;
      }
      if (scan.slices.empty()) elidable = false;
      for (const SegmentSlice& slice : scan.slices) {
        if (!slice.WholeSegment(scan.metadata)) elidable = false;
        for (int rung : slice.tile_quality) {
          if (rung < 0) elidable = false;
          if (uniform_rung < 0) uniform_rung = rung;
          if (rung != uniform_rung) elidable = false;
        }
        if (!elidable) break;
      }
      if (!elidable) break;
    }
    if (elidable) {
      plan_.transcode_free = true;
      Log("transcode-elision: full grid of whole segments at rung " +
          std::to_string(uniform_rung) +
          " -> stitch stored bitstreams, no transcode");
      return;
    }
    // The executor must re-encode; fix the quantizer now so the plan alone
    // determines the output bytes. Use the best rung the plan serves.
    int best_rung = -1;
    for (const ScanPlan& scan : plan_.scans) {
      for (const SegmentSlice& slice : scan.slices) {
        for (int rung : slice.tile_quality) {
          if (rung >= 0 && (best_rung < 0 || rung < best_rung)) {
            best_rung = rung;
          }
        }
      }
    }
    if (!plan_.scans.empty() && best_rung >= 0) {
      plan_.encode_qp = plan_.scans[0].metadata.ladder[best_rung].qp;
      Log("encode: partial plan, transcode at qp=" +
          std::to_string(plan_.encode_qp) + " (rung " +
          std::to_string(best_rung) + ")");
    }
  }

  /// A view-scan alternative plus everything needed to apply its rewrite.
  struct ViewRewrite {
    size_t alternative = 0;  ///< Index into plan_.alternatives.
    VideoMetadata metadata;  ///< The view video's catalog metadata.
    std::vector<int> view_segments;  ///< View segment per plan slice.
    std::string name;
    uint32_t source_version = 0;
  };

  /// Cost-based physical strategy selection for encode sinks. Enumerates
  /// the byte-equivalent alternatives (the elision decision's winner, any
  /// subsuming fresh views), lists the displaced strategy as infeasible,
  /// and rewrites the plan onto the cheapest feasible one. Never changes
  /// output bytes: every feasible alternative reproduces the baseline's
  /// stream exactly (view cells are the defining plan's stored output and
  /// MergeTileStreams(ExtractTileStream(x)) == x).
  void ChooseAlternative() {
    if (plan_.sink == SinkKind::kMaterialize) return;
    CostModel model_storage;
    const CostModel& model = options_.cost_model != nullptr
                                 ? *options_.cost_model
                                 : (model_storage = CostModel::Calibrated());
    const uint64_t bytes = PlanStoredBytes(plan_);
    const int cells = plan_.ScannedCells();
    const uint64_t pixels = PlanOutputPixels(plan_);

    const std::string volumes = std::to_string(cells) + " cells, " +
                                std::to_string(bytes) + "B stored";
    if (plan_.transcode_free) {
      PlanAlternative stitch;
      stitch.name = "stitch";
      stitch.cost_seconds = model.StitchCost(bytes, cells);
      stitch.detail = volumes;
      plan_.alternatives.push_back(std::move(stitch));

      PlanAlternative reencode;
      reencode.name = "re-encode";
      reencode.cost_seconds = model.TranscodeCost(bytes, cells, pixels);
      reencode.feasible = false;
      reencode.detail = "would change output bytes (re-quantizes elided plan)";
      plan_.alternatives.push_back(std::move(reencode));
    } else {
      PlanAlternative reencode;
      reencode.name = "re-encode";
      reencode.cost_seconds = model.TranscodeCost(bytes, cells, pixels);
      reencode.detail = volumes + ", " + std::to_string(pixels) + "px out";
      plan_.alternatives.push_back(std::move(reencode));

      PlanAlternative stitch;
      stitch.name = "stitch";
      stitch.cost_seconds = model.StitchCost(bytes, cells);
      stitch.feasible = false;
      stitch.detail = "plan not stitchable (partial coverage, mixed rungs, "
                      "or explicit qp)";
      plan_.alternatives.push_back(std::move(stitch));
    }

    std::vector<ViewRewrite> rewrites;
    if ((plan_.sink == SinkKind::kEncode || plan_.sink == SinkKind::kToFile) &&
        options_.views != nullptr && plan_.scans.size() == 1) {
      for (const MaterializedViewInfo& view : *options_.views) {
        TryViewCandidate(view, model, &rewrites);
      }
    }

    size_t best = plan_.alternatives.size();
    for (size_t i = 0; i < plan_.alternatives.size(); ++i) {
      const PlanAlternative& alt = plan_.alternatives[i];
      if (!alt.feasible) continue;
      if (best == plan_.alternatives.size() ||
          alt.cost_seconds < plan_.alternatives[best].cost_seconds) {
        best = i;
      }
    }
    if (best == plan_.alternatives.size()) return;
    plan_.alternatives[best].chosen = true;
    Log("cost-choice: " + plan_.alternatives[best].name + " est " +
        FormatCostMs(plan_.alternatives[best].cost_seconds) + " (cheapest of " +
        std::to_string(plan_.alternatives.size()) + " alternatives)");
    for (ViewRewrite& rewrite : rewrites) {
      if (rewrite.alternative != best) continue;
      ApplyViewRewrite(std::move(rewrite));
      break;
    }
  }

  /// Offers `view` as an alternative when it subsumes the current plan:
  /// same pinned source snapshot, the view's defining plan selects exactly
  /// the frames and per-tile rungs the incoming plan selects, the same
  /// transcode decision, and every needed segment is already maintained.
  void TryViewCandidate(const MaterializedViewInfo& view,
                        const CostModel& model,
                        std::vector<ViewRewrite>* rewrites) {
    const ScanPlan& scan = plan_.scans[0];
    if (scan.metadata.name != view.source) return;
    if (scan.metadata.version != view.source_version) return;

    // Re-derive the view's defining plan against the same pinned snapshot
    // the incoming plan bound to, so slice-by-slice comparison is exact.
    OptimizeOptions inner;
    inner.scan_override = &scan.metadata;
    static const CostModel kInnerModel;
    inner.cost_model = &kInnerModel;
    Result<PhysicalPlan> defining = Optimize(view.query, storage_, inner);
    if (!defining.ok()) return;
    if (defining->scans.size() != 1 || defining->sink != SinkKind::kStore) {
      return;
    }
    if (defining->transcode_free != plan_.transcode_free) return;
    if (!plan_.transcode_free && defining->encode_qp != plan_.encode_qp) {
      return;
    }

    // Map each incoming slice onto the defining plan's slice for the same
    // segment; both lists ascend by segment.
    const std::vector<SegmentSlice>& view_slices = defining->scans[0].slices;
    std::vector<int> mapped;
    size_t vi = 0;
    for (const SegmentSlice& wanted : scan.slices) {
      while (vi < view_slices.size() &&
             view_slices[vi].segment < wanted.segment) {
        ++vi;
      }
      if (vi >= view_slices.size() ||
          view_slices[vi].segment != wanted.segment) {
        return;
      }
      const SegmentSlice& have = view_slices[vi];
      if (have.first_frame != wanted.first_frame ||
          have.last_frame != wanted.last_frame ||
          have.tile_quality != wanted.tile_quality) {
        return;
      }
      if (static_cast<int>(vi) >= view.segments) return;  // not maintained
      mapped.push_back(static_cast<int>(vi));
    }
    if (mapped.empty()) return;

    Result<VideoMetadata> stored = storage_->GetVideo(view.name);
    if (!stored.ok()) return;
    VideoMetadata view_meta = *std::move(stored);
    if (view_meta.quality_count() != 1) return;
    if (view_meta.width != scan.metadata.width ||
        view_meta.height != scan.metadata.height ||
        view_meta.fps_times_100 != scan.metadata.fps_times_100 ||
        view_meta.tile_rows != scan.metadata.tile_rows ||
        view_meta.tile_cols != scan.metadata.tile_cols) {
      return;
    }
    const int view_tiles = view_meta.tile_count();
    uint64_t view_bytes = 0;
    for (size_t i = 0; i < mapped.size(); ++i) {
      if (mapped[i] >= view_meta.segment_count()) return;
      const SegmentSlice& wanted = scan.slices[i];
      const SegmentInfo& info = view_meta.segments[mapped[i]];
      if (static_cast<int>(info.frame_count) !=
          wanted.last_frame - wanted.first_frame + 1) {
        return;
      }
      for (int t = 0; t < view_tiles; ++t) {
        view_bytes +=
            view_meta.cells[view_meta.CellIndex(mapped[i], t, 0)].byte_size;
      }
    }
    const int view_cells = static_cast<int>(mapped.size()) * view_tiles;

    PlanAlternative alt;
    alt.name = "view-scan(" + view.name + ")";
    alt.cost_seconds = model.StitchCost(view_bytes, view_cells);
    alt.detail = std::to_string(view_cells) + " cells, " +
                 std::to_string(view_bytes) + "B stored, source v" +
                 std::to_string(view.source_version);
    ViewRewrite rewrite;
    rewrite.alternative = plan_.alternatives.size();
    rewrite.metadata = std::move(view_meta);
    rewrite.view_segments = std::move(mapped);
    rewrite.name = view.name;
    rewrite.source_version = view.source_version;
    rewrites->push_back(std::move(rewrite));
    plan_.alternatives.push_back(std::move(alt));
  }

  /// Retargets the plan's single scan at the view video: whole view
  /// segments, full tile grid, the view's only rung — always stitchable.
  void ApplyViewRewrite(ViewRewrite rewrite) {
    ScanPlan& scan = plan_.scans[0];
    const std::string source = scan.metadata.name;
    const int view_tiles = rewrite.metadata.tile_count();
    std::vector<SegmentSlice> slices;
    slices.reserve(rewrite.view_segments.size());
    for (int segment : rewrite.view_segments) {
      const SegmentInfo& info = rewrite.metadata.segments[segment];
      SegmentSlice slice;
      slice.segment = segment;
      slice.first_frame = static_cast<int>(info.start_frame);
      slice.last_frame =
          static_cast<int>(info.start_frame + info.frame_count) - 1;
      slice.tile_quality.assign(view_tiles, 0);
      slices.push_back(std::move(slice));
    }
    scan.metadata = std::move(rewrite.metadata);
    scan.slices = std::move(slices);
    plan_.transcode_free = true;
    plan_.encode_qp = -1;
    plan_.view_served = rewrite.name;
    ViewHitCounter()->Add(1);
    Log("view-match: '" + rewrite.name + "' subsumes query over " + source +
        " v" + std::to_string(rewrite.source_version) + " -> stitch " +
        std::to_string(scan.slices.size()) + " stored view segments");
  }

  void Log(std::string line) { plan_.rewrites.push_back(std::move(line)); }

  StorageManager* storage_;
  OptimizeOptions options_;
  PhysicalPlan plan_;
};

}  // namespace

std::string PhysicalPlan::Explain() const {
  std::string out = "plan: sink=";
  out += SinkKindName(sink);
  if (!target.empty()) out += "(" + target + ")";
  if (sink != SinkKind::kMaterialize) {
    out += transcode_free
               ? " transcode=elided"
               : " transcode=qp" + std::to_string(encode_qp);
  }
  if (!view_served.empty()) out += " view=" + view_served;
  if (!standing_name.empty()) out += " standing=" + standing_name;
  out += "\n";
  for (const ScanPlan& scan : scans) {
    const VideoMetadata& m = scan.metadata;
    out += "scan " + m.name + " v" + std::to_string(m.version) + ": " +
           std::to_string(m.segment_count()) + " segments, " +
           std::to_string(static_cast<int>(m.tile_rows)) + "x" +
           std::to_string(static_cast<int>(m.tile_cols)) + " tiles, " +
           std::to_string(m.quality_count()) + " rungs\n";
    const size_t kMaxSlices = 12;
    for (size_t i = 0; i < scan.slices.size() && i < kMaxSlices; ++i) {
      const SegmentSlice& slice = scan.slices[i];
      out += "  s" + std::to_string(slice.segment) + " frames [" +
             std::to_string(slice.first_frame) + "," +
             std::to_string(slice.last_frame) + "] tiles";
      bool any = false;
      for (size_t t = 0; t < slice.tile_quality.size(); ++t) {
        if (slice.tile_quality[t] < 0) continue;
        out += (any ? "," : " ") + std::to_string(t) + "@" +
               std::to_string(slice.tile_quality[t]);
        any = true;
      }
      if (!any) out += " none";
      out += "\n";
    }
    if (scan.slices.size() > kMaxSlices) {
      out += "  ... (" + std::to_string(scan.slices.size() - kMaxSlices) +
             " more segments)\n";
    }
  }
  int scanned = ScannedCells();
  int total = TotalCells();
  out += "cells: scan " + std::to_string(scanned) + " of " +
         std::to_string(total) + " (pruned " +
         std::to_string(total - scanned) + " = " +
         Percent(total - scanned, total) + ")\n";
  if (!alternatives.empty()) {
    out += "alternatives:\n";
    for (const PlanAlternative& alt : alternatives) {
      out += "  - " + alt.name + ": est " + FormatCostMs(alt.cost_seconds) +
             " (" + alt.detail + ")";
      if (alt.chosen) {
        out += " [chosen]";
      } else if (!alt.feasible) {
        out += " [infeasible]";
      }
      out += "\n";
    }
  }
  out += "rewrites:\n";
  for (const std::string& line : rewrites) out += "  - " + line + "\n";
  return out;
}

ManifestPlan ToManifestPlan(const ScanPlan& scan) {
  ManifestPlan plan;
  plan.entries.reserve(scan.slices.size());
  for (const SegmentSlice& slice : scan.slices) {
    ManifestPlan::Entry entry;
    entry.segment = slice.segment;
    entry.tile_quality = slice.tile_quality;
    plan.entries.push_back(std::move(entry));
  }
  return plan;
}

Result<PhysicalPlan> Optimize(const Query& query, StorageManager* storage,
                              const OptimizeOptions& options) {
  return Planner(storage, options).Plan(query);
}

}  // namespace vc
