#include "query/cost_model.h"

#include <cstdio>

#include "obs/metrics.h"

namespace vc {

CostModel CostModel::Calibrated() {
  CostModel model;
  MetricRegistry& registry = MetricRegistry::Global();
  HistogramSnapshot stitch =
      registry.GetHistogram("query.stitch_seconds_per_cell")->Snapshot();
  if (stitch.count > 0) model.stitch_seconds_per_cell = stitch.Mean();
  HistogramSnapshot decode =
      registry.GetHistogram("query.decode_seconds_per_cell")->Snapshot();
  if (decode.count > 0) model.decode_seconds_per_cell = decode.Mean();
  HistogramSnapshot encode =
      registry.GetHistogram("query.encode_seconds_per_pixel")->Snapshot();
  if (encode.count > 0) model.encode_seconds_per_pixel = encode.Mean();
  return model;
}

std::string FormatCostMs(double seconds) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3fms", seconds * 1000.0);
  return buffer;
}

}  // namespace vc
