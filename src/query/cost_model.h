#ifndef VC_QUERY_COST_MODEL_H_
#define VC_QUERY_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace vc {

// The optimizer's cost model: estimated host seconds for the primitive
// operations a physical plan composes — reading stored cell bytes,
// homomorphically stitching cell bitstreams, decoding cells to pixels, and
// re-encoding pixels. The optimizer (optimizer.cc) derives the operand
// volumes (bytes, cells, pixels) from catalog statistics — per-cell byte
// sizes, rung sizes, segment counts — and combines them with these
// coefficients to rank plan alternatives.
//
// Two construction modes:
//   - `CostModel{}` (the defaults): fixed, platform-independent
//     coefficients. Explain() golden tests pin plans built with these, so
//     cost-model changes show up as reviewable text diffs.
//   - `CostModel::Calibrated()`: defaults refined by the observed query.*
//     histograms (query.stitch_seconds_per_cell, query.decode_seconds_per_cell,
//     query.encode_seconds_per_pixel) that the executor feeds on every
//     execution — the longer a process runs queries, the closer the
//     estimates track the actual hardware.
//
// Calibration moves only *host* time estimates; the optimizer never lets a
// cost decision change output bytes (see ChooseAlternative in
// optimizer.cc), so calibrated and default models always produce
// byte-identical results — they may just pick a faster route to them.

struct CostModel {
  /// Seconds to read one stored byte through the cell cache (cold).
  double read_seconds_per_byte = 10e-9;
  /// Seconds to stitch one cell bitstream into a merged stream.
  double stitch_seconds_per_cell = 30e-6;
  /// Seconds to parse + decode one cell to pixels.
  double decode_seconds_per_cell = 400e-6;
  /// Seconds to re-encode one output pixel.
  double encode_seconds_per_pixel = 120e-9;

  /// Defaults refined from the query.* calibration histograms; coefficients
  /// whose histogram is still empty keep their defaults.
  static CostModel Calibrated();

  /// Estimated seconds to serve `bytes` of stored cells as `cells` stitched
  /// bitstreams (the transcode-free path).
  double StitchCost(uint64_t bytes, int cells) const {
    return read_seconds_per_byte * static_cast<double>(bytes) +
           stitch_seconds_per_cell * cells;
  }

  /// Estimated seconds to decode `cells` (`bytes` stored) and re-encode
  /// `pixels` output pixels (the transcode path).
  double TranscodeCost(uint64_t bytes, int cells, uint64_t pixels) const {
    return read_seconds_per_byte * static_cast<double>(bytes) +
           decode_seconds_per_cell * cells +
           encode_seconds_per_pixel * static_cast<double>(pixels);
  }
};

/// Deterministic "1.234ms" rendering of a cost estimate (three decimals),
/// used by Explain() so golden tests stay byte-stable.
std::string FormatCostMs(double seconds);

}  // namespace vc

#endif  // VC_QUERY_COST_MODEL_H_
