#ifndef VC_QUERY_OPTIMIZER_H_
#define VC_QUERY_OPTIMIZER_H_

#include <string>
#include <vector>

#include "query/algebra.h"
#include "query/cost_model.h"
#include "storage/metadata.h"
#include "storage/storage_manager.h"
#include "streaming/manifest.h"

namespace vc {

// Rule-based logical -> physical rewriting. The optimizer resolves each
// Scan leaf against the catalog, then turns the chain's declarative
// predicates into pruning decisions over the video's (segment × tile ×
// quality) cell lattice:
//
//   - adjacent TimeSlice (and adjacent Viewport) predicates are fused;
//   - time predicates become an inclusive global frame range, and that
//     range becomes a segment range against the catalog's segment index —
//     segments outside it never reach the executor;
//   - viewport predicates become equirectangular tile sets via
//     TileGrid::TilesInViewport — out-of-view tiles are pruned, or kept at
//     the Degrade rung when one was requested;
//   - quality selection is pushed down to stored ladder rungs, so the
//     executor serves stored bytes and only transcodes when an explicit
//     quantizer forces it;
//   - an Encode sink whose plan covers whole segments over the full tile
//     grid at one uniform stored rung is marked transcode-free: the
//     executor then stitches stored bitstreams homomorphically
//     (MergeTileStreams + ConcatenateStreams) without touching pixels.
//
// Every applied rule appends one line to `PhysicalPlan::rewrites`, and
// `Explain()` renders the plan plus those lines deterministically.
//
// Physical strategy selection is cost-based: for encode sinks the planner
// enumerates the feasible alternatives — homomorphic stitch, decode +
// re-encode, and (when a fresh materialized view subsumes the query) a
// view scan — estimates each with the CostModel from catalog statistics
// (per-cell bytes, segment counts, output pixels), and picks the cheapest.
// Only byte-equivalent alternatives compete: a strategy that would change
// the output bytes is listed in `alternatives` as infeasible, never chosen,
// so cost calibration moves host time without moving results.

/// \brief One materialized view offered to the optimizer as a rewrite
/// candidate (built by ViewCatalog::Candidates from persisted definitions).
/// The view video `name` holds, per maintained segment, exactly the bytes
/// the defining `query` produces over `source` at `source_version`.
struct MaterializedViewInfo {
  std::string name;            ///< Catalog name of the derived video.
  std::string source;          ///< The defining query's scanned video.
  uint32_t source_version = 0; ///< Source version maintained through.
  int segments = 0;            ///< Defining-plan slices materialized so far.
  Query query;                 ///< Parsed defining query (Store sink).
};

/// One strategy the planner costed. Infeasible entries are retained so
/// Explain() shows why they were rejected.
struct PlanAlternative {
  std::string name;          ///< "stitch", "re-encode", "view-scan(<v>)".
  double cost_seconds = 0.0; ///< CostModel estimate.
  bool feasible = true;      ///< False: listed for Explain only.
  bool chosen = false;
  std::string detail;        ///< Operand volumes or the rejection reason.
};

/// Per-segment slice of a scan after pruning: which global frames of the
/// segment survive and which rung each tile is served at (-1 = pruned).
struct SegmentSlice {
  int segment = 0;
  int first_frame = 0;  ///< Global frame index, clamped into the segment.
  int last_frame = 0;   ///< Inclusive.
  std::vector<int> tile_quality;  ///< Ladder rung per tile; -1 = pruned.

  /// True when the slice covers every frame of the segment.
  bool WholeSegment(const VideoMetadata& metadata) const;
};

/// One Scan leaf after predicate pushdown.
struct ScanPlan {
  VideoMetadata metadata;
  std::vector<SegmentSlice> slices;  ///< Ascending by segment.
};

/// What the plan does with the reconstructed result.
enum class SinkKind : uint8_t {
  kMaterialize,  ///< No sink op: executor returns decoded frames.
  kEncode,       ///< Encode only: executor returns one encoded stream.
  kStore,        ///< Commit the encoded result as a new catalog video.
  kToFile,       ///< Serialize the encoded result to a file.
};

const char* SinkKindName(SinkKind kind);

/// \brief Executable physical plan: pruned cell slices per scan, a sink,
/// and the rewrite log that produced them.
struct PhysicalPlan {
  std::vector<ScanPlan> scans;  ///< Union branches in playback order.
  SinkKind sink = SinkKind::kMaterialize;
  int encode_qp = -1;        ///< >= 0 forces a transcode at this quantizer.
  std::string target;        ///< Store name or file path.
  /// Encode sink can be served by homomorphically stitching stored cell
  /// bitstreams — no decode, no re-encode.
  bool transcode_free = false;
  std::vector<std::string> rewrites;  ///< One line per applied rule.
  /// Costed strategy alternatives for encode sinks (empty for materialize).
  /// Exactly one entry is `chosen` when non-empty.
  std::vector<PlanAlternative> alternatives;
  /// Name of the materialized view the plan scans instead of the source
  /// (empty when no view-matching rewrite applied).
  std::string view_served;
  /// Registration name from an outermost Subscribe operator; empty for
  /// one-shot queries. The plan itself executes one catch-up pass — the
  /// ViewMaintainer re-runs it per committed segment.
  std::string standing_name;

  /// Cells addressed by the scans' segment x tile lattice at one rung each.
  int ScannedCells() const;
  /// Cells the same scans would touch without pruning (every tile of every
  /// catalog segment, at one rung).
  int TotalCells() const;

  /// Deterministic multi-line rendering of the plan and its rewrite log.
  std::string Explain() const;
};

/// The manifest overlay for one optimized scan: what a server publishes so
/// a client fetches exactly the plan-selected cells (streaming/manifest.h).
ManifestPlan ToManifestPlan(const ScanPlan& scan);

struct OptimizeOptions {
  /// When set, the (single) Scan leaf binds to this metadata instead of the
  /// catalog's latest version — export paths pin an explicit version.
  const VideoMetadata* scan_override = nullptr;
  /// Materialized views offered for the view-matching rewrite (not owned).
  /// When an incoming encode-sink query is subsumed by a fresh view the
  /// planner may serve the view's stored cells instead of re-deriving the
  /// result — counted via the query.view_hits metric.
  const std::vector<MaterializedViewInfo>* views = nullptr;
  /// Cost model used to rank alternatives. nullptr (the default) uses
  /// CostModel::Calibrated(); tests pass an explicit default-constructed
  /// model so Explain() output is pinned.
  const CostModel* cost_model = nullptr;
};

/// Rewrites `query` into an executable plan against `storage`'s catalog.
/// Fails when a scan names an unknown video, a rung does not resolve
/// against its ladder, a predicate is empty (t0 >= t1), or the plan shape
/// is unsupported (e.g. Store sink without Encode).
Result<PhysicalPlan> Optimize(const Query& query, StorageManager* storage,
                              const OptimizeOptions& options = {});

}  // namespace vc

#endif  // VC_QUERY_OPTIMIZER_H_
