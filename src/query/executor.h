#ifndef VC_QUERY_EXECUTOR_H_
#define VC_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "codec/bitstream.h"
#include "image/frame.h"
#include "query/optimizer.h"
#include "storage/storage_manager.h"

namespace vc {

// The physical executor: runs a PhysicalPlan against the storage manager.
// Cell fetches go through the async cell-load path (ReadCellAsync batches
// per segment slice, issue-then-wait, so loads overlap on the I/O pool);
// decode and re-encode touch only the cells that survived pruning. Every
// execution reports to the metrics registry:
//
//   query.cells_scanned       cells fetched and decoded/stitched
//   query.cells_pruned        catalog cells the optimizer eliminated
//   query.transcodes          encode sinks served by decode + re-encode
//   query.transcodes_avoided  segment slices served as stored bytes
//   query.plan_seconds        Optimize() latency   (ExecuteQuery only)
//   query.exec_seconds        ExecutePlan() latency
//
// plus the cost-model calibration histograms (query/cost_model.h):
// query.stitch_seconds_per_cell, query.decode_seconds_per_cell,
// query.encode_seconds_per_pixel.

struct ExecuteOptions {
  /// Filter-after-scan baseline: fetch and decode every catalog cell of
  /// each scan at one rung, paste everything, then discard what the plan
  /// pruned (mask out-of-plan tiles back to black, drop out-of-range
  /// frames). Decoded output is byte-identical to the pruned execution —
  /// only the work differs. Benchmarks use this as the naive comparison;
  /// transcode elision is disabled because the baseline always decodes.
  bool naive_full_scan = false;
};

/// What an execution produced; which fields are set depends on the sink.
struct QueryResult {
  /// Decoded panorama frames in playback order (kMaterialize sink; also
  /// the intermediate the transcode path encodes from).
  std::vector<Frame> frames;
  /// The encoded result (kEncode, kStore, and kToFile sinks).
  EncodedVideo encoded;
  bool has_encoded = false;
  /// Catalog version written by a kStore sink.
  uint32_t stored_version = 0;

  // Work accounting for this execution (also mirrored to query.* metrics).
  int cells_scanned = 0;
  int cells_pruned = 0;
  int transcodes = 0;
  int transcodes_avoided = 0;
};

/// Runs `plan` against `storage`.
Result<QueryResult> ExecutePlan(const PhysicalPlan& plan,
                                StorageManager* storage,
                                const ExecuteOptions& options = {});

/// Optimize + ExecutePlan in one call, timing both phases into the
/// query.plan_seconds / query.exec_seconds histograms.
Result<QueryResult> ExecuteQuery(const Query& query, StorageManager* storage,
                                 const OptimizeOptions& optimize_options = {},
                                 const ExecuteOptions& execute_options = {});

// --- Building blocks for derived (materialized-view) videos. The view
// maintainer re-uses exactly the pieces the kStore sink is built from, so
// an incrementally maintained view is byte-identical to a full recompute.

/// Metadata for a video derived from `source` by a store/view plan: same
/// geometry, cadence, and tiling; `ladder` (single rung) replaces the
/// source ladder. Segments and cells are filled by the writer.
VideoMetadata DerivedVideoMetadata(const std::string& name,
                                   const VideoMetadata& source,
                                   const QualityLadder& ladder);

/// The single-rung ladder a kStore sink commits `plan`'s output at:
/// transcode-free plans keep the served rung's identity, transcode plans
/// get a synthetic "q<qp>" rung.
QualityLadder StoreLadderFor(const PhysicalPlan& plan);

/// Splits one encoded segment piece back into serialized per-tile cell
/// payloads (ExtractTileStream per tile, homomorphic — stitching the cells
/// reproduces `piece` byte-for-byte).
Result<std::vector<std::vector<uint8_t>>> SplitPieceToCells(
    const EncodedVideo& piece, int tile_rows, int tile_cols);

}  // namespace vc

#endif  // VC_QUERY_EXECUTOR_H_
