#ifndef VC_QUERY_ALGEBRA_H_
#define VC_QUERY_ALGEBRA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/orientation.h"

namespace vc {

// The declarative surface of the VR DBMS: a small logical algebra over
// stored (segment × tile × quality) videos. A query is a chain of logical
// operators over one or more Scan leaves; the optimizer (optimizer.h)
// rewrites the chain into a physical plan whose predicates have been turned
// into catalog pruning — time predicates into segment ranges, viewport
// predicates into equirectangular tile sets, quality selection into stored
// ladder rungs — and the executor (executor.h) runs only the surviving
// cells. Callers build plans either with the fluent `Query` builder or by
// parsing the text form (parser.h); `Query::ToString()` emits that text
// form, so the two surfaces round-trip.

/// Logical operator kinds, in the order they may appear bottom-up.
enum class LogicalOpKind : uint8_t {
  kScan,          ///< Leaf: one catalog video (latest committed version).
  kTimeSlice,     ///< Temporal predicate: seconds [t0, t1) or exact frames.
  kViewport,      ///< Spatial predicate: gaze direction + field of view.
  kQualityFloor,  ///< Minimum acceptable ladder rung for selected tiles.
  kDegrade,       ///< Keep out-of-view tiles, degraded to this rung.
  kUnion,         ///< Temporal concatenation of sub-queries, in order.
  kEncode,        ///< Produce one encoded stream (qp < 0: stored bytes).
  kStore,         ///< Sink: commit the result as a new catalog video.
  kToFile,        ///< Sink: serialize the encoded result to a file.
  kSubscribe,     ///< Standing-query marker: re-run per committed segment.
};

/// Stable text-form name of an operator ("scan", "timeslice", ...).
const char* LogicalOpName(LogicalOpKind kind);

struct LogicalNode;
using LogicalNodeRef = std::shared_ptr<const LogicalNode>;

/// \brief One node of a logical plan tree. Immutable once built; plans share
/// subtrees freely. Only the fields of the node's `kind` are meaningful.
struct LogicalNode {
  LogicalOpKind kind = LogicalOpKind::kScan;

  // kScan
  std::string video;

  // kTimeSlice: [t0, t1) in seconds, or an exact inclusive frame range when
  // first_frame >= 0 (the frame-accurate form used by ReconstructFrameRange).
  double t0 = 0.0;
  double t1 = 0.0;
  int first_frame = -1;
  int last_frame = -1;

  // kViewport
  Orientation center;
  double fov_yaw = 0.0;
  double fov_pitch = 0.0;

  // kQualityFloor / kDegrade: a ladder rung, by name or by index (>= 0).
  // Resolution against the scanned video's ladder happens at optimize time.
  std::string quality_name;
  int quality = -1;

  // kEncode: requested quantizer; -1 = serve stored rung bytes when a
  // stored rung satisfies the plan (transcode only otherwise).
  int encode_qp = -1;

  // kStore (catalog name) / kToFile (path).
  std::string target;

  /// Inputs: empty for kScan, one for chain operators, 2+ for kUnion.
  std::vector<LogicalNodeRef> inputs;
};

/// \brief Fluent builder over logical plans.
///
///   Query q = Query::Scan("venice")
///                 .TimeSlice(5, 10)
///                 .Viewport(kPi, kPi / 2, DegToRad(100), DegToRad(80))
///                 .QualityFloor("high")
///                 .Encode()
///                 .ToFile("/tmp/venice.vcc");
///
/// Every method returns a new Query wrapping the extended chain; the
/// builder never mutates, so prefixes may be reused.
class Query {
 public:
  /// Empty query (null root): only for containers and deferred assignment —
  /// ToString() is "" and Optimize() rejects it.
  Query() = default;

  /// Leaf: scan the latest committed version of catalog video `video`.
  static Query Scan(std::string video);

  /// Temporal union: plays `branches` back to back, in order.
  static Query Union(std::vector<Query> branches);

  /// Keeps media time [t0, t1) seconds.
  Query TimeSlice(double t0, double t1) const;

  /// Frame-accurate TimeSlice: keeps presentation frames [first, last],
  /// inclusive. Not expressible in the text form (which speaks seconds).
  Query FrameSlice(int first, int last) const;

  /// Keeps tiles intersecting the `fov_yaw` × `fov_pitch` viewport centered
  /// on (yaw, pitch). Radians.
  Query Viewport(double yaw, double pitch, double fov_yaw,
                 double fov_pitch) const;

  /// Selected tiles must be served at least at this ladder rung.
  Query QualityFloor(std::string rung_name) const;
  Query QualityFloor(int rung) const;

  /// Instead of pruning out-of-view tiles, keep them at this rung.
  Query Degrade(std::string rung_name) const;
  Query Degrade(int rung) const;

  /// Produce a single encoded stream. `qp` < 0 reuses stored rung bytes
  /// (homomorphic merge) whenever a stored rung satisfies the plan.
  Query Encode(int qp = -1) const;

  /// Sink: commit the (encoded) result as catalog video `name`.
  Query Store(std::string name) const;

  /// Sink: write the serialized encoded result to `path`.
  Query ToFile(std::string path) const;

  /// Marks the query as *standing*: registered with a ViewMaintainer (see
  /// view/maintainer.h) it re-runs incrementally for every segment the
  /// scanned video commits. `name` identifies the registration. Must be the
  /// outermost operator; a Store sink inside makes the standing query a
  /// materialized view.
  Query Subscribe(std::string name) const;

  /// Root of the logical plan (sink end of the chain).
  const LogicalNodeRef& root() const { return root_; }

  /// Parseable text form (see parser.h); angles are printed in degrees.
  std::string ToString() const;

 private:
  explicit Query(LogicalNodeRef root) : root_(std::move(root)) {}
  /// New node of `kind` with *this as its single input.
  Query Chain(LogicalNode node) const;

  LogicalNodeRef root_;
};

}  // namespace vc

#endif  // VC_QUERY_ALGEBRA_H_
