#include "query/executor.h"

#include <utility>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/homomorphic.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace vc {

namespace {

Counter* ScannedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("query.cells_scanned");
  return counter;
}

Counter* PrunedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("query.cells_pruned");
  return counter;
}

Counter* TranscodeCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("query.transcodes");
  return counter;
}

Counter* TranscodeAvoidedCounter() {
  static Counter* counter =
      MetricRegistry::Global().GetCounter("query.transcodes_avoided");
  return counter;
}

Histogram* PlanHistogram() {
  static Histogram* histogram =
      MetricRegistry::Global().GetHistogram("query.plan_seconds");
  return histogram;
}

Histogram* ExecHistogram() {
  static Histogram* histogram =
      MetricRegistry::Global().GetHistogram("query.exec_seconds");
  return histogram;
}

// Cost-model calibration feeds (CostModel::Calibrated): observed per-cell
// stitch/decode time and per-pixel encode time.
Histogram* StitchPerCellHistogram() {
  static Histogram* histogram =
      MetricRegistry::Global().GetHistogram("query.stitch_seconds_per_cell");
  return histogram;
}

Histogram* DecodePerCellHistogram() {
  static Histogram* histogram =
      MetricRegistry::Global().GetHistogram("query.decode_seconds_per_cell");
  return histogram;
}

Histogram* EncodePerPixelHistogram() {
  static Histogram* histogram =
      MetricRegistry::Global().GetHistogram("query.encode_seconds_per_pixel");
  return histogram;
}

/// One fetched-and-parsed cell stream.
struct FetchedCell {
  int tile = 0;
  EncodedVideo video;
};

/// Issues async demand reads for `tiles` of one segment (issue first, wait
/// after, so the loads overlap on the storage I/O pool), then parses each
/// stream. `tiles` holds (tile, rung) pairs.
Result<std::vector<FetchedCell>> FetchCells(
    StorageManager* storage, const VideoMetadata& metadata, int segment,
    const std::vector<std::pair<int, int>>& tiles) {
  std::vector<LruCache::AsyncHandle> handles;
  handles.reserve(tiles.size());
  for (const auto& [tile, rung] : tiles) {
    LruCache::AsyncHandle handle;
    VC_ASSIGN_OR_RETURN(
        handle, storage->ReadCellAsync(metadata, segment, tile, rung));
    handles.push_back(std::move(handle));
  }
  std::vector<FetchedCell> out;
  out.reserve(tiles.size());
  for (size_t i = 0; i < tiles.size(); ++i) {
    LruCache::Value bytes;
    VC_ASSIGN_OR_RETURN(bytes, handles[i].Wait());
    FetchedCell cell;
    cell.tile = tiles[i].first;
    VC_ASSIGN_OR_RETURN(cell.video, EncodedVideo::Parse(Slice(*bytes)));
    const SegmentInfo& info = metadata.segments[segment];
    if (cell.video.frames.size() != info.frame_count) {
      return Status::Corruption("cell frame count mismatch");
    }
    out.push_back(std::move(cell));
  }
  return out;
}

/// Decodes `cell` and pastes frames [first, last] (global indices) into
/// `canvases` (canvases[0] is frame `first`). The whole stream is decoded —
/// inter frames need their references — but only in-range frames land.
Status DecodeInto(const FetchedCell& cell, const TileGrid& grid,
                  const VideoMetadata& metadata, int segment, int first,
                  int last, std::vector<Frame>* canvases) {
  std::unique_ptr<Decoder> decoder;
  VC_ASSIGN_OR_RETURN(decoder, Decoder::Create(cell.video.header));
  TileGrid::PixelRect rect;
  VC_ASSIGN_OR_RETURN(rect,
                      grid.PixelRectOf(grid.TileAt(cell.tile), metadata.width,
                                       metadata.height, 16));
  const int base = static_cast<int>(metadata.segments[segment].start_frame);
  for (size_t i = 0; i < cell.video.frames.size(); ++i) {
    Frame tile_frame;
    VC_ASSIGN_OR_RETURN(tile_frame,
                        decoder->Decode(Slice(cell.video.frames[i].payload)));
    int global = base + static_cast<int>(i);
    if (global < first || global > last) continue;
    VC_RETURN_IF_ERROR(
        (*canvases)[global - first].Paste(tile_frame, rect.x, rect.y));
  }
  return Status::OK();
}

/// The rung the naive baseline reads pruned cells at: the best rung the
/// scan actually serves (the discarded pixels never reach the output, so
/// any deterministic choice preserves byte identity).
int NaiveRung(const ScanPlan& scan) {
  int best = -1;
  for (const SegmentSlice& slice : scan.slices) {
    for (int rung : slice.tile_quality) {
      if (rung >= 0 && (best < 0 || rung < best)) best = rung;
    }
  }
  return best < 0 ? 0 : best;
}

/// Materializes the plan's output frames, grouped per segment slice (the
/// grouping the encode path needs — each group starts at a keyframe).
/// Pruned mode touches only surviving cells; naive mode fetches and decodes
/// every catalog cell of each scan, then discards out-of-plan pixels.
Result<std::vector<std::vector<Frame>>> MaterializeSlices(
    const PhysicalPlan& plan, StorageManager* storage, bool naive,
    QueryResult* result) {
  std::vector<std::vector<Frame>> groups;
  for (const ScanPlan& scan : plan.scans) {
    const VideoMetadata& metadata = scan.metadata;
    const TileGrid grid = metadata.tile_grid();
    const int fallback = NaiveRung(scan);
    size_t next_slice = 0;
    for (int segment = 0; segment < metadata.segment_count(); ++segment) {
      const SegmentSlice* slice = nullptr;
      if (next_slice < scan.slices.size() &&
          scan.slices[next_slice].segment == segment) {
        slice = &scan.slices[next_slice];
        ++next_slice;
      }
      if (!naive && slice == nullptr) continue;

      std::vector<std::pair<int, int>> tiles;
      for (int tile = 0; tile < metadata.tile_count(); ++tile) {
        int rung = slice != nullptr ? slice->tile_quality[tile] : -1;
        if (rung >= 0) {
          tiles.emplace_back(tile, rung);
        } else if (naive) {
          tiles.emplace_back(tile, fallback);
        }
      }
      if (tiles.empty() && slice == nullptr) continue;

      int first = 0;
      int last = -1;
      if (slice != nullptr) {
        first = slice->first_frame;
        last = slice->last_frame;
      }
      std::vector<Frame> canvases(
          slice != nullptr ? last - first + 1 : 0,
          Frame(metadata.width, metadata.height));

      std::vector<FetchedCell> cells;
      VC_ASSIGN_OR_RETURN(cells,
                          FetchCells(storage, metadata, segment, tiles));
      result->cells_scanned += static_cast<int>(cells.size());
      Stopwatch decode_watch;
      for (const FetchedCell& cell : cells) {
        if (canvases.empty()) continue;  // naive read of a pruned segment
        VC_RETURN_IF_ERROR(DecodeInto(cell, grid, metadata, segment, first,
                                      last, &canvases));
      }
      if (!cells.empty() && !canvases.empty()) {
        DecodePerCellHistogram()->Observe(decode_watch.ElapsedSeconds() /
                                          static_cast<double>(cells.size()));
      }
      if (slice == nullptr) continue;

      if (naive) {
        // Filter-after-scan: out-of-plan tiles were decoded and pasted;
        // mask them back to the canvas fill so the output matches what the
        // pruned execution never painted.
        for (int tile = 0; tile < metadata.tile_count(); ++tile) {
          if (slice->tile_quality[tile] >= 0) continue;
          TileGrid::PixelRect rect;
          VC_ASSIGN_OR_RETURN(
              rect, grid.PixelRectOf(grid.TileAt(tile), metadata.width,
                                     metadata.height, 16));
          for (Frame& canvas : canvases) {
            canvas.FillRect(rect.x, rect.y, rect.width, rect.height, 16, 128,
                            128);
          }
        }
      }
      groups.push_back(std::move(canvases));
    }
  }
  return groups;
}

/// Homomorphic path: stitch stored cell bitstreams into one stream per
/// slice — no decode, no re-encode.
Result<std::vector<EncodedVideo>> StitchSlices(const PhysicalPlan& plan,
                                               StorageManager* storage,
                                               QueryResult* result) {
  std::vector<EncodedVideo> pieces;
  for (const ScanPlan& scan : plan.scans) {
    const VideoMetadata& metadata = scan.metadata;
    for (const SegmentSlice& slice : scan.slices) {
      std::vector<std::pair<int, int>> tiles;
      for (int tile = 0; tile < metadata.tile_count(); ++tile) {
        tiles.emplace_back(tile, slice.tile_quality[tile]);
      }
      std::vector<FetchedCell> cells;
      VC_ASSIGN_OR_RETURN(
          cells, FetchCells(storage, metadata, slice.segment, tiles));
      result->cells_scanned += static_cast<int>(cells.size());
      std::vector<EncodedVideo> parts;
      parts.reserve(cells.size());
      for (FetchedCell& cell : cells) parts.push_back(std::move(cell.video));
      Stopwatch stitch_watch;
      EncodedVideo merged;
      VC_ASSIGN_OR_RETURN(
          merged, MergeTileStreams(parts, metadata.tile_rows,
                                   metadata.tile_cols, metadata.width,
                                   metadata.height));
      if (!parts.empty()) {
        StitchPerCellHistogram()->Observe(stitch_watch.ElapsedSeconds() /
                                          static_cast<double>(parts.size()));
      }
      pieces.push_back(std::move(merged));
      ++result->transcodes_avoided;
    }
  }
  return pieces;
}

/// Commits `pieces` (one encoded stream per segment) as catalog video
/// `name` at the single-rung ladder `ladder`, splitting each piece back
/// into per-tile cells homomorphically.
Result<uint32_t> StorePieces(StorageManager* storage, const std::string& name,
                             const VideoMetadata& source,
                             const QualityLadder& ladder,
                             const std::vector<EncodedVideo>& pieces) {
  std::unique_ptr<StorageManager::VideoWriter> writer;
  VC_ASSIGN_OR_RETURN(
      writer,
      storage->NewVideoWriter(DerivedVideoMetadata(name, source, ladder)));
  for (const EncodedVideo& piece : pieces) {
    std::vector<std::vector<uint8_t>> cells;
    VC_ASSIGN_OR_RETURN(
        cells, SplitPieceToCells(piece, source.tile_rows, source.tile_cols));
    VC_RETURN_IF_ERROR(writer->AddSegment(
        static_cast<uint32_t>(piece.frames.size()), cells));
  }
  return writer->Commit();
}

}  // namespace

VideoMetadata DerivedVideoMetadata(const std::string& name,
                                   const VideoMetadata& source,
                                   const QualityLadder& ladder) {
  VideoMetadata metadata;
  metadata.name = name;
  metadata.width = source.width;
  metadata.height = source.height;
  metadata.fps_times_100 = source.fps_times_100;
  metadata.frames_per_segment = source.frames_per_segment;
  metadata.tile_rows = source.tile_rows;
  metadata.tile_cols = source.tile_cols;
  metadata.spherical = source.spherical;
  metadata.ladder = ladder;
  return metadata;
}

QualityLadder StoreLadderFor(const PhysicalPlan& plan) {
  const VideoMetadata& lead = plan.scans[0].metadata;
  if (plan.transcode_free) {
    int rung = plan.scans[0].slices[0].tile_quality[0];
    return {lead.ladder[rung]};
  }
  int qp = plan.encode_qp >= 0 ? plan.encode_qp : lead.ladder[0].qp;
  return {{"q" + std::to_string(qp), qp}};
}

Result<std::vector<std::vector<uint8_t>>> SplitPieceToCells(
    const EncodedVideo& piece, int tile_rows, int tile_cols) {
  const TileGrid grid(tile_rows, tile_cols);
  std::vector<std::vector<uint8_t>> cells;
  cells.reserve(grid.tile_count());
  for (int tile = 0; tile < grid.tile_count(); ++tile) {
    EncodedVideo cell;
    VC_ASSIGN_OR_RETURN(cell, ExtractTileStream(piece, grid.TileAt(tile)));
    cells.push_back(cell.Serialize());
  }
  return cells;
}

Result<QueryResult> ExecutePlan(const PhysicalPlan& plan,
                                StorageManager* storage,
                                const ExecuteOptions& options) {
  Stopwatch watch;
  QueryResult result;
  if (plan.scans.empty()) {
    return Status::InvalidArgument("plan has no scans");
  }

  const bool encode_sink = plan.sink != SinkKind::kMaterialize;
  const VideoMetadata& lead = plan.scans[0].metadata;
  if (encode_sink) {
    for (const ScanPlan& scan : plan.scans) {
      if (scan.metadata.width != lead.width ||
          scan.metadata.height != lead.height ||
          scan.metadata.fps_times_100 != lead.fps_times_100 ||
          scan.metadata.tile_rows != lead.tile_rows ||
          scan.metadata.tile_cols != lead.tile_cols) {
        return Status::InvalidArgument(
            "union branches disagree on geometry; cannot encode");
      }
    }
  }

  std::vector<EncodedVideo> pieces;
  if (encode_sink && plan.transcode_free && !options.naive_full_scan) {
    VC_ASSIGN_OR_RETURN(pieces, StitchSlices(plan, storage, &result));
  } else {
    std::vector<std::vector<Frame>> groups;
    VC_ASSIGN_OR_RETURN(
        groups, MaterializeSlices(plan, storage, options.naive_full_scan,
                                  &result));
    if (!encode_sink) {
      for (std::vector<Frame>& group : groups) {
        for (Frame& frame : group) result.frames.push_back(std::move(frame));
      }
    } else {
      if (groups.empty()) {
        return Status::InvalidArgument(
            "query selects no cells; nothing to encode");
      }
      EncoderOptions encode;
      encode.width = lead.width;
      encode.height = lead.height;
      encode.fps = lead.fps();
      encode.gop_length = lead.frames_per_segment;
      encode.qp = plan.encode_qp >= 0 ? plan.encode_qp : lead.ladder[0].qp;
      encode.tile_rows = lead.tile_rows;
      encode.tile_cols = lead.tile_cols;
      for (const std::vector<Frame>& group : groups) {
        Stopwatch encode_watch;
        EncodedVideo piece;
        VC_ASSIGN_OR_RETURN(piece, EncodeVideo(group, encode));
        const uint64_t group_pixels = static_cast<uint64_t>(lead.width) *
                                      lead.height * group.size();
        if (group_pixels > 0) {
          EncodePerPixelHistogram()->Observe(
              encode_watch.ElapsedSeconds() /
              static_cast<double>(group_pixels));
        }
        pieces.push_back(std::move(piece));
        ++result.transcodes;
      }
    }
  }

  if (encode_sink) {
    if (pieces.empty()) {
      return Status::InvalidArgument(
          "query selects no cells; nothing to encode");
    }
    switch (plan.sink) {
      case SinkKind::kEncode:
      case SinkKind::kToFile: {
        VC_ASSIGN_OR_RETURN(result.encoded, ConcatenateStreams(pieces));
        result.has_encoded = true;
        if (plan.sink == SinkKind::kToFile) {
          std::vector<uint8_t> bytes = result.encoded.Serialize();
          VC_RETURN_IF_ERROR(
              storage->env()->WriteFile(plan.target, Slice(bytes)));
        }
        break;
      }
      case SinkKind::kStore: {
        QualityLadder ladder;
        if (options.naive_full_scan && plan.transcode_free) {
          // The naive baseline re-encodes even elided plans.
          int qp = plan.encode_qp >= 0 ? plan.encode_qp : lead.ladder[0].qp;
          ladder = {{"q" + std::to_string(qp), qp}};
        } else {
          ladder = StoreLadderFor(plan);
        }
        VC_ASSIGN_OR_RETURN(
            result.stored_version,
            StorePieces(storage, plan.target, lead, ladder, pieces));
        VC_ASSIGN_OR_RETURN(result.encoded, ConcatenateStreams(pieces));
        result.has_encoded = true;
        break;
      }
      case SinkKind::kMaterialize:
        break;
    }
  }

  if (!options.naive_full_scan) {
    result.cells_pruned = plan.TotalCells() - plan.ScannedCells();
  }
  ScannedCounter()->Add(static_cast<uint64_t>(result.cells_scanned));
  PrunedCounter()->Add(static_cast<uint64_t>(result.cells_pruned));
  TranscodeCounter()->Add(static_cast<uint64_t>(result.transcodes));
  TranscodeAvoidedCounter()->Add(
      static_cast<uint64_t>(result.transcodes_avoided));
  ExecHistogram()->Observe(watch.ElapsedSeconds());
  return result;
}

Result<QueryResult> ExecuteQuery(const Query& query, StorageManager* storage,
                                 const OptimizeOptions& optimize_options,
                                 const ExecuteOptions& execute_options) {
  Stopwatch watch;
  PhysicalPlan plan;
  VC_ASSIGN_OR_RETURN(plan, Optimize(query, storage, optimize_options));
  PlanHistogram()->Observe(watch.ElapsedSeconds());
  return ExecutePlan(plan, storage, execute_options);
}

}  // namespace vc
