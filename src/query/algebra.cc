#include "query/algebra.h"

#include <cstdio>

#include "common/math_util.h"

namespace vc {

const char* LogicalOpName(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kScan:
      return "scan";
    case LogicalOpKind::kTimeSlice:
      return "timeslice";
    case LogicalOpKind::kViewport:
      return "viewport";
    case LogicalOpKind::kQualityFloor:
      return "quality";
    case LogicalOpKind::kDegrade:
      return "degrade";
    case LogicalOpKind::kUnion:
      return "union";
    case LogicalOpKind::kEncode:
      return "encode";
    case LogicalOpKind::kStore:
      return "store";
    case LogicalOpKind::kToFile:
      return "tofile";
    case LogicalOpKind::kSubscribe:
      return "subscribe";
  }
  return "unknown";
}

Query Query::Scan(std::string video) {
  LogicalNode node;
  node.kind = LogicalOpKind::kScan;
  node.video = std::move(video);
  return Query(std::make_shared<const LogicalNode>(std::move(node)));
}

Query Query::Union(std::vector<Query> branches) {
  LogicalNode node;
  node.kind = LogicalOpKind::kUnion;
  for (Query& branch : branches) node.inputs.push_back(branch.root_);
  return Query(std::make_shared<const LogicalNode>(std::move(node)));
}

Query Query::Chain(LogicalNode node) const {
  node.inputs = {root_};
  return Query(std::make_shared<const LogicalNode>(std::move(node)));
}

Query Query::TimeSlice(double t0, double t1) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kTimeSlice;
  node.t0 = t0;
  node.t1 = t1;
  return Chain(std::move(node));
}

Query Query::FrameSlice(int first, int last) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kTimeSlice;
  node.first_frame = first;
  node.last_frame = last;
  return Chain(std::move(node));
}

Query Query::Viewport(double yaw, double pitch, double fov_yaw,
                      double fov_pitch) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kViewport;
  node.center = Orientation{yaw, pitch}.Normalized();
  node.fov_yaw = fov_yaw;
  node.fov_pitch = fov_pitch;
  return Chain(std::move(node));
}

Query Query::QualityFloor(std::string rung_name) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kQualityFloor;
  node.quality_name = std::move(rung_name);
  return Chain(std::move(node));
}

Query Query::QualityFloor(int rung) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kQualityFloor;
  node.quality = rung;
  return Chain(std::move(node));
}

Query Query::Degrade(std::string rung_name) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kDegrade;
  node.quality_name = std::move(rung_name);
  return Chain(std::move(node));
}

Query Query::Degrade(int rung) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kDegrade;
  node.quality = rung;
  return Chain(std::move(node));
}

Query Query::Encode(int qp) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kEncode;
  node.encode_qp = qp;
  return Chain(std::move(node));
}

Query Query::Store(std::string name) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kStore;
  node.target = std::move(name);
  return Chain(std::move(node));
}

Query Query::ToFile(std::string path) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kToFile;
  node.target = std::move(path);
  return Chain(std::move(node));
}

Query Query::Subscribe(std::string name) const {
  LogicalNode node;
  node.kind = LogicalOpKind::kSubscribe;
  node.target = std::move(name);
  return Chain(std::move(node));
}

namespace {

/// Shortest decimal that round-trips for the values queries carry.
std::string Num(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

void Print(const LogicalNode& node, std::string* out) {
  if (!node.inputs.empty() && node.kind != LogicalOpKind::kUnion) {
    Print(*node.inputs[0], out);
    *out += " | ";
  }
  switch (node.kind) {
    case LogicalOpKind::kScan:
      *out += "scan(" + node.video + ")";
      return;
    case LogicalOpKind::kUnion: {
      *out += "union(";
      for (size_t i = 0; i < node.inputs.size(); ++i) {
        if (i > 0) *out += " ; ";
        Print(*node.inputs[i], out);
      }
      *out += ")";
      return;
    }
    case LogicalOpKind::kTimeSlice:
      if (node.first_frame >= 0) {
        *out += "frames(" + std::to_string(node.first_frame) + "," +
                std::to_string(node.last_frame) + ")";
      } else {
        *out += "timeslice(" + Num(node.t0) + "," + Num(node.t1) + ")";
      }
      return;
    case LogicalOpKind::kViewport:
      *out += "viewport(" + Num(RadToDeg(node.center.yaw)) + "," +
              Num(RadToDeg(node.center.pitch)) + "," +
              Num(RadToDeg(node.fov_yaw)) + "," +
              Num(RadToDeg(node.fov_pitch)) + ")";
      return;
    case LogicalOpKind::kQualityFloor:
    case LogicalOpKind::kDegrade:
      *out += LogicalOpName(node.kind);
      *out += "(";
      *out += node.quality >= 0 ? std::to_string(node.quality)
                                : node.quality_name;
      *out += ")";
      return;
    case LogicalOpKind::kEncode:
      *out += node.encode_qp >= 0 ? "encode(" + std::to_string(node.encode_qp) + ")"
                                  : "encode";
      return;
    case LogicalOpKind::kStore:
    case LogicalOpKind::kToFile:
    case LogicalOpKind::kSubscribe:
      *out += LogicalOpName(node.kind);
      *out += "(" + node.target + ")";
      return;
  }
}

}  // namespace

std::string Query::ToString() const {
  std::string out;
  if (root_ != nullptr) Print(*root_, &out);
  return out;
}

}  // namespace vc
