#include "container/boxes.h"

namespace vc {

namespace {

/// Minimal big-endian byte packer/unpacker for leaf payloads.
class Packer {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U16(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v >> 8));
    out_.push_back(static_cast<uint8_t>(v & 0xff));
  }
  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v >> 16));
    U16(static_cast<uint16_t>(v & 0xffff));
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v >> 32));
    U32(static_cast<uint32_t>(v & 0xffffffff));
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

class Unpacker {
 public:
  explicit Unpacker(Slice data) : data_(data) {}

  Status U8(uint8_t* v) {
    VC_RETURN_IF_ERROR(Need(1));
    *v = data_[pos_++];
    return Status::OK();
  }
  Status U16(uint16_t* v) {
    VC_RETURN_IF_ERROR(Need(2));
    *v = static_cast<uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return Status::OK();
  }
  Status U32(uint32_t* v) {
    uint16_t hi, lo;
    VC_RETURN_IF_ERROR(U16(&hi));
    VC_RETURN_IF_ERROR(U16(&lo));
    *v = (static_cast<uint32_t>(hi) << 16) | lo;
    return Status::OK();
  }
  Status U64(uint64_t* v) {
    uint32_t hi, lo;
    VC_RETURN_IF_ERROR(U32(&hi));
    VC_RETURN_IF_ERROR(U32(&lo));
    *v = (static_cast<uint64_t>(hi) << 32) | lo;
    return Status::OK();
  }
  Status Str(std::string* s) {
    uint32_t length;
    VC_RETURN_IF_ERROR(U32(&length));
    VC_RETURN_IF_ERROR(Need(length));
    s->assign(reinterpret_cast<const char*>(data_.data() + pos_), length);
    pos_ += length;
    return Status::OK();
  }
  bool Done() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Corruption("box payload truncated");
    }
    return Status::OK();
  }

  Slice data_;
  size_t pos_ = 0;
};

}  // namespace

Box TrackHeader::ToBox() const {
  Packer p;
  p.U32(track_id);
  p.U32(codec);
  p.U16(width);
  p.U16(height);
  p.U16(fps_times_100);
  p.U32(frame_count);
  return Box(kBoxTkhd, p.Take());
}

Result<TrackHeader> TrackHeader::FromBox(const Box& box) {
  if (box.type != kBoxTkhd) return Status::InvalidArgument("not a tkhd box");
  Unpacker u{Slice(box.data)};
  TrackHeader h;
  VC_RETURN_IF_ERROR(u.U32(&h.track_id));
  VC_RETURN_IF_ERROR(u.U32(&h.codec));
  VC_RETURN_IF_ERROR(u.U16(&h.width));
  VC_RETURN_IF_ERROR(u.U16(&h.height));
  VC_RETURN_IF_ERROR(u.U16(&h.fps_times_100));
  VC_RETURN_IF_ERROR(u.U32(&h.frame_count));
  return h;
}

Result<GopIndexEntry> GopIndex::Lookup(uint32_t frame) const {
  for (const GopIndexEntry& entry : entries) {
    if (frame >= entry.first_frame &&
        frame < entry.first_frame + entry.frame_count) {
      return entry;
    }
  }
  return Status::NotFound("frame " + std::to_string(frame) +
                          " not covered by GOP index");
}

Box GopIndex::ToBox() const {
  Packer p;
  p.U32(static_cast<uint32_t>(entries.size()));
  for (const GopIndexEntry& e : entries) {
    p.U32(e.first_frame);
    p.U32(e.frame_count);
    p.U64(e.byte_offset);
    p.U64(e.byte_length);
  }
  return Box(kBoxGidx, p.Take());
}

Result<GopIndex> GopIndex::FromBox(const Box& box) {
  if (box.type != kBoxGidx) return Status::InvalidArgument("not a gidx box");
  Unpacker u{Slice(box.data)};
  uint32_t count;
  VC_RETURN_IF_ERROR(u.U32(&count));
  // 24 bytes per entry: a count beyond the payload is corruption, and must
  // be rejected *before* reserving memory for it.
  if (static_cast<uint64_t>(count) * 24 + 4 > box.data.size()) {
    return Status::Corruption("gidx count exceeds payload");
  }
  GopIndex index;
  index.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    GopIndexEntry e;
    VC_RETURN_IF_ERROR(u.U32(&e.first_frame));
    VC_RETURN_IF_ERROR(u.U32(&e.frame_count));
    VC_RETURN_IF_ERROR(u.U64(&e.byte_offset));
    VC_RETURN_IF_ERROR(u.U64(&e.byte_length));
    index.entries.push_back(e);
  }
  if (!u.Done()) return Status::Corruption("trailing bytes in gidx");
  return index;
}

Box SphericalMeta::ToBox() const {
  Packer p;
  p.U8(static_cast<uint8_t>(projection));
  p.U8(static_cast<uint8_t>(stereo));
  return Box(kBoxSv3d, p.Take());
}

Result<SphericalMeta> SphericalMeta::FromBox(const Box& box) {
  if (box.type != kBoxSv3d) return Status::InvalidArgument("not an sv3d box");
  Unpacker u{Slice(box.data)};
  uint8_t projection, stereo;
  VC_RETURN_IF_ERROR(u.U8(&projection));
  VC_RETURN_IF_ERROR(u.U8(&stereo));
  if (projection > 0 || stereo > 1) {
    return Status::NotSupported("unknown spherical layout");
  }
  SphericalMeta meta;
  meta.projection = static_cast<Projection>(projection);
  meta.stereo = static_cast<StereoMode>(stereo);
  return meta;
}

Box QualityLadderToBox(const QualityLadder& ladder) {
  Packer p;
  p.U32(static_cast<uint32_t>(ladder.size()));
  for (const QualityLevel& level : ladder) {
    p.U8(static_cast<uint8_t>(level.qp));
    p.Str(level.name);
  }
  return Box(kBoxQlad, p.Take());
}

Result<QualityLadder> QualityLadderFromBox(const Box& box) {
  if (box.type != kBoxQlad) return Status::InvalidArgument("not a qlad box");
  Unpacker u{Slice(box.data)};
  uint32_t count;
  VC_RETURN_IF_ERROR(u.U32(&count));
  if (count == 0 || count > 16) {
    return Status::Corruption("quality ladder size out of range");
  }
  QualityLadder ladder;
  for (uint32_t i = 0; i < count; ++i) {
    QualityLevel level;
    uint8_t qp;
    VC_RETURN_IF_ERROR(u.U8(&qp));
    VC_RETURN_IF_ERROR(u.Str(&level.name));
    level.qp = qp;
    ladder.push_back(std::move(level));
  }
  return ladder;
}

Box SegmentIndexToBox(const std::vector<SegmentInfo>& segments) {
  Packer p;
  p.U32(static_cast<uint32_t>(segments.size()));
  for (const SegmentInfo& s : segments) {
    p.U32(s.start_frame);
    p.U32(s.frame_count);
  }
  return Box(kBoxSgix, p.Take());
}

Result<std::vector<SegmentInfo>> SegmentIndexFromBox(const Box& box) {
  if (box.type != kBoxSgix) return Status::InvalidArgument("not an sgix box");
  Unpacker u{Slice(box.data)};
  uint32_t count;
  VC_RETURN_IF_ERROR(u.U32(&count));
  if (static_cast<uint64_t>(count) * 8 + 4 > box.data.size()) {
    return Status::Corruption("sgix count exceeds payload");
  }
  std::vector<SegmentInfo> segments;
  segments.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SegmentInfo s;
    VC_RETURN_IF_ERROR(u.U32(&s.start_frame));
    VC_RETURN_IF_ERROR(u.U32(&s.frame_count));
    segments.push_back(s);
  }
  return segments;
}

Box CellIndexToBox(const std::vector<CellInfo>& cells) {
  Packer p;
  p.U32(static_cast<uint32_t>(cells.size()));
  for (const CellInfo& c : cells) {
    p.U64(c.byte_size);
    p.U32(c.crc32);
  }
  return Box(kBoxCidx, p.Take());
}

Result<std::vector<CellInfo>> CellIndexFromBox(const Box& box) {
  if (box.type != kBoxCidx) return Status::InvalidArgument("not a cidx box");
  Unpacker u{Slice(box.data)};
  uint32_t count;
  VC_RETURN_IF_ERROR(u.U32(&count));
  if (static_cast<uint64_t>(count) * 12 + 4 > box.data.size()) {
    return Status::Corruption("cidx count exceeds payload");
  }
  std::vector<CellInfo> cells;
  cells.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CellInfo c;
    VC_RETURN_IF_ERROR(u.U64(&c.byte_size));
    VC_RETURN_IF_ERROR(u.U32(&c.crc32));
    cells.push_back(c);
  }
  return cells;
}

Box StringToBox(uint32_t type, const std::string& value) {
  Packer p;
  p.Str(value);
  return Box(type, p.Take());
}

Result<std::string> StringFromBox(const Box& box) {
  Unpacker u{Slice(box.data)};
  std::string s;
  VC_RETURN_IF_ERROR(u.Str(&s));
  return s;
}

}  // namespace vc
