#ifndef VC_CONTAINER_BOXES_H_
#define VC_CONTAINER_BOXES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "codec/quality.h"
#include "container/box.h"

namespace vc {

/// \brief Typed payload of a `tkhd` box: describes one media stream.
struct TrackHeader {
  uint32_t track_id = 0;
  uint32_t codec = MakeFourCc("vcc1");
  uint16_t width = 0;
  uint16_t height = 0;
  uint16_t fps_times_100 = 3000;
  uint32_t frame_count = 0;

  Box ToBox() const;
  static Result<TrackHeader> FromBox(const Box& box);
};

/// \brief One entry of a `gidx` GOP index (the stss analogue): where a GOP's
/// bytes live inside the media stream, enabling random access without a
/// linear scan.
struct GopIndexEntry {
  uint32_t first_frame = 0;   ///< Presentation index of the GOP's keyframe.
  uint32_t frame_count = 0;   ///< Frames in this GOP.
  uint64_t byte_offset = 0;   ///< Offset of the GOP's first frame record.
  uint64_t byte_length = 0;   ///< Total bytes of the GOP's frame records.
};

struct GopIndex {
  std::vector<GopIndexEntry> entries;

  /// The entry containing presentation frame `frame`, or NotFound.
  Result<GopIndexEntry> Lookup(uint32_t frame) const;

  Box ToBox() const;
  static Result<GopIndex> FromBox(const Box& box);
};

/// Spherical projection identifiers for `sv3d` (Spherical Video V2 analog).
enum class Projection : uint8_t { kEquirectangular = 0 };
enum class StereoMode : uint8_t { kMono = 0, kStereoTopBottom = 1 };

/// \brief Typed payload of an `sv3d` box.
struct SphericalMeta {
  Projection projection = Projection::kEquirectangular;
  StereoMode stereo = StereoMode::kMono;

  Box ToBox() const;
  static Result<SphericalMeta> FromBox(const Box& box);
};

/// \brief `qlad`: the quality ladder a video was ingested with.
Box QualityLadderToBox(const QualityLadder& ladder);
Result<QualityLadder> QualityLadderFromBox(const Box& box);

/// \brief One entry of an `sgix` segment index: the temporal partitioning.
struct SegmentInfo {
  uint32_t start_frame = 0;
  uint32_t frame_count = 0;
};
Box SegmentIndexToBox(const std::vector<SegmentInfo>& segments);
Result<std::vector<SegmentInfo>> SegmentIndexFromBox(const Box& box);

/// \brief One entry of a `cidx` cell index: size and checksum of one
/// (segment, tile, quality) encoded stream, in segment-major order.
struct CellInfo {
  uint64_t byte_size = 0;
  uint32_t crc32 = 0;
};
Box CellIndexToBox(const std::vector<CellInfo>& cells);
Result<std::vector<CellInfo>> CellIndexFromBox(const Box& box);

/// `name` / `dref`: UTF-8 string payloads.
Box StringToBox(uint32_t type, const std::string& value);
Result<std::string> StringFromBox(const Box& box);

}  // namespace vc

#endif  // VC_CONTAINER_BOXES_H_
