#include "container/box.h"

namespace vc {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v >> 24));
  out->push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  out->push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  out->push_back(static_cast<uint8_t>(v & 0xff));
}

uint32_t GetU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

Result<std::vector<Box>> ParseBoxesImpl(Slice data, int depth) {
  if (depth > 16) return Status::Corruption("box nesting too deep");
  std::vector<Box> boxes;
  size_t pos = 0;
  while (pos < data.size()) {
    if (pos + 8 > data.size()) {
      return Status::Corruption("truncated box header");
    }
    uint32_t size = GetU32(data.data() + pos);
    uint32_t type = GetU32(data.data() + pos + 4);
    pos += 8;
    if (pos + size > data.size()) {
      return Status::Corruption("box '" + FourCcToString(type) +
                                "' overruns its parent");
    }
    Box box(type);
    Slice payload = data.Subslice(pos, size);
    if (IsContainerBoxType(type)) {
      VC_ASSIGN_OR_RETURN(box.children, ParseBoxesImpl(payload, depth + 1));
    } else {
      box.data = payload.ToVector();
    }
    boxes.push_back(std::move(box));
    pos += size;
  }
  return boxes;
}

}  // namespace

std::string FourCcToString(uint32_t fourcc) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    char c = static_cast<char>((fourcc >> (24 - 8 * i)) & 0xff);
    s[i] = (c >= 32 && c < 127) ? c : '?';
  }
  return s;
}

bool IsContainerBoxType(uint32_t type) {
  return type == kBoxVcmf || type == kBoxTrak;
}

size_t Box::SerializedSize() const {
  size_t payload = data.size();
  for (const Box& child : children) payload += child.SerializedSize();
  return 8 + payload;
}

void Box::AppendTo(std::vector<uint8_t>* out) const {
  PutU32(out, static_cast<uint32_t>(SerializedSize() - 8));
  PutU32(out, type);
  out->insert(out->end(), data.begin(), data.end());
  for (const Box& child : children) child.AppendTo(out);
}

Result<const Box*> Box::FindChild(uint32_t child_type) const {
  for (const Box& child : children) {
    if (child.type == child_type) return &child;
  }
  return Status::NotFound("no '" + FourCcToString(child_type) + "' child in '" +
                          FourCcToString(type) + "'");
}

std::vector<const Box*> Box::FindChildren(uint32_t child_type) const {
  std::vector<const Box*> found;
  for (const Box& child : children) {
    if (child.type == child_type) found.push_back(&child);
  }
  return found;
}

std::vector<uint8_t> SerializeBoxes(const std::vector<Box>& boxes) {
  std::vector<uint8_t> out;
  size_t total = 0;
  for (const Box& box : boxes) total += box.SerializedSize();
  out.reserve(total);
  for (const Box& box : boxes) box.AppendTo(&out);
  return out;
}

Result<std::vector<Box>> ParseBoxes(Slice data) {
  return ParseBoxesImpl(data, 0);
}

}  // namespace vc
