#ifndef VC_CONTAINER_BOX_H_
#define VC_CONTAINER_BOX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace vc {

/// \brief A node of the VCMF container format.
///
/// VCMF is an MP4-style box ("atom") format: every box is
/// `[u32 size][4cc type][payload]`, where `size` counts the payload bytes.
/// Boxes whose type is in the known container set carry child boxes as their
/// payload; all other boxes carry opaque data that the typed wrappers in
/// boxes.h interpret. Mirrors the role MP4's moov/trak/stss/sv3d atoms play
/// for VisualCloud: all stored metadata is expressed in this format.
struct Box {
  uint32_t type = 0;               ///< FourCC, e.g. MakeFourCc("vchd").
  std::vector<uint8_t> data;       ///< Leaf payload (empty for containers).
  std::vector<Box> children;       ///< Children (containers only).

  Box() = default;
  explicit Box(uint32_t t) : type(t) {}
  Box(uint32_t t, std::vector<uint8_t> payload)
      : type(t), data(std::move(payload)) {}

  /// Total serialized size (header + payload, recursively).
  size_t SerializedSize() const;

  /// Appends the serialized box to `out`.
  void AppendTo(std::vector<uint8_t>* out) const;

  /// First child of the given type, or NotFound.
  Result<const Box*> FindChild(uint32_t type) const;

  /// All children of the given type.
  std::vector<const Box*> FindChildren(uint32_t type) const;
};

/// Builds a FourCC from a 4-character literal, e.g. MakeFourCc("trak").
constexpr uint32_t MakeFourCc(const char (&s)[5]) {
  return (static_cast<uint32_t>(static_cast<uint8_t>(s[0])) << 24) |
         (static_cast<uint32_t>(static_cast<uint8_t>(s[1])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(s[2])) << 8) |
         static_cast<uint32_t>(static_cast<uint8_t>(s[3]));
}

/// FourCC rendered as 4 characters (for diagnostics).
std::string FourCcToString(uint32_t fourcc);

/// Registered container box types (children instead of leaf payload).
bool IsContainerBoxType(uint32_t type);

/// Serializes a forest of top-level boxes to a flat byte vector.
std::vector<uint8_t> SerializeBoxes(const std::vector<Box>& boxes);

/// Parses a forest of boxes; validates sizes and nesting.
Result<std::vector<Box>> ParseBoxes(Slice data);

// Box types used by VisualCloud (see boxes.h for the typed wrappers).
inline constexpr uint32_t kBoxVcmf = MakeFourCc("vcmf");  // file root
inline constexpr uint32_t kBoxTrak = MakeFourCc("trak");  // one media stream
inline constexpr uint32_t kBoxVchd = MakeFourCc("vchd");  // video header
inline constexpr uint32_t kBoxTkhd = MakeFourCc("tkhd");  // track header
inline constexpr uint32_t kBoxGidx = MakeFourCc("gidx");  // GOP index (stss)
inline constexpr uint32_t kBoxSv3d = MakeFourCc("sv3d");  // spherical meta
inline constexpr uint32_t kBoxQlad = MakeFourCc("qlad");  // quality ladder
inline constexpr uint32_t kBoxSgix = MakeFourCc("sgix");  // segment index
inline constexpr uint32_t kBoxCidx = MakeFourCc("cidx");  // cell index
inline constexpr uint32_t kBoxName = MakeFourCc("name");  // UTF-8 string
inline constexpr uint32_t kBoxDref = MakeFourCc("dref");  // data reference
inline constexpr uint32_t kBoxMdat = MakeFourCc("mdat");  // embedded media

}  // namespace vc

#endif  // VC_CONTAINER_BOX_H_
