#include "geometry/viewport.h"

#include <cmath>

#include "image/metrics.h"

namespace vc {

namespace {

/// Bilinear sample of a plane with horizontal wrap (yaw periodicity) and
/// vertical clamp (poles).
double SampleWrapped(const std::vector<uint8_t>& plane, int w, int h, double x,
                     double y) {
  y = Clamp(y, 0.0, static_cast<double>(h - 1));
  int y0 = static_cast<int>(y);
  int y1 = std::min(y0 + 1, h - 1);
  double fy = y - y0;
  double xm = std::fmod(x, static_cast<double>(w));
  if (xm < 0) xm += w;
  int x0 = static_cast<int>(xm);
  int x1 = (x0 + 1) % w;
  double fx = xm - x0;
  double top = plane[static_cast<size_t>(y0) * w + x0] * (1 - fx) +
               plane[static_cast<size_t>(y0) * w + x1] * fx;
  double bottom = plane[static_cast<size_t>(y1) * w + x0] * (1 - fx) +
                  plane[static_cast<size_t>(y1) * w + x1] * fx;
  return top * (1 - fy) + bottom * fy;
}

}  // namespace

Result<Frame> RenderViewport(const Frame& panorama,
                             const Orientation& orientation,
                             const ViewportSpec& spec) {
  if (panorama.empty()) {
    return Status::InvalidArgument("viewport render on empty panorama");
  }
  if (spec.width <= 0 || spec.height <= 0 || spec.width % 2 != 0 ||
      spec.height % 2 != 0) {
    return Status::InvalidArgument("viewport dimensions must be even");
  }
  if (spec.fov_yaw <= 0 || spec.fov_yaw >= kPi || spec.fov_pitch <= 0 ||
      spec.fov_pitch >= kPi) {
    return Status::InvalidArgument("viewport FOV must be in (0, pi)");
  }

  Orientation center = orientation.Normalized();
  // Camera basis: forward toward the gaze, right along increasing yaw,
  // up toward decreasing pitch (toward the top pole).
  Vec3 forward = center.ToVector();
  Vec3 world_up{0, 0, 1};
  Vec3 right = forward.Cross(world_up);
  if (right.Norm() < 1e-9) {
    // Looking straight at a pole: pick an arbitrary right axis.
    right = Vec3{0, 1, 0};
  }
  right = right.Normalized() * -1.0;  // matches increasing yaw direction
  Vec3 up = right.Cross(forward).Normalized() * -1.0;

  double tan_half_yaw = std::tan(spec.fov_yaw / 2.0);
  double tan_half_pitch = std::tan(spec.fov_pitch / 2.0);

  Frame out(spec.width, spec.height);
  const int pw = panorama.width();
  const int ph = panorama.height();
  for (int vy = 0; vy < spec.height; ++vy) {
    double ndc_y = (2.0 * (vy + 0.5) / spec.height - 1.0) * tan_half_pitch;
    for (int vx = 0; vx < spec.width; ++vx) {
      double ndc_x = (2.0 * (vx + 0.5) / spec.width - 1.0) * tan_half_yaw;
      Vec3 dir = (forward + right * ndc_x + up * (-ndc_y)).Normalized();
      Orientation o = Orientation::FromVector(dir);
      double px = o.yaw / kTwoPi * pw - 0.5;
      double py = o.pitch / kPi * ph - 0.5;
      out.set_y(vx, vy,
                ClampPixel(static_cast<int>(std::lround(
                    SampleWrapped(panorama.y_plane(), pw, ph, px, py)))));
      if (vx % 2 == 0 && vy % 2 == 0) {
        out.set_u(vx / 2, vy / 2,
                  ClampPixel(static_cast<int>(std::lround(
                      SampleWrapped(panorama.u_plane(), pw / 2, ph / 2,
                                    px / 2, py / 2)))));
        out.set_v(vx / 2, vy / 2,
                  ClampPixel(static_cast<int>(std::lround(
                      SampleWrapped(panorama.v_plane(), pw / 2, ph / 2,
                                    px / 2, py / 2)))));
      }
    }
  }
  return out;
}

Result<double> ViewportPsnr(const Frame& reference, const Frame& delivered,
                            const Orientation& orientation,
                            const ViewportSpec& spec) {
  Frame ref_view;
  VC_ASSIGN_OR_RETURN(ref_view, RenderViewport(reference, orientation, spec));
  Frame del_view;
  VC_ASSIGN_OR_RETURN(del_view, RenderViewport(delivered, orientation, spec));
  return LumaPsnr(ref_view, del_view);
}

}  // namespace vc
