#ifndef VC_GEOMETRY_VIEWPORT_H_
#define VC_GEOMETRY_VIEWPORT_H_

#include "common/result.h"
#include "geometry/orientation.h"
#include "image/frame.h"

namespace vc {

/// \brief Parameters of a head-mounted display's view frustum.
struct ViewportSpec {
  double fov_yaw = DegToRad(100.0);   ///< Horizontal field of view (radians).
  double fov_pitch = DegToRad(90.0);  ///< Vertical field of view (radians).
  int width = 192;                    ///< Rendered viewport width (even).
  int height = 160;                   ///< Rendered viewport height (even).
};

/// Renders the perspective (rectilinear) viewport a user at `orientation`
/// sees, by inverse-mapping every output pixel through the camera frustum
/// onto the equirectangular `panorama` with bilinear sampling. This is how
/// the client produces the image actually shown in the HMD, and it is the
/// basis of the in-viewport quality metric: compare
/// `RenderViewport(original)` against `RenderViewport(delivered)`.
Result<Frame> RenderViewport(const Frame& panorama,
                             const Orientation& orientation,
                             const ViewportSpec& spec);

/// In-viewport PSNR: PSNR between the viewports rendered from the reference
/// and the delivered panorama at the same orientation.
Result<double> ViewportPsnr(const Frame& reference, const Frame& delivered,
                            const Orientation& orientation,
                            const ViewportSpec& spec);

}  // namespace vc

#endif  // VC_GEOMETRY_VIEWPORT_H_
