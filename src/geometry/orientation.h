#ifndef VC_GEOMETRY_ORIENTATION_H_
#define VC_GEOMETRY_ORIENTATION_H_

#include <cmath>

#include "common/math_util.h"

namespace vc {

/// \brief A 3D direction vector.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double Dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double Norm() const { return std::sqrt(Dot(*this)); }
  Vec3 Normalized() const {
    double n = Norm();
    return n > 0 ? Vec3{x / n, y / n, z / n} : Vec3{1, 0, 0};
  }
};

/// Wraps a yaw angle into [0, 2π).
inline double WrapYaw(double yaw) {
  yaw = std::fmod(yaw, kTwoPi);
  if (yaw < 0) yaw += kTwoPi;
  return yaw;
}

/// Clamps a pitch (colatitude) into [0, π]: 0 is straight up (top pole of the
/// equirectangular frame), π/2 the equator, π straight down.
inline double ClampPitch(double pitch) { return Clamp(pitch, 0.0, kPi); }

/// Signed shortest angular difference a − b for yaw angles, in (−π, π].
inline double YawDifference(double a, double b) {
  double d = std::fmod(a - b, kTwoPi);
  if (d > kPi) d -= kTwoPi;
  if (d <= -kPi) d += kTwoPi;
  return d;
}

/// \brief A viewer's gaze direction: yaw θ ∈ [0, 2π) (periodic) and pitch
/// (colatitude) φ ∈ [0, π]. These are exactly the angular dimensions of the
/// equirectangular projection, so column x maps to θ and row y to φ.
struct Orientation {
  double yaw = 0.0;
  double pitch = kPi / 2.0;  // equator

  /// Returns the orientation with yaw wrapped and pitch clamped.
  Orientation Normalized() const { return {WrapYaw(yaw), ClampPitch(pitch)}; }

  /// Unit direction vector (z up).
  Vec3 ToVector() const {
    return {std::sin(pitch) * std::cos(yaw), std::sin(pitch) * std::sin(yaw),
            std::cos(pitch)};
  }

  /// Builds an orientation from a (not necessarily unit) direction vector.
  static Orientation FromVector(const Vec3& v) {
    Vec3 u = v.Normalized();
    double pitch = std::acos(Clamp(u.z, -1.0, 1.0));
    double yaw = std::atan2(u.y, u.x);
    return Orientation{WrapYaw(yaw), pitch};
  }
};

/// Great-circle (angular) distance between two orientations, in [0, π].
inline double AngularDistance(const Orientation& a, const Orientation& b) {
  double dot = Clamp(a.ToVector().Dot(b.ToVector()), -1.0, 1.0);
  return std::acos(dot);
}

}  // namespace vc

#endif  // VC_GEOMETRY_ORIENTATION_H_
