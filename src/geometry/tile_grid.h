#ifndef VC_GEOMETRY_TILE_GRID_H_
#define VC_GEOMETRY_TILE_GRID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/orientation.h"

namespace vc {

/// \brief Identifies one tile of a spatial partitioning: row-major position
/// in an R×C grid over the equirectangular frame.
struct TileId {
  int row = 0;
  int col = 0;

  bool operator==(const TileId& o) const {
    return row == o.row && col == o.col;
  }
  bool operator<(const TileId& o) const {
    return row != o.row ? row < o.row : col < o.col;
  }
};

/// \brief The spatial half of VisualCloud's spatiotemporal partitioning: an
/// R×C grid of equal angular extents over the 360° sphere.
///
/// Tile (r, c) covers yaw ∈ [c·2π/C, (c+1)·2π/C) × pitch ∈ [r·π/R, (r+1)·π/R).
/// The yaw axis is periodic; viewports that straddle the 0/2π seam therefore
/// cover tiles from both edges of the grid.
class TileGrid {
 public:
  /// A 1×1 grid (no spatial partitioning).
  TileGrid() : TileGrid(1, 1) {}

  /// Creates an R×C grid; both must be ≥ 1.
  TileGrid(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int tile_count() const { return rows_ * cols_; }

  /// Angular size of one tile.
  double tile_yaw_extent() const { return kTwoPi / cols_; }
  double tile_pitch_extent() const { return kPi / rows_; }

  /// The tile containing `orientation` (pitch π maps to the last row).
  TileId TileFor(const Orientation& orientation) const;

  /// Flattened row-major index of a tile.
  int IndexOf(TileId tile) const { return tile.row * cols_ + tile.col; }

  /// Inverse of IndexOf; `index` in [0, tile_count()).
  TileId TileAt(int index) const {
    return TileId{index / cols_, index % cols_};
  }

  /// Orientation of a tile's angular center.
  Orientation CenterOf(TileId tile) const;

  /// Tiles intersected by a rectangular field of view of `fov_yaw` ×
  /// `fov_pitch` radians centered on `orientation`. Handles the yaw seam and
  /// pole caps: a viewport that crosses a pole covers every column in the
  /// polar row band.
  std::vector<TileId> TilesInViewport(const Orientation& orientation,
                                      double fov_yaw, double fov_pitch) const;

  /// Pixel rectangle of a tile inside a `width`×`height` equirectangular
  /// frame. Pixel edges are rounded to multiples of `align` (e.g. 16 for the
  /// codec's block size); the last row/column absorbs the remainder.
  struct PixelRect {
    int x = 0;
    int y = 0;
    int width = 0;
    int height = 0;
  };
  Result<PixelRect> PixelRectOf(TileId tile, int width, int height,
                                int align = 2) const;

  bool operator==(const TileGrid& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  std::string ToString() const;

 private:
  int rows_;
  int cols_;
};

}  // namespace vc

#endif  // VC_GEOMETRY_TILE_GRID_H_
