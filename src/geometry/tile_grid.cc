#include "geometry/tile_grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <sstream>

namespace vc {

TileGrid::TileGrid(int rows, int cols)
    : rows_(std::max(1, rows)), cols_(std::max(1, cols)) {}

TileId TileGrid::TileFor(const Orientation& orientation) const {
  Orientation o = orientation.Normalized();
  int col = static_cast<int>(o.yaw / tile_yaw_extent());
  int row = static_cast<int>(o.pitch / tile_pitch_extent());
  // pitch == π lands exactly past the last row; clamp into range.
  col = Clamp(col, 0, cols_ - 1);
  row = Clamp(row, 0, rows_ - 1);
  return TileId{row, col};
}

Orientation TileGrid::CenterOf(TileId tile) const {
  return Orientation{(tile.col + 0.5) * tile_yaw_extent(),
                     (tile.row + 0.5) * tile_pitch_extent()};
}

std::vector<TileId> TileGrid::TilesInViewport(const Orientation& orientation,
                                              double fov_yaw,
                                              double fov_pitch) const {
  Orientation center = orientation.Normalized();
  double pitch_lo = center.pitch - fov_pitch / 2.0;
  double pitch_hi = center.pitch + fov_pitch / 2.0;

  // If the viewport reaches past a pole, every yaw is visible in the polar
  // band, so the whole rows nearest that pole are covered.
  bool over_top = pitch_lo < 0.0;
  bool over_bottom = pitch_hi > kPi;
  pitch_lo = Clamp(pitch_lo, 0.0, kPi);
  pitch_hi = Clamp(pitch_hi, 0.0, kPi);

  int row_lo = Clamp(static_cast<int>(pitch_lo / tile_pitch_extent()), 0,
                     rows_ - 1);
  // Subtract an epsilon so an exact boundary does not spill into the next row.
  int row_hi = Clamp(static_cast<int>((pitch_hi - 1e-9) / tile_pitch_extent()),
                     0, rows_ - 1);

  std::set<TileId> tiles;
  for (int row = row_lo; row <= row_hi; ++row) {
    bool polar_row =
        (over_top && row == 0) || (over_bottom && row == rows_ - 1);
    // The yaw extent needed widens with latitude: near a pole, a fixed
    // horizontal FOV spans more longitude (a θ-arc of length L at colatitude
    // φ subtends L / sin φ of longitude). Widen per row, using the part of
    // the viewport's pitch range that actually falls inside this row — a
    // viewport touching a polar band must not inflate the equatorial rows.
    double row_pitch_lo =
        std::max(pitch_lo, row * tile_pitch_extent());
    double row_pitch_hi =
        std::min(pitch_hi, (row + 1) * tile_pitch_extent());
    double worst_sin =
        std::min(std::sin(row_pitch_lo), std::sin(row_pitch_hi));
    double effective_half_yaw =
        worst_sin > 1e-3 ? std::min(kPi, fov_yaw / 2.0 / worst_sin) : kPi;
    if (polar_row || effective_half_yaw >= kPi - 1e-9) {
      for (int col = 0; col < cols_; ++col) tiles.insert(TileId{row, col});
      continue;
    }
    double yaw_lo = center.yaw - effective_half_yaw;
    double yaw_hi = center.yaw + effective_half_yaw;
    // Walk the covered yaw arc in tile-width steps, wrapping at the seam.
    int first = static_cast<int>(std::floor(yaw_lo / tile_yaw_extent()));
    int last = static_cast<int>(std::floor((yaw_hi - 1e-9) / tile_yaw_extent()));
    for (int c = first; c <= last; ++c) {
      int col = ((c % cols_) + cols_) % cols_;
      tiles.insert(TileId{row, col});
    }
  }
  // A viewport over a pole also sees the adjacent rows on the far side;
  // approximating with full polar rows (above) is sufficient for quality
  // assignment, which only needs a superset of visible tiles near poles.
  return std::vector<TileId>(tiles.begin(), tiles.end());
}

Result<TileGrid::PixelRect> TileGrid::PixelRectOf(TileId tile, int width,
                                                  int height,
                                                  int align) const {
  if (tile.row < 0 || tile.row >= rows_ || tile.col < 0 || tile.col >= cols_) {
    return Status::InvalidArgument("tile id out of grid range");
  }
  if (width <= 0 || height <= 0 || align <= 0) {
    return Status::InvalidArgument("bad frame dimensions for tile rect");
  }
  if (width % align != 0 || height % align != 0) {
    return Status::InvalidArgument("frame dimensions not aligned");
  }
  auto edge = [align](double fraction, int extent) {
    int raw = static_cast<int>(std::lround(fraction * extent));
    return Clamp(raw / align * align, 0, extent);
  };
  PixelRect rect;
  rect.x = edge(static_cast<double>(tile.col) / cols_, width);
  rect.y = edge(static_cast<double>(tile.row) / rows_, height);
  int x1 = tile.col + 1 == cols_
               ? width
               : edge(static_cast<double>(tile.col + 1) / cols_, width);
  int y1 = tile.row + 1 == rows_
               ? height
               : edge(static_cast<double>(tile.row + 1) / rows_, height);
  rect.width = x1 - rect.x;
  rect.height = y1 - rect.y;
  if (rect.width <= 0 || rect.height <= 0) {
    return Status::InvalidArgument(
        "tile grid too fine for frame size " + std::to_string(width) + "x" +
        std::to_string(height));
  }
  return rect;
}

std::string TileGrid::ToString() const {
  std::ostringstream out;
  out << rows_ << "x" << cols_;
  return out.str();
}

}  // namespace vc
