#ifndef VC_STREAMING_MANIFEST_H_
#define VC_STREAMING_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/metadata.h"

namespace vc {

/// \brief DASH-MPD analogue: a plain-text manifest a client fetches once to
/// learn the video's spatiotemporal layout, quality ladder, and every
/// cell's byte size — everything needed to plan per-tile quality requests
/// and byte budgets without further server round trips.
///
/// Format (line-oriented, '#' comments allowed):
///
///     VCMPD 1
///     name venice
///     version 3
///     size 256 128
///     fps_x100 1500
///     segment_frames 15
///     tiles 6 8
///     stereo 0
///     quality <index> <name> <qp>          (one per rung)
///     segment <index> <start> <frames>     (one per segment, followed by
///     cell <seg> <tile> <quality> <bytes> <crc32>   its tile×quality cells)
///     plan <seg> <rung per tile ...>       (optional query-plan overlay)
///     view <source> <src_version> <query>  (optional materialized-view overlay)
///     live <epoch> <complete 0|1>          (optional live overlay)
///     publish <seg> <time_ms>              (one per segment when live)
///
/// Segments are serialized grouped — each `segment` line followed by its
/// own `cell` lines — so a growing (live) manifest is strictly append-only
/// in its body: ManifestBuilder::AppendSegment returns exactly the lines
/// the full manifest gains. ParseManifest is order-agnostic and still
/// accepts the historical all-segments-then-all-cells layout.
///
/// GenerateManifest/ParseManifest round-trip every field, so a parsed
/// manifest reconstructs the full VideoMetadata (sans data_dir, which is a
/// server-side storage detail clients never see).

/// \brief Optional per-tile rung selections published with a manifest: the
/// result of optimizing a query (see query/optimizer.h) server-side, so a
/// client fetches exactly the planned cells instead of re-deriving the
/// choice. One entry per planned segment, `tile_quality[t]` the ladder rung
/// tile t should be fetched at, -1 = pruned (tile not sent at all).
struct ManifestPlan {
  struct Entry {
    int segment = 0;
    std::vector<int> tile_quality;
  };
  std::vector<Entry> entries;  ///< Ascending by segment.

  bool empty() const { return entries.empty(); }
};

/// \brief Optional materialized-view overlay: marks a published video as a
/// derived video maintained by a standing query (see src/view).
///
/// `source`/`source_version` name the catalog video and version the view is
/// maintained through (its freshness watermark), and `query` is the defining
/// query's canonical text form (query/parser.h syntax — opaque at this
/// layer; the view subsystem validates it). A client or operator reading
/// the manifest can tell exactly what derived content the video holds and
/// whether it is stale relative to its source.
struct ManifestView {
  std::string source;
  uint32_t source_version = 0;
  std::string query;  ///< Defining query text; single line, never empty.

  bool empty() const {
    return source.empty() && source_version == 0 && query.empty();
  }
};

/// \brief Optional live overlay: the versioned "this stream is still
/// growing" annotation of a manifest published mid-ingest.
///
/// `epoch` is the manifest revision — it increments every time the ingest
/// pipeline publishes a segment, so a client polling the manifest can tell
/// at a glance whether anything changed. `publish_times_ms` records, per
/// listed segment, the server wall-clock millisecond at which that segment
/// became fetchable — the client's live-edge clock. `complete` flips to
/// true on the final (archived) manifest of a finished stream.
struct ManifestLive {
  uint32_t epoch = 0;
  bool complete = false;
  /// One entry per segment, ascending, non-decreasing times (ms).
  std::vector<int64_t> publish_times_ms;

  bool empty() const {
    return epoch == 0 && !complete && publish_times_ms.empty();
  }
};

/// \brief Incremental manifest assembly for the append-only catalog.
///
/// Constructed from a video's layout (and any segments it already has),
/// the builder serializes the immutable header once and keeps the body as
/// an append-only string: `AppendSegment` adds one segment's lines in O(1)
/// relative to the segments already present and returns the serialized
/// delta, while `Build` snapshots the full manifest. For a static video
/// `ManifestBuilder(m).Build()` is byte-identical to `GenerateManifest(m)`
/// (which is itself implemented on top of this builder).
class ManifestBuilder {
 public:
  /// Seeds the header from `metadata`'s layout fields and the body from any
  /// segments/cells it already carries. `plan`, when non-null and
  /// non-empty, is serialized after the body.
  explicit ManifestBuilder(const VideoMetadata& metadata,
                           const ManifestPlan* plan = nullptr);

  /// Appends one segment — its SegmentInfo plus `cells` (tile-major ×
  /// quality-minor, tile_count × quality_count entries) — and returns the
  /// serialized delta: exactly the body lines Build() gains. When
  /// `publish_ms >= 0` the segment is also recorded in the live overlay
  /// (its `publish` line is part of the delta and the overlay epoch
  /// increments).
  std::string AppendSegment(const SegmentInfo& segment,
                            const std::vector<CellInfo>& cells,
                            int64_t publish_ms = -1);

  /// Marks the stream finished; the overlay of subsequent Build() calls
  /// carries `complete 1`.
  void SetComplete(bool complete) { live_.complete = complete; }

  /// Attaches (or updates) the materialized-view overlay; subsequent
  /// Build() calls carry its `view` line. An empty overlay emits nothing.
  void SetView(ManifestView view) { view_ = std::move(view); }

  /// The live overlay accumulated from AppendSegment publish times.
  const ManifestLive& live() const { return live_; }
  int segment_count() const { return segments_; }

  /// Full manifest with the builder's own live overlay (empty for a static
  /// video — byte-identical to the historical whole-string generation).
  std::string Build() const { return Build(&live_); }

  /// Full manifest with an explicit live overlay (nullptr or empty = no
  /// overlay lines).
  std::string Build(const ManifestLive* live) const;

 private:
  std::string header_;  ///< VCMPD magic through quality lines.
  std::string body_;    ///< Append-only segment + cell lines.
  std::string plan_;    ///< Serialized plan overlay (may be empty).
  ManifestView view_;
  ManifestLive live_;
  int segments_ = 0;
  int tiles_ = 0;
  int qualities_ = 0;
};

/// `plan` / `live` / `view`, when non-null and non-empty, append their
/// overlays.
std::string GenerateManifest(const VideoMetadata& metadata,
                             const ManifestPlan* plan = nullptr,
                             const ManifestLive* live = nullptr,
                             const ManifestView* view = nullptr);

/// Parses a manifest back into metadata (validated). When `plan` / `live` /
/// `view` are non-null they receive the matching overlay (cleared first;
/// left empty when the manifest carries none).
Result<VideoMetadata> ParseManifest(Slice text, ManifestPlan* plan = nullptr,
                                    ManifestLive* live = nullptr,
                                    ManifestView* view = nullptr);

}  // namespace vc

#endif  // VC_STREAMING_MANIFEST_H_
