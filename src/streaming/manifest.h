#ifndef VC_STREAMING_MANIFEST_H_
#define VC_STREAMING_MANIFEST_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "storage/metadata.h"

namespace vc {

/// \brief DASH-MPD analogue: a plain-text manifest a client fetches once to
/// learn the video's spatiotemporal layout, quality ladder, and every
/// cell's byte size — everything needed to plan per-tile quality requests
/// and byte budgets without further server round trips.
///
/// Format (line-oriented, '#' comments allowed):
///
///     VCMPD 1
///     name venice
///     version 3
///     size 256 128
///     fps_x100 1500
///     segment_frames 15
///     tiles 6 8
///     stereo 0
///     quality <index> <name> <qp>          (one per rung)
///     segment <index> <start> <frames>     (one per segment)
///     cell <seg> <tile> <quality> <bytes> <crc32>
///     plan <seg> <rung per tile ...>       (optional query-plan overlay)
///
/// GenerateManifest/ParseManifest round-trip every field, so a parsed
/// manifest reconstructs the full VideoMetadata (sans data_dir, which is a
/// server-side storage detail clients never see).

/// \brief Optional per-tile rung selections published with a manifest: the
/// result of optimizing a query (see query/optimizer.h) server-side, so a
/// client fetches exactly the planned cells instead of re-deriving the
/// choice. One entry per planned segment, `tile_quality[t]` the ladder rung
/// tile t should be fetched at, -1 = pruned (tile not sent at all).
struct ManifestPlan {
  struct Entry {
    int segment = 0;
    std::vector<int> tile_quality;
  };
  std::vector<Entry> entries;  ///< Ascending by segment.

  bool empty() const { return entries.empty(); }
};

/// `plan`, when non-null and non-empty, appends the plan overlay.
std::string GenerateManifest(const VideoMetadata& metadata,
                             const ManifestPlan* plan = nullptr);

/// Parses a manifest back into metadata (validated). When `plan` is
/// non-null it receives the plan overlay (cleared first; left empty when
/// the manifest carries none).
Result<VideoMetadata> ParseManifest(Slice text, ManifestPlan* plan = nullptr);

}  // namespace vc

#endif  // VC_STREAMING_MANIFEST_H_
