#ifndef VC_STREAMING_MANIFEST_H_
#define VC_STREAMING_MANIFEST_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "storage/metadata.h"

namespace vc {

/// \brief DASH-MPD analogue: a plain-text manifest a client fetches once to
/// learn the video's spatiotemporal layout, quality ladder, and every
/// cell's byte size — everything needed to plan per-tile quality requests
/// and byte budgets without further server round trips.
///
/// Format (line-oriented, '#' comments allowed):
///
///     VCMPD 1
///     name venice
///     version 3
///     size 256 128
///     fps_x100 1500
///     segment_frames 15
///     tiles 6 8
///     stereo 0
///     quality <index> <name> <qp>          (one per rung)
///     segment <index> <start> <frames>     (one per segment)
///     cell <seg> <tile> <quality> <bytes> <crc32>
///
/// GenerateManifest/ParseManifest round-trip every field, so a parsed
/// manifest reconstructs the full VideoMetadata (sans data_dir, which is a
/// server-side storage detail clients never see).
std::string GenerateManifest(const VideoMetadata& metadata);

/// Parses a manifest back into metadata (validated).
Result<VideoMetadata> ParseManifest(Slice text);

}  // namespace vc

#endif  // VC_STREAMING_MANIFEST_H_
