#include "streaming/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace vc {

namespace {

void AppendSegmentLines(std::string* out, int segment, const SegmentInfo& info,
                        const CellInfo* cells, int tiles, int qualities) {
  char line[160];
  std::snprintf(line, sizeof(line), "segment %d %u %u\n", segment,
                info.start_frame, info.frame_count);
  out->append(line);
  for (int tile = 0; tile < tiles; ++tile) {
    for (int quality = 0; quality < qualities; ++quality) {
      const CellInfo& cell = cells[static_cast<size_t>(tile) * qualities +
                                   quality];
      std::snprintf(line, sizeof(line), "cell %d %d %d %" PRIu64 " %u\n",
                    segment, tile, quality, cell.byte_size, cell.crc32);
      out->append(line);
    }
  }
}

}  // namespace

ManifestBuilder::ManifestBuilder(const VideoMetadata& metadata,
                                 const ManifestPlan* plan)
    : tiles_(metadata.tile_count()), qualities_(metadata.quality_count()) {
  std::ostringstream out;
  out << "VCMPD 1\n";
  out << "name " << metadata.name << "\n";
  out << "version " << metadata.version << "\n";
  out << "size " << metadata.width << " " << metadata.height << "\n";
  out << "fps_x100 " << metadata.fps_times_100 << "\n";
  out << "segment_frames " << metadata.frames_per_segment << "\n";
  out << "tiles " << int{metadata.tile_rows} << " " << int{metadata.tile_cols}
      << "\n";
  out << "stereo " << static_cast<int>(metadata.spherical.stereo) << "\n";
  for (size_t i = 0; i < metadata.ladder.size(); ++i) {
    out << "quality " << i << " " << metadata.ladder[i].name << " "
        << metadata.ladder[i].qp << "\n";
  }
  header_ = out.str();

  for (int segment = 0; segment < metadata.segment_count(); ++segment) {
    AppendSegmentLines(&body_, segment, metadata.segments[segment],
                       &metadata.cells[metadata.CellIndex(segment, 0, 0)],
                       tiles_, qualities_);
    ++segments_;
  }

  if (plan != nullptr) {
    std::ostringstream plan_out;
    for (const ManifestPlan::Entry& entry : plan->entries) {
      plan_out << "plan " << entry.segment;
      for (int rung : entry.tile_quality) plan_out << " " << rung;
      plan_out << "\n";
    }
    plan_ = plan_out.str();
  }
}

std::string ManifestBuilder::AppendSegment(const SegmentInfo& segment,
                                           const std::vector<CellInfo>& cells,
                                           int64_t publish_ms) {
  std::string delta;
  AppendSegmentLines(&delta, segments_, segment, cells.data(), tiles_,
                     qualities_);
  body_ += delta;
  if (publish_ms >= 0) {
    char line[96];
    std::snprintf(line, sizeof(line), "publish %d %" PRId64 "\n", segments_,
                  publish_ms);
    delta += line;
    live_.publish_times_ms.push_back(publish_ms);
    ++live_.epoch;
  }
  ++segments_;
  return delta;
}

std::string ManifestBuilder::Build(const ManifestLive* live) const {
  std::string out = header_ + body_ + plan_;
  if (!view_.empty()) {
    out += "view " + view_.source + " " +
           std::to_string(view_.source_version) + " " + view_.query + "\n";
  }
  if (live != nullptr && !live->empty()) {
    char line[96];
    std::snprintf(line, sizeof(line), "live %u %d\n", live->epoch,
                  live->complete ? 1 : 0);
    out += line;
    for (size_t i = 0; i < live->publish_times_ms.size(); ++i) {
      std::snprintf(line, sizeof(line), "publish %zu %" PRId64 "\n", i,
                    live->publish_times_ms[i]);
      out += line;
    }
  }
  return out;
}

std::string GenerateManifest(const VideoMetadata& metadata,
                             const ManifestPlan* plan, const ManifestLive* live,
                             const ManifestView* view) {
  ManifestBuilder builder(metadata, plan);
  if (view != nullptr && !view->empty()) builder.SetView(*view);
  return builder.Build(live);
}

namespace {

Status Malformed(size_t line_number, const std::string& what) {
  return Status::Corruption("manifest line " + std::to_string(line_number) +
                            ": " + what);
}

}  // namespace

Result<VideoMetadata> ParseManifest(Slice text, ManifestPlan* plan,
                                    ManifestLive* live, ManifestView* view) {
  if (plan != nullptr) plan->entries.clear();
  if (live != nullptr) *live = ManifestLive{};
  if (view != nullptr) *view = ManifestView{};
  std::istringstream in(text.ToString());
  std::string line;
  size_t line_number = 0;
  VideoMetadata metadata;
  bool saw_magic = false;
  std::vector<QualityLevel> ladder;
  std::vector<SegmentInfo> segments;
  struct CellEntry {
    int segment, tile, quality;
    CellInfo info;
  };
  std::vector<CellEntry> cell_entries;
  std::vector<ManifestPlan::Entry> plan_entries;
  ManifestLive live_overlay;
  bool saw_live = false;
  ManifestView view_overlay;
  bool saw_view = false;

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (!saw_magic) {
      int version = 0;
      if (keyword != "VCMPD" || !(fields >> version) || version != 1) {
        return Malformed(line_number, "expected 'VCMPD 1' header");
      }
      saw_magic = true;
      continue;
    }
    if (keyword == "name") {
      fields >> metadata.name;
    } else if (keyword == "version") {
      fields >> metadata.version;
    } else if (keyword == "size") {
      int w = 0, h = 0;
      fields >> w >> h;
      metadata.width = static_cast<uint16_t>(w);
      metadata.height = static_cast<uint16_t>(h);
    } else if (keyword == "fps_x100") {
      int fps = 0;
      fields >> fps;
      metadata.fps_times_100 = static_cast<uint16_t>(fps);
    } else if (keyword == "segment_frames") {
      int frames = 0;
      fields >> frames;
      metadata.frames_per_segment = static_cast<uint16_t>(frames);
    } else if (keyword == "tiles") {
      int rows = 0, cols = 0;
      fields >> rows >> cols;
      metadata.tile_rows = static_cast<uint8_t>(rows);
      metadata.tile_cols = static_cast<uint8_t>(cols);
    } else if (keyword == "stereo") {
      int stereo = 0;
      fields >> stereo;
      if (stereo < 0 || stereo > 1) {
        return Malformed(line_number, "unknown stereo mode");
      }
      metadata.spherical.stereo = static_cast<StereoMode>(stereo);
    } else if (keyword == "quality") {
      size_t index;
      QualityLevel level;
      fields >> index >> level.name >> level.qp;
      if (fields.fail() || index != ladder.size()) {
        return Malformed(line_number, "quality rungs must be dense");
      }
      ladder.push_back(std::move(level));
    } else if (keyword == "segment") {
      size_t index;
      SegmentInfo segment;
      fields >> index >> segment.start_frame >> segment.frame_count;
      if (fields.fail() || index != segments.size()) {
        return Malformed(line_number, "segments must be dense");
      }
      segments.push_back(segment);
    } else if (keyword == "cell") {
      CellEntry entry;
      fields >> entry.segment >> entry.tile >> entry.quality >>
          entry.info.byte_size >> entry.info.crc32;
      if (fields.fail()) return Malformed(line_number, "bad cell entry");
      cell_entries.push_back(entry);
    } else if (keyword == "plan") {
      ManifestPlan::Entry entry;
      fields >> entry.segment;
      if (fields.fail()) return Malformed(line_number, "bad plan entry");
      int rung;
      while (fields >> rung) entry.tile_quality.push_back(rung);
      if (!fields.eof()) return Malformed(line_number, "bad plan entry");
      fields.clear();  // the rung loop always ends in a fail/eof state
      plan_entries.push_back(std::move(entry));
    } else if (keyword == "view") {
      if (saw_view) return Malformed(line_number, "duplicate view line");
      saw_view = true;
      int64_t source_version = -1;
      fields >> view_overlay.source >> source_version;
      if (fields.fail() || view_overlay.source.empty() || source_version < 1 ||
          source_version > UINT32_MAX) {
        return Malformed(line_number, "bad view entry");
      }
      view_overlay.source_version = static_cast<uint32_t>(source_version);
      std::string query;
      std::getline(fields, query);
      size_t begin = query.find_first_not_of(" \t");
      size_t end = query.find_last_not_of(" \t\r");
      if (begin == std::string::npos) {
        return Malformed(line_number, "view entry missing query text");
      }
      view_overlay.query = query.substr(begin, end - begin + 1);
      fields.clear();  // getline to EOL leaves eof set
    } else if (keyword == "live") {
      if (saw_live) return Malformed(line_number, "duplicate live line");
      saw_live = true;
      int64_t epoch = -1;
      int complete = -1;
      fields >> epoch >> complete;
      if (fields.fail() || epoch < 0 || epoch > UINT32_MAX || complete < 0 ||
          complete > 1) {
        return Malformed(line_number, "bad live entry");
      }
      live_overlay.epoch = static_cast<uint32_t>(epoch);
      live_overlay.complete = complete == 1;
    } else if (keyword == "publish") {
      size_t index;
      int64_t time_ms = -1;
      fields >> index >> time_ms;
      if (fields.fail() || index != live_overlay.publish_times_ms.size() ||
          time_ms < 0) {
        return Malformed(line_number, "publish entries must be dense");
      }
      if (!live_overlay.publish_times_ms.empty() &&
          time_ms < live_overlay.publish_times_ms.back()) {
        return Malformed(line_number, "publish times must be non-decreasing");
      }
      live_overlay.publish_times_ms.push_back(time_ms);
    } else {
      return Malformed(line_number, "unknown keyword '" + keyword + "'");
    }
    if (fields.fail()) return Malformed(line_number, "bad field values");
  }
  if (!saw_magic) return Status::Corruption("manifest missing VCMPD header");

  metadata.ladder = std::move(ladder);
  metadata.segments = std::move(segments);
  size_t expected = static_cast<size_t>(metadata.segment_count()) *
                    metadata.tile_count() * metadata.quality_count();
  if (cell_entries.size() != expected) {
    return Status::Corruption("manifest cell count mismatch");
  }
  metadata.cells.assign(expected, CellInfo{});
  std::vector<bool> seen(expected, false);
  for (const CellEntry& entry : cell_entries) {
    if (entry.segment < 0 || entry.segment >= metadata.segment_count() ||
        entry.tile < 0 || entry.tile >= metadata.tile_count() ||
        entry.quality < 0 || entry.quality >= metadata.quality_count()) {
      return Status::Corruption("manifest cell coordinates out of range");
    }
    size_t index =
        metadata.CellIndex(entry.segment, entry.tile, entry.quality);
    if (seen[index]) return Status::Corruption("duplicate manifest cell");
    seen[index] = true;
    metadata.cells[index] = entry.info;
  }
  VC_RETURN_IF_ERROR(metadata.Validate());

  int last_plan_segment = -1;
  for (const ManifestPlan::Entry& entry : plan_entries) {
    if (entry.segment < 0 || entry.segment >= metadata.segment_count() ||
        entry.segment <= last_plan_segment) {
      return Status::Corruption("manifest plan segments out of order");
    }
    last_plan_segment = entry.segment;
    if (static_cast<int>(entry.tile_quality.size()) !=
        metadata.tile_count()) {
      return Status::Corruption("manifest plan entry tile count mismatch");
    }
    for (int rung : entry.tile_quality) {
      if (rung < -1 || rung >= metadata.quality_count()) {
        return Status::Corruption("manifest plan rung out of range");
      }
    }
  }

  if (!live_overlay.publish_times_ms.empty() && !saw_live) {
    return Status::Corruption("manifest publish entries without live line");
  }
  if (saw_live && live_overlay.publish_times_ms.size() !=
                      static_cast<size_t>(metadata.segment_count())) {
    return Status::Corruption(
        "manifest live overlay must publish every segment");
  }

  if (plan != nullptr) plan->entries = std::move(plan_entries);
  if (live != nullptr && saw_live) *live = std::move(live_overlay);
  if (view != nullptr && saw_view) *view = std::move(view_overlay);
  return metadata;
}

}  // namespace vc
