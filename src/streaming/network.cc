#include "streaming/network.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/random.h"
#include "obs/metrics.h"

namespace vc {

Status FaultInjectionOptions::Validate() const {
  if (episodes_per_minute < 0 || episodes_per_minute > 600) {
    return Status::InvalidArgument("fault rate out of range [0, 600]/min");
  }
  if (!enabled()) return Status::OK();
  if (episode_seconds <= 0 || episode_seconds > 60) {
    return Status::InvalidArgument("fault episode length out of (0, 60s]");
  }
  if (horizon_seconds <= 0 || horizon_seconds > 86400) {
    return Status::InvalidArgument("fault horizon out of (0, 1 day]");
  }
  if (collapse_factor <= 0 || collapse_factor > 1.0) {
    return Status::InvalidArgument("collapse factor out of (0, 1]");
  }
  if (timeout_seconds <= 0 || timeout_seconds > 60) {
    return Status::InvalidArgument("fault timeout out of (0, 60s]");
  }
  return Status::OK();
}

Status NetworkOptions::Validate() const {
  if (bandwidth_bps <= 0) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  if (latency_seconds < 0 || latency_seconds > 10) {
    return Status::InvalidArgument("latency out of range [0, 10s]");
  }
  if (jitter < 0 || jitter > 0.9) {
    return Status::InvalidArgument("jitter out of range [0, 0.9]");
  }
  double last_t = -1;
  for (const auto& [t, bps] : bandwidth_trace) {
    if (t < 0 || bps <= 0 || t <= last_t) {
      return Status::InvalidArgument("bandwidth trace must be sorted, positive");
    }
    last_t = t;
  }
  return faults.Validate();
}

namespace {

/// Builds the deterministic episode schedule: exponential gaps at the
/// configured mean rate, episode durations uniform in [0.5, 1.5]× the mean,
/// kinds cycling through the RNG.
std::vector<FaultEpisode> GenerateEpisodes(const FaultInjectionOptions& f) {
  std::vector<FaultEpisode> episodes;
  if (!f.enabled()) return episodes;
  Random rng(f.seed);
  const double mean_gap = 60.0 / f.episodes_per_minute;
  double t = 0.0;
  for (;;) {
    // Exponential inter-arrival; guard the log argument away from 0.
    double u = std::max(1e-12, 1.0 - rng.NextDouble());
    t += -mean_gap * std::log(u);
    if (t >= f.horizon_seconds) break;
    FaultEpisode episode;
    episode.start = t;
    episode.duration = f.episode_seconds * rng.UniformDouble(0.5, 1.5);
    switch (rng.Uniform(3)) {
      case 0:
        episode.kind = FaultKind::kDrop;
        break;
      case 1:
        episode.kind = FaultKind::kStall;
        break;
      default:
        episode.kind = FaultKind::kCollapse;
        break;
    }
    episodes.push_back(episode);
    t = episode.end();
  }
  return episodes;
}

}  // namespace

Result<NetworkSimulator> NetworkSimulator::Create(
    const NetworkOptions& options) {
  VC_RETURN_IF_ERROR(options.Validate());
  return NetworkSimulator(options);
}

NetworkSimulator::NetworkSimulator(const NetworkOptions& options)
    : options_(options),
      episodes_(GenerateEpisodes(options.faults)),
      jitter_state_(options.seed) {}

double NetworkSimulator::BandwidthAt(double t) const {
  double bps = options_.bandwidth_bps;
  for (const auto& [start, rate] : options_.bandwidth_trace) {
    if (t >= start) {
      bps = rate;
    } else {
      break;
    }
  }
  return bps;
}

const FaultEpisode* NetworkSimulator::EpisodeAt(double t) const {
  // Episodes are sorted and non-overlapping: binary-search the last one
  // starting at or before t.
  auto it = std::upper_bound(
      episodes_.begin(), episodes_.end(), t,
      [](double time, const FaultEpisode& e) { return time < e.start; });
  if (it == episodes_.begin()) return nullptr;
  const FaultEpisode& episode = *std::prev(it);
  return t < episode.end() ? &episode : nullptr;
}

TransferResult NetworkSimulator::Transfer(double start, uint64_t bytes) {
  static Counter* transfers =
      MetricRegistry::Global().GetCounter("net.transfers");
  static Counter* bytes_sent =
      MetricRegistry::Global().GetCounter("net.bytes_sent");
  static Histogram* transfer_seconds =
      MetricRegistry::Global().GetHistogram("net.transfer_seconds");
  static Gauge* goodput =
      MetricRegistry::Global().GetGauge("net.goodput_bps");
  static Counter* fault_drops =
      MetricRegistry::Global().GetCounter("net.fault_drops");
  static Counter* fault_stalls =
      MetricRegistry::Global().GetCounter("net.fault_stalls");
  static Counter* fault_collapses =
      MetricRegistry::Global().GetCounter("net.fault_collapses");

  ++request_count_;
  transfers->Add();

  // Classify the request against the fault schedule by its issue time.
  const FaultEpisode* episode = EpisodeAt(start);
  if (episode != nullptr && episode->kind == FaultKind::kDrop) {
    ++fault_count_;
    fault_drops->Add();
    TransferResult result;
    result.completion_time = start + options_.faults.timeout_seconds;
    result.delivered_bytes = 0;
    result.faulted = true;
    return result;
  }

  double t = start + options_.latency_seconds;
  if (episode != nullptr && episode->kind == FaultKind::kStall) {
    fault_stalls->Add();
    t = std::max(t, episode->end());  // frozen until the episode clears
  }
  double remaining_bits = static_cast<double>(bytes) * 8.0;

  double rate_factor = 1.0;
  if (options_.jitter > 0) {
    Random rng(jitter_state_);
    jitter_state_ = rng.Next();
    rate_factor =
        Clamp(1.0 + options_.jitter * rng.NextGaussian(), 0.1, 2.0);
  }
  if (episode != nullptr && episode->kind == FaultKind::kCollapse) {
    fault_collapses->Add();
    rate_factor *= options_.faults.collapse_factor;
  }

  // Integrate across stepwise bandwidth changes: walk each remaining trace
  // step at most once, then finish analytically on the final (constant)
  // plateau. No step budget — a transfer spanning an arbitrarily long trace
  // still completes exactly.
  const auto& trace = options_.bandwidth_trace;
  auto next = std::upper_bound(
      trace.begin(), trace.end(), t,
      [](double time, const std::pair<double, double>& step) {
        return time < step.first;
      });
  double bps = (next == trace.begin() ? options_.bandwidth_bps
                                      : std::prev(next)->second) *
               rate_factor;
  for (; next != trace.end() && remaining_bits > 1e-9; ++next) {
    double finish = t + remaining_bits / bps;
    if (finish <= next->first) {
      remaining_bits = 0;
      t = finish;
      break;
    }
    remaining_bits -= (next->first - t) * bps;
    t = next->first;
    bps = next->second * rate_factor;
  }
  if (remaining_bits > 1e-9) t += remaining_bits / bps;

  total_bytes_ += bytes;
  bytes_sent->Add(bytes);
  transfer_seconds->Observe(t - start);
  if (t > start) {
    goodput->Set(static_cast<double>(bytes) * 8.0 / (t - start));
  }
  TransferResult result;
  result.completion_time = t;
  result.delivered_bytes = bytes;
  result.faulted = false;
  return result;
}

void NetworkSimulator::ResetStats() {
  total_bytes_ = 0;
  request_count_ = 0;
  fault_count_ = 0;
}

}  // namespace vc
