#include "streaming/network.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/random.h"
#include "obs/metrics.h"

namespace vc {

Status NetworkOptions::Validate() const {
  if (bandwidth_bps <= 0) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  if (latency_seconds < 0 || latency_seconds > 10) {
    return Status::InvalidArgument("latency out of range [0, 10s]");
  }
  if (jitter < 0 || jitter > 0.9) {
    return Status::InvalidArgument("jitter out of range [0, 0.9]");
  }
  double last_t = -1;
  for (const auto& [t, bps] : bandwidth_trace) {
    if (t < 0 || bps <= 0 || t <= last_t) {
      return Status::InvalidArgument("bandwidth trace must be sorted, positive");
    }
    last_t = t;
  }
  return Status::OK();
}

Result<NetworkSimulator> NetworkSimulator::Create(
    const NetworkOptions& options) {
  VC_RETURN_IF_ERROR(options.Validate());
  return NetworkSimulator(options);
}

NetworkSimulator::NetworkSimulator(const NetworkOptions& options)
    : options_(options), jitter_state_(options.seed) {}

double NetworkSimulator::BandwidthAt(double t) const {
  double bps = options_.bandwidth_bps;
  for (const auto& [start, rate] : options_.bandwidth_trace) {
    if (t >= start) {
      bps = rate;
    } else {
      break;
    }
  }
  return bps;
}

double NetworkSimulator::Transfer(double start, uint64_t bytes) {
  ++request_count_;
  total_bytes_ += bytes;
  double t = start + options_.latency_seconds;
  double remaining_bits = static_cast<double>(bytes) * 8.0;

  double rate_factor = 1.0;
  if (options_.jitter > 0) {
    Random rng(jitter_state_);
    jitter_state_ = rng.Next();
    rate_factor =
        Clamp(1.0 + options_.jitter * rng.NextGaussian(), 0.1, 2.0);
  }

  // Integrate across stepwise bandwidth changes: walk each remaining trace
  // step at most once, then finish analytically on the final (constant)
  // plateau. No step budget — a transfer spanning an arbitrarily long trace
  // still completes exactly.
  const auto& trace = options_.bandwidth_trace;
  auto next = std::upper_bound(
      trace.begin(), trace.end(), t,
      [](double time, const std::pair<double, double>& step) {
        return time < step.first;
      });
  double bps = (next == trace.begin() ? options_.bandwidth_bps
                                      : std::prev(next)->second) *
               rate_factor;
  for (; next != trace.end() && remaining_bits > 1e-9; ++next) {
    double finish = t + remaining_bits / bps;
    if (finish <= next->first) {
      remaining_bits = 0;
      t = finish;
      break;
    }
    remaining_bits -= (next->first - t) * bps;
    t = next->first;
    bps = next->second * rate_factor;
  }
  if (remaining_bits > 1e-9) t += remaining_bits / bps;

  static Counter* transfers =
      MetricRegistry::Global().GetCounter("net.transfers");
  static Counter* bytes_sent =
      MetricRegistry::Global().GetCounter("net.bytes_sent");
  static Histogram* transfer_seconds =
      MetricRegistry::Global().GetHistogram("net.transfer_seconds");
  static Gauge* goodput =
      MetricRegistry::Global().GetGauge("net.goodput_bps");
  transfers->Add();
  bytes_sent->Add(bytes);
  transfer_seconds->Observe(t - start);
  if (t > start) {
    goodput->Set(static_cast<double>(bytes) * 8.0 / (t - start));
  }
  return t;
}

void NetworkSimulator::ResetStats() {
  total_bytes_ = 0;
  request_count_ = 0;
}

}  // namespace vc
