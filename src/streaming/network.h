#ifndef VC_STREAMING_NETWORK_H_
#define VC_STREAMING_NETWORK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"

namespace vc {

/// What goes wrong during a fault episode on the network path.
enum class FaultKind {
  kDrop,      ///< Requests issued during the episode time out undelivered.
  kStall,     ///< Requests freeze until the episode ends, then proceed.
  kCollapse,  ///< Bandwidth collapses to a fraction for the whole transfer.
};

/// One scheduled fault episode (see FaultInjectionOptions).
struct FaultEpisode {
  double start = 0.0;
  double duration = 0.0;
  FaultKind kind = FaultKind::kDrop;

  double end() const { return start + duration; }
};

/// \brief Seeded fault-injection model for the network path.
///
/// Episodes (drop / stall / bandwidth-collapse) are pre-generated from the
/// seed over `[0, horizon_seconds)` with exponentially distributed gaps, so
/// a given seed always produces the same fault schedule — degraded runs are
/// as reproducible as clean ones. A request is classified by its issue
/// time; episodes starting mid-transfer are ignored (the transfer was
/// already in flight).
struct FaultInjectionOptions {
  double episodes_per_minute = 0.0;  ///< Mean episode rate; 0 disables.
  double episode_seconds = 1.0;      ///< Mean episode duration.
  double horizon_seconds = 600.0;    ///< Episodes generated over [0, this).
  double collapse_factor = 0.1;      ///< Bandwidth multiplier under collapse.
  double timeout_seconds = 2.0;      ///< Dropped requests fail after this.
  uint64_t seed = 41;                ///< Episode-schedule RNG seed.

  bool enabled() const { return episodes_per_minute > 0.0; }
  Status Validate() const;
};

/// \brief Parameters of the simulated client↔server network path.
///
/// Replaces the HTTP/DASH path of the live demonstration with a
/// deterministic model: a (possibly time-varying) bandwidth, a fixed
/// per-request latency, and optional multiplicative jitter. Determinism
/// makes every bandwidth number in EXPERIMENTS.md exactly reproducible.
struct NetworkOptions {
  double bandwidth_bps = 8e6;      ///< Steady-state bandwidth (bits/second).
  double latency_seconds = 0.030;  ///< Per-request one-way latency.
  double jitter = 0.0;             ///< Stddev of per-transfer rate factor.
  uint64_t seed = 7;               ///< Jitter RNG seed.
  /// Optional stepwise bandwidth trace: (start_time, bps) pairs sorted by
  /// time; overrides `bandwidth_bps` from each start time onward.
  std::vector<std::pair<double, double>> bandwidth_trace;
  /// Optional fault injection (disabled by default).
  FaultInjectionOptions faults;

  Status Validate() const;
};

/// Outcome of one simulated request.
struct TransferResult {
  double completion_time = 0.0;  ///< When the request resolved (seconds).
  uint64_t delivered_bytes = 0;  ///< Bytes that actually arrived (0 on fault).
  bool faulted = false;          ///< True when the request timed out (drop).
};

/// \brief Deterministic network path simulator.
///
/// The streaming session calls `Transfer` once per segment request; the
/// simulator integrates the byte count over the (stepwise) bandwidth curve
/// and returns the completion time, delivered bytes, and whether the
/// request faulted, so retries and fault accounting compose without
/// out-params.
class NetworkSimulator {
 public:
  static Result<NetworkSimulator> Create(const NetworkOptions& options);

  /// Bandwidth in effect at simulation time `t` (bits/second).
  double BandwidthAt(double t) const;

  /// Fault episode (if any) covering simulation time `t`.
  const FaultEpisode* EpisodeAt(double t) const;

  /// Simulates a request for `bytes` issued at time `start` and accumulates
  /// transfer statistics. A request issued inside a drop episode times out
  /// after `faults.timeout_seconds` with nothing delivered; a stall episode
  /// delays service until the episode ends; a collapse episode multiplies
  /// the effective bandwidth by `faults.collapse_factor`.
  TransferResult Transfer(double start, uint64_t bytes);

  /// Total bytes delivered so far (faulted requests deliver nothing).
  uint64_t total_bytes() const { return total_bytes_; }

  /// Number of Transfer calls.
  uint64_t request_count() const { return request_count_; }

  /// Number of faulted (timed-out) requests.
  uint64_t fault_count() const { return fault_count_; }

  /// Clears statistics (the bandwidth and fault models are unchanged).
  void ResetStats();

 private:
  explicit NetworkSimulator(const NetworkOptions& options);

  NetworkOptions options_;
  std::vector<FaultEpisode> episodes_;
  uint64_t jitter_state_;
  uint64_t total_bytes_ = 0;
  uint64_t request_count_ = 0;
  uint64_t fault_count_ = 0;
};

}  // namespace vc

#endif  // VC_STREAMING_NETWORK_H_
