#ifndef VC_STREAMING_NETWORK_H_
#define VC_STREAMING_NETWORK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"

namespace vc {

/// \brief Parameters of the simulated client↔server network path.
///
/// Replaces the HTTP/DASH path of the live demonstration with a
/// deterministic model: a (possibly time-varying) bandwidth, a fixed
/// per-request latency, and optional multiplicative jitter. Determinism
/// makes every bandwidth number in EXPERIMENTS.md exactly reproducible.
struct NetworkOptions {
  double bandwidth_bps = 8e6;      ///< Steady-state bandwidth (bits/second).
  double latency_seconds = 0.030;  ///< Per-request one-way latency.
  double jitter = 0.0;             ///< Stddev of per-transfer rate factor.
  uint64_t seed = 7;               ///< Jitter RNG seed.
  /// Optional stepwise bandwidth trace: (start_time, bps) pairs sorted by
  /// time; overrides `bandwidth_bps` from each start time onward.
  std::vector<std::pair<double, double>> bandwidth_trace;

  Status Validate() const;
};

/// \brief Deterministic network path simulator.
///
/// The streaming session calls `Transfer` once per segment request; the
/// simulator integrates the byte count over the (stepwise) bandwidth curve
/// and returns the completion time.
class NetworkSimulator {
 public:
  static Result<NetworkSimulator> Create(const NetworkOptions& options);

  /// Bandwidth in effect at simulation time `t` (bits/second).
  double BandwidthAt(double t) const;

  /// Simulates a request for `bytes` issued at time `start`; returns the
  /// completion time (start + latency + transfer time) and accumulates
  /// transfer statistics.
  double Transfer(double start, uint64_t bytes);

  /// Total bytes transferred so far.
  uint64_t total_bytes() const { return total_bytes_; }

  /// Number of Transfer calls.
  uint64_t request_count() const { return request_count_; }

  /// Clears statistics (the bandwidth model is unchanged).
  void ResetStats();

 private:
  explicit NetworkSimulator(const NetworkOptions& options);

  NetworkOptions options_;
  uint64_t jitter_state_;
  uint64_t total_bytes_ = 0;
  uint64_t request_count_ = 0;
};

}  // namespace vc

#endif  // VC_STREAMING_NETWORK_H_
