#ifndef VC_STREAMING_QOE_H_
#define VC_STREAMING_QOE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vc {

/// \brief Quality-of-experience accounting for one streaming session.
///
/// Collected by the session driver: transfer volume, rebuffering, and
/// (optionally) in-viewport quality measured against the pristine source.
struct SessionStats {
  std::string approach;        ///< Strategy name ("visualcloud", ...).
  uint64_t bytes_sent = 0;     ///< Total media bytes delivered.
  int segments = 0;            ///< Segments streamed.
  double startup_delay = 0.0;  ///< Seconds until playback started.
  double stall_seconds = 0.0;  ///< Total rebuffering time after startup.
  int stall_events = 0;        ///< Number of distinct rebuffer events.
  double duration_seconds = 0.0;  ///< Media duration streamed.

  // In-viewport quality (only when the session evaluated quality).
  double mean_viewport_psnr = 0.0;
  double min_viewport_psnr = 0.0;
  int quality_samples = 0;

  /// Mean ladder rung delivered for in-view tiles (0 = best).
  double mean_inview_quality = 0.0;

  // Fault handling on the network path (all zero when fault injection is
  // disabled, which keeps fault-free runs byte-identical to builds that
  // predate these fields).
  int transfer_faults = 0;   ///< Requests that faulted (timed out).
  int transfer_retries = 0;  ///< Faulted requests retried at a lower rung.
  int segments_skipped = 0;  ///< Segments abandoned after a failed retry.

  /// Average delivered media bitrate (bits/second of content time).
  double MeanBitrateBps() const {
    return duration_seconds > 0
               ? static_cast<double>(bytes_sent) * 8.0 / duration_seconds
               : 0.0;
  }
};

/// Bandwidth saved by `candidate` relative to `baseline` (fraction in
/// [−∞, 1]; 0.6 means 60% fewer bytes).
inline double BandwidthSavings(const SessionStats& baseline,
                               const SessionStats& candidate) {
  if (baseline.bytes_sent == 0) return 0.0;
  return 1.0 - static_cast<double>(candidate.bytes_sent) /
                   static_cast<double>(baseline.bytes_sent);
}

}  // namespace vc

#endif  // VC_STREAMING_QOE_H_
