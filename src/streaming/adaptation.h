#ifndef VC_STREAMING_ADAPTATION_H_
#define VC_STREAMING_ADAPTATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vc {

/// \brief EWMA throughput estimator (the standard DASH rate-adaptation
/// signal): smooths per-segment measured goodput.
class ThroughputEstimator {
 public:
  /// Durations below this floor (cache-served segments completing in
  /// near-zero simulated time) are clamped rather than trusted: the raw
  /// sample would read as near-infinite goodput and bias the EWMA high.
  static constexpr double kMinSampleSeconds = 1e-3;

  explicit ThroughputEstimator(double alpha = 0.3, double initial_bps = 4e6)
      : alpha_(alpha), estimate_bps_(initial_bps) {}

  /// Records a completed transfer of `bytes` that took `seconds`. Empty or
  /// non-positive-duration samples are discarded; durations under
  /// `kMinSampleSeconds` are clamped to it. Both cases are counted in the
  /// `adaptation.samples_discarded` / `adaptation.samples_clamped` metrics.
  void AddSample(uint64_t bytes, double seconds);

  /// Smoothed goodput estimate (bits/second).
  double estimate_bps() const { return estimate_bps_; }

 private:
  double alpha_;
  double estimate_bps_;
};

/// Picks the highest quality index (0 = best) whose size fits in
/// `budget_bytes`; falls back to the lowest quality if none fit.
/// `sizes_per_quality` is ordered best→worst quality. An empty ladder
/// returns 0 so callers that index a ladder never see a negative index.
int PickQualityForBudget(const std::vector<uint64_t>& sizes_per_quality,
                         double budget_bytes);

/// Byte budget for one segment: the bytes a `bps` link delivers in
/// `segment_seconds`, derated by `safety` (< 1) to absorb estimation error.
double SegmentByteBudget(double bps, double segment_seconds,
                         double safety = 0.85);

}  // namespace vc

#endif  // VC_STREAMING_ADAPTATION_H_
