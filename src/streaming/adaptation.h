#ifndef VC_STREAMING_ADAPTATION_H_
#define VC_STREAMING_ADAPTATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vc {

/// \brief EWMA throughput estimator (the standard DASH rate-adaptation
/// signal): smooths per-segment measured goodput.
class ThroughputEstimator {
 public:
  explicit ThroughputEstimator(double alpha = 0.3, double initial_bps = 4e6)
      : alpha_(alpha), estimate_bps_(initial_bps) {}

  /// Records a completed transfer of `bytes` that took `seconds`.
  void AddSample(uint64_t bytes, double seconds) {
    if (seconds <= 1e-9) return;
    double bps = static_cast<double>(bytes) * 8.0 / seconds;
    estimate_bps_ = alpha_ * bps + (1.0 - alpha_) * estimate_bps_;
  }

  /// Smoothed goodput estimate (bits/second).
  double estimate_bps() const { return estimate_bps_; }

 private:
  double alpha_;
  double estimate_bps_;
};

/// Picks the highest quality index (0 = best) whose size fits in
/// `budget_bytes`; falls back to the lowest quality if none fit.
/// `sizes_per_quality` is ordered best→worst quality.
int PickQualityForBudget(const std::vector<uint64_t>& sizes_per_quality,
                         double budget_bytes);

/// Byte budget for one segment: the bytes a `bps` link delivers in
/// `segment_seconds`, derated by `safety` (< 1) to absorb estimation error.
double SegmentByteBudget(double bps, double segment_seconds,
                         double safety = 0.85);

}  // namespace vc

#endif  // VC_STREAMING_ADAPTATION_H_
