#include "streaming/adaptation.h"

#include "obs/metrics.h"

namespace vc {

void ThroughputEstimator::AddSample(uint64_t bytes, double seconds) {
  static Counter* samples =
      MetricRegistry::Global().GetCounter("adaptation.samples");
  static Counter* clamped =
      MetricRegistry::Global().GetCounter("adaptation.samples_clamped");
  static Counter* discarded =
      MetricRegistry::Global().GetCounter("adaptation.samples_discarded");
  if (bytes == 0 || seconds <= 0.0) {
    discarded->Add();
    return;
  }
  if (seconds < kMinSampleSeconds) {
    seconds = kMinSampleSeconds;
    clamped->Add();
  }
  samples->Add();
  double bps = static_cast<double>(bytes) * 8.0 / seconds;
  estimate_bps_ = alpha_ * bps + (1.0 - alpha_) * estimate_bps_;
}

int PickQualityForBudget(const std::vector<uint64_t>& sizes_per_quality,
                         double budget_bytes) {
  if (sizes_per_quality.empty()) return 0;
  for (size_t q = 0; q < sizes_per_quality.size(); ++q) {
    if (static_cast<double>(sizes_per_quality[q]) <= budget_bytes) {
      return static_cast<int>(q);
    }
  }
  return static_cast<int>(sizes_per_quality.size()) - 1;
}

double SegmentByteBudget(double bps, double segment_seconds, double safety) {
  return bps * segment_seconds * safety / 8.0;
}

}  // namespace vc
