#include "streaming/adaptation.h"

namespace vc {

int PickQualityForBudget(const std::vector<uint64_t>& sizes_per_quality,
                         double budget_bytes) {
  for (size_t q = 0; q < sizes_per_quality.size(); ++q) {
    if (static_cast<double>(sizes_per_quality[q]) <= budget_bytes) {
      return static_cast<int>(q);
    }
  }
  return static_cast<int>(sizes_per_quality.size()) - 1;
}

double SegmentByteBudget(double bps, double segment_seconds, double safety) {
  return bps * segment_seconds * safety / 8.0;
}

}  // namespace vc
