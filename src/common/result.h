#ifndef VC_COMMON_RESULT_H_
#define VC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace vc {

/// \brief A `Status` or a value of type `T`.
///
/// Like `arrow::Result<T>`: either holds an OK status and a value, or a
/// non-OK status and no value. Accessing the value of an errored result is a
/// programming error (checked by assertion in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a `Result` expression, otherwise assigns its value
/// to `lhs`. `lhs` must be an already-declared lvalue.
#define VC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

#define VC_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define VC_ASSIGN_OR_RETURN_NAME(a, b) VC_ASSIGN_OR_RETURN_CONCAT(a, b)
#define VC_ASSIGN_OR_RETURN(lhs, expr) \
  VC_ASSIGN_OR_RETURN_IMPL(            \
      VC_ASSIGN_OR_RETURN_NAME(_vc_result_, __COUNTER__), lhs, expr)

}  // namespace vc

#endif  // VC_COMMON_RESULT_H_
