#ifndef VC_COMMON_SLICE_H_
#define VC_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace vc {

/// \brief A non-owning view over a byte range (rocksdb::Slice analogue).
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  explicit Slice(const std::string& s) : Slice(s.data(), s.size()) {}
  explicit Slice(const std::vector<uint8_t>& v)
      : data_(v.data()), size_(v.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first `n` bytes from the view.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  /// Returns a sub-view `[offset, offset + length)`.
  Slice Subslice(size_t offset, size_t length) const {
    assert(offset + length <= size_);
    return Slice(data_ + offset, length);
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }
  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace vc

#endif  // VC_COMMON_SLICE_H_
