#include "common/crc32.h"

#include <array>

namespace vc {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(Slice data, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildTable();
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < data.size(); ++i) {
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace vc
