#include "common/thread_pool.h"

namespace vc {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Shutdown();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
}

bool ThreadPool::Submit(std::function<void()> task, TaskPriority priority) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Checked under the same lock Shutdown() takes: a task is either
    // enqueued before shutdown (and will run — workers drain the queues
    // before exiting) or observably refused here.
    if (shutdown_) return false;
    (priority == TaskPriority::kHigh ? queue_ : low_queue_)
        .push_back(std::move(task));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] {
    return queue_.empty() && low_queue_.empty() && active_ == 0;
  });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] {
        return shutdown_ || !queue_.empty() || !low_queue_.empty();
      });
      if (queue_.empty() && low_queue_.empty()) {
        return;  // shutdown with drained queues
      }
      // High lane starves the low lane by design: a demand load never
      // waits behind speculative prefetch.
      std::deque<std::function<void()>>& source =
          queue_.empty() ? low_queue_ : queue_;
      task = std::move(source.front());
      source.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && low_queue_.empty() && active_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace vc
