#ifndef VC_COMMON_ENV_H_
#define VC_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace vc {

/// \brief Filesystem abstraction (rocksdb::Env analogue).
///
/// The storage manager performs all persistence through an `Env`, which lets
/// tests and benchmarks run against an in-memory filesystem (`NewMemEnv`)
/// while production uses the real one (`Env::Default`). Paths use '/'
/// separators; directories are created non-recursively except where noted.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide POSIX filesystem environment (not owned by caller).
  static Env* Default();

  /// Atomically (best effort) replaces `path` with `contents`.
  virtual Status WriteFile(const std::string& path, Slice contents) = 0;

  /// Appends `contents` to `path`, creating it if absent.
  virtual Status AppendFile(const std::string& path, Slice contents) = 0;

  /// Reads the whole file.
  virtual Result<std::vector<uint8_t>> ReadFile(const std::string& path) = 0;

  /// Reads `length` bytes starting at `offset`. Short reads are errors.
  virtual Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                                     uint64_t offset,
                                                     uint64_t length) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Creates a directory and any missing parents.
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Lists immediate children (names only, no paths) of a directory.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  /// Recursively removes a directory tree (used by DROP and tests).
  virtual Status RemoveDirRecursive(const std::string& path) = 0;
};

/// Creates a fresh in-memory Env. Each call returns an isolated filesystem.
std::unique_ptr<Env> NewMemEnv();

}  // namespace vc

#endif  // VC_COMMON_ENV_H_
