#include "common/status.h"

namespace vc {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace vc
