#ifndef VC_COMMON_LOGGING_H_
#define VC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace vc {

/// Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the process-wide minimum severity that is emitted (default kWarn so
/// benchmarks stay quiet). Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define VC_LOG(level)                                        \
  if (::vc::LogLevel::level < ::vc::GetLogLevel()) {         \
  } else                                                     \
    ::vc::internal::LogMessage(::vc::LogLevel::level, __FILE__, __LINE__)

}  // namespace vc

#endif  // VC_COMMON_LOGGING_H_
