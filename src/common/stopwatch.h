#ifndef VC_COMMON_STOPWATCH_H_
#define VC_COMMON_STOPWATCH_H_

#include <chrono>

namespace vc {

/// \brief Monotonic wall-clock stopwatch used by benchmarks and the ingest
/// pipeline's throughput accounting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vc

#endif  // VC_COMMON_STOPWATCH_H_
