#ifndef VC_COMMON_MATH_UTIL_H_
#define VC_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cstdint>

namespace vc {

/// Pi to double precision; the geometry and prediction layers use this single
/// definition so wrap-around arithmetic is consistent everywhere.
inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Clamps `v` to [lo, hi].
template <typename T>
constexpr T Clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Clamps to the uint8_t pixel range.
inline uint8_t ClampPixel(int v) {
  return static_cast<uint8_t>(Clamp(v, 0, 255));
}

/// Rounds `v` up to the next multiple of `align` (align > 0).
constexpr int AlignUp(int v, int align) {
  return (v + align - 1) / align * align;
}

/// Integer ceiling division for non-negative operands.
constexpr int CeilDiv(int a, int b) { return (a + b - 1) / b; }

/// Degrees/radians conversions.
constexpr double DegToRad(double deg) { return deg * kPi / 180.0; }
constexpr double RadToDeg(double rad) { return rad * 180.0 / kPi; }

}  // namespace vc

#endif  // VC_COMMON_MATH_UTIL_H_
