#ifndef VC_COMMON_CRC32_H_
#define VC_COMMON_CRC32_H_

#include <cstdint>

#include "common/slice.h"

namespace vc {

/// Computes the CRC-32 (IEEE 802.3 polynomial) of `data`, continuing from
/// `seed` (pass 0 for a fresh checksum). Used to detect corruption in stored
/// segments and container boxes.
uint32_t Crc32(Slice data, uint32_t seed = 0);

}  // namespace vc

#endif  // VC_COMMON_CRC32_H_
