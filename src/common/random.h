#ifndef VC_COMMON_RANDOM_H_
#define VC_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace vc {

/// \brief Deterministic, seedable PRNG (xorshift128+).
///
/// All randomness in VisualCloud (synthetic scenes, head-trace synthesis,
/// network jitter) flows through explicitly-seeded `Random` instances so that
/// every experiment is bit-reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding to avoid poor low-entropy seeds.
    state_[0] = SplitMix(&seed);
    state_[1] = SplitMix(&seed);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = state_[0];
    const uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  /// Uniform value in [0, n). `n` must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-12);
    u2 = NextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* s) {
    uint64_t z = (*s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t state_[2];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace vc

#endif  // VC_COMMON_RANDOM_H_
