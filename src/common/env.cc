#include "common/env.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

namespace vc {

namespace fs = std::filesystem;

namespace {

std::string ErrnoMessage(const std::string& path, const char* op) {
  return std::string(op) + " '" + path + "': " + std::strerror(errno);
}

/// POSIX-backed environment using <filesystem> and stdio.
class PosixEnv final : public Env {
 public:
  Status WriteFile(const std::string& path, Slice contents) override {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return Status::IOError(ErrnoMessage(tmp, "open"));
      out.write(reinterpret_cast<const char*>(contents.data()),
                static_cast<std::streamsize>(contents.size()));
      if (!out) return Status::IOError(ErrnoMessage(tmp, "write"));
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) return Status::IOError("rename '" + tmp + "': " + ec.message());
    return Status::OK();
  }

  Status AppendFile(const std::string& path, Slice contents) override {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) return Status::IOError(ErrnoMessage(path, "open"));
    out.write(reinterpret_cast<const char*>(contents.data()),
              static_cast<std::streamsize>(contents.size()));
    if (!out) return Status::IOError(ErrnoMessage(path, "append"));
    return Status::OK();
  }

  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return Status::NotFound("file '" + path + "'");
    auto size = in.tellg();
    in.seekg(0);
    std::vector<uint8_t> data(static_cast<size_t>(size));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(size));
    if (!in) return Status::IOError(ErrnoMessage(path, "read"));
    return data;
  }

  Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                             uint64_t offset,
                                             uint64_t length) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("file '" + path + "'");
    in.seekg(static_cast<std::streamoff>(offset));
    std::vector<uint8_t> data(length);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(length));
    if (static_cast<uint64_t>(in.gcount()) != length) {
      return Status::OutOfRange("short read from '" + path + "'");
    }
    return data;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    auto size = fs::file_size(path, ec);
    if (ec) return Status::NotFound("file '" + path + "'");
    return static_cast<uint64_t>(size);
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Status DeleteFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::IOError("delete '" + path + "'" +
                             (ec ? ": " + ec.message() : ""));
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) return Status::IOError("rename '" + from + "': " + ec.message());
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IOError("mkdir '" + path + "': " + ec.message());
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (auto it = fs::directory_iterator(path, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) return Status::IOError("list '" + path + "': " + ec.message());
    return names;
  }

  Status RemoveDirRecursive(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) return Status::IOError("rmdir '" + path + "': " + ec.message());
    return Status::OK();
  }
};

/// In-memory environment: a flat map from path to contents. Directories are
/// implicit (a path "exists" as a directory if any file lives under it), which
/// is sufficient for the storage layer's layout.
class MemEnv final : public Env {
 public:
  Status WriteFile(const std::string& path, Slice contents) override {
    std::lock_guard<std::mutex> lock(mu_);
    files_[path] = contents.ToVector();
    return Status::OK();
  }

  Status AppendFile(const std::string& path, Slice contents) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto& file = files_[path];
    file.insert(file.end(), contents.data(), contents.data() + contents.size());
    return Status::OK();
  }

  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("file '" + path + "'");
    return it->second;
  }

  Result<std::vector<uint8_t>> ReadFileRange(const std::string& path,
                                             uint64_t offset,
                                             uint64_t length) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("file '" + path + "'");
    if (offset + length > it->second.size()) {
      return Status::OutOfRange("short read from '" + path + "'");
    }
    return std::vector<uint8_t>(it->second.begin() + offset,
                                it->second.begin() + offset + length);
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("file '" + path + "'");
    return static_cast<uint64_t>(it->second.size());
  }

  bool FileExists(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.count(path) > 0) return true;
    return HasChildLocked(path);
  }

  Status DeleteFile(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.erase(path) == 0) {
      return Status::IOError("delete '" + path + "': not found");
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(from);
    if (it == files_.end()) {
      return Status::IOError("rename '" + from + "': not found");
    }
    files_[to] = std::move(it->second);
    files_.erase(it);
    return Status::OK();
  }

  Status CreateDirs(const std::string&) override { return Status::OK(); }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::string prefix = path;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    std::vector<std::string> names;
    std::string last;
    for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      std::string rest = it->first.substr(prefix.size());
      std::string child = rest.substr(0, rest.find('/'));
      if (child != last) {
        names.push_back(child);
        last = child;
      }
    }
    return names;
  }

  Status RemoveDirRecursive(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::string prefix = path;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    for (auto it = files_.lower_bound(prefix); it != files_.end();) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      it = files_.erase(it);
    }
    return Status::OK();
  }

 private:
  bool HasChildLocked(const std::string& path) {
    std::string prefix = path;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    auto it = files_.lower_bound(prefix);
    return it != files_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0;
  }

  std::mutex mu_;
  std::map<std::string, std::vector<uint8_t>> files_;
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace vc
