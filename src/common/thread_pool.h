#ifndef VC_COMMON_THREAD_POOL_H_
#define VC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vc {

/// Scheduling lane of a submitted task. Workers always drain the high lane
/// before touching the low lane, so background work (cache prefetch) can
/// share a pool with latency-sensitive work (demand cell loads) without
/// ever delaying it behind a queue of speculation.
enum class TaskPriority { kHigh, kLow };

/// \brief Fixed-size worker pool used to parallelize per-tile encoding during
/// ingest and to run the storage layer's async cell loads. Tasks are plain
/// `std::function<void()>`; `WaitIdle` blocks until every submitted task has
/// completed (barrier semantics, the only synchronization the ingest
/// pipeline needs).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on the given lane. Returns false (and
  /// drops the task) once shutdown has begun — every task accepted here is
  /// guaranteed to run before the workers exit.
  bool Submit(std::function<void()> task,
              TaskPriority priority = TaskPriority::kHigh);

  /// Begins shutdown: subsequent Submit calls are refused, already-queued
  /// tasks still run. Idempotent; the destructor calls it and then joins.
  void Shutdown();

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;      // high lane
  std::deque<std::function<void()>> low_queue_;  // low lane
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace vc

#endif  // VC_COMMON_THREAD_POOL_H_
