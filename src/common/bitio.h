#ifndef VC_COMMON_BITIO_H_
#define VC_COMMON_BITIO_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace vc {

/// \brief MSB-first bit writer used by the codec entropy layer and the
/// container format.
///
/// Supports fixed-width fields, unsigned/signed Exp-Golomb codes (as in
/// H.264/HEVC), and byte alignment. The writer owns its output buffer.
///
/// Pending bits live in a 64-bit accumulator and drain to the byte buffer in
/// whole bytes; the hot methods are header-inline because the entropy layer
/// calls them on the order of 10⁸ times per encoded segment.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `bits` bits of `value`, MSB first. `bits` in [0, 64].
  void WriteBits(uint64_t value, int bits) {
    assert(bits >= 0 && bits <= 64);
    if (bits < 64) {
      assert((bits == 0 && value == 0) || (value >> bits) == 0);
    }
    if (bits > 56) {
      // Split so the accumulator shift below stays < 64 even with up to 7
      // pending bits.
      WriteBits(value >> 32, bits - 32);
      value &= 0xffffffffu;
      bits = 32;
    }
    acc_ = (acc_ << bits) | value;
    acc_bits_ += bits;
    while (acc_bits_ >= 8) {
      acc_bits_ -= 8;
      buffer_.push_back(static_cast<uint8_t>(acc_ >> acc_bits_));
    }
  }

  /// Appends a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Appends an order-0 unsigned Exp-Golomb code for `value`.
  void WriteUE(uint64_t value) {
    // Exp-Golomb: value+1 has N significant bits; the code is N-1 zeros then
    // those N bits — i.e. value+1 written in a 2N-1 bit field.
    uint64_t v = value + 1;
    int bits = 64 - std::countl_zero(v);
    if (bits <= 32) {
      WriteBits(v, 2 * bits - 1);
    } else {
      WriteBits(0, bits - 1);
      WriteBits(v, bits);
    }
  }

  /// Appends a signed Exp-Golomb code (0, 1, -1, 2, -2, ... mapping).
  void WriteSE(int64_t value) {
    uint64_t mapped = value > 0 ? static_cast<uint64_t>(value) * 2 - 1
                                : static_cast<uint64_t>(-value) * 2;
    WriteUE(mapped);
  }

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte() {
    if (acc_bits_ > 0) {
      buffer_.push_back(static_cast<uint8_t>(acc_ << (8 - acc_bits_)));
      acc_bits_ = 0;
    }
    acc_ = 0;
  }

  /// Appends raw bytes; requires byte alignment.
  void WriteBytes(Slice bytes);

  /// Number of bits written so far.
  size_t bit_count() const { return buffer_.size() * 8 + acc_bits_; }

  /// Whether the stream is at a byte boundary.
  bool aligned() const { return acc_bits_ == 0; }

  /// Finalizes (byte-aligns) and returns the encoded bytes.
  std::vector<uint8_t> Finish();

  /// Read-only view of the bytes written so far (call after AlignToByte()).
  const std::vector<uint8_t>& buffer() const { return buffer_; }

 private:
  std::vector<uint8_t> buffer_;
  uint64_t acc_ = 0;  // pending bits in the low `acc_bits_` positions
  int acc_bits_ = 0;  // in [0, 7] between public calls
};

/// \brief MSB-first bit reader matching BitWriter.
///
/// All read methods return Status-checked results: reading past the end of
/// the underlying slice yields `OutOfRange` without UB, which the codec
/// surfaces as `Corruption`. Errors are *sticky*: once any read fails — past
/// the end or on a malformed code — every subsequent read fails too, so a
/// caller that checks status only at a coarser granularity can never consume
/// phantom data from a truncated stream.
class BitReader {
 public:
  explicit BitReader(Slice data) : data_(data) {}

  /// Reads `bits` bits (MSB-first) into `*value`. `bits` in [0, 64].
  Status ReadBits(int bits, uint64_t* value);

  /// Reads a single bit.
  Status ReadBit(bool* bit);

  /// Reads an order-0 unsigned Exp-Golomb code.
  Status ReadUE(uint64_t* value);

  /// Reads a signed Exp-Golomb code.
  Status ReadSE(int64_t* value);

  /// Returns the next `bits` bits (MSB-first) without consuming them,
  /// zero-padded past the end of the stream. Never fails and never moves the
  /// position — the caller that acts on peeked bits must consume them with
  /// SkipBits, which does bounds-check. `bits` in [0, 57] (the zero-padding
  /// shift must stay well-defined). Returns 0 once the reader has failed.
  uint64_t PeekBits(int bits) const;

  /// Consumes `bits` bits previously examined with PeekBits. Consuming more
  /// bits than remain fails (stickily) — this is what catches a truncated
  /// stream whose zero padding happened to look like a valid code.
  Status SkipBits(int bits);

  /// Skips forward to the next byte boundary.
  void AlignToByte();

  /// Reads `count` raw bytes; requires byte alignment.
  Status ReadBytes(size_t count, std::vector<uint8_t>* out);

  /// Bits consumed so far.
  size_t bit_position() const { return bit_pos_; }

  /// Bits remaining.
  size_t bits_remaining() const { return data_.size() * 8 - bit_pos_; }

  bool aligned() const { return bit_pos_ % 8 == 0; }

  /// Whether a previous read failed (every further read will fail too).
  bool failed() const { return failed_; }

 private:
  Status Fail(Status status) {
    failed_ = true;
    return status;
  }

  Slice data_;
  size_t bit_pos_ = 0;
  bool failed_ = false;
};

}  // namespace vc

#endif  // VC_COMMON_BITIO_H_
