#include "common/bitio.h"

#include <cassert>

namespace vc {

void BitWriter::WriteBytes(Slice bytes) {
  assert(aligned());
  buffer_.insert(buffer_.end(), bytes.data(), bytes.data() + bytes.size());
}

std::vector<uint8_t> BitWriter::Finish() {
  AlignToByte();
  return std::move(buffer_);
}

Status BitReader::ReadBits(int bits, uint64_t* value) {
  if (failed_) return Status::OutOfRange("bit reader in failed state");
  // Hard check, not just an assert: a caller deriving a width from stream
  // data must not wrap the bounds check below in NDEBUG builds.
  if (bits < 0 || bits > 64) {
    return Fail(Status::InvalidArgument("bit count out of range"));
  }
  if (bit_pos_ + static_cast<size_t>(bits) > data_.size() * 8) {
    return Fail(Status::OutOfRange("bit stream exhausted"));
  }
  uint64_t result = 0;
  int remaining = bits;
  while (remaining > 0) {
    size_t byte_index = bit_pos_ / 8;
    int bit_offset = static_cast<int>(bit_pos_ % 8);
    int available = 8 - bit_offset;
    int take = remaining < available ? remaining : available;
    uint8_t byte = data_[byte_index];
    uint8_t chunk = static_cast<uint8_t>(
        (byte >> (available - take)) & ((1u << take) - 1));
    result = (result << take) | chunk;
    bit_pos_ += take;
    remaining -= take;
  }
  *value = result;
  return Status::OK();
}

Status BitReader::ReadBit(bool* bit) {
  uint64_t v = 0;
  VC_RETURN_IF_ERROR(ReadBits(1, &v));
  *bit = v != 0;
  return Status::OK();
}

Status BitReader::ReadUE(uint64_t* value) {
  int zeros = 0;
  while (true) {
    bool bit = false;
    VC_RETURN_IF_ERROR(ReadBit(&bit));
    if (bit) break;
    if (++zeros > 63) {
      return Fail(Status::Corruption("exp-golomb code too long"));
    }
  }
  uint64_t suffix = 0;
  VC_RETURN_IF_ERROR(ReadBits(zeros, &suffix));
  *value = ((uint64_t{1} << zeros) | suffix) - 1;
  return Status::OK();
}

Status BitReader::ReadSE(int64_t* value) {
  uint64_t mapped;
  VC_RETURN_IF_ERROR(ReadUE(&mapped));
  if (mapped % 2 == 1) {
    *value = static_cast<int64_t>((mapped + 1) / 2);
  } else {
    *value = -static_cast<int64_t>(mapped / 2);
  }
  return Status::OK();
}

uint64_t BitReader::PeekBits(int bits) const {
  assert(bits >= 0 && bits <= 57);
  if (failed_ || bits == 0) return 0;
  // Gather whole bytes into an accumulator, then shift so the requested bits
  // land at the bottom. Bytes past the end read as zero (the padding a
  // decode-then-SkipBits caller relies on being rejected at consume time).
  uint64_t acc = 0;
  int have = -static_cast<int>(bit_pos_ % 8);
  size_t byte_index = bit_pos_ / 8;
  while (have < bits) {
    uint8_t byte = byte_index < data_.size() ? data_[byte_index] : 0;
    acc = (acc << 8) | byte;
    have += 8;
    ++byte_index;
  }
  return (acc >> (have - bits)) & ((uint64_t{1} << bits) - 1);
}

Status BitReader::SkipBits(int bits) {
  if (failed_) return Status::OutOfRange("bit reader in failed state");
  if (bits < 0) {
    return Fail(Status::InvalidArgument("bit count out of range"));
  }
  if (bit_pos_ + static_cast<size_t>(bits) > data_.size() * 8) {
    return Fail(Status::OutOfRange("bit stream exhausted"));
  }
  bit_pos_ += static_cast<size_t>(bits);
  return Status::OK();
}

void BitReader::AlignToByte() {
  bit_pos_ = (bit_pos_ + 7) / 8 * 8;
}

Status BitReader::ReadBytes(size_t count, std::vector<uint8_t>* out) {
  assert(aligned());
  if (failed_) return Status::OutOfRange("bit reader in failed state");
  size_t byte_pos = bit_pos_ / 8;
  if (byte_pos + count > data_.size()) {
    return Fail(Status::OutOfRange("byte stream exhausted"));
  }
  out->assign(data_.data() + byte_pos, data_.data() + byte_pos + count);
  bit_pos_ += count * 8;
  return Status::OK();
}

}  // namespace vc
