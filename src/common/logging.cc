#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace vc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal

}  // namespace vc
