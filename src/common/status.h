#ifndef VC_COMMON_STATUS_H_
#define VC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace vc {

/// \brief Outcome of a fallible operation.
///
/// VisualCloud library code never throws; every fallible public API returns a
/// `Status` (or a `Result<T>`, see result.h). The class is modeled after
/// `rocksdb::Status` / `absl::Status`: a small code plus an optional message,
/// cheap to copy in the OK case.
class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kAlreadyExists = 6,
    kOutOfRange = 7,
    kAborted = 8,
    kInternal = 9,
  };

  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<code>: <message>" rendering.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Name of a status code, e.g. "NotFound".
const char* StatusCodeName(Status::Code code);

/// Propagates a non-OK status to the caller. Usable in any function returning
/// `Status`.
#define VC_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::vc::Status _vc_status = (expr);       \
    if (!_vc_status.ok()) return _vc_status; \
  } while (false)

}  // namespace vc

#endif  // VC_COMMON_STATUS_H_
