#ifndef VC_IMAGE_SCENE_H_
#define VC_IMAGE_SCENE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "image/frame.h"

namespace vc {

/// \brief Deterministic procedural 360° video source.
///
/// Stands in for the public equirectangular test videos used by the paper's
/// demonstration ("Timelapse", "Venice", "Coaster" style content): each
/// generator produces frames with a characteristic motion profile so the
/// codec's rate-distortion behaviour — and therefore the tiling/prediction
/// trade-offs built on it — match the corresponding content class.
class SceneGenerator {
 public:
  virtual ~SceneGenerator() = default;

  /// Content name ("timelapse", "venice", "coaster").
  virtual const std::string& name() const = 0;

  virtual int width() const = 0;
  virtual int height() const = 0;
  virtual double fps() const = 0;

  /// Renders frame `index` (index 0 is time 0). Pure function of the index,
  /// so frames may be produced in any order.
  virtual Frame FrameAt(int index) const = 0;
};

/// Parameters common to all scene generators.
struct SceneOptions {
  int width = 512;    ///< Equirectangular width (even, ≥ 64).
  int height = 256;   ///< Equirectangular height (even, = width / 2 typical).
  double fps = 30.0;  ///< Frame rate used for timing metadata.
  uint64_t seed = 42; ///< Seed for procedural texture placement.
};

/// Low-motion scene: static skyline, slowly drifting sun and sky gradient
/// (a "timelapse" content class; inter frames compress extremely well).
std::unique_ptr<SceneGenerator> NewTimelapseScene(const SceneOptions& options);

/// Medium-motion scene: textured "water" with several independently moving
/// objects (a "venice" content class).
std::unique_ptr<SceneGenerator> NewVeniceScene(const SceneOptions& options);

/// High-motion scene: the whole panorama translates rapidly in yaw with
/// oscillating pitch shear (a "coaster" content class; inter prediction
/// must work hard and residuals stay large).
std::unique_ptr<SceneGenerator> NewCoasterScene(const SceneOptions& options);

/// Factory by content-class name; returns InvalidArgument for unknown names.
Result<std::unique_ptr<SceneGenerator>> MakeScene(const std::string& name,
                                                  const SceneOptions& options);

/// The three standard content classes used throughout the benchmarks.
const std::vector<std::string>& StandardSceneNames();

/// Convenience: renders frames [0, count) of a scene into a vector.
std::vector<Frame> RenderScene(const SceneGenerator& scene, int count);

}  // namespace vc

#endif  // VC_IMAGE_SCENE_H_
