#include "image/stereo.h"

#include <cmath>

#include "common/math_util.h"

namespace vc {

namespace {

/// Rolls a frame horizontally by `shift_px` columns (yaw rotation of an
/// equirectangular panorama), wrapping at the seam.
Frame RollYaw(const Frame& src, int shift_px) {
  Frame out(src.width(), src.height());
  int w = src.width();
  // Chroma shift at half resolution; force evenness so the planes agree.
  int cshift = shift_px / 2;
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < w; ++x) {
      int sx = ((x + shift_px) % w + w) % w;
      out.set_y(x, y, src.y(sx, y));
    }
  }
  int cw = src.chroma_width();
  for (int y = 0; y < src.chroma_height(); ++y) {
    for (int x = 0; x < cw; ++x) {
      int sx = ((x + cshift) % cw + cw) % cw;
      out.set_u(x, y, src.u(sx, y));
      out.set_v(x, y, src.v(sx, y));
    }
  }
  return out;
}

class StereoScene final : public SceneGenerator {
 public:
  StereoScene(std::unique_ptr<SceneGenerator> mono, double eye_yaw_offset)
      : mono_(std::move(mono)),
        name_(mono_->name() + "-stereo"),
        eye_yaw_offset_(eye_yaw_offset) {}

  const std::string& name() const override { return name_; }
  int width() const override { return mono_->width(); }
  int height() const override { return mono_->height() * 2; }
  double fps() const override { return mono_->fps(); }

  Frame FrameAt(int index) const override {
    Frame mono_frame = mono_->FrameAt(index);
    int shift_px = static_cast<int>(
        std::lround(eye_yaw_offset_ / 2.0 / kTwoPi * mono_->width()));
    if (shift_px == 0) shift_px = 1;
    shift_px -= shift_px % 2;  // keep chroma aligned
    if (shift_px == 0) shift_px = 2;
    Frame left = RollYaw(mono_frame, -shift_px);
    Frame right = RollYaw(mono_frame, shift_px);
    Frame packed(width(), height());
    // Top-bottom packing; sizes match by construction.
    Status status = packed.Paste(left, 0, 0);
    if (status.ok()) status = packed.Paste(right, 0, mono_->height());
    (void)status;
    return packed;
  }

 private:
  std::unique_ptr<SceneGenerator> mono_;
  std::string name_;
  double eye_yaw_offset_;
};

}  // namespace

std::unique_ptr<SceneGenerator> NewStereoScene(
    std::unique_ptr<SceneGenerator> mono, double eye_yaw_offset) {
  return std::make_unique<StereoScene>(std::move(mono), eye_yaw_offset);
}

Result<Frame> ExtractEyeView(const Frame& packed, Eye eye) {
  if (packed.empty() || packed.height() % 4 != 0) {
    return Status::InvalidArgument(
        "packed stereo frame height must be a positive multiple of 4");
  }
  int eye_height = packed.height() / 2;
  int y = eye == Eye::kLeft ? 0 : eye_height;
  return packed.Crop(0, y, packed.width(), eye_height);
}

}  // namespace vc
