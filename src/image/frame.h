#ifndef VC_IMAGE_FRAME_H_
#define VC_IMAGE_FRAME_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace vc {

/// \brief A planar YUV 4:2:0 image (the codec's native pixel format).
///
/// Dimensions must be even (chroma planes are sampled at half resolution in
/// both axes). Pixels are stored row-major, 8 bits per sample. For 360° video
/// the luma plane holds the equirectangular projection: column x maps to
/// longitude θ ∈ [0, 2π) and row y to latitude φ ∈ [0, π].
class Frame {
 public:
  /// Creates a frame filled with black (Y=16, U=V=128).
  Frame(int width, int height);

  /// Creates an empty 0x0 frame.
  Frame() : Frame(0, 0) {}

  int width() const { return width_; }
  int height() const { return height_; }
  int chroma_width() const { return width_ / 2; }
  int chroma_height() const { return height_ / 2; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  uint8_t y(int x, int y) const { return y_[Index(x, y, width_)]; }
  uint8_t u(int x, int y) const { return u_[Index(x, y, width_ / 2)]; }
  uint8_t v(int x, int y) const { return v_[Index(x, y, width_ / 2)]; }

  void set_y(int x, int y, uint8_t value) { y_[Index(x, y, width_)] = value; }
  void set_u(int x, int y, uint8_t value) {
    u_[Index(x, y, width_ / 2)] = value;
  }
  void set_v(int x, int y, uint8_t value) {
    v_[Index(x, y, width_ / 2)] = value;
  }

  std::vector<uint8_t>& y_plane() { return y_; }
  std::vector<uint8_t>& u_plane() { return u_; }
  std::vector<uint8_t>& v_plane() { return v_; }
  const std::vector<uint8_t>& y_plane() const { return y_; }
  const std::vector<uint8_t>& u_plane() const { return u_; }
  const std::vector<uint8_t>& v_plane() const { return v_; }

  /// Fills the whole frame with a constant YUV color.
  void Fill(uint8_t y, uint8_t u, uint8_t v);

  /// Fills an axis-aligned luma-coordinate rectangle (clipped to the frame)
  /// with a constant YUV color. `x`/`w` wrap around horizontally, matching
  /// the angular periodicity of the equirectangular projection.
  void FillRect(int x, int y, int w, int h, uint8_t fy, uint8_t fu, uint8_t fv);

  /// Fills a disk of radius `r` centered at (cx, cy), with horizontal wrap.
  void FillCircle(int cx, int cy, int r, uint8_t fy, uint8_t fu, uint8_t fv);

  /// Extracts the sub-frame [x, x+w) × [y, y+h). Coordinates and sizes must
  /// be even and in-bounds.
  Result<Frame> Crop(int x, int y, int w, int h) const;

  /// Pastes `src` with its top-left corner at (x, y); even, in-bounds.
  Status Paste(const Frame& src, int x, int y);

  /// Total number of raw bytes across the three planes.
  size_t ByteSize() const { return y_.size() + u_.size() + v_.size(); }

  bool SameSize(const Frame& other) const {
    return width_ == other.width_ && height_ == other.height_;
  }

 private:
  static size_t Index(int x, int y, int stride) {
    return static_cast<size_t>(y) * stride + x;
  }

  int width_;
  int height_;
  std::vector<uint8_t> y_;
  std::vector<uint8_t> u_;
  std::vector<uint8_t> v_;
};

/// Bilinearly resizes `src` to `width`×`height` (both even, positive).
Result<Frame> ScaleFrame(const Frame& src, int width, int height);

}  // namespace vc

#endif  // VC_IMAGE_FRAME_H_
