#ifndef VC_IMAGE_STEREO_H_
#define VC_IMAGE_STEREO_H_

#include <memory>

#include "common/result.h"
#include "image/frame.h"
#include "image/scene.h"

namespace vc {

/// Which eye of a stereoscopic frame.
enum class Eye { kLeft = 0, kRight = 1 };

/// \brief Wraps a monoscopic 360° scene into a stereoscopic one using
/// top-bottom packing: the output frame is width × 2·height, the top half
/// being the left eye and the bottom half the right eye, with the eyes'
/// panoramas yaw-offset by ±`eye_yaw_offset`/2 — the standard cheap
/// approximation of interpupillary parallax for synthetic content.
std::unique_ptr<SceneGenerator> NewStereoScene(
    std::unique_ptr<SceneGenerator> mono, double eye_yaw_offset = 0.02);

/// Extracts one eye's equirectangular panorama from a top-bottom packed
/// stereo frame. The packed height must be even (it is 2× the eye height).
Result<Frame> ExtractEyeView(const Frame& packed, Eye eye);

}  // namespace vc

#endif  // VC_IMAGE_STEREO_H_
