#include "image/scene.h"

#include <cmath>

#include "common/math_util.h"
#include "common/random.h"

namespace vc {

namespace {

/// Smooth value-noise texture: a deterministic function of (x, y, octave
/// lattice) used to give scenes compressible but non-trivial detail.
double ValueNoise(uint64_t seed, int xi, int yi) {
  uint64_t h = seed;
  h ^= static_cast<uint64_t>(xi) * 0x9e3779b97f4a7c15ull;
  h ^= static_cast<uint64_t>(yi) * 0xc2b2ae3d27d4eb4full;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return static_cast<double>(h & 0xffffff) / static_cast<double>(0xffffff);
}

double SmoothNoise(uint64_t seed, double x, double y) {
  int x0 = static_cast<int>(std::floor(x));
  int y0 = static_cast<int>(std::floor(y));
  double fx = x - x0, fy = y - y0;
  // Smoothstep interpolation between lattice values.
  fx = fx * fx * (3 - 2 * fx);
  fy = fy * fy * (3 - 2 * fy);
  double v00 = ValueNoise(seed, x0, y0);
  double v10 = ValueNoise(seed, x0 + 1, y0);
  double v01 = ValueNoise(seed, x0, y0 + 1);
  double v11 = ValueNoise(seed, x0 + 1, y0 + 1);
  double top = v00 * (1 - fx) + v10 * fx;
  double bottom = v01 * (1 - fx) + v11 * fx;
  return top * (1 - fy) + bottom * fy;
}

class SceneBase : public SceneGenerator {
 public:
  SceneBase(std::string name, const SceneOptions& options)
      : name_(std::move(name)), options_(options) {}

  const std::string& name() const override { return name_; }
  int width() const override { return options_.width; }
  int height() const override { return options_.height; }
  double fps() const override { return options_.fps; }

 protected:
  const std::string name_;
  const SceneOptions options_;
};

/// Low motion: gradient sky, static skyline silhouette, drifting sun.
class TimelapseScene final : public SceneBase {
 public:
  explicit TimelapseScene(const SceneOptions& options)
      : SceneBase("timelapse", options) {
    Random rng(options.seed);
    // Skyline: per-column building heights, piecewise constant.
    int columns = options.width / 16;
    building_heights_.reserve(columns);
    for (int i = 0; i < columns; ++i) {
      building_heights_.push_back(
          0.55 + 0.25 * rng.NextDouble());  // fraction of height
    }
  }

  Frame FrameAt(int index) const override {
    Frame frame(width(), height());
    double t = index / fps();
    // Sky gradient brightens slowly over the day.
    double day = 0.5 + 0.4 * std::sin(t * 0.05);
    for (int y = 0; y < height(); ++y) {
      double vertical = static_cast<double>(y) / height();
      uint8_t sky = ClampPixel(static_cast<int>(40 + 180 * day * (1 - vertical)));
      for (int x = 0; x < width(); ++x) {
        frame.set_y(x, y, sky);
      }
    }
    // Chroma: bluish sky.
    for (int y = 0; y < frame.chroma_height(); ++y) {
      for (int x = 0; x < frame.chroma_width(); ++x) {
        frame.set_u(x, y, 140);
        frame.set_v(x, y, 118);
      }
    }
    // Sun drifts slowly in yaw across the top band (one orbit per 100 s).
    int sun_x = static_cast<int>(std::fmod(t * 0.01, 1.0) * width());
    int sun_y = height() / 5;
    frame.FillCircle(sun_x, sun_y, height() / 16, 235, 110, 150);
    // Static skyline along the equator band downward.
    int column_width = 16;
    for (size_t i = 0; i < building_heights_.size(); ++i) {
      int top = static_cast<int>(building_heights_[i] * height());
      frame.FillRect(static_cast<int>(i) * column_width, top, column_width,
                     height() - top, 60, 128, 128);
    }
    // Gentle textured foreground so intra blocks are not flat.
    for (int y = height() * 7 / 8; y < height(); ++y) {
      for (int x = 0; x < width(); ++x) {
        double n = SmoothNoise(options_.seed ^ 0x51, x * 0.08, y * 0.08);
        frame.set_y(x, y, ClampPixel(static_cast<int>(50 + 40 * n)));
      }
    }
    return frame;
  }

 private:
  std::vector<double> building_heights_;
};

/// Medium motion: shimmering water plus boats crossing at various speeds.
class VeniceScene final : public SceneBase {
 public:
  explicit VeniceScene(const SceneOptions& options)
      : SceneBase("venice", options) {
    Random rng(options.seed ^ 0xbeef);
    for (int i = 0; i < 6; ++i) {
      Boat boat;
      boat.row = 0.45 + 0.4 * rng.NextDouble();
      boat.speed = (rng.Bernoulli(0.5) ? 1 : -1) *
                   (0.02 + 0.05 * rng.NextDouble());  // revolutions / s
      boat.phase = rng.NextDouble();
      boat.size = 0.03 + 0.03 * rng.NextDouble();
      boat.luma = static_cast<uint8_t>(120 + rng.Uniform(100));
      boats_.push_back(boat);
    }
  }

  Frame FrameAt(int index) const override {
    Frame frame(width(), height());
    double t = index / fps();
    // Sky (top 40%) and water (bottom 60%) with animated ripple texture.
    for (int y = 0; y < height(); ++y) {
      bool water = y > height() * 2 / 5;
      for (int x = 0; x < width(); ++x) {
        double n;
        if (water) {
          n = SmoothNoise(options_.seed, x * 0.15 + t * 3.0, y * 0.15 + t);
          frame.set_y(x, y, ClampPixel(static_cast<int>(70 + 60 * n)));
        } else {
          n = SmoothNoise(options_.seed ^ 0x7, x * 0.03, y * 0.03);
          frame.set_y(x, y, ClampPixel(static_cast<int>(150 + 40 * n)));
        }
      }
    }
    for (int y = 0; y < frame.chroma_height(); ++y) {
      bool water = y > frame.chroma_height() * 2 / 5;
      for (int x = 0; x < frame.chroma_width(); ++x) {
        frame.set_u(x, y, water ? 135 : 128);
        frame.set_v(x, y, water ? 120 : 128);
      }
    }
    // Boats: rectangles sliding in yaw at fixed latitudes.
    for (const Boat& boat : boats_) {
      double revolutions = boat.phase + boat.speed * t;
      int x = static_cast<int>(std::fmod(revolutions, 1.0) * width());
      if (x < 0) x += width();
      int y = static_cast<int>(boat.row * height());
      int w = static_cast<int>(boat.size * width());
      int h = std::max(4, w / 3);
      frame.FillRect(x, y, w, h, boat.luma, 110, 135);
      // Cabin highlight for structure.
      frame.FillRect(x + w / 4, y - h / 2, w / 2, h / 2, 210, 128, 128);
    }
    return frame;
  }

 private:
  struct Boat {
    double row;
    double speed;
    double phase;
    double size;
    uint8_t luma;
  };
  std::vector<Boat> boats_;
};

/// High motion: the panorama texture translates quickly in yaw while the
/// horizon shears sinusoidally in pitch, mimicking a roller-coaster camera.
class CoasterScene final : public SceneBase {
 public:
  explicit CoasterScene(const SceneOptions& options)
      : SceneBase("coaster", options) {}

  Frame FrameAt(int index) const override {
    Frame frame(width(), height());
    double t = index / fps();
    double yaw_shift = t * 1.2 * width();            // fast yaw rotation
    double pitch_wobble = std::sin(t * 2.2) * 0.12;  // fraction of height
    for (int y = 0; y < height(); ++y) {
      for (int x = 0; x < width(); ++x) {
        double sx = x + yaw_shift;
        double sy = y + pitch_wobble * height() *
                            std::sin((x + yaw_shift) * kTwoPi / width());
        double coarse = SmoothNoise(options_.seed, sx * 0.04, sy * 0.04);
        double fine = SmoothNoise(options_.seed ^ 0x33, sx * 0.2, sy * 0.2);
        frame.set_y(x, y,
                    ClampPixel(static_cast<int>(60 + 120 * coarse + 40 * fine)));
      }
    }
    // Track: a dark band oscillating across the view.
    int track_y =
        static_cast<int>(height() * (0.6 + 0.15 * std::sin(t * 2.2 + 1.0)));
    frame.FillRect(0, track_y, width(), height() / 20, 30, 128, 128);
    for (int y = 0; y < frame.chroma_height(); ++y) {
      for (int x = 0; x < frame.chroma_width(); ++x) {
        double n = SmoothNoise(options_.seed ^ 0x99, x * 0.1 + t, y * 0.1);
        frame.set_u(x, y, ClampPixel(static_cast<int>(120 + 20 * n)));
        frame.set_v(x, y, ClampPixel(static_cast<int>(125 + 10 * n)));
      }
    }
    return frame;
  }
};

}  // namespace

std::unique_ptr<SceneGenerator> NewTimelapseScene(const SceneOptions& options) {
  return std::make_unique<TimelapseScene>(options);
}

std::unique_ptr<SceneGenerator> NewVeniceScene(const SceneOptions& options) {
  return std::make_unique<VeniceScene>(options);
}

std::unique_ptr<SceneGenerator> NewCoasterScene(const SceneOptions& options) {
  return std::make_unique<CoasterScene>(options);
}

Result<std::unique_ptr<SceneGenerator>> MakeScene(const std::string& name,
                                                  const SceneOptions& options) {
  if (options.width < 64 || options.width % 2 != 0 || options.height < 32 ||
      options.height % 2 != 0) {
    return Status::InvalidArgument("scene dimensions must be even and >= 64x32");
  }
  if (name == "timelapse") return NewTimelapseScene(options);
  if (name == "venice") return NewVeniceScene(options);
  if (name == "coaster") return NewCoasterScene(options);
  return Status::InvalidArgument("unknown scene '" + name + "'");
}

const std::vector<std::string>& StandardSceneNames() {
  static const std::vector<std::string> names = {"timelapse", "venice",
                                                 "coaster"};
  return names;
}

std::vector<Frame> RenderScene(const SceneGenerator& scene, int count) {
  std::vector<Frame> frames;
  frames.reserve(count);
  for (int i = 0; i < count; ++i) frames.push_back(scene.FrameAt(i));
  return frames;
}

}  // namespace vc
