#include "image/frame.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace vc {

Frame::Frame(int width, int height) : width_(width), height_(height) {
  y_.assign(static_cast<size_t>(width) * height, 16);
  u_.assign(static_cast<size_t>(width / 2) * (height / 2), 128);
  v_.assign(static_cast<size_t>(width / 2) * (height / 2), 128);
}

void Frame::Fill(uint8_t y, uint8_t u, uint8_t v) {
  std::fill(y_.begin(), y_.end(), y);
  std::fill(u_.begin(), u_.end(), u);
  std::fill(v_.begin(), v_.end(), v);
}

void Frame::FillRect(int x, int y, int w, int h, uint8_t fy, uint8_t fu,
                     uint8_t fv) {
  if (empty() || w <= 0 || h <= 0) return;
  int y0 = Clamp(y, 0, height_);
  int y1 = Clamp(y + h, 0, height_);
  for (int row = y0; row < y1; ++row) {
    for (int col = x; col < x + w; ++col) {
      int wrapped = ((col % width_) + width_) % width_;
      set_y(wrapped, row, fy);
      if (row % 2 == 0 && wrapped % 2 == 0) {
        set_u(wrapped / 2, row / 2, fu);
        set_v(wrapped / 2, row / 2, fv);
      }
    }
  }
}

void Frame::FillCircle(int cx, int cy, int r, uint8_t fy, uint8_t fu,
                       uint8_t fv) {
  if (empty() || r <= 0) return;
  for (int dy = -r; dy <= r; ++dy) {
    int row = cy + dy;
    if (row < 0 || row >= height_) continue;
    int span = static_cast<int>(std::sqrt(static_cast<double>(r) * r - dy * dy));
    for (int dx = -span; dx <= span; ++dx) {
      int wrapped = (((cx + dx) % width_) + width_) % width_;
      set_y(wrapped, row, fy);
      if (row % 2 == 0 && wrapped % 2 == 0) {
        set_u(wrapped / 2, row / 2, fu);
        set_v(wrapped / 2, row / 2, fv);
      }
    }
  }
}

Result<Frame> Frame::Crop(int x, int y, int w, int h) const {
  if (x % 2 != 0 || y % 2 != 0 || w % 2 != 0 || h % 2 != 0) {
    return Status::InvalidArgument("crop coordinates must be even");
  }
  if (x < 0 || y < 0 || w <= 0 || h <= 0 || x + w > width_ ||
      y + h > height_) {
    return Status::InvalidArgument("crop rectangle out of bounds");
  }
  Frame out(w, h);
  for (int row = 0; row < h; ++row) {
    std::copy_n(&y_[Index(x, y + row, width_)], w,
                &out.y_plane()[Index(0, row, w)]);
  }
  int cw = w / 2, cx = x / 2, cy = y / 2;
  for (int row = 0; row < h / 2; ++row) {
    std::copy_n(&u_[Index(cx, cy + row, width_ / 2)], cw,
                &out.u_plane()[Index(0, row, cw)]);
    std::copy_n(&v_[Index(cx, cy + row, width_ / 2)], cw,
                &out.v_plane()[Index(0, row, cw)]);
  }
  return out;
}

Status Frame::Paste(const Frame& src, int x, int y) {
  if (x % 2 != 0 || y % 2 != 0) {
    return Status::InvalidArgument("paste coordinates must be even");
  }
  if (x < 0 || y < 0 || x + src.width() > width_ ||
      y + src.height() > height_) {
    return Status::InvalidArgument("paste rectangle out of bounds");
  }
  for (int row = 0; row < src.height(); ++row) {
    std::copy_n(&src.y_plane()[Index(0, row, src.width())], src.width(),
                &y_[Index(x, y + row, width_)]);
  }
  int cw = src.width() / 2, cx = x / 2, cy = y / 2;
  for (int row = 0; row < src.height() / 2; ++row) {
    std::copy_n(&src.u_plane()[Index(0, row, cw)], cw,
                &u_[Index(cx, cy + row, width_ / 2)]);
    std::copy_n(&src.v_plane()[Index(0, row, cw)], cw,
                &v_[Index(cx, cy + row, width_ / 2)]);
  }
  return Status::OK();
}

namespace {

uint8_t SampleBilinear(const std::vector<uint8_t>& plane, int w, int h,
                       double x, double y) {
  x = Clamp(x, 0.0, static_cast<double>(w - 1));
  y = Clamp(y, 0.0, static_cast<double>(h - 1));
  int x0 = static_cast<int>(x), y0 = static_cast<int>(y);
  int x1 = std::min(x0 + 1, w - 1), y1 = std::min(y0 + 1, h - 1);
  double fx = x - x0, fy = y - y0;
  double top = plane[static_cast<size_t>(y0) * w + x0] * (1 - fx) +
               plane[static_cast<size_t>(y0) * w + x1] * fx;
  double bottom = plane[static_cast<size_t>(y1) * w + x0] * (1 - fx) +
                  plane[static_cast<size_t>(y1) * w + x1] * fx;
  return ClampPixel(static_cast<int>(std::lround(top * (1 - fy) + bottom * fy)));
}

}  // namespace

Result<Frame> ScaleFrame(const Frame& src, int width, int height) {
  if (width <= 0 || height <= 0 || width % 2 != 0 || height % 2 != 0) {
    return Status::InvalidArgument("scale target must be positive and even");
  }
  if (src.empty()) return Status::InvalidArgument("cannot scale empty frame");
  Frame out(width, height);
  double sx = static_cast<double>(src.width()) / width;
  double sy = static_cast<double>(src.height()) / height;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      out.set_y(x, y,
                SampleBilinear(src.y_plane(), src.width(), src.height(),
                               (x + 0.5) * sx - 0.5, (y + 0.5) * sy - 0.5));
    }
  }
  int cw = width / 2, ch = height / 2;
  double csx = static_cast<double>(src.chroma_width()) / cw;
  double csy = static_cast<double>(src.chroma_height()) / ch;
  for (int y = 0; y < ch; ++y) {
    for (int x = 0; x < cw; ++x) {
      out.set_u(x, y,
                SampleBilinear(src.u_plane(), src.chroma_width(),
                               src.chroma_height(), (x + 0.5) * csx - 0.5,
                               (y + 0.5) * csy - 0.5));
      out.set_v(x, y,
                SampleBilinear(src.v_plane(), src.chroma_width(),
                               src.chroma_height(), (x + 0.5) * csx - 0.5,
                               (y + 0.5) * csy - 0.5));
    }
  }
  return out;
}

}  // namespace vc
