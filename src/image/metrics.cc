#include "image/metrics.h"

#include <cmath>

#include "common/math_util.h"

namespace vc {

namespace {

Status CheckComparable(const Frame& a, const Frame& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("metric on empty frame");
  }
  if (!a.SameSize(b)) {
    return Status::InvalidArgument("metric on differently-sized frames");
  }
  return Status::OK();
}

double MseToPsnr(double mse) {
  if (mse <= 1e-12) return kInfinitePsnr;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace

Result<double> LumaMse(const Frame& a, const Frame& b) {
  VC_RETURN_IF_ERROR(CheckComparable(a, b));
  const auto& pa = a.y_plane();
  const auto& pb = b.y_plane();
  double sum = 0.0;
  for (size_t i = 0; i < pa.size(); ++i) {
    double d = static_cast<double>(pa[i]) - pb[i];
    sum += d * d;
  }
  return sum / static_cast<double>(pa.size());
}

Result<double> LumaPsnr(const Frame& a, const Frame& b) {
  double mse;
  VC_ASSIGN_OR_RETURN(mse, LumaMse(a, b));
  return MseToPsnr(mse);
}

Result<double> WsPsnr(const Frame& a, const Frame& b) {
  VC_RETURN_IF_ERROR(CheckComparable(a, b));
  double weighted_error = 0.0;
  double weight_sum = 0.0;
  for (int y = 0; y < a.height(); ++y) {
    // Latitude of the row center: 0 at the top pole, pi at the bottom.
    double phi = (y + 0.5) / a.height() * kPi;
    double w = std::cos(phi - kPi / 2.0);
    double row_error = 0.0;
    for (int x = 0; x < a.width(); ++x) {
      double d = static_cast<double>(a.y(x, y)) - b.y(x, y);
      row_error += d * d;
    }
    weighted_error += w * row_error;
    weight_sum += w * a.width();
  }
  return MseToPsnr(weighted_error / weight_sum);
}

Result<double> LumaSsim(const Frame& a, const Frame& b) {
  VC_RETURN_IF_ERROR(CheckComparable(a, b));
  constexpr int kWin = 8;
  constexpr double kC1 = 6.5025;   // (0.01 * 255)^2
  constexpr double kC2 = 58.5225;  // (0.03 * 255)^2
  if (a.width() < kWin || a.height() < kWin) {
    return Status::InvalidArgument("frame smaller than SSIM window");
  }
  double total = 0.0;
  int windows = 0;
  for (int wy = 0; wy + kWin <= a.height(); wy += kWin) {
    for (int wx = 0; wx + kWin <= a.width(); wx += kWin) {
      double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
      for (int y = 0; y < kWin; ++y) {
        for (int x = 0; x < kWin; ++x) {
          double va = a.y(wx + x, wy + y);
          double vb = b.y(wx + x, wy + y);
          sum_a += va;
          sum_b += vb;
          sum_aa += va * va;
          sum_bb += vb * vb;
          sum_ab += va * vb;
        }
      }
      constexpr double kN = kWin * kWin;
      double mu_a = sum_a / kN, mu_b = sum_b / kN;
      double var_a = sum_aa / kN - mu_a * mu_a;
      double var_b = sum_bb / kN - mu_b * mu_b;
      double cov = sum_ab / kN - mu_a * mu_b;
      double ssim = ((2 * mu_a * mu_b + kC1) * (2 * cov + kC2)) /
                    ((mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2));
      total += ssim;
      ++windows;
    }
  }
  return total / windows;
}

}  // namespace vc
