#ifndef VC_IMAGE_METRICS_H_
#define VC_IMAGE_METRICS_H_

#include "common/result.h"
#include "image/frame.h"

namespace vc {

/// Mean squared error over the luma plane. Frames must be the same size.
Result<double> LumaMse(const Frame& a, const Frame& b);

/// Peak signal-to-noise ratio (dB) over the luma plane. Identical frames
/// return `kInfinitePsnr`.
Result<double> LumaPsnr(const Frame& a, const Frame& b);

/// PSNR ceiling reported for identical content (matches common tooling).
inline constexpr double kInfinitePsnr = 100.0;

/// Weighted-spherical PSNR (WS-PSNR) over the luma plane: each row is
/// weighted by cos(latitude) to undo the equirectangular oversampling near
/// the poles. This is the standard objective metric for 360° video.
Result<double> WsPsnr(const Frame& a, const Frame& b);

/// Mean structural similarity (SSIM) over the luma plane using 8×8 windows.
/// Returns a value in [-1, 1]; 1 means identical.
Result<double> LumaSsim(const Frame& a, const Frame& b);

}  // namespace vc

#endif  // VC_IMAGE_METRICS_H_
