// Quickstart: ingest a 360° video, inspect the catalog, read frames back,
// and run one predictive streaming session.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/env.h"
#include "core/session.h"
#include "core/visualcloud.h"
#include "image/metrics.h"
#include "image/scene.h"
#include "predict/trace_synthesizer.h"

int main() {
  using namespace vc;

  // 1. Open a VisualCloud instance. Examples use an in-memory filesystem so
  //    they leave nothing behind; pass Env::Default() (or leave the default)
  //    to persist to disk.
  auto env = NewMemEnv();
  VisualCloudOptions options;
  options.storage.env = env.get();
  options.storage.root = "/visualcloud";
  auto db = VisualCloud::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. Ingest ten seconds of a synthetic 360° scene. Ingest spatiotemporally
  //    partitions the equirectangular video into 1-second segments × a 4×8
  //    tile grid, each encoded at three qualities.
  SceneOptions scene_options;
  scene_options.width = 256;
  scene_options.height = 128;
  auto scene = NewVeniceScene(scene_options);

  IngestOptions ingest;
  ingest.tile_rows = 4;
  ingest.tile_cols = 8;
  ingest.frames_per_segment = 15;
  ingest.fps = 15.0;
  auto version = (*db)->IngestScene("venice", *scene, /*frame_count=*/150,
                                    ingest);
  if (!version.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 version.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested 'venice' as version %u\n", *version);

  // 3. Inspect the catalog.
  auto metadata = (*db)->Describe("venice");
  std::printf("layout: %dx%d, %d segments x %d tiles x %d qualities, "
              "%.1f KB stored\n",
              metadata->width, metadata->height, metadata->segment_count(),
              metadata->tile_count(), metadata->quality_count(),
              metadata->TotalBytes() / 1024.0);

  // 4. Read a few frames back at top quality and check fidelity.
  auto frames = (*db)->ReadFrames("venice", 0, 4, /*quality=*/0);
  double psnr = 0;
  for (int i = 0; i < 5; ++i) {
    psnr += *LumaPsnr(scene->FrameAt(i), (*frames)[i]);
  }
  std::printf("decode fidelity over 5 frames: %.1f dB mean luma PSNR\n",
              psnr / 5);

  // 5. Stream it to a simulated viewer. The head trace stands in for HMD
  //    orientation reports; VisualCloud predicts where the viewer will look
  //    and degrades out-of-view tiles.
  auto trace_options = ArchetypeOptions("explorer", /*seed=*/42);
  trace_options->duration_seconds = 10.0;
  auto trace = SynthesizeTrace(*trace_options);

  SessionOptions baseline;
  baseline.approach = StreamingApproach::kMonolithicFull;
  baseline.viewport.fov_yaw = DegToRad(90);
  baseline.viewport.fov_pitch = DegToRad(75);
  SessionOptions predictive = baseline;
  predictive.approach = StreamingApproach::kVisualCloud;
  predictive.predictor = "dead_reckoning";

  auto full = SimulateSession((*db)->storage(), *metadata, *trace, baseline);
  auto tiled = SimulateSession((*db)->storage(), *metadata, *trace,
                               predictive);
  if (!full.ok() || !tiled.ok()) {
    std::fprintf(stderr, "session failed\n");
    return 1;
  }
  std::printf("monolithic full-quality: %8lu bytes\n",
              static_cast<unsigned long>(full->bytes_sent));
  std::printf("visualcloud predictive:  %8lu bytes  (%.0f%% saved)\n",
              static_cast<unsigned long>(tiled->bytes_sent),
              100.0 * BandwidthSavings(*full, *tiled));
  return 0;
}
