// Trace explorer: synthesizes head-movement traces for each viewer
// archetype, round-trips them through the CSV format real datasets use, and
// scores every orientation predictor against them at several lookaheads.
//
//   ./build/examples/trace_explorer

#include <cstdio>

#include "common/env.h"
#include "predict/accuracy.h"
#include "predict/predictor.h"
#include "predict/trace_synthesizer.h"

int main() {
  using namespace vc;

  const TileGrid grid(4, 8);
  auto env = NewMemEnv();

  for (const std::string& archetype : ViewerArchetypes()) {
    auto trace_options = ArchetypeOptions(archetype, /*seed=*/11);
    trace_options->duration_seconds = 60;
    auto trace = SynthesizeTrace(*trace_options);
    if (!trace.ok()) {
      std::fprintf(stderr, "synthesis failed\n");
      return 1;
    }

    // Round-trip through CSV, the interchange format for real HMD datasets.
    std::string csv = trace->ToCsv();
    std::string path = "/traces/" + archetype + ".csv";
    env->WriteFile(path, Slice(csv));
    auto loaded = HeadTrace::FromCsv(Slice(*env->ReadFile(path)));
    if (!loaded.ok()) {
      std::fprintf(stderr, "csv round trip failed\n");
      return 1;
    }

    std::printf("archetype '%s' (%zu samples, %.0f s, %zu byte CSV)\n",
                archetype.c_str(), loaded->size(), loaded->duration(),
                csv.size());
    std::printf("  %-18s", "predictor");
    for (double lookahead : {0.5, 1.0, 2.0}) {
      std::printf("   err@%.1fs  hit@%.1fs", lookahead, lookahead);
    }
    std::printf("\n");

    for (auto& predictor : AllPredictors(grid)) {
      std::printf("  %-18s", predictor->name().c_str());
      for (double lookahead : {0.5, 1.0, 2.0}) {
        AccuracyOptions accuracy_options;
        accuracy_options.lookahead_seconds = lookahead;
        PredictionAccuracy accuracy = EvaluatePredictor(
            predictor.get(), *loaded, grid, accuracy_options);
        std::printf("   %7.1f°   %6.0f%%",
                    RadToDeg(accuracy.mean_error_radians),
                    100.0 * accuracy.tile_hit_rate);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
