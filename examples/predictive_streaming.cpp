// Predictive streaming walk-through: compares streaming approaches and
// orientation predictors over a population of synthetic viewers, printing
// bandwidth and in-view quality per configuration — a miniature of the
// paper's headline demonstration.
//
//   ./build/examples/predictive_streaming

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/session.h"
#include "core/visualcloud.h"
#include "predict/trace_synthesizer.h"

namespace {

constexpr int kSeconds = 12;
constexpr int kFps = 15;

}  // namespace

int main() {
  using namespace vc;

  auto env = NewMemEnv();
  VisualCloudOptions options;
  options.storage.env = env.get();
  options.storage.root = "/visualcloud";
  auto db = VisualCloud::Open(options);

  SceneOptions scene_options;
  scene_options.width = 256;
  scene_options.height = 128;
  auto scene = NewCoasterScene(scene_options);

  IngestOptions ingest;
  ingest.tile_rows = 6;
  ingest.tile_cols = 8;
  ingest.frames_per_segment = kFps;  // 1-second segments
  ingest.fps = kFps;
  auto version = (*db)->IngestScene("coaster", *scene, kSeconds * kFps, ingest);
  if (!version.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 version.status().ToString().c_str());
    return 1;
  }
  auto metadata = (*db)->Describe("coaster");

  // A small population of viewers: each archetype with a few seeds.
  std::vector<HeadTrace> traces;
  for (const std::string& archetype : ViewerArchetypes()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      auto trace_options = ArchetypeOptions(archetype, seed);
      trace_options->duration_seconds = kSeconds;
      traces.push_back(*SynthesizeTrace(*trace_options));
    }
  }

  auto run = [&](StreamingApproach approach, const std::string& predictor) {
    uint64_t bytes = 0;
    double stalls = 0;
    for (const HeadTrace& trace : traces) {
      SessionOptions session;
      session.approach = approach;
      session.predictor = predictor;
      session.viewport.fov_yaw = DegToRad(90);
      session.viewport.fov_pitch = DegToRad(75);
      session.network.bandwidth_bps = 20e6;
      // The object API: create a steppable session and drive it to
      // completion at its own pacing deadlines (a server would interleave
      // many of these on one clock).
      auto client =
          ClientSession::Create((*db)->storage(), *metadata, trace, session);
      if (!client.ok()) {
        std::fprintf(stderr, "session failed: %s\n",
                     client.status().ToString().c_str());
        std::exit(1);
      }
      while (!(*client)->done()) {
        Status status = (*client)->Step((*client)->NextDeadline());
        if (!status.ok()) {
          std::fprintf(stderr, "step failed: %s\n",
                       status.ToString().c_str());
          std::exit(1);
        }
      }
      bytes += (*client)->stats().bytes_sent;
      stalls += (*client)->stats().stall_seconds;
    }
    return std::pair<uint64_t, double>(bytes / traces.size(),
                                       stalls / traces.size());
  };

  std::printf("%zu viewers x %ds of 'coaster' @20 Mbps\n\n", traces.size(),
              kSeconds);
  std::printf("%-32s %14s %10s %8s\n", "configuration", "bytes/session",
              "saved", "stalls");

  auto [mono_bytes, mono_stalls] =
      run(StreamingApproach::kMonolithicFull, "static");
  std::printf("%-32s %14lu %9s %7.2fs\n", "monolithic full quality",
              static_cast<unsigned long>(mono_bytes), "-", mono_stalls);

  auto [dash_bytes, dash_stalls] =
      run(StreamingApproach::kUniformDash, "static");
  std::printf("%-32s %14lu %8.0f%% %7.2fs\n", "uniform DASH",
              static_cast<unsigned long>(dash_bytes),
              100.0 * (1.0 - static_cast<double>(dash_bytes) / mono_bytes),
              dash_stalls);

  for (const char* predictor :
       {"static", "dead_reckoning", "linear_regression", "ewma_velocity",
        "kalman", "markov"}) {
    auto [bytes, stalls] = run(StreamingApproach::kVisualCloud, predictor);
    std::string label = std::string("visualcloud + ") + predictor;
    std::printf("%-32s %14lu %8.0f%% %7.2fs\n", label.c_str(),
                static_cast<unsigned long>(bytes),
                100.0 * (1.0 - static_cast<double>(bytes) / mono_bytes),
                stalls);
  }

  auto [oracle_bytes, oracle_stalls] =
      run(StreamingApproach::kOracle, "static");
  std::printf("%-32s %14lu %8.0f%% %7.2fs\n", "visualcloud + oracle",
              static_cast<unsigned long>(oracle_bytes),
              100.0 * (1.0 - static_cast<double>(oracle_bytes) / mono_bytes),
              oracle_stalls);
  return 0;
}
